"""Shim for legacy editable installs (offline environments without `wheel`).

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    python_requires=">=3.10",
)
