"""Least-squares fitting with TSQR — the tall-skinny workload the paper targets.

Fits a degree-8 polynomial to 100,000 noisy samples.  The design matrix
is 100000 x 9: exactly the extreme aspect ratio where TSQR beats
classic blocked QR by large factors (paper Figure 8), because the whole
solve is one reduction over row chunks instead of 9 global
synchronizations per panel column.

Run:  python examples/tall_skinny_least_squares.py
"""

import numpy as np

from repro.bench.workloads import vandermonde_ls
from repro.core.tsqr import tsqr
from repro.core.trees import TreeKind


def main() -> None:
    m, degree = 100_000, 8
    A, rhs, coeffs_true = vandermonde_ls(m, degree, seed=42)
    print(f"design matrix: {A.shape[0]} x {A.shape[1]} (tall and skinny)")

    # Factor once with a flat reduction tree (the paper's best shape on
    # shared memory), then solve.
    f = tsqr(A, tr=8, tree=TreeKind.FLAT)
    x = f.solve_ls(rhs)

    x_ref = np.linalg.lstsq(A, rhs, rcond=None)[0]
    print("max |coef - lstsq|  :", np.abs(x - x_ref).max())
    print("max |coef - truth|  :", np.abs(x - coeffs_true).max())
    print("residual norm       :", np.linalg.norm(A @ x - rhs))

    # The implicit Q is reusable: solve for a second right-hand side
    # without refactoring (e.g. another observable over the same design).
    rhs2 = A @ np.arange(degree + 1, dtype=float) + 1e-8
    x2 = f.solve_ls(rhs2)
    print("second rhs recovered:", np.round(x2, 6)[:4], "...")


if __name__ == "__main__":
    main()
