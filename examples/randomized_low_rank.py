"""Randomized low-rank approximation built on TSQR.

The randomized range finder (Halko-Martinsson-Tropp) is a modern heavy
user of tall-skinny QR: the sketch ``Y = A @ Omega`` is an
``m x (k+p)`` tall-skinny matrix whose orthogonalization is exactly the
operation TSQR makes cheap.  This example compresses a large
numerically low-rank matrix and compares against the truncated SVD.

Run:  python examples/randomized_low_rank.py
"""

import numpy as np

from repro.core.trees import TreeKind
from repro.core.tsqr import tsqr


def randomized_low_rank(A: np.ndarray, rank: int, oversample: int = 8, power_iters: int = 1, seed: int = 0):
    """Rank-`rank` approximation ``A ~ Q (Q^T A)`` with a TSQR range finder."""
    rng = np.random.default_rng(seed)
    m, n = A.shape
    k = rank + oversample
    Y = A @ rng.standard_normal((n, k))
    Q = tsqr(Y, tr=8, tree=TreeKind.FLAT).q_explicit()
    for _ in range(power_iters):  # power iterations sharpen the spectrum
        Z = A.T @ Q
        Q = tsqr(A @ Z, tr=8, tree=TreeKind.FLAT).q_explicit()
    B = Q.T @ A  # k x n small matrix
    return Q, B


def main() -> None:
    rng = np.random.default_rng(1)
    m, n, true_rank = 20_000, 400, 25
    # Low-rank signal + noise floor.
    A = (rng.standard_normal((m, true_rank)) * np.logspace(0, -2, true_rank)) @ rng.standard_normal(
        (true_rank, n)
    ) + 1e-8 * rng.standard_normal((m, n))

    Q, B = randomized_low_rank(A, rank=true_rank)
    err = np.linalg.norm(A - Q @ B) / np.linalg.norm(A)
    print(f"A: {m} x {n}, true rank ~{true_rank}")
    print(f"randomized rank-{true_rank + 8} approximation error: {err:.2e}")

    # Compare against the optimal truncated SVD on the small co-range.
    s = np.linalg.svd(B, compute_uv=False)
    print(f"captured singular values: {s[0]:.3f} ... {s[true_rank - 1]:.5f}")
    print(f"noise floor (first discarded): {s[true_rank]:.2e}")

    # The range finder's Q is TSQR-orthonormal to machine precision.
    orth = np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1]))
    print(f"range orthogonality: {orth:.2e}")


if __name__ == "__main__":
    main()
