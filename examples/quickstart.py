"""Quickstart: factor matrices with CALU and CAQR and verify the results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import calu, caqr, tslu, tsqr
from repro.analysis.errors import lu_backward_error, orthogonality_error, qr_backward_error


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # LU with tournament pivoting (multithreaded CALU, Algorithm 1)
    # ------------------------------------------------------------------
    A = rng.standard_normal((500, 500))
    f = calu(A, b=100, tr=4)  # panel width 100, 4 tournament leaves
    print("CALU  500x500   backward error:", lu_backward_error(A, f.perm, f.L, f.U))

    rhs = A @ np.ones(500)
    x = f.solve(rhs)
    print("CALU  solve     |x - 1|_inf   :", np.abs(x - 1.0).max())

    # ------------------------------------------------------------------
    # QR via reduction trees (multithreaded CAQR, Algorithm 2)
    # ------------------------------------------------------------------
    B = rng.standard_normal((800, 300))
    q = caqr(B, b=100, tr=4)
    Q = q.q_explicit()
    print("CAQR  800x300   backward error:", qr_backward_error(B, Q, q.R))
    print("CAQR  800x300   orthogonality :", orthogonality_error(Q))

    # ------------------------------------------------------------------
    # The tall-and-skinny panel operations the paper is built around
    # ------------------------------------------------------------------
    P = rng.standard_normal((10_000, 50))
    lu, piv = tslu(P, tr=8)  # tournament pivoting: GEPP-quality pivots,
    print("TSLU  1e4x50    factored with", len(piv), "pivots")  # O(log Tr) syncs

    t = tsqr(P, tr=8)  # R + implicit Q, single reduction
    print("TSQR  1e4x50    R diag range  :", np.abs(np.diag(t.R)).min(), "-", np.abs(np.diag(t.R)).max())


if __name__ == "__main__":
    main()
