"""The distributed-memory origin story: count the messages.

CALU/CAQR were designed for distributed memory (paper Section II).
This example factors one tall-skinny panel with P=8 simulated ranks
three ways and prints the exact communication each needs — the
`O(log2 P)` vs `O(b log2 P)` separation that motivates everything else.

Run:  python examples/distributed_panels.py
"""

import numpy as np

from repro.core.trees import TreeKind
from repro.distmem import AlphaBeta, distributed_gepp_panel, distributed_tslu, distributed_tsqr


def main() -> None:
    m, b, P = 8192, 64, 8
    A = np.random.default_rng(0).standard_normal((m, b))
    cluster = AlphaBeta(alpha=5e-6, beta=2e-9)  # a 2009-era cluster network

    print(f"one {m} x {b} panel over P={P} ranks\n")
    print(f"{'method':<28} {'rounds':>7} {'messages':>9} {'words':>9} {'comm time':>11}")
    for label, res in (
        ("classic GEPP panel", distributed_gepp_panel(A, P=P)),
        ("TSLU, binary tree", distributed_tslu(A, P=P, tree=TreeKind.BINARY)),
        ("TSLU, flat tree", distributed_tslu(A, P=P, tree=TreeKind.FLAT)),
        ("TSQR, binary tree", distributed_tsqr(A, P=P, tree=TreeKind.BINARY)),
        ("TSQR, flat tree", distributed_tsqr(A, P=P, tree=TreeKind.FLAT)),
    ):
        c = res.comm
        print(
            f"{label:<28} {c.n_rounds:>7} {c.n_messages:>9} {c.total_words:>9} "
            f"{c.time(cluster) * 1e3:>9.3f} ms"
        )

    # Numerics are GEPP-grade either way.
    res = distributed_tslu(A, P=P)
    from repro.kernels.lu import piv_to_perm

    L = np.tril(res.lu[:, :b], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(res.lu[:b])
    err = np.linalg.norm(A[piv_to_perm(res.piv, m)] - L @ U) / np.linalg.norm(A)
    print(f"\nTSLU backward error: {err:.2e}")
    print("closed-form check: classic needs b x more rounds than binary TSLU:",
          f"{b} x {int(np.log2(P))} = {b * int(np.log2(P))} vs {int(np.log2(P))} merge rounds")


if __name__ == "__main__":
    main()
