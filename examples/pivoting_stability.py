"""Compare pivoting strategies: tournament (CALU) vs partial (GEPP) vs
incremental (PLASMA tiles).

The paper's stability claim: ca-pivoting behaves like partial pivoting
in practice, while the tiled algorithms' incremental pivoting gives up
stability as the tile count grows.  This example measures element
growth and solve accuracy on random and adversarial matrices.

Run:  python examples/pivoting_stability.py
"""

import numpy as np
import scipy.linalg

from repro.analysis.errors import growth_factor
from repro.baselines.tiled_lu import tiled_lu
from repro.bench.workloads import ill_conditioned
from repro.core.calu import calu


def growth_study(n: int = 256, trials: int = 5) -> None:
    rng = np.random.default_rng(0)
    print(f"element growth on {trials} random {n}x{n} matrices (smaller = more stable):")
    rows = []
    for _ in range(trials):
        A = rng.standard_normal((n, n))
        _, _, U = scipy.linalg.lu(A)
        rows.append(
            (
                growth_factor(A, U),
                growth_factor(A, calu(A, b=n // 8, tr=8).U),
                growth_factor(A, tiled_lu(A, nb=n // 16).U),
            )
        )
    rows = np.array(rows)
    for label, col in zip(("GEPP", "CALU (tournament)", "tiled (incremental)"), rows.T):
        print(f"  {label:<22} mean {col.mean():6.1f}   max {col.max():6.1f}")


def accuracy_study(n: int = 200) -> None:
    print(f"\nsolve accuracy on an ill-conditioned {n}x{n} system (cond=1e10):")
    A = ill_conditioned(n, n, cond=1e10, seed=3)
    x_true = np.random.default_rng(4).standard_normal(n)
    rhs = A @ x_true
    for label, x in (
        ("GEPP (scipy)", scipy.linalg.solve(A, rhs)),
        ("CALU", calu(A, b=n // 8, tr=8).solve(rhs)),
        ("tiled", tiled_lu(A, nb=n // 8).solve(rhs)),
    ):
        rel = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        print(f"  {label:<14} relative error {rel:.3e}")


if __name__ == "__main__":
    growth_study()
    accuracy_study()
