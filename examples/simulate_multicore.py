"""Explore the multicore performance model at paper scale.

Reproduces the paper's headline comparison — CALU vs vendor LU on a
10^6 x 500 tall-skinny matrix on the 8-core Intel machine — and renders
the execution diagrams of Figures 3-4 (panel idle time at Tr=1 vs
Tr=8).  Everything runs in simulated time: the task graphs are the real
algorithms' graphs, priced by the machine model.

Run:  python examples/simulate_multicore.py
"""

from repro.analysis.flops import lu_flops
from repro.analysis.schedule import schedule_stats
from repro.bench.methods import lu_graph, simulate_lu
from repro.machine.presets import intel8_mkl
from repro.runtime.simulated import SimulatedExecutor


def main() -> None:
    mach = intel8_mkl()
    m, n = 1_000_000, 500
    print(f"machine: {mach.name} ({mach.cores} cores, "
          f"{mach.peak_core_gflops * mach.cores:.0f} GFLOP/s peak)\n")

    print(f"LU of a {m} x {n} tall-skinny matrix:")
    results = {}
    for method, kw in [
        ("mkl_getf2", {}),
        ("mkl_getrf", {}),
        ("plasma_getrf", {}),
        ("calu", {"tr": 4}),
        ("calu", {"tr": 8}),
    ]:
        r = simulate_lu(method, m, n, mach, **kw)
        label = f"{method}(Tr={kw['tr']})" if kw else method
        results[label] = r.gflops
        print(f"  {label:<18} {r.gflops:7.2f} GFLOP/s   "
              f"({len(r.graph)} tasks, makespan {r.trace.makespan:.2f}s)")
    best_calu = results["calu(Tr=8)"]
    print(f"\n  CALU(Tr=8) speedup vs MKL_dgetrf: {best_calu / results['mkl_getrf']:.2f}x "
          "(paper: up to 2.3x)")
    print(f"  CALU(Tr=8) speedup vs MKL_dgetf2: {best_calu / results['mkl_getf2']:.2f}x "
          "(paper: ~10x at n=100)\n")

    # Figures 3-4: the panel's idle time, and how Tr removes it.
    m2, n2 = 100_000, 1000
    print(f"Execution diagrams: CALU of {m2} x {n2}, b=100 (Figures 3-4)")
    for tr in (1, 8):
        graph = lu_graph("calu", m2, n2, b=100, tr=tr)
        trace = SimulatedExecutor(mach).run(graph)
        stats = schedule_stats(trace, graph, mach)
        print(f"\nTr={tr}: {trace.gflops(lu_flops(m2, n2)):.1f} GFLOP/s, "
              f"idle {100 * stats.idle_fraction:.1f}%, "
              f"panel fraction {100 * stats.panel_fraction:.1f}%")
        print(trace.gantt(96))


if __name__ == "__main__":
    main()
