"""Calibrate the performance model to THIS machine and check its predictions.

The paper presets reproduce published shapes; this example shows the
model's other role — predicting real hosts.  It measures the numeric
kernels here, fits a host MachineModel, then compares the simulator's
predicted CALU time against an actual wall-clock numeric run.

Run:  python examples/calibrate_and_predict.py
"""

import time

import numpy as np

from repro.analysis.flops import lu_flops
from repro.bench.methods import simulate_lu
from repro.core.calu import calu
from repro.machine.calibrate import calibrate_host, measure_kernel_rates


def main() -> None:
    print("measuring kernel rates on this host...")
    rates = measure_kernel_rates(dims=(16, 32, 64), rows=1024)
    for kernel, samples in rates.items():
        pts = ", ".join(f"d={s.dim}: {s.gflops:.2f}" for s in samples)
        print(f"  {kernel:<8} {pts}  GFLOP/s")

    # On this CI-style box we calibrate a 1-core model so prediction and
    # the (sequentially executed) numeric run are comparable.
    mach = calibrate_host(cores=1, dims=(16, 32, 64), rows=1024)
    print(f"\nfitted model: peak {mach.peak_core_gflops:.2f} GFLOP/s/core, "
          f"gemm eff {mach.profiles['gemm'].eff:.2f} "
          f"(half-dim {mach.profiles['gemm'].half_dim:.0f})")

    m, n, b, tr = 2000, 400, 64, 4
    predicted = simulate_lu("calu", m, n, mach, b=b, tr=tr)
    t_pred = lu_flops(m, n) / predicted.gflops / 1e9

    A = np.random.default_rng(0).standard_normal((m, n))
    t0 = time.perf_counter()
    calu(A, b=b, tr=tr)
    t_real = time.perf_counter() - t0

    print(f"\nCALU of {m} x {n} (b={b}, Tr={tr}):")
    print(f"  predicted: {t_pred * 1e3:8.1f} ms  ({predicted.gflops:.2f} GFLOP/s)")
    print(f"  measured : {t_real * 1e3:8.1f} ms  ({lu_flops(m, n) / t_real / 1e9:.2f} GFLOP/s)")
    ratio = max(t_pred, t_real) / min(t_pred, t_real)
    print(f"  model-vs-reality factor: {ratio:.2f}x "
          f"({'good' if ratio < 3 else 'rough'} for a first-principles model)")


if __name__ == "__main__":
    main()
