"""Block-vector orthogonalization with TSQR inside an iterative method.

The paper motivates TSQR with "a set of vectors needs to be
orthogonalized as in block iterative methods".  This example runs a
block power iteration (subspace iteration) for the dominant eigenspace
of a large sparse-ish operator, re-orthogonalizing the block at every
step with TSQR instead of modified Gram-Schmidt: one reduction over row
chunks per iteration instead of one synchronization per column.

Run:  python examples/block_orthogonalization.py
"""

import numpy as np

from repro.core.tsqr import tsqr
from repro.core.trees import TreeKind


def make_operator(n: int, seed: int = 0):
    """A fast symmetric operator with a known dominant eigenspace."""
    rng = np.random.default_rng(seed)
    # Diagonal-plus-low-rank: eigenvalues 10, 9, 8 dominate a [0,1) bulk.
    U, _ = np.linalg.qr(rng.standard_normal((n, 3)))
    d = rng.random(n)

    def matvec_block(X: np.ndarray) -> np.ndarray:
        return d[:, None] * X + U @ (np.diag([10.0, 9.0, 8.0]) - np.diag(d @ U**2)) @ (U.T @ X)

    return matvec_block, U


def subspace_iteration(n: int = 50_000, k: int = 6, iters: int = 15) -> None:
    op, U_true = make_operator(n)
    rng = np.random.default_rng(1)
    X = rng.standard_normal((n, k))

    for it in range(iters):
        X = op(X)
        # TSQR re-orthogonalization: the panel is n x k (50000 x 6).
        f = tsqr(X, tr=8, tree=TreeKind.FLAT)
        X = f.q_explicit()
        if (it + 1) % 5 == 0:
            # Rayleigh-Ritz estimate of the top eigenvalues.
            H = X.T @ op(X)
            ritz = np.sort(np.linalg.eigvalsh(H))[::-1]
            print(f"iter {it + 1:2d}: top Ritz values {np.round(ritz[:3], 4)}")

    # Convergence check against the known dominant space.
    overlap = np.linalg.svd(U_true.T @ X[:, :3], compute_uv=False)
    print("principal-angle cosines vs true space:", np.round(overlap, 6))
    orth = np.linalg.norm(X.T @ X - np.eye(k))
    print("block orthogonality ||X^T X - I||    :", orth)


if __name__ == "__main__":
    subspace_iteration()
