"""Mutation self-test: the detector must catch injected defects."""

import numpy as np
import pytest

from repro.core.calu import build_calu_graph
from repro.core.caqr import build_caqr_graph
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.verify.mutate import (
    conflict_edges,
    drop_edge,
    essential_conflict_edges,
    pick_droppable_edge,
)
from repro.verify.races import check_races


def calu_graph(tree=TreeKind.BINARY):
    graph, _ = build_calu_graph(BlockLayout(48, 48, 8), 4, tree)
    return graph


class TestEdgeSelection:
    def test_conflict_edges_subset_of_edges(self):
        g = calu_graph()
        for u, v in conflict_edges(g):
            assert v in g.succs[u]

    def test_essential_edges_nonempty_for_calu(self):
        assert essential_conflict_edges(calu_graph())

    def test_drop_edge_returns_independent_copy(self):
        g = calu_graph()
        u, v = pick_droppable_edge(g, seed=0)
        mutant = drop_edge(g, u, v)
        assert v in g.succs[u] and u in g.preds[v]
        assert v not in mutant.succs[u] and u not in mutant.preds[v]

    def test_drop_missing_edge_raises(self):
        g = calu_graph()
        with pytest.raises(ValueError, match="no edge"):
            drop_edge(g, 0, 0)


class TestMutationDetected:
    @pytest.mark.parametrize("tree", [TreeKind.BINARY, TreeKind.FLAT])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_calu_random_edge_drop_is_caught(self, tree, seed):
        g = calu_graph(tree)
        assert not [f for f in check_races(g) if f.rule == "race"]
        u, v = pick_droppable_edge(g, seed=seed)
        mutant = drop_edge(g, u, v)
        races = [f for f in check_races(mutant) if f.rule == "race"]
        assert any(set(f.tasks) == {u, v} for f in races), (
            f"dropped conflict edge {u}->{v} not reported; got "
            f"{[f.tasks for f in races]}"
        )

    def test_caqr_edge_drop_is_caught(self):
        graph, _ = build_caqr_graph(BlockLayout(48, 48, 8), 4, TreeKind.BINARY)
        u, v = pick_droppable_edge(graph, seed=0)
        races = [f for f in check_races(drop_edge(graph, u, v)) if f.rule == "race"]
        assert any(set(f.tasks) == {u, v} for f in races)

    def test_counterexample_is_actionable(self):
        g = calu_graph()
        u, v = pick_droppable_edge(g, seed=0)
        hit = next(
            f
            for f in check_races(drop_edge(g, u, v))
            if f.rule == "race" and set(f.tasks) == {u, v}
        )
        # Names both tasks, the block, and the missing edge.
        assert g.tasks[u].name in hit.message
        assert g.tasks[v].name in hit.message
        assert f"{min(u, v)} -> {max(u, v)}" in hit.message
        assert hit.block is not None

    def test_every_essential_edge_drop_is_caught(self):
        # Exhaustive on a small graph: no essential conflict edge can be
        # removed without the detector noticing.
        graph, _ = build_calu_graph(BlockLayout(24, 24, 8), 3, TreeKind.BINARY)
        for u, v in essential_conflict_edges(graph):
            races = [f for f in check_races(drop_edge(graph, u, v)) if f.rule == "race"]
            assert any(set(f.tasks) == {u, v} for f in races), f"{u}->{v} missed"
