"""Static race detector: happens-before proofs and counterexamples."""

from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.verify.races import block_accesses, check_races


def cost():
    return Cost("laswp")


def add(g, name, deps=(), reads=(), writes=(), fn=None):
    return g.add(
        name,
        TaskKind.X,
        cost(),
        fn=fn,
        deps=deps,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


class TestCheckRaces:
    def test_ordered_pair_is_clean(self):
        g = TaskGraph()
        a = add(g, "w1", writes=[(0, 0)])
        add(g, "w2", deps=[a], writes=[(0, 0)])
        assert check_races(g) == []

    def test_transitive_order_suffices(self):
        g = TaskGraph()
        a = add(g, "w1", writes=[(0, 0)])
        b = add(g, "mid", deps=[a])
        add(g, "w2", deps=[b], writes=[(0, 0)])
        assert check_races(g) == []

    def test_unordered_waw_reported(self):
        g = TaskGraph()
        a = add(g, "w1", writes=[(0, 0)])
        b = add(g, "w2", writes=[(0, 0)])
        findings = check_races(g)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "race" and f.severity == "error"
        assert f.tasks == (a, b)
        assert f.block == (0, 0)
        assert "WAW" in f.message

    def test_unordered_raw_reported(self):
        g = TaskGraph()
        add(g, "w", writes=[(1, 1)])
        add(g, "r", reads=[(1, 1)])
        findings = check_races(g)
        assert len(findings) == 1
        assert "RAW/WAR" in findings[0].message

    def test_readers_do_not_conflict(self):
        g = TaskGraph()
        add(g, "r1", reads=[(0, 0)])
        add(g, "r2", reads=[(0, 0)])
        assert check_races(g) == []

    def test_pair_aggregated_across_blocks(self):
        g = TaskGraph()
        add(g, "w1", writes=[(0, 0), (0, 1), (1, 0), (1, 1)])
        add(g, "w2", writes=[(0, 0), (0, 1), (1, 0), (1, 1)])
        findings = check_races(g)
        assert len(findings) == 1
        assert "+1 more" in findings[0].message

    def test_opaque_numeric_task_warned(self):
        g = TaskGraph()
        g.add("blind", TaskKind.X, cost(), fn=lambda: None)
        findings = check_races(g)
        assert [f.rule for f in findings] == ["opaque-task"]
        assert findings[0].severity == "warning"

    def test_symbolic_task_without_footprint_ok(self):
        g = TaskGraph()
        g.add("sym", TaskKind.X, cost())
        assert check_races(g) == []

    def test_tracker_built_graph_is_race_free(self):
        g = TaskGraph()
        tr = BlockTracker()
        for i in range(6):
            tr.add_task(
                g,
                f"t{i}",
                TaskKind.S,
                cost(),
                reads=[(i % 2, 0)],
                writes=[(i % 3, 1)],
            )
        assert check_races(g) == []


class TestBlockAccesses:
    def test_partitions_readers_and_writers(self):
        g = TaskGraph()
        a = add(g, "w", writes=[(0, 0)])
        b = add(g, "r", deps=[a], reads=[(0, 0)])
        acc = block_accesses(g)
        assert acc[(0, 0)] == ([b], [a])
