"""CLI end-to-end: full pass matrix, self-test, and exit codes."""

from repro.verify.cli import default_targets, main, self_test, verify_graph
from repro.core.calu import build_calu_graph
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.verify.mutate import drop_edge, pick_droppable_edge


class TestVerifyGraph:
    def test_static_passes_always_run(self):
        graph, _ = build_calu_graph(BlockLayout(24, 24, 8), 3, TreeKind.BINARY)
        report = verify_graph(graph)
        assert report.passes == ["races", "lint"]
        assert report.ok

    def test_mutated_graph_fails_gate(self):
        graph, _ = build_calu_graph(BlockLayout(24, 24, 8), 3, TreeKind.BINARY)
        u, v = pick_droppable_edge(graph, seed=0)
        report = verify_graph(drop_edge(graph, u, v))
        assert not report.ok
        assert any(f.rule == "race" for f in report.errors)
        assert "FAIL" in report.summary()


class TestTargets:
    def test_matrix_covers_both_trees_and_two_sizes(self):
        names = [t.name for t in default_targets()]
        for algo in ("calu", "caqr"):
            for tree in ("binary", "flat"):
                sizes = [n for n in names if n.startswith(f"{algo}-{tree}-")]
                assert len(sizes) >= 2, names

    def test_numeric_targets_exist(self):
        assert sum(t.numeric for t in default_targets()) >= 8


class TestMain:
    def test_full_run_passes(self, capsys):
        assert main(["--fuzz", "1"]) == 0
        out = capsys.readouterr().out
        assert "all graphs race-free and lint-clean" in out

    def test_static_only_passes(self, capsys):
        assert main(["--static-only"]) == 0
        out = capsys.readouterr().out
        assert "sanitize" not in out

    def test_self_test_passes(self, capsys):
        assert self_test(seed=0) == 0
        out = capsys.readouterr().out
        assert "edge-drop mutation" in out
        assert "misdeclared footprint" in out

    def test_self_test_via_flag(self):
        assert main(["--self-test"]) == 0
