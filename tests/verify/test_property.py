"""Property tests: BlockTracker vs a brute-force conflict oracle.

For any access sequence, the tracker-built graph must order every
conflicting pair in program order — checked against an O(n²) oracle
that enumerates all pairs directly.  The static race detector must
agree (no findings), closing the loop between the two implementations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.verify.races import check_races
from repro.verify.reach import ancestor_masks, has_path

BLOCKS = [(i, j) for i in range(3) for j in range(3)]

block_set = st.frozensets(st.sampled_from(BLOCKS), max_size=4)
access_seqs = st.lists(st.tuples(block_set, block_set), min_size=1, max_size=24)


def build(seq):
    graph = TaskGraph("prop")
    tracker = BlockTracker()
    for i, (reads, writes) in enumerate(seq):
        tracker.add_task(
            graph,
            f"t{i}",
            TaskKind.X,
            Cost("laswp"),
            reads=sorted(reads),
            writes=sorted(writes),
        )
    return graph, tracker


def conflicts(a, b):
    (ra, wa), (rb, wb) = a, b
    return bool((wa & wb) or (wa & rb) or (ra & wb))


@settings(max_examples=200, deadline=None)
@given(access_seqs)
def test_tracker_orders_every_conflicting_pair(seq):
    graph, _ = build(seq)
    anc = ancestor_masks(graph)
    for j in range(len(seq)):
        for i in range(j):
            if conflicts(seq[i], seq[j]):
                assert has_path(anc, i, j), f"conflicting pair {i} -> {j} unordered"


@settings(max_examples=200, deadline=None)
@given(access_seqs)
def test_race_detector_agrees_with_oracle(seq):
    graph, _ = build(seq)
    assert [f for f in check_races(graph) if f.rule == "race"] == []


@settings(max_examples=100, deadline=None)
@given(access_seqs)
def test_footprint_matches_declaration(seq):
    graph, tracker = build(seq)
    assert tracker.known_tids() == list(range(len(seq)))
    for i, (reads, writes) in enumerate(seq):
        assert tracker.footprint(i) == (reads, writes)
        task = graph.tasks[i]
        assert task.reads == reads and task.writes == writes


@settings(max_examples=100, deadline=None)
@given(access_seqs)
def test_no_spurious_order_between_disjoint_writers(seq):
    # Soundness in the other direction: two tasks with no conflict and
    # no transitive intermediary must not gain a *direct* edge.
    graph, _ = build(seq)
    for j in range(len(seq)):
        for i in graph.preds[j]:
            assert conflicts(seq[i], seq[j]), f"edge {i} -> {j} without a conflict"
