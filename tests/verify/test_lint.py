"""DAG linter rules: cycles, costs, dead tasks, priorities, redundancy."""

from repro.analysis.flops import gemm_flops
from repro.core.calu import build_calu_graph
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.verify.lint import expected_flops, lint_graph


def rules(findings):
    return [f.rule for f in findings]


def gemm_cost(m=8, n=8, k=8, flops=None, words=100.0):
    return Cost("gemm", m, n, k, flops=gemm_flops(m, n, k) if flops is None else flops, words=words)


class TestCycleRule:
    def test_cycle_short_circuits(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.X, Cost("laswp"))
        b = g.add("b", TaskKind.X, Cost("laswp"), deps=[a])
        g.succs[b].append(a)
        g.preds[a].append(b)
        findings = lint_graph(g)
        assert rules(findings) == ["cycle"]
        assert findings[0].severity == "error"
        assert sorted(findings[0].tasks) == [a, b]


class TestCostRules:
    def test_consistent_cost_clean(self):
        g = TaskGraph()
        g.add("ok", TaskKind.S, gemm_cost())
        assert lint_graph(g) == []

    def test_wrong_flops_flagged(self):
        g = TaskGraph()
        g.add("bad", TaskKind.S, gemm_cost(flops=999.0))
        findings = lint_graph(g)
        assert rules(findings) == ["cost-flops"]
        assert "gemm" in findings[0].message

    def test_bookkeeping_kernel_must_be_zero_flop(self):
        g = TaskGraph()
        g.add("swap", TaskKind.X, Cost("laswp", flops=10.0, words=1.0))
        assert rules(lint_graph(g)) == ["cost-flops"]

    def test_flops_without_words_warned(self):
        g = TaskGraph()
        g.add("dry", TaskKind.S, gemm_cost(words=0.0))
        findings = lint_graph(g)
        assert rules(findings) == ["cost-words"]
        assert findings[0].severity == "warning"

    def test_unknown_kernel_skipped(self):
        g = TaskGraph()
        g.add("mystery", TaskKind.X, Cost("frobnicate", flops=123.0, words=1.0))
        assert lint_graph(g) == []

    def test_multiple_ok_kernels_accept_batches(self):
        from repro.analysis.flops import tpqrt_tt_flops

        g = TaskGraph()
        unit = tpqrt_tt_flops(8)
        g.add("merge", TaskKind.P, Cost("tpqrt_tt", 16, 8, 8, flops=unit * 3, words=1.0))
        assert lint_graph(g) == []
        g2 = TaskGraph()
        g2.add("merge", TaskKind.P, Cost("tpqrt_tt", 16, 8, 8, flops=unit * 1.5, words=1.0))
        assert rules(lint_graph(g2)) == ["cost-flops"]

    def test_expected_flops_lookup(self):
        assert expected_flops(_task(gemm_cost())) == gemm_flops(8, 8, 8)


def _task(cost):
    g = TaskGraph()
    g.add("t", TaskKind.S, cost)
    return g.tasks[0]


class TestStructureRules:
    def test_isolated_task_warned(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.X, Cost("laswp"))
        g.add("b", TaskKind.X, Cost("laswp"), deps=[a])
        g.add("island", TaskKind.X, Cost("laswp"))
        findings = lint_graph(g)
        assert rules(findings) == ["isolated-task"]

    def test_single_task_graph_not_isolated(self):
        g = TaskGraph()
        g.add("only", TaskKind.X, Cost("laswp"))
        assert lint_graph(g) == []

    def test_redundant_edge_is_info(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.X, Cost("laswp"))
        b = g.add("b", TaskKind.X, Cost("laswp"), deps=[a])
        c = g.add("c", TaskKind.X, Cost("laswp"), deps=[a, b])
        findings = lint_graph(g)
        assert rules(findings) == ["redundant-edge"]
        assert findings[0].severity == "info"
        assert findings[0].tasks == (a, c)
        assert lint_graph(g, redundant_edges=False) == []


class TestPriorityInversion:
    def test_window_task_outranked_warned(self):
        g = TaskGraph()
        u = g.add("U[0]1", TaskKind.U, Cost("laswp"), priority=1.0, iteration=0, col=1)
        g.add("far", TaskKind.S, Cost("laswp"), deps=[u], priority=5.0, iteration=2, col=9)
        findings = lint_graph(g)
        assert rules(findings) == ["priority-inversion"]
        assert findings[0].severity == "warning"

    def test_correct_lookahead_clean(self):
        g = TaskGraph()
        u = g.add("U[0]1", TaskKind.U, Cost("laswp"), priority=10.0, iteration=0, col=1)
        g.add("far", TaskKind.S, Cost("laswp"), deps=[u], priority=5.0, iteration=2, col=9)
        assert lint_graph(g) == []

    def test_non_window_updates_exempt(self):
        g = TaskGraph()
        u = g.add("U[0]5", TaskKind.U, Cost("laswp"), priority=1.0, iteration=0, col=5)
        g.add("far", TaskKind.S, Cost("laswp"), deps=[u], priority=5.0, iteration=2, col=9)
        assert lint_graph(g) == []


class TestBuilderGraphsClean:
    def test_calu_all_lookaheads_gate_clean(self):
        for lookahead in (-1, 0, 1):
            g, _ = build_calu_graph(
                BlockLayout(48, 48, 8), 4, TreeKind.BINARY, lookahead=lookahead
            )
            gating = [f for f in lint_graph(g) if f.severity in ("error", "warning")]
            assert gating == [], [str(f) for f in gating]
