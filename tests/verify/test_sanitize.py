"""Dynamic passes: footprint sanitizer and schedule fuzzer."""

import numpy as np
import pytest

from repro.core.calu import build_calu_graph
from repro.core.caqr import build_caqr_graph
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.verify.sanitize import (
    fuzz_schedules,
    random_topological_order,
    sanitize_footprints,
)


def _writer(A, i, j, b=4):
    def fn():
        A[i * b : (i + 1) * b, j * b : (j + 1) * b] += 1.0

    return fn


class TestSanitizeFootprints:
    def test_honest_footprint_clean(self):
        A = np.zeros((8, 8))
        g = TaskGraph()
        g.add("w", TaskKind.X, Cost("laswp"), fn=_writer(A, 0, 1), writes=frozenset({(0, 1)}))
        assert sanitize_footprints(g, A, 4) == []

    def test_undeclared_write_flagged(self):
        A = np.zeros((8, 8))
        g = TaskGraph()
        g.add("rogue", TaskKind.X, Cost("laswp"), fn=_writer(A, 1, 0), writes=frozenset({(0, 1)}))
        findings = sanitize_footprints(g, A, 4)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "footprint" and f.severity == "error"
        assert f.block == (1, 0)

    def test_nan_to_nan_not_a_write(self):
        A = np.zeros((8, 8))
        A[0, 0] = np.nan

        g = TaskGraph()
        g.add("idle", TaskKind.X, Cost("laswp"), fn=lambda: None, writes=frozenset())
        assert sanitize_footprints(g, A, 4) == []

    def test_symbolic_tasks_skipped(self):
        A = np.zeros((8, 8))
        g = TaskGraph()
        g.add("sym", TaskKind.X, Cost("laswp"))
        assert sanitize_footprints(g, A, 4) == []

    def test_calu_graph_clean_and_factors_intact(self):
        rng = np.random.default_rng(7)
        A = rng.standard_normal((24, 24))
        A0 = A.copy()
        layout = BlockLayout(24, 24, 8)
        graph, wss = build_calu_graph(layout, 3, TreeKind.BINARY, A=A, guards=False)
        assert sanitize_footprints(graph, A, 8) == []
        # The sanitizer executed the graph in topological order; the
        # factorization must be the same as a plain sequential run.
        B = A0.copy()
        graph2, _ = build_calu_graph(layout, 3, TreeKind.BINARY, A=B, guards=False)
        graph2.run_sequential()
        np.testing.assert_array_equal(A, B)


class TestRandomTopologicalOrder:
    def test_valid_linear_extension(self):
        graph, _ = build_calu_graph(BlockLayout(24, 24, 8), 3, TreeKind.BINARY)
        rng = np.random.default_rng(0)
        order = random_topological_order(graph, rng)
        assert sorted(order) == list(range(len(graph.tasks)))
        pos = {t: i for i, t in enumerate(order)}
        for v in range(len(graph.tasks)):
            assert all(pos[p] < pos[v] for p in graph.preds[v])

    def test_seeds_vary_order(self):
        graph, _ = build_calu_graph(BlockLayout(24, 24, 8), 3, TreeKind.BINARY)
        a = random_topological_order(graph, np.random.default_rng(1))
        b = random_topological_order(graph, np.random.default_rng(2))
        assert a != b


class TestFuzzSchedules:
    @pytest.mark.parametrize("tree", [TreeKind.BINARY, TreeKind.FLAT])
    def test_calu_bitwise_schedule_independent(self, tree):
        def build():
            A = np.random.default_rng(11).standard_normal((24, 24))
            graph, wss = build_calu_graph(
                BlockLayout(24, 24, 8), 3, tree, A=A, guards=False
            )

            def collect():
                out = [A]
                out += [np.asarray(ws.piv) for ws in wss if ws.piv is not None]
                return out

            return graph, collect

        assert fuzz_schedules(build, runs=3, seed=5) == []

    def test_caqr_bitwise_schedule_independent(self):
        def build():
            A = np.random.default_rng(13).standard_normal((24, 16))
            graph, _ = build_caqr_graph(
                BlockLayout(24, 16, 8), 3, TreeKind.BINARY, A=A, guards=False
            )
            return graph, lambda: [A]

        assert fuzz_schedules(build, runs=3, seed=5) == []

    def test_schedule_dependence_detected(self):
        # A deliberately racy program: two unordered tasks append to a
        # log; the result depends on which runs first.
        def build():
            out = np.zeros(2)
            state = {"next": 0.0}
            g = TaskGraph("racy")

            def writer(val):
                def fn():
                    out[int(state["next"])] = val
                    state["next"] += 1

                return fn

            g.add("a", TaskKind.X, Cost("laswp"), fn=writer(1.0))
            g.add("b", TaskKind.X, Cost("laswp"), fn=writer(2.0))
            return g, lambda: [out]

        findings = fuzz_schedules(build, runs=8, seed=0)
        assert findings
        assert all(f.rule == "schedule-dependence" for f in findings)
