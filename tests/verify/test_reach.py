"""Reachability primitives: ancestor masks and cycle extraction."""

import pytest

from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.verify.reach import ancestor_masks, find_cycle, has_path


def cost():
    return Cost("laswp")


def chain(n):
    g = TaskGraph("chain")
    prev = None
    for i in range(n):
        prev = g.add(f"t{i}", TaskKind.X, cost(), deps=[] if prev is None else [prev])
    return g


class TestAncestorMasks:
    def test_chain_transitive(self):
        g = chain(5)
        anc = ancestor_masks(g)
        for u in range(5):
            for v in range(5):
                assert has_path(anc, u, v) == (u < v)

    def test_diamond(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.X, cost())
        b = g.add("b", TaskKind.X, cost(), deps=[a])
        c = g.add("c", TaskKind.X, cost(), deps=[a])
        d = g.add("d", TaskKind.X, cost(), deps=[b, c])
        anc = ancestor_masks(g)
        assert has_path(anc, a, d)
        assert not has_path(anc, b, c)
        assert not has_path(anc, c, b)
        assert not has_path(anc, d, a)

    def test_no_self_path(self):
        g = chain(3)
        anc = ancestor_masks(g)
        assert not any(has_path(anc, t, t) for t in range(3))

    def test_cyclic_graph_raises(self):
        g = chain(3)
        g.succs[2].append(0)
        g.preds[0].append(2)
        with pytest.raises(ValueError):
            ancestor_masks(g)


class TestFindCycle:
    def test_dag_returns_none(self):
        assert find_cycle(chain(4)) is None

    def test_minimal_witness(self):
        # A long cycle 0->1->2->3->0 plus a short one 4->5->4: the
        # witness must be the 2-cycle, the minimal set to inspect.
        g = TaskGraph()
        for i in range(6):
            g.add(f"t{i}", TaskKind.X, cost())
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 4)]:
            g.succs[u].append(v)
            g.preds[v].append(u)
        witness = find_cycle(g)
        assert witness is not None
        assert sorted(witness) == [4, 5]

    def test_witness_is_a_cycle(self):
        g = chain(4)
        g.succs[3].append(1)
        g.preds[1].append(3)
        witness = find_cycle(g)
        assert witness is not None
        for a, b in zip(witness, witness[1:] + witness[:1]):
            assert b in g.succs[a]
