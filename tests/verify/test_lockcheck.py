"""Lockcheck static pass: unit fixtures, the real repo, suppressions,
and the witness cross-check machinery."""

import pytest

from repro.runtime.sync import LockWitness
from repro.verify.lockcheck import (
    analyze_sources,
    apply_suppressions,
    apply_witness,
    coverage,
    cross_check,
    load_suppressions,
    lock_self_test,
    run_lockcheck,
)
from repro.verify.lockcheck.suppressions import Suppression, SuppressionFile


def _rules(result):
    return sorted(f.rule for f in result.findings)


class TestStaticRules:
    def test_clean_fixture_has_no_findings(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._lock = make_lock("t.lock")
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1
"""
        result = analyze_sources({"m.py": src})
        assert result.findings == []
        assert result.index.locks["t.lock"].kind == "lock"

    def test_lk001_cycle_with_witness_sites(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._a = make_lock("t.a")
        self._b = make_lock("t.b")

    def fwd(self):
        with self._a:
            with self._b:
                pass

    def rev(self):
        with self._b:
            with self._a:
                pass
"""
        result = analyze_sources({"m.py": src})
        cycles = [f for f in result.findings if f.rule == "LK001"]
        assert len(cycles) == 1
        assert cycles[0].severity == "error"
        # Witness path names both file:line pairs of the inversion.
        assert "t.a -> t.b" in cycles[0].message
        assert "t.b -> t.a" in cycles[0].message
        assert "m.py:" in cycles[0].message
        assert result.cycles and set(result.cycles[0]) == {"t.a", "t.b"}

    def test_lk001_interprocedural_cycle(self):
        # The inversion is only visible through a call: fwd holds a and
        # calls helper, which acquires b; rev holds b and calls other,
        # which acquires a.
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._a = make_lock("t.a")
        self._b = make_lock("t.b")

    def helper_b(self):
        with self._b:
            pass

    def helper_a(self):
        with self._a:
            pass

    def fwd(self):
        with self._a:
            self.helper_b()

    def rev(self):
        with self._b:
            self.helper_a()
"""
        result = analyze_sources({"m.py": src})
        cycles = [f for f in result.findings if f.rule == "LK001"]
        assert len(cycles) == 1
        assert "via" in cycles[0].message  # the call chain is named

    def test_lk001_self_deadlock(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._a = make_lock("t.a")

    def inner(self):
        with self._a:
            pass

    def outer(self):
        with self._a:
            self.inner()
"""
        result = analyze_sources({"m.py": src})
        selfs = [f for f in result.findings if f.rule == "LK001"]
        assert len(selfs) == 1
        assert "re-acquired" in selfs[0].message

    def test_lk001_rlock_reentry_allowed(self):
        src = """
from repro.runtime.sync import make_rlock

class C:
    def __init__(self):
        self._a = make_rlock("t.a")

    def inner(self):
        with self._a:
            pass

    def outer(self):
        with self._a:
            self.inner()
"""
        result = analyze_sources({"m.py": src})
        assert _rules(result) == []

    def test_lk002_blocking_under_lock(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self, conn):
        self._lock = make_lock("t.lock")
        self.conn = conn

    def roundtrip(self, op):
        with self._lock:
            self.conn.send(op)
            return self.conn.recv()
"""
        result = analyze_sources({"m.py": src})
        blocking = [f for f in result.findings if f.rule == "LK002"]
        assert len(blocking) == 2
        assert any(".send()" in f.message for f in blocking)
        assert any(".recv()" in f.message for f in blocking)

    def test_lk003_untimed_wait(self):
        src = """
from repro.runtime.sync import make_condition

class C:
    def __init__(self):
        self._cond = make_condition("t.cond")
        self.ready = False

    def wait_forever(self):
        with self._cond:
            while not self.ready:
                self._cond.wait()

    def wait_bounded(self):
        with self._cond:
            while not self.ready:
                self._cond.wait(0.1)
"""
        result = analyze_sources({"m.py": src})
        waits = [f for f in result.findings if f.rule == "LK003"]
        assert len(waits) == 1
        assert "wait_forever" in waits[0].message

    def test_lk004_acquire_without_finally(self):
        src = """
from repro.runtime.sync import make_lock

_lock = make_lock("t.lock")

def bad():
    _lock.acquire()
    work()
    _lock.release()

def good():
    _lock.acquire()
    try:
        work()
    finally:
        _lock.release()

def work():
    pass
"""
        result = analyze_sources({"m.py": src})
        acq = [f for f in result.findings if f.rule == "LK004"]
        assert len(acq) == 1
        assert ":bad" in acq[0].message

    def test_lk005_inconsistent_coverage(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._lock = make_lock("t.lock")
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1

    def reset(self):
        self.n = 0
"""
        result = analyze_sources({"m.py": src})
        races = [f for f in result.findings if f.rule == "LK005"]
        assert len(races) == 1
        assert "C.n" in races[0].message and "t.lock" in races[0].message

    def test_lk005_private_helper_called_under_lock_is_covered(self):
        # _apply writes without acquiring, but every call site holds the
        # lock: calling-context propagation must keep this clean.
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._lock = make_lock("t.lock")
        self.n = 0

    def _apply(self, d):
        self.n += d

    def bump(self):
        with self._lock:
            self._apply(1)

    def drop(self):
        with self._lock:
            self._apply(-1)
"""
        result = analyze_sources({"m.py": src})
        assert _rules(result) == []

    def test_lk005_init_only_helper_is_covered(self):
        src = """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._lock = make_lock("t.lock")
        self._load()

    def _load(self):
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1
"""
        result = analyze_sources({"m.py": src})
        assert _rules(result) == []

    def test_lk006_bare_primitive(self):
        src = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
"""
        result = analyze_sources({"m.py": src})
        assert _rules(result) == ["LK006"]

    def test_lk007_nonliteral_name(self):
        src = """
from repro.runtime.sync import make_lock

def build(name):
    return make_lock(name)
"""
        result = analyze_sources({"m.py": src})
        assert _rules(result) == ["LK007"]
        assert result.findings[0].severity == "error"

    def test_condition_aliasing_shares_name(self):
        src = """
from repro.runtime.sync import make_condition, make_lock

lock = make_lock("t.state")
cond = make_condition("t.state", lock)

def use():
    with cond:
        pass
"""
        result = analyze_sources({"m.py": src})
        assert result.findings == []
        assert set(result.index.locks) == {"t.state"}


class TestRepoAnalysis:
    """The installed package itself, the tentpole's acceptance target."""

    def test_repo_is_clean_modulo_suppressions(self):
        report, analysis = run_lockcheck()
        assert report.ok, report.summary() + "\n" + "\n".join(
            str(f) for f in report.gating
        )
        assert analysis.cycles == []

    def test_known_real_edges_are_found(self):
        _, analysis = run_lockcheck()
        edges = analysis.edge_names()
        # StealingFrontier.pop counts a sync under the engine condition.
        assert ("engine.state", "counters.counters") in edges
        # The worker pool respawns crashed workers under the core lock.
        assert ("process.core", "service.respawn") in edges
        # TaskJournal.bind resets/appends through its store under its lock.
        assert ("resilience.journal", "checkpoint.memory") in edges
        assert ("resilience.journal", "checkpoint.file") in edges

    def test_lock_inventory_names_every_layer(self):
        _, analysis = run_lockcheck()
        locks = set(analysis.index.locks)
        assert {
            "engine.state",
            "process.core",
            "counters.counters",
            "counters.active",
            "service.plan",
            "service.inflight",
            "service.admission",
            "service.breaker",
            "service.respawn",
            "resilience.faults",
            "resilience.journal",
            "checkpoint.memory",
            "checkpoint.file",
        } <= locks

    def test_entry_points_cover_engine_threads(self):
        _, analysis = run_lockcheck()
        entries = set(analysis.entry_locks)
        assert any("worker" in e for e in entries)
        assert any("watchdog" in e for e in entries)
        # The watchdog must touch only the engine's own state.
        for entry, locks in analysis.entry_locks.items():
            if "watchdog" in entry:
                assert locks == ("engine.state",)


class TestSuppressions:
    def test_loader_parses_the_shipped_file(self):
        sup = load_suppressions()
        assert sup.entries, "shipped suppression file should not be empty"
        assert all(s.reason for s in sup.entries)

    def test_loader_rejects_bad_rule(self, tmp_path):
        p = tmp_path / "s.txt"
        p.write_text("BOGUS | pattern | reason\n")
        with pytest.raises(ValueError, match="bad rule id"):
            load_suppressions(str(p))

    def test_loader_rejects_line_pins(self, tmp_path):
        p = tmp_path / "s.txt"
        p.write_text("LK002 | engine.py:42 | reason\n")
        with pytest.raises(ValueError, match="pins a line number"):
            load_suppressions(str(p))

    def test_loader_rejects_missing_reason(self, tmp_path):
        p = tmp_path / "s.txt"
        p.write_text("LK002 | pattern |\n")
        with pytest.raises(ValueError, match="expected"):
            load_suppressions(str(p))

    def test_apply_suppresses_and_flags_stale(self):
        from repro.verify.findings import Finding

        findings = [
            Finding("LK002", "warning", "lockcheck", "[x holding l] blocking call"),
            Finding("LK003", "warning", "lockcheck", "[y wait c] untimed"),
        ]
        sup = SuppressionFile(
            "s.txt",
            [
                Suppression("LK002", "[x holding l]", "intentional", 1),
                Suppression("LK001", "never-matches", "stale entry", 2),
            ],
        )
        kept, notes = apply_suppressions(findings, sup)
        assert [f.rule for f in kept] == ["LK003"]
        assert any("suppressed" in n.message for n in notes)
        assert any("stale suppression" in n.message for n in notes)


class TestWitnessCrossCheck:
    def _two_lock_result(self):
        return analyze_sources(
            {
                "m.py": """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._a = make_lock("t.a")
        self._b = make_lock("t.b")

    def fwd(self):
        with self._a:
            with self._b:
                pass
"""
            }
        )

    def test_predicted_edge_is_not_a_gap(self):
        result = self._two_lock_result()
        w = LockWitness()
        w.on_acquired("t.a")
        w.on_acquired("t.b")
        w.on_released("t.b", 0.0)
        w.on_released("t.a", 0.0)
        assert cross_check(w, result) == []

    def test_unpredicted_edge_is_lk101(self):
        result = self._two_lock_result()
        w = LockWitness()
        w.on_acquired("t.b")
        w.on_acquired("t.a")
        findings = cross_check(w, result)
        assert [f.rule for f in findings] == ["LK101"]
        assert findings[0].severity == "error"
        assert "t.b -> t.a" in findings[0].message

    def test_roundtrip_held_is_lk102_unless_allowed(self):
        result = self._two_lock_result()
        w = LockWitness()
        w.on_acquired("t.a")
        w.on_roundtrip()
        assert [f.rule for f in cross_check(w, result)] == ["LK102"]
        assert cross_check(w, result, allowed_roundtrip=("t.a",)) == []

    def test_unwitnessed_cycle_downgrades(self):
        result = analyze_sources(
            {
                "m.py": """
from repro.runtime.sync import make_lock

class C:
    def __init__(self):
        self._a = make_lock("t.a")
        self._b = make_lock("t.b")

    def fwd(self):
        with self._a:
            with self._b:
                pass

    def rev(self):
        with self._b:
            with self._a:
                pass
"""
            }
        )
        assert any(f.rule == "LK001" and f.severity == "error" for f in result.findings)
        # A run that never witnessed either order: downgrade to warning.
        downgraded = apply_witness(result, LockWitness())
        cycles = [f for f in downgraded if f.rule == "LK001"]
        assert cycles and all(f.severity == "warning" for f in cycles)
        assert "downgraded" in cycles[0].message
        # A run that witnessed both orders: the error stands.
        w = LockWitness()
        w.on_acquired("t.a")
        w.on_acquired("t.b")
        w.on_released("t.b", 0.0)
        w.on_released("t.a", 0.0)
        w.on_acquired("t.b")
        w.on_acquired("t.a")
        kept = apply_witness(result, w)
        assert any(f.rule == "LK001" and f.severity == "error" for f in kept)

    def test_coverage_counts_only_exercised_edges(self):
        result = self._two_lock_result()
        # Nothing acquired: no edge exercised, vacuous full coverage.
        frac, exercised, missed = coverage(LockWitness(), result)
        assert frac == 1.0 and not exercised
        # Both locks acquired but never nested: the edge was exercised
        # and missed.
        w = LockWitness()
        w.on_acquired("t.a")
        w.on_released("t.a", 0.0)
        w.on_acquired("t.b")
        w.on_released("t.b", 0.0)
        frac, exercised, missed = coverage(w, result)
        assert exercised == {("t.a", "t.b")} and missed == exercised and frac == 0.0
        # Nested acquisition: fully covered.
        w.on_acquired("t.a")
        w.on_acquired("t.b")
        frac, _, missed = coverage(w, result)
        assert frac == 1.0 and not missed


class TestMutationSelfTest:
    def test_self_test_passes(self, capsys):
        assert lock_self_test() == 0
        out = capsys.readouterr().out
        assert "lock self-test ok" in out
        assert "FAIL" not in out
