"""Tests for the LAPACK-style LU/QR baselines and their task graphs."""

import numpy as np
import pytest

from repro.baselines.lapack_lu import build_getf2_graph, build_getrf_graph, getf2_lu, getrf_lu
from repro.baselines.lapack_qr import build_geqr2_graph, build_geqrf_graph, geqr2_qr, geqrf_qr
from repro.kernels.qr import extract_r
from repro.runtime.task import TaskKind
from tests.conftest import assert_lu_ok, make_rng


class TestNumericDrivers:
    @pytest.mark.parametrize("m,n", [(40, 40), (60, 25), (25, 60)])
    def test_getf2_lu(self, m, n):
        A0 = make_rng(m + n).standard_normal((m, n))
        lu, piv = getf2_lu(A0)
        assert_lu_ok(A0, lu, piv)

    @pytest.mark.parametrize("panel", ["getf2", "rgetf2"])
    def test_getrf_lu(self, panel):
        A0 = make_rng(3).standard_normal((80, 50))
        lu, piv = getrf_lu(A0, b=16, panel=panel)
        assert_lu_ok(A0, lu, piv)

    def test_geqr2_qr(self):
        A0 = make_rng(4).standard_normal((50, 20))
        packed, tau = geqr2_qr(A0)
        R = extract_r(packed)
        np.testing.assert_allclose(np.abs(R), np.abs(np.linalg.qr(A0)[1]), rtol=1e-9, atol=1e-11)

    def test_geqrf_qr(self):
        A0 = make_rng(5).standard_normal((60, 30))
        packed, Ts = geqrf_qr(A0, b=10)
        R = np.triu(packed[:30])
        np.testing.assert_allclose(np.abs(R), np.abs(np.linalg.qr(A0)[1]), rtol=1e-9, atol=1e-11)
        assert len(Ts) == 3

    def test_inputs_preserved(self):
        A0 = make_rng(6).standard_normal((30, 30))
        A = A0.copy()
        getf2_lu(A)
        getrf_lu(A)
        geqr2_qr(A)
        geqrf_qr(A)
        np.testing.assert_array_equal(A, A0)


class TestGraphs:
    def test_getf2_graph_single_task(self):
        g = build_getf2_graph(100000, 100)
        assert len(g) == 1
        assert g.tasks[0].kind is TaskKind.P
        assert g.tasks[0].cost.kernel == "getf2"

    def test_geqr2_graph_single_task(self):
        g = build_geqr2_graph(100000, 100)
        assert len(g) == 1

    def test_getrf_graph_valid(self):
        g = build_getrf_graph(2000, 1000, b=100)
        g.validate()
        assert g.count_by_kind()["P"] == 10

    def test_getrf_fork_join_barriers(self):
        """With fork-join, panel K+1 depends on every task of iteration K."""
        g = build_getrf_graph(600, 400, b=100, row_chunks=2, fork_join=True)
        panels = [t.tid for t in g.tasks if t.kind is TaskKind.P]
        for p in panels[1:]:
            K = g.tasks[p].iteration
            prev = [t.tid for t in g.tasks if t.iteration == K - 1 and t.tid != p]
            assert set(prev) <= set(g.preds[p])

    def test_getrf_no_fork_join_overlaps(self):
        g = build_getrf_graph(600, 400, b=100, row_chunks=2, fork_join=False)
        panels = [t.tid for t in g.tasks if t.kind is TaskKind.P]
        p1 = panels[1]
        preds = set(g.preds[p1])
        all_iter0 = {t.tid for t in g.tasks if t.iteration == 0 and t.tid != p1}
        assert not all_iter0 <= preds  # only data deps, not a barrier

    def test_getrf_flops_match_formula(self):
        from repro.analysis.flops import lu_flops

        m, n = 3000, 1500
        g = build_getrf_graph(m, n, b=100)
        base = lu_flops(m, n)
        assert 0.9 * base <= g.total_flops() <= 1.2 * base

    def test_geqrf_graph_valid_and_updates_full_height(self):
        g = build_geqrf_graph(2000, 600, b=100)
        g.validate()
        s_tasks = [t for t in g.tasks if t.kind is TaskKind.S]
        # QR updates cannot be row-chunked: one task per trailing column.
        for t in s_tasks:
            assert t.cost.m >= 2000 - 600  # full active height

    def test_geqrf_flops_match_formula(self):
        from repro.analysis.flops import qr_flops

        m, n = 3000, 900
        g = build_geqrf_graph(m, n, b=100)
        base = qr_flops(m, n)
        assert 0.9 * base <= g.total_flops() <= 2.5 * base

    def test_library_tag_propagates(self):
        g = build_getrf_graph(500, 300, b=100, library="acml")
        assert all(t.cost.library == "acml" for t in g.tasks)
