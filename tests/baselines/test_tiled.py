"""Tests for the PLASMA-style tiled LU/QR baselines."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.errors import growth_factor
from repro.baselines.tiled_lu import build_tiled_lu_graph, tiled_lu
from repro.baselines.tiled_qr import build_tiled_qr_graph, tiled_qr
from repro.runtime.task import TaskKind
from tests.conftest import make_rng


class TestTiledLU:
    @pytest.mark.parametrize("n,nb", [(64, 16), (120, 32), (96, 96), (130, 40), (200, 33)])
    def test_solve(self, n, nb):
        A0 = make_rng(n + nb).standard_normal((n, n))
        f = tiled_lu(A0, nb=nb)
        x0 = make_rng(1).standard_normal(n)
        x = f.solve(A0 @ x0)
        assert np.linalg.norm(x - x0) / np.linalg.norm(x0) < 1e-9

    def test_multiple_rhs(self):
        A0 = make_rng(2).standard_normal((80, 80))
        f = tiled_lu(A0, nb=20)
        X0 = make_rng(3).standard_normal((80, 4))
        X = f.solve(A0 @ X0)
        assert np.linalg.norm(X - X0) < 1e-8

    def test_tall_matrix_forward_apply(self):
        A0 = make_rng(4).standard_normal((150, 60))
        f = tiled_lu(A0, nb=25)
        # U is upper trapezoidal; forward elimination zeroes below it.
        y = f.forward_apply(A0)
        np.testing.assert_allclose(np.tril(y[:60], -1), 0.0, atol=1e-9)
        np.testing.assert_allclose(y[60:], 0.0, atol=1e-9)

    def test_wide_rejected(self):
        with pytest.raises(ValueError, match="m >= n"):
            tiled_lu(np.zeros((5, 9)))

    def test_solve_rejects_rectangular(self):
        f = tiled_lu(make_rng(5).standard_normal((60, 30)), nb=15)
        with pytest.raises(ValueError):
            f.solve(np.ones(60))

    def test_single_tile_equals_gepp(self):
        A0 = make_rng(6).standard_normal((40, 40))
        f = tiled_lu(A0, nb=40)
        lu_ref, piv_ref = scipy.linalg.lu_factor(A0)
        np.testing.assert_array_equal(f.piv[0], piv_ref)
        np.testing.assert_allclose(np.triu(f.packed), np.triu(lu_ref), rtol=1e-10, atol=1e-12)

    def test_growth_worse_than_gepp(self):
        """Incremental pivoting's growth increases with the tile count."""
        g_inc, g_ref = 0.0, 0.0
        for seed in range(4):
            A0 = make_rng(seed).standard_normal((192, 192))
            f = tiled_lu(A0, nb=16)  # many tiles
            g_inc += growth_factor(A0, f.U)
            _, _, U = scipy.linalg.lu(A0)
            g_ref += growth_factor(A0, U)
        assert g_inc > 1.2 * g_ref

    def test_input_preserved(self):
        A0 = make_rng(7).standard_normal((50, 50))
        A = A0.copy()
        tiled_lu(A, nb=25)
        np.testing.assert_array_equal(A, A0)


class TestTiledQR:
    @pytest.mark.parametrize("m,n,nb", [(64, 64, 16), (120, 50, 32), (200, 80, 25), (250, 100, 33)])
    def test_factorization(self, m, n, nb):
        A0 = make_rng(m + n + nb).standard_normal((m, n))
        f = tiled_qr(A0, nb=nb)
        Q = f.q_explicit()
        assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-12
        assert np.linalg.norm(Q.T @ Q - np.eye(min(m, n))) < 1e-11

    def test_apply_roundtrip(self):
        A0 = make_rng(8).standard_normal((90, 40))
        f = tiled_qr(A0, nb=20)
        C = make_rng(9).standard_normal((90, 3))
        np.testing.assert_allclose(f.apply_q(f.apply_qt(C)), C, atol=1e-11)

    def test_least_squares(self):
        A0 = make_rng(10).standard_normal((150, 50))
        x0 = make_rng(11).standard_normal(50)
        f = tiled_qr(A0, nb=25)
        x = f.solve_ls(A0 @ x0)
        assert np.linalg.norm(x - x0) < 1e-9

    def test_wide_rejected(self):
        with pytest.raises(ValueError, match="m >= n"):
            tiled_qr(np.zeros((4, 8)))

    def test_single_tile_matches_geqr2(self):
        A0 = make_rng(12).standard_normal((30, 30))
        f = tiled_qr(A0, nb=30)
        np.testing.assert_allclose(np.abs(f.R), np.abs(np.linalg.qr(A0)[1]), rtol=1e-9, atol=1e-11)


class TestTiledGraphs:
    def test_lu_graph_valid_and_task_count(self):
        Mt, Nt, nb = 6, 4, 100
        g = build_tiled_lu_graph(Mt * nb, Nt * nb, nb=nb)
        g.validate()
        expected = sum(
            1 + (Nt - 1 - k) + (Mt - 1 - k) * (1 + (Nt - 1 - k)) for k in range(Nt)
        )
        assert len(g) == expected

    def test_qr_graph_valid_and_task_count(self):
        Mt, Nt, nb = 5, 3, 100
        g = build_tiled_qr_graph(Mt * nb, Nt * nb, nb=nb)
        g.validate()
        expected = sum(
            1 + (Nt - 1 - k) + (Mt - 1 - k) * (1 + (Nt - 1 - k)) for k in range(Nt)
        )
        assert len(g) == expected

    def test_tstrf_chain_is_serial(self):
        """tstrf tasks down one tile column form a dependency chain."""
        g = build_tiled_lu_graph(600, 200, nb=100)
        tstrfs = [t.tid for t in g.tasks if t.name.startswith("tstrf") and t.name.endswith(",0]")]
        order = {t: i for i, t in enumerate(g.topological_order())}
        # Transitively ordered: each next tstrf is reachable from the previous.
        for a, b in zip(tstrfs, tstrfs[1:]):
            assert order[a] < order[b]
            assert a in g.preds[b] or any(p >= a for p in g.preds[b])

    def test_lu_graph_flops_close_to_formula(self):
        from repro.analysis.flops import lu_flops

        m = n = 2000
        g = build_tiled_lu_graph(m, n, nb=200)
        base = lu_flops(m, n)
        # Incremental pivoting does extra work updating U_kk and in ssssm.
        assert base * 0.9 <= g.total_flops() <= base * 2.6

    def test_qr_graph_flops(self):
        from repro.analysis.flops import qr_flops

        m = n = 2000
        g = build_tiled_qr_graph(m, n, nb=200)
        base = qr_flops(m, n)
        assert base * 0.9 <= g.total_flops() <= base * 2.2

    def test_library_tag(self):
        g = build_tiled_lu_graph(400, 400, nb=200, library="plasma")
        assert all(t.cost.library == "plasma" for t in g.tasks)


@given(st.integers(1, 6), st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_property_tiled_lu_solve(tiles, seed):
    rng = make_rng(seed)
    nb = int(rng.integers(4, 20))
    n = tiles * nb
    A0 = rng.standard_normal((n, n))
    f = tiled_lu(A0, nb=nb)
    x0 = rng.standard_normal(n)
    x = f.solve(A0 @ x0)
    assert np.linalg.norm(x - x0) / np.linalg.norm(x0) < 1e-7
