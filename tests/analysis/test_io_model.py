"""Tests for the sequential memory-hierarchy traffic model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.io_model import (
    blocked_lu_io,
    lu_io_lower_bound,
    panel_io_ca_flat,
    panel_io_classic,
    panel_io_reduction_factor,
)


class TestPanelTraffic:
    def test_cached_panel_equal(self):
        """When the panel fits in fast memory both strategies stream once."""
        assert panel_io_classic(100, 10, fast_words=10_000) == panel_io_ca_flat(
            100, 10, fast_words=10_000
        )

    def test_streaming_classic_quadratic_in_b(self):
        w = 1000
        t1 = panel_io_classic(100_000, 32, w)
        t2 = panel_io_classic(100_000, 64, w)
        assert t2 / t1 == pytest.approx(4.0, rel=0.15)

    def test_streaming_ca_linear_in_b(self):
        w = 1000
        t1 = panel_io_ca_flat(100_000, 32, w)
        t2 = panel_io_ca_flat(100_000, 64, w)
        assert t2 / t1 == pytest.approx(2.0, rel=0.5)

    def test_reduction_factor_order_b(self):
        """The §II sequential claim: CA saves a ~b/4 factor on panels."""
        b = 128
        f = panel_io_reduction_factor(1_000_000, b, fast_words=50_000)
        assert b / 10 < f < b

    def test_reduction_grows_with_b(self):
        f64 = panel_io_reduction_factor(500_000, 64, 50_000)
        f256 = panel_io_reduction_factor(500_000, 256, 50_000)
        assert f256 > f64


class TestFullFactorization:
    def test_ca_never_more_traffic(self):
        for (m, n, b, w) in [(50_000, 2000, 100, 100_000), (10_000, 10_000, 100, 100_000)]:
            ca = blocked_lu_io(m, n, b, w, ca_panel=True)
            classic = blocked_lu_io(m, n, b, w, ca_panel=False)
            assert ca <= classic

    def test_tall_skinny_dominated_by_panel_savings(self):
        """On tall-skinny matrices the panel dominates, so CA wins big."""
        m, n, b, w = 1_000_000, 200, 100, 100_000
        ratio = blocked_lu_io(m, n, b, w, False) / blocked_lu_io(m, n, b, w, True)
        assert ratio > 5.0

    def test_square_gap_small(self):
        """On large square matrices the update traffic dominates both."""
        m = n = 10_000
        ratio = blocked_lu_io(m, n, 100, 100_000, False) / blocked_lu_io(m, n, 100, 100_000, True)
        assert 1.0 <= ratio < 2.0

    def test_above_lower_bound(self):
        m, n, w = 20_000, 2000, 100_000
        lb = lu_io_lower_bound(m, n, w)
        assert blocked_lu_io(m, n, 100, w, ca_panel=True) > 0.1 * lb


@given(st.integers(1, 200), st.integers(1_000, 10_000_000), st.integers(500, 1_000_000))
@settings(max_examples=60, deadline=None)
def test_property_ca_panel_never_worse(b, m, w):
    if m < b:
        m = b
    assert panel_io_ca_flat(m, b, w) <= panel_io_classic(m, b, w) + 2.0 * m * b
