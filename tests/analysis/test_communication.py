"""Tests for the closed-form communication analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.communication import (
    factorization_messages_ca,
    factorization_messages_classic,
    panel_messages_ca,
    panel_messages_classic,
    panel_words_ca,
    sync_reduction_factor,
)
from repro.core.trees import TreeKind


def test_classic_panel_one_sync_per_column():
    assert panel_messages_classic(100, 8) == 100 * 3
    assert panel_messages_classic(100, 1) == 0


def test_ca_panel_log_syncs():
    assert panel_messages_ca(8, TreeKind.BINARY) == 3
    assert panel_messages_ca(16, TreeKind.BINARY) == 4
    assert panel_messages_ca(8, TreeKind.FLAT) == 1
    assert panel_messages_ca(1) == 0


def test_words_independent_of_tree_shape():
    """Any tree performs exactly Tr-1 merges of b x b candidates."""
    for tree in TreeKind:
        assert panel_words_ca(50, 8, tree) == 7 * 2500


def test_sync_reduction_is_b_for_binary():
    """The paper's headline claim, exactly: b-fold fewer synchronizations."""
    assert sync_reduction_factor(100, 8, TreeKind.BINARY) == 100.0
    assert sync_reduction_factor(64, 16, TreeKind.BINARY) == 64.0


def test_flat_tree_reduces_even_more():
    assert sync_reduction_factor(100, 8, TreeKind.FLAT) > sync_reduction_factor(
        100, 8, TreeKind.BINARY
    )


def test_factorization_totals_scale_with_panels():
    assert factorization_messages_classic(1000, 100, 8) == 10 * 300
    assert factorization_messages_ca(1000, 100, 8) == 10 * 3


def test_single_participant_no_messages():
    assert sync_reduction_factor(100, 1) == 1.0


def test_matches_structural_panel_depth():
    """The closed form equals the measured dependency depth of the TSLU
    task graph (minus leaves and finalize)."""
    from tests.integration.test_sync_counts import panel_depth

    for tr in (2, 4, 8):
        depth = panel_depth(6400, 100, tr, TreeKind.BINARY)
        assert depth - 2 == panel_messages_ca(tr, TreeKind.BINARY)
        depth_flat = panel_depth(6400, 100, tr, TreeKind.FLAT)
        assert depth_flat - 2 == panel_messages_ca(tr, TreeKind.FLAT)


@given(st.integers(1, 512), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_property_ca_never_worse(b, tr):
    assert panel_messages_ca(tr, TreeKind.BINARY) <= max(1, panel_messages_classic(b, tr))
    if tr > 1 and b > 1:
        assert sync_reduction_factor(b, tr) == b
