"""Tests for flop formulas (vs runtime counters) and error metrics."""

import numpy as np
import pytest

from repro.analysis import flops as F
from repro.analysis.errors import (
    growth_factor,
    lu_backward_error,
    orthogonality_error,
    qr_backward_error,
    residual_norm,
)
from repro.counters import counting
from repro.kernels.blas import gemm, trsm_llnu, trsm_runn
from repro.kernels.lu import getf2, piv_to_perm
from repro.kernels.qr import geqr2, geqr3
from repro.kernels.structured import ssssm_apply, tpmqrt_left_t, tpqrt, tstrf
from tests.conftest import make_rng


class TestFlopFormulasMatchCounters:
    def test_gemm(self):
        m, n, k = 13, 9, 7
        with counting() as c:
            gemm(np.zeros((m, n)), np.zeros((m, k)), np.zeros((k, n)))
        assert c.flops == F.gemm_flops(m, n, k)

    def test_trsm_left(self):
        k, n = 10, 6
        with counting() as c:
            trsm_llnu(np.eye(k), np.ones((k, n)))
        assert c.flops == F.trsm_left_flops(k, n)

    def test_trsm_right(self):
        m, k = 12, 5
        with counting() as c:
            trsm_runn(np.eye(k), np.ones((m, k)))
        assert c.flops == F.trsm_right_flops(m, k)

    def test_lu_panel(self):
        m, n = 120, 24
        A = make_rng(0).standard_normal((m, n))
        with counting() as c:
            getf2(A)
        expected = F.lu_panel_flops(m, n)
        assert abs(c.flops - expected) / expected < 0.1

    def test_qr_panel(self):
        m, n = 150, 30
        A = make_rng(1).standard_normal((m, n))
        with counting() as c:
            geqr2(A)
        expected = F.qr_panel_flops(m, n)
        assert abs(c.flops - expected) / expected < 0.15

    def test_geqr3_within_factor_of_minimal(self):
        m, n = 120, 40
        A = make_rng(2).standard_normal((m, n))
        with counting() as c:
            geqr3(A)
        expected = F.qr_panel_flops(m, n)
        assert expected * 0.8 <= c.flops <= expected * 2.5

    def test_tpqrt_ts(self):
        b, m = 16, 60
        R = np.triu(make_rng(3).standard_normal((b, b)))
        B = make_rng(4).standard_normal((m, b))
        with counting() as c:
            tpqrt(R, B)
        expected = F.tpqrt_ts_flops(m, b)
        assert abs(c.flops - expected) / expected < 0.35

    def test_tpqrt_tt(self):
        b = 20
        R1 = np.triu(make_rng(5).standard_normal((b, b)))
        R2 = np.triu(make_rng(6).standard_normal((b, b)))
        with counting() as c:
            tpqrt(R1, R2, bottom_triangular=True)
        expected = F.tpqrt_tt_flops(b)
        assert abs(c.flops - expected) / expected < 0.5

    def test_tpmqrt(self):
        b, m, n = 10, 30, 8
        Vb = make_rng(7).standard_normal((m, b))
        T = np.triu(make_rng(8).standard_normal((b, b)))
        with counting() as c:
            tpmqrt_left_t(Vb, T, np.zeros((b, n)), np.zeros((m, n)))
        expected = F.tpmqrt_flops(m, n, b)
        assert abs(c.flops - expected) / expected < 0.2

    def test_tstrf_and_ssssm(self):
        b, m, n = 12, 20, 9
        U = np.triu(make_rng(9).standard_normal((b, b)))
        A = make_rng(10).standard_normal((m, b))
        with counting() as c:
            ops = tstrf(U, A)
        assert abs(c.flops - F.tstrf_flops(m, b)) / F.tstrf_flops(m, b) < 0.3
        with counting() as c:
            ssssm_apply(ops, np.zeros((b, n)), np.zeros((m, n)))
        assert c.flops == F.ssssm_flops(m, n, b)

    def test_lu_flops_orientation(self):
        assert F.lu_flops(100, 100) == pytest.approx(2.0 * 100**3 / 3.0, rel=0.01)
        assert F.lu_flops(200, 50) == F.lu_flops(200, 50)
        assert F.lu_flops(50, 200) == F.lu_flops(200, 50)  # symmetric convention

    def test_qr_flops_square(self):
        n = 64
        assert F.qr_flops(n, n) == pytest.approx(4.0 * n**3 / 3.0, rel=0.01)

    def test_tslu_extra_flops_positive_and_ordered(self):
        """More leaves => more redundant work; flat == binary merge total."""
        e2 = F.tslu_extra_flops(10000, 100, 2)
        e8 = F.tslu_extra_flops(10000, 100, 8)
        assert 0 < e2 < e8


class TestErrorMetrics:
    def test_lu_backward_error_zero_for_exact(self):
        A = make_rng(0).standard_normal((20, 20))
        import scipy.linalg

        P, L, U = scipy.linalg.lu(A)
        perm = np.argmax(P.T, axis=1)
        assert lu_backward_error(A, perm, L, U) < 1e-14

    def test_qr_backward_error(self):
        A = make_rng(1).standard_normal((30, 10))
        Q, R = np.linalg.qr(A)
        assert qr_backward_error(A, Q, R) < 1e-14
        assert qr_backward_error(A, Q, R * 1.5) > 0.1

    def test_orthogonality_error(self):
        Q, _ = np.linalg.qr(make_rng(2).standard_normal((20, 5)))
        assert orthogonality_error(Q) < 1e-14
        assert orthogonality_error(Q * 2.0) > 1.0

    def test_growth_factor(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        U = np.array([[8.0, 0.0], [0.0, 1.0]])
        assert growth_factor(A, U) == 2.0
        assert growth_factor(np.zeros((2, 2)), U) == 0.0

    def test_residual_norm(self):
        A = make_rng(3).standard_normal((10, 10))
        x = make_rng(4).standard_normal(10)
        assert residual_norm(A, x, A @ x) < 1e-14


class TestScheduleStats:
    def test_stats_from_simulated_run(self):
        from repro.analysis.schedule import schedule_stats
        from repro.core.calu import build_calu_graph
        from repro.core.layout import BlockLayout
        from repro.machine.presets import generic
        from repro.runtime.simulated import SimulatedExecutor

        mach = generic(4)
        graph, _ = build_calu_graph(BlockLayout(800, 400, 100), 4)
        trace = SimulatedExecutor(mach).run(graph)
        stats = schedule_stats(trace, graph, mach)
        assert stats.makespan > 0
        assert 0.0 <= stats.idle_fraction < 1.0
        assert stats.critical_path <= stats.makespan * (1 + 1e-9)
        assert 0.0 < stats.panel_fraction < 1.0
        assert stats.efficiency == pytest.approx(1 - stats.idle_fraction)
        assert stats.critical_path_slack >= 1.0 - 1e-9
        assert stats.n_tasks == len(graph.tasks)

    def test_stats_without_machine_uses_observed(self):
        from repro.analysis.schedule import schedule_stats
        from repro.machine.presets import generic
        from repro.runtime.graph import TaskGraph
        from repro.runtime.simulated import SimulatedExecutor
        from repro.runtime.task import Cost, TaskKind

        g = TaskGraph()
        a = g.add("a", TaskKind.P, Cost("gemm", 10, 10, 10, flops=1e7))
        g.add("b", TaskKind.S, Cost("gemm", 10, 10, 10, flops=1e7), deps=[a])
        trace = SimulatedExecutor(generic(2)).run(g)
        stats = schedule_stats(trace, g)
        assert stats.critical_path == pytest.approx(trace.makespan, rel=0.2)
