"""AdmissionQueue unit tests: bounded admission, shedding, deadlines, drain."""

import threading
import time

import pytest

from repro.resilience.recovery import RuntimeFailure
from repro.service.admission import AdmissionQueue, AdmissionRejected, DeadlineExceeded


class TestBasics:
    def test_acquire_release(self):
        q = AdmissionQueue(max_active=2, max_queue=0)
        q.try_acquire()
        q.try_acquire()
        q.release(0.01)
        q.try_acquire()
        snap = q.snapshot()
        assert snap["active"] == 2 and snap["admitted"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_active=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_queue=-1)

    def test_structured_exceptions_are_runtime_failures(self):
        # The service contract promises structured failures; both exits
        # must be catchable under the repo-wide RuntimeFailure umbrella.
        assert issubclass(AdmissionRejected, RuntimeFailure)
        assert issubclass(DeadlineExceeded, RuntimeFailure)
        assert AdmissionRejected("x").failure_kind == "admission"
        assert DeadlineExceeded("x").failure_kind == "deadline"


class TestShedding:
    def test_sheds_fast_when_queue_full(self):
        q = AdmissionQueue(max_active=1, max_queue=0)
        q.try_acquire()
        t0 = time.monotonic()
        with pytest.raises(AdmissionRejected) as exc:
            q.try_acquire()
        # Fast fail: no waiting around.
        assert time.monotonic() - t0 < 0.1
        assert exc.value.active == 1
        assert q.snapshot()["shed"] == 1

    def test_rejection_carries_retry_after_hint(self):
        q = AdmissionQueue(max_active=1, max_queue=0)
        q.try_acquire()
        q.release(0.05)  # seed the service-time EMA
        q.try_acquire()
        with pytest.raises(AdmissionRejected) as exc:
            q.try_acquire()
        assert exc.value.retry_after_s == pytest.approx(0.05, rel=0.5)

    def test_queued_request_admitted_when_slot_frees(self):
        q = AdmissionQueue(max_active=1, max_queue=2)
        q.try_acquire()
        admitted = threading.Event()

        def waiter():
            q.try_acquire()
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        q.release()
        t.join(timeout=5)
        assert admitted.is_set()


class TestDeadlines:
    def test_deadline_while_queued(self):
        q = AdmissionQueue(max_active=1, max_queue=2)
        q.try_acquire()
        with pytest.raises(DeadlineExceeded) as exc:
            q.try_acquire(deadline=time.monotonic() + 0.05, deadline_s=0.05)
        assert exc.value.stage == "queued"

    def test_already_expired_deadline(self):
        q = AdmissionQueue(max_active=1, max_queue=2)
        q.try_acquire()
        with pytest.raises(DeadlineExceeded):
            q.try_acquire(deadline=time.monotonic() - 1.0, deadline_s=0.0)


class TestDrain:
    def test_close_rejects_new_and_wakes_queued(self):
        q = AdmissionQueue(max_active=1, max_queue=2)
        q.try_acquire()
        outcome = []

        def waiter():
            try:
                q.try_acquire()
                outcome.append("admitted")
            except AdmissionRejected:
                outcome.append("rejected")

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5)
        assert outcome == ["rejected"]
        with pytest.raises(AdmissionRejected):
            q.try_acquire()

    def test_wait_idle(self):
        q = AdmissionQueue(max_active=1, max_queue=0)
        q.try_acquire()
        assert not q.wait_idle(timeout=0.05)
        threading.Timer(0.05, q.release).start()
        assert q.wait_idle(timeout=5)
