"""FactorizationService integration tests.

Covers result parity with the direct drivers, plan-cache reuse,
concurrent clients on the shared pool, overload shedding, deadline
stages, circuit-breaker degradation/recovery, drain semantics and the
``repro.linalg`` entry points.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.core.calu import calu
from repro.runtime import sync
from tests.conftest import assert_lock_sanity, make_rng
from repro.core.trees import TreeKind
from repro.linalg import lstsq as linalg_lstsq
from repro.linalg import solve as linalg_solve
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RuntimeFailure
from repro.service import (
    AdmissionRejected,
    DeadlineExceeded,
    FactorizationService,
    ServiceConfig,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend tests require the fork start method",
)


def make_problem(rng, n=96, nrhs=None):
    A = rng.standard_normal((n, n)) + n * np.eye(n)
    rhs = rng.standard_normal(n if nrhs is None else (n, nrhs))
    return A, rhs


class TestParityThreaded:
    """Bitwise parity with the direct drivers on the threaded backend."""

    def test_solve_matches_direct(self):
        rng = make_rng(0)
        A, rhs = make_problem(rng)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x = svc.solve(A, rhs)
        assert np.array_equal(x, linalg_solve(A, rhs, cores=2))

    def test_factor_matches_direct_and_is_detached(self):
        rng = make_rng(1)
        A, _ = make_problem(rng)
        ref = calu(A, b=32, tr=32, tree=TreeKind.BINARY)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            f = svc.factor(A, b=32, tr=32, tree=TreeKind.BINARY)
            assert np.array_equal(f.lu, ref.lu)
            assert np.array_equal(f.piv, ref.piv)
            # Detached: a later request on the same shape must not be
            # able to mutate an already-returned factorization.
            lu_before = f.lu.copy()
            svc.factor(rng.standard_normal(A.shape) + A.shape[0] * np.eye(A.shape[0]))
            assert np.array_equal(f.lu, lu_before)

    def test_lstsq_matches_direct(self):
        rng = make_rng(2)
        A = rng.standard_normal((128, 48))
        rhs = rng.standard_normal(128)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x = svc.lstsq(A, rhs)
        assert np.array_equal(x, linalg_lstsq(A, rhs, cores=2))

    def test_solve_report_and_refinement_path(self):
        rng = make_rng(3)
        A, rhs = make_problem(rng, n=64)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x, rep = svc.solve(A, rhs, report=True)
        xd, repd = linalg_solve(A, rhs, cores=2, report=True)
        assert np.array_equal(x, xd)
        assert rep.residual == repd.residual
        assert rep.refine_steps == repd.refine_steps


@fork_only
class TestParityProcess:
    def test_solve_matches_direct_process(self):
        rng = make_rng(4)
        A, rhs = make_problem(rng)
        with FactorizationService(ServiceConfig(cores=2, backend="process")) as svc:
            x = svc.solve(A, rhs)
        assert np.array_equal(x, linalg_solve(A, rhs, cores=2, executor="process"))

    def test_lstsq_matches_direct_process(self):
        rng = make_rng(5)
        A = rng.standard_normal((128, 48))
        rhs = rng.standard_normal(128)
        with FactorizationService(ServiceConfig(cores=2, backend="process")) as svc:
            x = svc.lstsq(A, rhs)
        assert np.array_equal(x, linalg_lstsq(A, rhs, cores=2, executor="process"))


class TestPlanCache:
    def test_repeat_solves_hit_cache_and_are_deterministic(self):
        rng = make_rng(6)
        A, rhs = make_problem(rng)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x1 = svc.solve(A, rhs)
            x2 = svc.solve(A, rhs)
            stats = svc.stats()["plans"]
        assert np.array_equal(x1, x2)
        assert stats["builds"] == 1 and stats["hits"] == 1

    def test_distinct_shapes_get_distinct_plans(self):
        rng = make_rng(7)
        A1, r1 = make_problem(rng, n=64)
        A2, r2 = make_problem(rng, n=96)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            svc.solve(A1, r1)
            svc.solve(A2, r2)
            stats = svc.stats()["plans"]
        assert stats["builds"] == 2 and stats["cached"] == 2

    def test_cache_eviction_bounded_by_max_plans(self):
        rng = make_rng(8)
        cfg = ServiceConfig(cores=2, backend="threaded", max_plans=2)
        with FactorizationService(cfg) as svc:
            for n in (48, 64, 80, 96):
                A, rhs = make_problem(rng, n=n)
                svc.solve(A, rhs)
            stats = svc.stats()["plans"]
        assert stats["cached"] <= 2
        assert stats["builds"] == 4


class TestConcurrency:
    def test_concurrent_clients_all_correct(self):
        rng = make_rng(9)
        problems = [make_problem(rng, n=64) for _ in range(6)]
        refs = [linalg_solve(A, rhs, cores=2) for A, rhs in problems]
        results: list = [None] * len(problems)
        errors: list = []

        cfg = ServiceConfig(cores=2, backend="threaded", max_active=3, max_queue=16)
        # Run under the lock-witness sanitizer: six client threads over a
        # shared pool is the densest contention the threaded backend sees.
        with sync.witnessing() as w, FactorizationService(cfg) as svc:

            def client(i):
                try:
                    results[i] = svc.solve(*problems[i])
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(problems))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not errors
        for got, want in zip(results, refs):
            assert np.array_equal(got, want)
        assert_lock_sanity(w)


class TestOverload:
    def _slow_cfg(self, **kw):
        # Every panel task stalls, so each request takes >= stall_s.
        plan = dict(stall_rate={"P": 1.0}, stall_s=0.25)
        return ServiceConfig(
            cores=2,
            backend="threaded",
            fault_plan_factory=lambda: FaultPlan(seed=0, **plan),
            **kw,
        )

    def test_overload_sheds_fast_with_structured_rejection(self):
        rng = make_rng(10)
        A, rhs = make_problem(rng, n=64)
        cfg = self._slow_cfg(max_active=1, max_queue=0)
        outcomes: list = []
        lock = threading.Lock()
        with FactorizationService(cfg) as svc:

            def client():
                t0 = time.monotonic()
                try:
                    svc.solve(A, rhs)
                    with lock:
                        outcomes.append(("ok", time.monotonic() - t0))
                except AdmissionRejected as exc:
                    with lock:
                        outcomes.append(("shed", time.monotonic() - t0, exc))

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = svc.stats()["admission"]
        kinds = [o[0] for o in outcomes]
        assert len(outcomes) == 4  # nobody hung
        assert "ok" in kinds and "shed" in kinds
        assert stats["shed"] == kinds.count("shed")
        for o in outcomes:
            if o[0] == "shed":
                assert o[1] < 0.1  # fast fail, no queue camping
                assert o[2].retry_after_s >= 0.0
                assert o[2].failure_kind == "admission"

    def test_deadline_expires_while_queued(self):
        rng = make_rng(11)
        A, rhs = make_problem(rng, n=64)
        cfg = self._slow_cfg(max_active=1, max_queue=4)
        with FactorizationService(cfg) as svc:
            blocker = threading.Thread(target=lambda: svc.solve(A, rhs))
            blocker.start()
            time.sleep(0.05)  # let the blocker occupy the only slot
            with pytest.raises(DeadlineExceeded) as exc:
                svc.solve(A, rhs, deadline_s=0.1)
            blocker.join(timeout=120)
        assert exc.value.stage == "queued"

    def test_strict_deadline_post_run(self):
        rng = make_rng(12)
        A, rhs = make_problem(rng, n=48)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            with pytest.raises(DeadlineExceeded) as exc:
                svc.solve(A, rhs, deadline_s=1e-4)
        # A result computed after its deadline is still a failure
        # (strict semantics); which stage catches it depends on timing.
        assert exc.value.stage in ("queued", "plan", "run", "post-run")
        assert exc.value.failure_kind == "deadline"


@fork_only
class TestBreakerLifecycle:
    def test_trip_degrade_recover(self):
        rng = make_rng(13)
        A, rhs = make_problem(rng, n=64)
        ref = linalg_solve(A, rhs, cores=2)

        calls = {"n": 0}

        def factory():
            # The first two engine runs stall until the task watchdog
            # kills them; later runs (degraded + probe) are clean.
            calls["n"] += 1
            if calls["n"] <= 2:
                return FaultPlan(seed=0, stall_rate=1.0, stall_s=5.0)
            return None

        cfg = ServiceConfig(
            cores=2,
            backend="process",
            task_timeout_s=0.1,
            task_retries=0,
            max_attempts=1,
            breaker_threshold=2,
            breaker_window_s=30.0,
            breaker_open_s=0.2,
            fault_plan_factory=factory,
        )
        with FactorizationService(cfg) as svc:
            for _ in range(2):
                with pytest.raises(RuntimeFailure) as exc:
                    svc.solve(A, rhs)
                assert exc.value.failure_kind in ("timeout", "stall", "worker_death")
            assert svc.breaker.state == "open"

            # Degraded request: served by the threaded fallback, still
            # bitwise-correct (same plan, same schedule semantics).
            x = svc.solve(A, rhs)
            assert np.array_equal(x, ref)
            assert svc.breaker.state == "open"

            time.sleep(0.3)  # cool-down elapses -> next request probes
            x = svc.solve(A, rhs)
            assert np.array_equal(x, ref)
            assert svc.breaker.state == "closed"

            states = [(frm, to) for _, frm, to, _ in svc.breaker.transitions]
            assert states == [
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]


class TestDrain:
    def test_close_is_idempotent_and_rejects_new_work(self):
        rng = make_rng(14)
        A, rhs = make_problem(rng, n=48)
        svc = FactorizationService(ServiceConfig(cores=2, backend="threaded"))
        assert np.array_equal(svc.solve(A, rhs), linalg_solve(A, rhs, cores=2))
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(AdmissionRejected):
            svc.solve(A, rhs)

    def test_close_waits_for_inflight(self):
        rng = make_rng(15)
        A, rhs = make_problem(rng, n=64)
        plan = dict(stall_rate={"getf2_panel": 1.0}, stall_s=0.2)
        cfg = ServiceConfig(
            cores=2,
            backend="threaded",
            fault_plan_factory=lambda: FaultPlan(seed=0, **plan),
        )
        svc = FactorizationService(cfg)
        done = []
        t = threading.Thread(target=lambda: done.append(svc.solve(A, rhs)))
        t.start()
        time.sleep(0.05)
        svc.close()
        t.join(timeout=120)
        assert len(done) == 1 and done[0] is not None


class TestLinalgEntry:
    def test_solve_via_service_kwarg(self):
        rng = make_rng(16)
        A, rhs = make_problem(rng)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x = linalg_solve(A, rhs, service=svc)
            assert np.array_equal(x, svc.solve(A, rhs))

    def test_lstsq_via_service_kwarg(self):
        rng = make_rng(17)
        A = rng.standard_normal((96, 32))
        rhs = rng.standard_normal(96)
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            x = linalg_lstsq(A, rhs, service=svc)
            assert np.array_equal(x, svc.lstsq(A, rhs))

    def test_incompatible_kwargs_rejected(self):
        rng = make_rng(18)
        A, rhs = make_problem(rng, n=48)
        with pytest.raises(ValueError):
            linalg_solve(A, rhs, deadline_s=1.0)  # deadline needs a service
        with FactorizationService(ServiceConfig(cores=2, backend="threaded")) as svc:
            with pytest.raises(ValueError):
                linalg_solve(A, rhs, service=svc, executor="process")
            with pytest.raises(ValueError):
                linalg_lstsq(A, rhs[:48], service=svc, executor="process")


class TestExports:
    def test_top_level_exports(self):
        import repro

        for name in (
            "FactorizationService",
            "ServiceConfig",
            "AdmissionRejected",
            "DeadlineExceeded",
            "CircuitBreaker",
        ):
            assert hasattr(repro, name), name

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(cores=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_active=0)
        with pytest.raises(ValueError):
            ServiceConfig(backend="gpu")
