"""Service chaos soak: faults + worker kills under concurrent load.

The service contract under chaos: every request either returns a
**bitwise-correct** result (request-level retries reload the input and
rerun the whole plan, so partial state never leaks) or raises a
structured :class:`RuntimeFailure` subclass with a ``failure_kind`` —
and it never hangs.

Corruption faults are deliberately absent here: ABFT repair and
degraded pivoting change the pivot sequence, which would break the
bitwise assertions.  Those paths are covered by the resilience suite.

Long randomized variants are marked ``stress`` and excluded from the
default run (see pyproject addopts).
"""

import multiprocessing
import os
import random
import threading
import time

import numpy as np
import pytest

from repro.linalg import solve as linalg_solve
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RuntimeFailure
from repro.runtime import sync
from repro.service import FactorizationService, ServiceConfig
from tests.conftest import assert_lock_sanity, make_rng

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill chaos requires the fork start method",
)


def _problems(rng, shapes):
    out = []
    for n in shapes:
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        rhs = rng.standard_normal(n)
        out.append((A, rhs, linalg_solve(A, rhs, cores=2)))
    return out


def _soak(svc, problems, n_clients, n_requests, join_timeout):
    """Fire requests from concurrent clients; classify every outcome."""
    outcomes: list = []
    lock = threading.Lock()

    def client(cid):
        rnd = random.Random(cid)
        for _ in range(n_requests):
            A, rhs, ref = problems[rnd.randrange(len(problems))]
            try:
                x = svc.solve(A, rhs)
                ok = np.array_equal(x, ref)
                with lock:
                    outcomes.append(("ok" if ok else "WRONG", None))
            except RuntimeFailure as exc:
                with lock:
                    outcomes.append(("failed", exc.failure_kind))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=join_timeout)
    hung = [t for t in threads if t.is_alive()]
    return outcomes, hung


def _exercise_respawn_path(svc, problems):
    """Deterministically drive the dead-worker heal under the core lock.

    The random kill storm may never land a kill exactly where a dead
    worker is *discovered* while its per-core lock is held, yet that is
    the one runtime nesting (``process.core -> service.respawn``) the
    static lock-order graph predicts for this backend — so exercise it
    synchronously: spawn, kill, and heal one worker via the supervisor's
    own path, which takes the core lock and then consults the governor.
    """
    A, rhs, _ = problems[0]
    svc.solve(A, rhs)  # make sure at least one worker is spawned
    pool = svc._executor.pool
    live = [i for i, p in enumerate(pool._procs) if p is not None and p.is_alive()]
    core = live[0]
    os.kill(pool._procs[core].pid, 9)
    deadline = time.monotonic() + 10
    while pool._procs[core].is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    # The heal may be throttled while the kill storm's respawn window
    # drains, and the supervisor's own heartbeat may beat us to it —
    # either path performs the same core-lock -> governor nesting.
    healed = False
    while not healed and time.monotonic() < deadline:
        healed = bool(pool.ensure_alive(core) or pool.worker_alive(core))
        if not healed:
            time.sleep(0.05)
    assert healed, "freshly killed worker was never healed"


def _assert_contract(outcomes, hung, expected_total):
    assert not hung, "chaos soak hung: requests neither returned nor failed"
    assert len(outcomes) == expected_total
    wrong = [o for o in outcomes if o[0] == "WRONG"]
    assert not wrong, f"{len(wrong)} silently wrong results under chaos"
    for status, kind in outcomes:
        if status == "failed":
            assert kind, "unstructured failure escaped the service"
    # The soak must not degenerate into all-shed: some work got through.
    assert any(status == "ok" for status, _ in outcomes)


class TestChaosThreaded:
    def test_fault_soak_threaded(self):
        rng = make_rng(100)
        problems = _problems(rng, [48, 64])
        # Transient raise + stall faults on panel and update tasks; the
        # engine's task retries absorb most, request retries the rest.
        factory = lambda: FaultPlan(  # noqa: E731
            seed=7, raise_rate={"P": 0.15, "S": 0.1}, stall_rate=0.05, stall_s=0.01
        )
        cfg = ServiceConfig(
            cores=2,
            backend="threaded",
            max_active=2,
            max_queue=8,
            max_attempts=3,
            fault_plan_factory=factory,
        )
        # The soak doubles as a lock-witness run: every primitive the
        # service and its engines create inside the window is tracked.
        with sync.witnessing() as w:
            with FactorizationService(cfg) as svc:
                outcomes, hung = _soak(
                    svc, problems, n_clients=4, n_requests=3, join_timeout=240
                )
        _assert_contract(outcomes, hung, expected_total=12)
        assert_lock_sanity(w)


@fork_only
class TestChaosProcess:
    def _run(self, n_clients, n_requests, kill_interval, duration_cap):
        rng = make_rng(101)
        problems = _problems(rng, [48, 64])
        factory = lambda: FaultPlan(  # noqa: E731
            seed=11, raise_rate={"S": 0.05}, stall_rate=0.02, stall_s=0.01
        )
        cfg = ServiceConfig(
            cores=2,
            backend="process",
            max_active=2,
            max_queue=8,
            max_attempts=3,
            breaker_threshold=5,
            breaker_open_s=0.2,
            fault_plan_factory=factory,
        )
        with sync.witnessing() as witness, FactorizationService(cfg) as svc:
            stop = threading.Event()

            def killer():
                # Periodically SIGKILL a live worker out from under the
                # pool; supervision + request retries must absorb it.
                rnd = random.Random(0)
                while not stop.wait(kill_interval):
                    pool = svc._executor.pool
                    live = [
                        p for p in pool._procs if p is not None and p.is_alive()
                    ]
                    if live:
                        try:
                            os.kill(rnd.choice(live).pid, 9)
                        except (ProcessLookupError, TypeError):
                            pass

            kt = threading.Thread(target=killer)
            kt.start()
            try:
                outcomes, hung = _soak(
                    svc, problems, n_clients, n_requests, join_timeout=duration_cap
                )
            finally:
                stop.set()
                kt.join(timeout=10)
            _exercise_respawn_path(svc, problems)
            stats = svc.stats()
        _assert_contract(outcomes, hung, expected_total=n_clients * n_requests)
        # Holding the per-core pipe lock across the worker round-trip is
        # this backend's design (see the lockcheck suppression file); any
        # other lock spanning IPC, or any acquisition order the static
        # graph does not predict, is a real finding.
        assert_lock_sanity(witness, allowed_roundtrip=("process.core",))
        return outcomes, stats

    def test_worker_kill_soak(self):
        self._run(n_clients=3, n_requests=3, kill_interval=0.15, duration_cap=240)

    @pytest.mark.stress
    def test_worker_kill_soak_long(self):
        outcomes, stats = self._run(
            n_clients=6, n_requests=8, kill_interval=0.1, duration_cap=600
        )
        # A long soak under a kill storm must actually exercise the
        # supervision machinery, not merely survive a quiet run.
        assert stats["pool"]["deaths"] >= 1 or all(
            s == "ok" for s, _ in outcomes
        )
