"""Pool supervision tests: respawn throttling and heartbeat healing."""

import multiprocessing
import os
import time

import pytest

from repro.resilience.recovery import RuntimeFailure
from repro.service.supervisor import PoolSupervisor, RespawnGovernor

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-pool tests require the fork start method",
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestRespawnGovernor:
    def test_grants_within_budget(self):
        g = RespawnGovernor(max_respawns=3, window_s=1.0, clock=FakeClock())
        assert all(g.allow_respawn(0) for _ in range(3))
        assert not g.allow_respawn(0)
        snap = g.snapshot()
        assert snap["granted"] == 3 and snap["denied"] == 1

    def test_window_slides(self):
        clock = FakeClock()
        g = RespawnGovernor(max_respawns=1, window_s=1.0, clock=clock)
        assert g.allow_respawn(0)
        assert not g.allow_respawn(1)
        clock.t = 2.0
        assert g.allow_respawn(1)

    def test_denials_are_free(self):
        # A denial must not extend the throttle window.
        clock = FakeClock()
        g = RespawnGovernor(max_respawns=1, window_s=1.0, clock=clock)
        assert g.allow_respawn(0)
        for _ in range(10):
            assert not g.allow_respawn(0)
        clock.t = 1.5
        assert g.allow_respawn(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RespawnGovernor(max_respawns=0)


@fork_only
class TestPoolIntegration:
    def _pool(self, **kw):
        from repro.runtime.process import _WorkerPool

        return _WorkerPool(2, **kw)

    def test_liveness_lazy_then_alive(self):
        pool = self._pool()
        try:
            assert pool.liveness() == [None, None]
            pool._ensure(0)
            assert pool.worker_alive(0) is True
            assert pool.worker_alive(1) is None
        finally:
            pool.close()

    def test_ensure_alive_heals_killed_idle_worker(self):
        pool = self._pool()
        try:
            pool._ensure(0)
            pid = pool._procs[0].pid
            os.kill(pid, 9)
            pool._procs[0].join(timeout=5)
            assert pool.worker_alive(0) is False
            assert pool.ensure_alive(0)
            assert pool.worker_alive(0) is True
            assert pool._procs[0].pid != pid
            assert pool.respawns == 1 and pool.deaths == 1
        finally:
            pool.close()

    def test_ensure_alive_skips_lazy_and_live(self):
        pool = self._pool()
        try:
            assert not pool.ensure_alive(0)  # never spawned: stays lazy
            pool._ensure(0)
            assert not pool.ensure_alive(0)  # alive: nothing to do
        finally:
            pool.close()

    def test_governor_throttles_respawn(self):
        clock = FakeClock()
        governor = RespawnGovernor(max_respawns=1, window_s=10.0, clock=clock)
        pool = self._pool(respawn_governor=governor)
        try:
            pool._ensure(0)
            os.kill(pool._procs[0].pid, 9)
            pool._procs[0].join(timeout=5)
            assert pool.ensure_alive(0)  # first respawn granted
            os.kill(pool._procs[0].pid, 9)
            pool._procs[0].join(timeout=5)
            assert not pool.ensure_alive(0)  # throttled
            assert pool.worker_alive(0) is False
        finally:
            pool.close()

    def test_throttled_death_surfaces_in_failure_message(self):
        clock = FakeClock()
        governor = RespawnGovernor(max_respawns=1, window_s=10.0, clock=clock)
        pool = self._pool(respawn_governor=governor)
        governor.allow_respawn(99)  # burn the budget
        try:
            pool._ensure(0)
            os.kill(pool._procs[0].pid, 9)
            pool._procs[0].join(timeout=5)
            with pytest.raises(RuntimeFailure) as exc:
                pool.run(0, ("getf2_panel", {}))
            assert exc.value.failure_kind == "worker_death"
            assert "respawn throttled" in str(exc.value)
            assert pool.worker_alive(0) is False  # stayed down
        finally:
            pool.close()

    def test_supervisor_heals_in_background(self):
        pool = self._pool()
        sup = PoolSupervisor(pool, heartbeat_s=0.05)
        try:
            pool._ensure(1)
            os.kill(pool._procs[1].pid, 9)
            pool._procs[1].join(timeout=5)
            sup.start()
            deadline = time.monotonic() + 5
            while pool.worker_alive(1) is not True and time.monotonic() < deadline:
                time.sleep(0.02)
            assert pool.worker_alive(1) is True
            assert sup.healed >= 1 and sup.heartbeats >= 1
        finally:
            sup.stop()
            pool.close()

    def test_supervisor_beat_is_safe_on_closed_pool(self):
        pool = self._pool()
        sup = PoolSupervisor(pool, heartbeat_s=0.05)
        pool.close()
        sup.beat()  # must not raise

    def test_supervisor_validation(self):
        with pytest.raises(ValueError):
            PoolSupervisor(object(), heartbeat_s=0.0)
