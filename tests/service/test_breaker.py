"""CircuitBreaker unit tests with a fake clock (no sleeping)."""

import pytest

from repro.service.breaker import TRIP_KINDS, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make(threshold=3, window=10.0, open_s=1.0, probes=1):
    clock = FakeClock()
    cb = CircuitBreaker(
        failure_threshold=threshold,
        window_s=window,
        open_s=open_s,
        probe_successes=probes,
        clock=clock,
    )
    return cb, clock


def fail(cb, kind="worker_death"):
    mode = cb.acquire()
    cb.record(mode, ok=False, kind=kind)
    return mode


class TestTripping:
    def test_stays_closed_below_threshold(self):
        cb, _ = make(threshold=3)
        fail(cb)
        fail(cb)
        assert cb.state == "closed"
        assert cb.acquire() == "primary"
        cb.record("primary", ok=True)

    def test_trips_at_threshold(self):
        cb, _ = make(threshold=3)
        for _ in range(3):
            fail(cb)
        assert cb.state == "open"
        assert cb.acquire() == "degraded"
        cb.record("degraded", ok=True)

    def test_window_slides(self):
        cb, clock = make(threshold=2, window=1.0)
        fail(cb)
        clock.advance(2.0)  # first failure ages out of the window
        fail(cb)
        assert cb.state == "closed"

    def test_every_trip_kind_trips(self):
        for kind in TRIP_KINDS:
            cb, _ = make(threshold=1)
            fail(cb, kind=kind)
            assert cb.state == "open", kind

    def test_request_level_failures_do_not_trip(self):
        cb, _ = make(threshold=1)
        fail(cb, kind="task_error")
        fail(cb, kind="health")
        fail(cb, kind="admission")
        assert cb.state == "closed"

    def test_success_does_not_count(self):
        cb, _ = make(threshold=2)
        fail(cb)
        cb.record(cb.acquire(), ok=True)
        fail(cb)
        # Two failures within the window: successes don't reset the
        # sliding window (they are not a health certificate under storm).
        assert cb.state == "open"


class TestRecovery:
    def _trip(self, cb):
        fail(cb)
        assert cb.state == "open"

    def test_probe_after_cooldown(self):
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        assert cb.acquire() == "degraded"
        cb.record("degraded", ok=True)
        clock.advance(1.5)
        assert cb.acquire() == "probe"
        assert cb.state == "half_open"

    def test_single_probe_in_flight(self):
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        clock.advance(1.5)
        assert cb.acquire() == "probe"
        # The probe slot is taken; everyone else still degrades.
        assert cb.acquire() == "degraded"
        cb.record("degraded", ok=True)

    def test_probe_success_recloses(self):
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        clock.advance(1.5)
        mode = cb.acquire()
        cb.record(mode, ok=True)
        assert cb.state == "closed"
        assert cb.acquire() == "primary"
        cb.record("primary", ok=True)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        clock.advance(1.5)
        mode = cb.acquire()
        cb.record(mode, ok=False, kind="timeout")
        assert cb.state == "open"
        # Cool-down restarted: still degraded until another open_s.
        clock.advance(0.5)
        assert cb.acquire() == "degraded"
        cb.record("degraded", ok=True)
        clock.advance(0.6)
        assert cb.acquire() == "probe"

    def test_probe_request_level_failure_keeps_probing(self):
        # A probe that fails with the request's own error (bad matrix)
        # says nothing about the pool: stay half-open, probe again.
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        clock.advance(1.5)
        mode = cb.acquire()
        cb.record(mode, ok=False, kind="task_error")
        assert cb.state == "half_open"
        assert cb.acquire() == "probe"

    def test_multi_probe_reclose(self):
        cb, clock = make(threshold=1, open_s=1.0, probes=2)
        self._trip(cb)
        clock.advance(1.5)
        cb.record(cb.acquire(), ok=True)  # probe 1
        assert cb.state == "half_open"
        cb.record(cb.acquire(), ok=True)  # probe 2
        assert cb.state == "closed"

    def test_transitions_logged(self):
        cb, clock = make(threshold=1, open_s=1.0)
        self._trip(cb)
        clock.advance(1.5)
        cb.record(cb.acquire(), ok=True)
        states = [(frm, to) for _, frm, to, _ in cb.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_successes=0)
