"""Unit and property tests for the Householder QR kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters import counting
from repro.kernels.qr import (
    apply_wy_q,
    apply_wy_qt,
    extract_r,
    extract_v,
    geqr2,
    geqr3,
    geqrf,
    larfb_left_t,
    larfg,
    larft,
)
from tests.conftest import assert_qr_ok, make_rng


def reconstruct_q(V: np.ndarray, T: np.ndarray) -> np.ndarray:
    m = V.shape[0]
    return np.eye(m) - V @ T @ V.T


class TestLarfg:
    def test_annihilates_tail(self, rng):
        x0 = rng.standard_normal(8)
        x = x0.copy()
        tau = larfg(x)
        v = x.copy()
        beta = v[0]
        v[0] = 1.0
        H = np.eye(8) - tau * np.outer(v, v)
        y = H @ x0
        assert abs(y[0] - beta) < 1e-13
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-13)

    def test_reflector_norm_preserving(self, rng):
        x0 = rng.standard_normal(5)
        x = x0.copy()
        larfg(x)
        assert abs(abs(x[0]) - np.linalg.norm(x0)) < 1e-13

    def test_zero_tail_gives_tau_zero(self):
        x = np.array([3.0, 0.0, 0.0])
        tau = larfg(x)
        assert tau == 0.0
        assert x[0] == 3.0

    def test_length_one(self):
        x = np.array([2.0])
        assert larfg(x) == 0.0

    def test_sign_avoids_cancellation(self):
        # beta must have the opposite sign of alpha.
        x = np.array([1.0, 1.0])
        larfg(x)
        assert x[0] < 0.0
        x = np.array([-1.0, 1.0])
        larfg(x)
        assert x[0] > 0.0


class TestGeqr2:
    @pytest.mark.parametrize("m,n", [(1, 1), (5, 5), (10, 4), (4, 10), (30, 13)])
    def test_backward_error(self, m, n):
        A0 = make_rng(m * 31 + n).standard_normal((m, n))
        A = A0.copy()
        tau = geqr2(A)
        r = min(m, n)
        V = extract_v(A)
        T = larft(V, tau)
        Q = reconstruct_q(V, T)
        R = np.zeros((m, n))
        R[:r] = extract_r(A)
        np.testing.assert_allclose(Q @ R, A0, rtol=0, atol=1e-12)

    def test_r_matches_numpy_abs(self):
        A0 = make_rng(8).standard_normal((20, 6))
        A = A0.copy()
        geqr2(A)
        R = extract_r(A)
        _, R_ref = np.linalg.qr(A0)
        np.testing.assert_allclose(np.abs(R), np.abs(R_ref), rtol=1e-10, atol=1e-12)

    def test_zero_matrix(self):
        A = np.zeros((5, 3))
        tau = geqr2(A)
        np.testing.assert_array_equal(tau, 0.0)
        np.testing.assert_array_equal(A, 0.0)


class TestLarfbAndT:
    def test_larfb_equals_explicit_q(self, rng):
        m, k, n = 15, 5, 7
        A = rng.standard_normal((m, k))
        tau = geqr2(A)
        V = extract_v(A)
        T = larft(V, tau)
        Q = reconstruct_q(V, T)
        C0 = rng.standard_normal((m, n))
        C = C0.copy()
        larfb_left_t(V, T, C)
        np.testing.assert_allclose(C, Q.T @ C0, rtol=0, atol=1e-12)

    def test_apply_wy_roundtrip(self, rng):
        m, k = 12, 4
        panel = rng.standard_normal((m, k))
        tau = geqr2(panel)
        T = larft(extract_v(panel), tau)
        C0 = rng.standard_normal((m, 3))
        C = C0.copy()
        apply_wy_qt(panel, T, C)
        apply_wy_q(panel, T, C)
        np.testing.assert_allclose(C, C0, rtol=0, atol=1e-12)

    def test_larfb_shape_mismatch(self):
        with pytest.raises(ValueError):
            larfb_left_t(np.zeros((5, 2)), np.zeros((2, 2)), np.zeros((4, 3)))

    def test_t_is_upper_triangular(self, rng):
        A = rng.standard_normal((10, 6))
        tau = geqr2(A)
        T = larft(extract_v(A), tau)
        np.testing.assert_allclose(T, np.triu(T))


class TestGeqr3:
    @pytest.mark.parametrize("m,n,threshold", [(20, 20, 2), (40, 16, 4), (33, 15, 8), (9, 9, 1)])
    def test_backward_error(self, m, n, threshold):
        A0 = make_rng(m + 7 * n).standard_normal((m, n))
        A = A0.copy()
        T = geqr3(A, threshold=threshold)
        V = extract_v(A)
        Q = reconstruct_q(V, T)[:, :n]
        R = extract_r(A)
        assert_qr_ok(A0, Q, R, tol=1e-12)

    def test_same_r_as_geqr2(self):
        A0 = make_rng(9).standard_normal((30, 12))
        A1, A2 = A0.copy(), A0.copy()
        geqr2(A1)
        geqr3(A2, threshold=3)
        np.testing.assert_allclose(extract_r(A1), extract_r(A2), rtol=1e-10, atol=1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError, match="m >= n"):
            geqr3(np.zeros((3, 5)))


class TestGeqrf:
    @pytest.mark.parametrize("panel", ["geqr2", "geqr3"])
    @pytest.mark.parametrize("m,n,b", [(30, 30, 8), (50, 20, 6), (20, 35, 10), (25, 25, 25)])
    def test_backward_error(self, m, n, b, panel):
        A0 = make_rng(m * 3 + n + b).standard_normal((m, n))
        A = A0.copy()
        Ts = geqrf(A, b=b, panel=panel)
        r = min(m, n)
        # Rebuild Q by applying panel reflectors to the identity, last first.
        Q = np.eye(m)
        ks = list(range(0, r, b))
        for idx in range(len(ks) - 1, -1, -1):
            k = ks[idx]
            bk = min(b, r - k)
            V = extract_v(A[k:, k : k + bk])
            T = Ts[idx]
            Q[k:, :] -= V @ (T @ (V.T @ Q[k:, :]))
        R = np.triu(A)
        np.testing.assert_allclose(Q @ R, A0, rtol=0, atol=1e-11)

    def test_unknown_panel_kernel(self):
        with pytest.raises(ValueError, match="unknown panel kernel"):
            geqrf(np.zeros((4, 4)), panel="bogus")

    def test_flop_count_tall(self):
        m, n = 200, 40
        A = make_rng(10).standard_normal((m, n))
        with counting() as c:
            geqrf(A, b=16)
        expected = 2.0 * m * n * n - 2.0 * n**3 / 3.0
        # Blocked QR does up to ~2x extra work in larfb vs the minimal count.
        assert expected <= c.flops <= 3.0 * expected


@given(st.integers(2, 30), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_property_geqr2_orthogonality(m, seed):
    n = max(1, m // 2)
    A0 = make_rng(seed).standard_normal((m, n))
    A = A0.copy()
    tau = geqr2(A)
    V = extract_v(A)
    T = larft(V, tau)
    Q = reconstruct_q(V, T)
    np.testing.assert_allclose(Q.T @ Q, np.eye(m), atol=1e-11)


@given(st.integers(1, 12), st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_property_r_diagonal_dominates_column_norm(n, seed):
    """|R[j,j]| equals the norm of the j-th column of Q^T-transformed A projected out."""
    m = n + 5
    A0 = make_rng(seed).standard_normal((m, n))
    A = A0.copy()
    geqr2(A)
    R = extract_r(A)
    # First diagonal entry is the first column's norm up to sign.
    assert abs(abs(R[0, 0]) - np.linalg.norm(A0[:, 0])) < 1e-10
