"""Unit tests for the flop-counted BLAS layer."""

import numpy as np
import pytest

from repro.counters import counting
from repro.kernels.blas import gemm, ger, laswp, scal_axpy_col, trsm_llnu, trsm_runn


class TestGemm:
    def test_matches_numpy_default(self, rng):
        A = rng.standard_normal((7, 5))
        B = rng.standard_normal((5, 9))
        C0 = rng.standard_normal((7, 9))
        C = C0.copy()
        gemm(C, A, B)
        np.testing.assert_allclose(C, C0 - A @ B, rtol=1e-14)

    @pytest.mark.parametrize("alpha,beta", [(1.0, 1.0), (-1.0, 1.0), (0.5, 1.0), (2.0, 0.0), (1.5, -0.5)])
    def test_alpha_beta(self, rng, alpha, beta):
        A = rng.standard_normal((4, 3))
        B = rng.standard_normal((3, 6))
        C0 = rng.standard_normal((4, 6))
        C = C0.copy()
        gemm(C, A, B, alpha=alpha, beta=beta)
        np.testing.assert_allclose(C, beta * C0 + alpha * (A @ B), rtol=1e-13, atol=1e-13)

    def test_beta_zero_ignores_poisoned_c(self, rng):
        # LAPACK semantics: beta=0 means C's previous contents are not
        # referenced.  A NaN-poisoned C must not leak into the product
        # (0 * NaN = NaN would, if implemented as C *= beta).
        A = rng.standard_normal((5, 4))
        B = rng.standard_normal((4, 6))
        C = np.full((5, 6), np.nan)
        gemm(C, A, B, alpha=2.0, beta=0.0)
        assert np.all(np.isfinite(C))
        np.testing.assert_allclose(C, 2.0 * (A @ B), rtol=1e-14)

    def test_beta_zero_with_inf_poisoned_c(self, rng):
        A = rng.standard_normal((3, 3))
        B = rng.standard_normal((3, 3))
        C = np.full((3, 3), np.inf)
        gemm(C, A, B, alpha=-1.0, beta=0.0)
        np.testing.assert_allclose(C, -(A @ B), rtol=1e-14)

    def test_in_place_returns_same_array(self, rng):
        C = rng.standard_normal((3, 3))
        out = gemm(C, np.eye(3), np.eye(3))
        assert out is C

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="gemm shape mismatch"):
            gemm(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_flop_count(self, rng):
        m, n, k = 11, 7, 5
        with counting() as c:
            gemm(np.zeros((m, n)), np.zeros((m, k)), np.zeros((k, n)))
        assert c.flops == 2 * m * n * k
        assert c.kernel_calls["gemm"] == 1


class TestTrsm:
    def test_llnu_solves_unit_lower(self, rng):
        k, n = 8, 5
        L = np.tril(rng.standard_normal((k, k)), -1) + np.eye(k)
        B0 = rng.standard_normal((k, n))
        B = B0.copy()
        trsm_llnu(L, B)
        np.testing.assert_allclose(L @ B, B0, rtol=1e-12, atol=1e-12)

    def test_llnu_ignores_upper_and_diag_values(self, rng):
        # The solve must read only the strictly-lower triangle.
        k, n = 6, 4
        L = np.tril(rng.standard_normal((k, k)), -1)
        noisy = L + np.triu(rng.standard_normal((k, k)) * 100.0)
        B0 = rng.standard_normal((k, n))
        B1, B2 = B0.copy(), B0.copy()
        trsm_llnu(L + np.eye(k), B1)
        trsm_llnu(noisy, B2)
        np.testing.assert_allclose(B1, B2, rtol=1e-14)

    def test_runn_solves_upper_right(self, rng):
        m, k = 9, 6
        U = np.triu(rng.standard_normal((k, k))) + 5.0 * np.eye(k)
        B0 = rng.standard_normal((m, k))
        B = B0.copy()
        trsm_runn(U, B)
        np.testing.assert_allclose(B @ U, B0, rtol=1e-12, atol=1e-12)

    def test_runn_ignores_lower_values(self, rng):
        m, k = 5, 4
        U = np.triu(rng.standard_normal((k, k))) + 4.0 * np.eye(k)
        noisy = U + np.tril(rng.standard_normal((k, k)) * 100.0, -1)
        B0 = rng.standard_normal((m, k))
        B1, B2 = B0.copy(), B0.copy()
        trsm_runn(U, B1)
        trsm_runn(noisy, B2)
        np.testing.assert_allclose(B1, B2, rtol=1e-14)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            trsm_llnu(np.zeros((3, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            trsm_runn(np.zeros((3, 3)), np.zeros((4, 2)))

    def test_flop_counts(self):
        k, n, m = 6, 4, 7
        with counting() as c:
            trsm_llnu(np.eye(k), np.ones((k, n)))
        assert c.flops == k * (k - 1) * n
        with counting() as c:
            trsm_runn(np.eye(k), np.ones((m, k)))
        assert c.flops == m * k * k


class TestGer:
    def test_rank1_update(self, rng):
        A0 = rng.standard_normal((6, 4))
        x = rng.standard_normal(6)
        y = rng.standard_normal(4)
        A = A0.copy()
        ger(A, x, y)
        np.testing.assert_allclose(A, A0 - np.outer(x, y), rtol=1e-14)

    def test_alpha(self, rng):
        A0 = rng.standard_normal((3, 3))
        x, y = rng.standard_normal(3), rng.standard_normal(3)
        A = A0.copy()
        ger(A, x, y, alpha=0.25)
        np.testing.assert_allclose(A, A0 + 0.25 * np.outer(x, y), rtol=1e-14)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ger(np.zeros((3, 3)), np.zeros(2), np.zeros(3))


class TestScalAxpyCol:
    def test_eliminates_column(self, rng):
        A = rng.standard_normal((6, 6))
        A[0, 0] = 2.0
        ref = A.copy()
        scal_axpy_col(A, 0)
        np.testing.assert_allclose(A[1:, 0], ref[1:, 0] / 2.0)
        np.testing.assert_allclose(
            A[1:, 1:], ref[1:, 1:] - np.outer(ref[1:, 0] / 2.0, ref[0, 1:]), rtol=1e-13
        )

    def test_zero_pivot_raises(self):
        A = np.zeros((3, 3))
        with pytest.raises(ZeroDivisionError):
            scal_axpy_col(A, 0)


class TestLaswp:
    def test_forward_matches_manual(self, rng):
        A0 = rng.standard_normal((6, 3))
        piv = np.array([3, 1, 5])
        A = A0.copy()
        laswp(A, piv)
        ref = A0.copy()
        for i, p in enumerate(piv):
            ref[[i, p]] = ref[[p, i]]
        np.testing.assert_array_equal(A, ref)

    def test_backward_undoes_forward(self, rng):
        A0 = rng.standard_normal((8, 4))
        piv = np.array([5, 3, 2, 7])
        A = A0.copy()
        laswp(A, piv, forward=True)
        laswp(A, piv, forward=False)
        np.testing.assert_array_equal(A, A0)

    def test_identity_swaps_are_noop(self, rng):
        A0 = rng.standard_normal((4, 2))
        A = A0.copy()
        laswp(A, np.arange(4))
        np.testing.assert_array_equal(A, A0)

    def test_words_counted_only_for_real_swaps(self):
        A = np.arange(12.0).reshape(6, 2)
        with counting() as c:
            laswp(A, np.array([0, 1, 5]))  # one real swap
        assert c.words == 2 * 2

    def test_out_of_range_pivot_raises(self, rng):
        # A corrupted pivot must fail loudly, not wrap around via
        # negative indexing or raise a bare IndexError past the end.
        A = rng.standard_normal((4, 3))
        with pytest.raises(ValueError, match=r"corrupted pivot piv\[1\] = 7"):
            laswp(A, np.array([0, 7, 2]))

    def test_negative_pivot_raises(self, rng):
        A0 = rng.standard_normal((4, 3))
        A = A0.copy()
        with pytest.raises(ValueError, match=r"corrupted pivot piv\[0\] = -2"):
            laswp(A, np.array([-2, 1]))
        # The offending swap was rejected before touching any rows.
        np.testing.assert_array_equal(A, A0)

    def test_backward_checks_bounds_too(self, rng):
        A = rng.standard_normal((5, 2))
        with pytest.raises(ValueError, match="corrupted pivot"):
            laswp(A, np.array([1, 9]), forward=False)
