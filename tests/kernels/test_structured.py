"""Tests for the structured tree/tile kernels (tpqrt, tpmqrt, tstrf, ssssm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.structured import ssssm_apply, tpmqrt_left_t, tpqrt, tstrf
from tests.conftest import make_rng


def explicit_q(Vb: np.ndarray, T: np.ndarray) -> np.ndarray:
    m, b = Vb.shape
    Vfull = np.vstack([np.eye(b), Vb])
    return np.eye(b + m) - Vfull @ T @ Vfull.T


class TestTpqrtDense:
    @pytest.mark.parametrize("b,m", [(1, 1), (4, 4), (6, 15), (8, 3), (10, 40)])
    def test_factorization(self, b, m):
        rng = make_rng(b * 100 + m)
        R0 = np.triu(rng.standard_normal((b, b)))
        B0 = rng.standard_normal((m, b))
        R, B = R0.copy(), B0.copy()
        T = tpqrt(R, B)
        Q = explicit_q(B, T)
        S0 = np.vstack([R0, B0])
        Rnew = np.vstack([np.triu(R), np.zeros((m, b))])
        np.testing.assert_allclose(Q @ Rnew, S0, rtol=0, atol=1e-12)
        np.testing.assert_allclose(Q.T @ Q, np.eye(b + m), atol=1e-12)

    def test_apply_matches_explicit(self):
        rng = make_rng(5)
        b, m, p = 5, 9, 4
        R = np.triu(rng.standard_normal((b, b)))
        B = rng.standard_normal((m, b))
        T = tpqrt(R, B)
        Q = explicit_q(B, T)
        Ct0, Cb0 = rng.standard_normal((b, p)), rng.standard_normal((m, p))
        Ct, Cb = Ct0.copy(), Cb0.copy()
        tpmqrt_left_t(B, T, Ct, Cb)
        ref = Q.T @ np.vstack([Ct0, Cb0])
        np.testing.assert_allclose(np.vstack([Ct, Cb]), ref, rtol=0, atol=1e-12)

    def test_apply_q_inverts_qt(self):
        rng = make_rng(6)
        b, m, p = 4, 7, 3
        R = np.triu(rng.standard_normal((b, b)))
        B = rng.standard_normal((m, b))
        T = tpqrt(R, B)
        Ct0, Cb0 = rng.standard_normal((b, p)), rng.standard_normal((m, p))
        Ct, Cb = Ct0.copy(), Cb0.copy()
        tpmqrt_left_t(B, T, Ct, Cb, transpose=True)
        tpmqrt_left_t(B, T, Ct, Cb, transpose=False)
        np.testing.assert_allclose(Ct, Ct0, atol=1e-12)
        np.testing.assert_allclose(Cb, Cb0, atol=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tpqrt(np.zeros((3, 4)), np.zeros((5, 4)))
        with pytest.raises(ValueError):
            tpmqrt_left_t(np.zeros((5, 3)), np.zeros((3, 3)), np.zeros((2, 4)), np.zeros((5, 4)))


class TestTpqrtTriangular:
    @pytest.mark.parametrize("b", [1, 2, 5, 8, 16])
    def test_merge_of_two_r_factors(self, b):
        rng = make_rng(b)
        R1 = np.triu(rng.standard_normal((b, b)))
        R2 = np.triu(rng.standard_normal((b, b)))
        Ra, Bb = R1.copy(), R2.copy()
        T = tpqrt(Ra, Bb, bottom_triangular=True)
        Q = explicit_q(np.triu(Bb), T)
        S0 = np.vstack([R1, R2])
        Rnew = np.vstack([np.triu(Ra), np.zeros((b, b))])
        np.testing.assert_allclose(Q @ Rnew, S0, rtol=0, atol=1e-12)

    def test_vb_stays_upper_triangular(self):
        rng = make_rng(77)
        b = 7
        Ra = np.triu(rng.standard_normal((b, b)))
        Bb = np.triu(rng.standard_normal((b, b)))
        tpqrt(Ra, Bb, bottom_triangular=True)
        assert np.abs(np.tril(Bb, -1)).max() == 0.0

    def test_insensitive_to_lower_triangle_garbage(self):
        """The in-place tree operates on views whose strictly-lower parts
        hold leaf Householder vectors; the kernel must not read them."""
        rng = make_rng(88)
        b = 6
        R1 = np.triu(rng.standard_normal((b, b)))
        R2 = np.triu(rng.standard_normal((b, b)))
        # Clean run
        Ra1, Bb1 = R1.copy(), R2.copy()
        T1 = tpqrt(Ra1, Bb1, bottom_triangular=True)
        # Contaminated run
        Ra2 = R1 + np.tril(rng.standard_normal((b, b)) * 50.0, -1)
        Bb2 = R2 + np.tril(rng.standard_normal((b, b)) * 50.0, -1)
        T2 = tpqrt(Ra2, Bb2, bottom_triangular=True)
        np.testing.assert_allclose(np.triu(Ra1), np.triu(Ra2), rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(np.triu(Bb1), np.triu(Bb2), rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(T1, T2, rtol=1e-11, atol=1e-12)

    def test_gram_preserved(self):
        rng = make_rng(9)
        b = 5
        R1 = np.triu(rng.standard_normal((b, b)))
        R2 = np.triu(rng.standard_normal((b, b)))
        Ra, Bb = R1.copy(), R2.copy()
        tpqrt(Ra, Bb, bottom_triangular=True)
        G0 = R1.T @ R1 + R2.T @ R2
        G1 = np.triu(Ra).T @ np.triu(Ra)
        np.testing.assert_allclose(G0, G1, rtol=1e-11, atol=1e-12)


class TestTstrf:
    @pytest.mark.parametrize("b,m", [(1, 1), (4, 4), (6, 12), (8, 5)])
    def test_replay_reproduces_elimination(self, b, m):
        rng = make_rng(b * 7 + m)
        U0 = np.triu(rng.standard_normal((b, b)))
        A0 = rng.standard_normal((m, b))
        U, A = U0.copy(), A0.copy()
        ops = tstrf(U, A)
        Ct, Cb = U0.copy(), A0.copy()
        ssssm_apply(ops, Ct, Cb)
        np.testing.assert_allclose(np.triu(Ct), np.triu(U), atol=1e-11)
        np.testing.assert_allclose(Cb, 0.0, atol=1e-11)

    def test_pivot_is_local_max(self):
        rng = make_rng(11)
        b, m = 5, 8
        U0 = np.triu(rng.standard_normal((b, b)))
        A0 = rng.standard_normal((m, b)) * 100.0  # force pivots from A
        U, A = U0.copy(), A0.copy()
        ops = tstrf(U, A)
        assert (ops.swaps >= 0).all()  # every step swapped

    def test_no_swap_when_diag_dominates(self):
        rng = make_rng(12)
        b, m = 4, 6
        U0 = np.triu(rng.standard_normal((b, b))) + 1000.0 * np.eye(b)
        A0 = rng.standard_normal((m, b))
        U, A = U0.copy(), A0.copy()
        ops = tstrf(U, A)
        assert (ops.swaps == -1).all()
        # Without swaps this is a plain elimination: U unchanged on top rows.
        np.testing.assert_allclose(np.triu(U), np.triu(U0), rtol=1e-12)

    def test_solve_via_replay(self):
        """tstrf + ssssm solve a stacked system correctly."""
        rng = make_rng(13)
        b, m = 6, 6
        U0 = np.triu(rng.standard_normal((b, b)))
        A0 = rng.standard_normal((m, b))
        S = np.vstack([U0, A0])  # (b+m) x b stacked matrix
        U, A = U0.copy(), A0.copy()
        ops = tstrf(U, A)
        # Residual check through the Gram identity is not available for LU;
        # instead verify the elimination maps S onto [triu(U); 0].
        Ct, Cb = U0.copy(), A0.copy()
        ssssm_apply(ops, Ct, Cb)
        assert np.abs(Cb).max() < 1e-11

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tstrf(np.zeros((3, 4)), np.zeros((5, 4)))
        ops = tstrf(np.eye(3), np.ones((2, 3)))
        with pytest.raises(ValueError):
            ssssm_apply(ops, np.zeros((4, 2)), np.zeros((2, 2)))


@given(st.integers(1, 8), st.integers(1, 12), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_tpqrt_orthogonal(b, m, seed):
    rng = make_rng(seed)
    R = np.triu(rng.standard_normal((b, b)))
    B = rng.standard_normal((m, b))
    T = tpqrt(R, B)
    Q = explicit_q(B, T)
    np.testing.assert_allclose(Q.T @ Q, np.eye(b + m), atol=1e-11)


@given(st.integers(1, 8), st.integers(1, 10), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_tstrf_replay_zeroes_bottom(b, m, seed):
    rng = make_rng(seed)
    U0 = np.triu(rng.standard_normal((b, b)))
    A0 = rng.standard_normal((m, b))
    ops = tstrf(U0.copy(), A0.copy())
    Ct, Cb = U0.copy(), A0.copy()
    ssssm_apply(ops, Ct, Cb)
    assert np.abs(Cb).max() < 1e-9
