"""Unit and property tests for the sequential LU kernels."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters import counting
from repro.kernels.lu import (
    getf2,
    getf2_nopiv,
    getrf,
    perm_from_piv_rows,
    piv_to_perm,
    rgetf2,
)
from tests.conftest import assert_lu_ok, make_rng


@pytest.mark.parametrize("m,n", [(1, 1), (5, 5), (8, 3), (3, 8), (40, 17), (17, 40), (64, 64)])
def test_getf2_backward_error(m, n):
    A0 = make_rng(m * 100 + n).standard_normal((m, n))
    A = A0.copy()
    piv = getf2(A)
    assert_lu_ok(A0, A, piv, tol=1e-12)


def test_getf2_pivots_match_scipy():
    A0 = make_rng(1).standard_normal((20, 20))
    A = A0.copy()
    piv = getf2(A)
    lu_ref, piv_ref = scipy.linalg.lu_factor(A0)
    np.testing.assert_array_equal(piv, piv_ref)
    np.testing.assert_allclose(A, lu_ref, rtol=1e-12, atol=1e-14)


def test_getf2_multipliers_bounded():
    A = make_rng(2).standard_normal((50, 20))
    getf2(A)
    L = np.tril(A[:, :20], -1)
    assert np.abs(L).max() <= 1.0 + 1e-15


def test_getf2_singular_column_is_skipped():
    A = np.zeros((4, 4))
    A[:, 1] = [1.0, 2.0, 3.0, 4.0]
    piv = getf2(A.copy())
    assert len(piv) == 4  # no crash on exactly-zero pivots


@pytest.mark.parametrize("m,n,threshold", [(30, 30, 4), (64, 32, 8), (100, 64, 16), (33, 17, 2)])
def test_rgetf2_backward_error(m, n, threshold):
    A0 = make_rng(m + n).standard_normal((m, n))
    A = A0.copy()
    piv = rgetf2(A, threshold=threshold)
    assert_lu_ok(A0, A, piv, tol=1e-12)


def test_rgetf2_same_pivots_as_getf2():
    A0 = make_rng(3).standard_normal((48, 24))
    A1, A2 = A0.copy(), A0.copy()
    p1 = getf2(A1)
    p2 = rgetf2(A2, threshold=4)
    np.testing.assert_array_equal(piv_to_perm(p1, 48), piv_to_perm(p2, 48))
    np.testing.assert_allclose(A1, A2, rtol=1e-11, atol=1e-13)


def test_rgetf2_rejects_wide():
    with pytest.raises(ValueError, match="m >= n"):
        rgetf2(np.zeros((3, 5)))


@pytest.mark.parametrize("panel", ["getf2", "rgetf2"])
@pytest.mark.parametrize("m,n,b", [(50, 50, 8), (64, 40, 16), (40, 64, 16), (30, 30, 30), (37, 29, 7)])
def test_getrf_backward_error(m, n, b, panel):
    A0 = make_rng(m * n + b).standard_normal((m, n))
    A = A0.copy()
    piv = getrf(A, b=b, panel=panel)
    assert_lu_ok(A0, A, piv, tol=1e-12)


def test_getrf_matches_getf2_result():
    """Blocked and unblocked LU compute the same factorization."""
    A0 = make_rng(4).standard_normal((40, 40))
    A1, A2 = A0.copy(), A0.copy()
    p1 = getf2(A1)
    p2 = getrf(A2, b=8)
    np.testing.assert_array_equal(p1, p2)
    np.testing.assert_allclose(A1, A2, rtol=1e-11, atol=1e-13)


def test_getf2_nopiv_factorizes_dominant():
    A0 = make_rng(5).standard_normal((12, 12)) + 20.0 * np.eye(12)
    A = A0.copy()
    getf2_nopiv(A)
    L = np.tril(A, -1) + np.eye(12)
    U = np.triu(A)
    np.testing.assert_allclose(L @ U, A0, rtol=1e-12)


def test_getf2_nopiv_zero_pivot_raises():
    A = np.zeros((3, 3))
    with pytest.raises(ZeroDivisionError):
        getf2_nopiv(A)


def test_getf2_flop_count_square():
    n = 32
    A = make_rng(6).standard_normal((n, n))
    with counting() as c:
        getf2(A)
    expected = 2.0 * n**3 / 3.0
    assert abs(c.flops - expected) / expected < 0.15


def test_getf2_comparison_count():
    m, n = 30, 10
    A = make_rng(7).standard_normal((m, n))
    with counting() as c:
        getf2(A)
    assert c.comparisons == sum(m - j - 1 for j in range(n))


# ----------------------------------------------------------------------
# Pivot-sequence utilities (property-based)
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=60, deadline=None)
def test_piv_to_perm_is_permutation(data):
    m = data.draw(st.integers(1, 25))
    r = data.draw(st.integers(1, m))
    piv = np.array([data.draw(st.integers(i, m - 1)) for i in range(r)])
    perm = piv_to_perm(piv, m)
    assert sorted(perm) == list(range(m))


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_piv_to_perm_matches_swap_application(data):
    m = data.draw(st.integers(1, 20))
    r = data.draw(st.integers(1, m))
    piv = np.array([data.draw(st.integers(i, m - 1)) for i in range(r)])
    x = np.arange(m)
    for i, p in enumerate(piv):
        x[[i, p]] = x[[p, i]]
    perm = piv_to_perm(piv, m)
    np.testing.assert_array_equal(np.arange(m)[perm], x)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_perm_from_piv_rows_places_rows(data):
    m = data.draw(st.integers(1, 25))
    r = data.draw(st.integers(1, m))
    rows = np.array(data.draw(st.permutations(range(m)))[:r])
    piv = perm_from_piv_rows(rows, m)
    x = np.arange(m)
    for i, p in enumerate(piv):
        x[[i, p]] = x[[p, i]]
    np.testing.assert_array_equal(x[:r], rows)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_perm_from_piv_rows_swaps_are_legal(data):
    """Every swap partner must be at or below the current position."""
    m = data.draw(st.integers(2, 20))
    r = data.draw(st.integers(1, m))
    rows = np.array(data.draw(st.permutations(range(m)))[:r])
    piv = perm_from_piv_rows(rows, m)
    assert all(piv[i] >= i for i in range(r))
