"""Tests for the operation-counting infrastructure."""

import threading

import numpy as np

from repro.counters import (
    Counters,
    add_flops,
    add_roundtrip,
    add_sync,
    add_words,
    counting,
    current_counters,
)
from repro.kernels.blas import gemm
from repro.kernels.lu import getf2


def test_no_counter_active_by_default():
    assert current_counters() is None
    add_flops(100)  # must not raise


def test_counting_installs_and_removes():
    with counting() as c:
        assert current_counters() is c
        add_flops(5)
        add_sync()
        add_words(7)
    assert current_counters() is None
    assert (c.flops, c.syncs, c.words) == (5, 1, 7)


def test_nested_counters_innermost_wins():
    with counting() as outer:
        add_flops(1)
        with counting() as inner:
            add_flops(10)
        add_flops(2)
    assert outer.flops == 3
    assert inner.flops == 10


def test_external_counter_object():
    c = Counters()
    with counting(c) as got:
        assert got is c
        add_flops(4)
    assert c.flops == 4


def test_reset():
    c = Counters()
    with counting(c):
        add_flops(3)
        add_sync(2)
    c.reset()
    snap = c.snapshot()
    assert all(v == 0 for v in snap.values())


def test_snapshot_keys():
    with counting() as c:
        add_flops(1)
    assert set(c.snapshot()) == {
        "flops",
        "syncs",
        "words",
        "comparisons",
        "roundtrips",
        "store_read_bytes",
        "store_write_bytes",
    }


def test_roundtrip_counter():
    with counting() as c:
        add_roundtrip()
        add_roundtrip(3)
    assert c.roundtrips == 4
    c.reset()
    assert c.roundtrips == 0


def test_kernel_call_registry():
    with counting() as c:
        gemm(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))
        gemm(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))
    assert c.kernel_calls["gemm"] == 2


def test_threaded_accumulation_is_consistent():
    """Workers reporting concurrently into one counter must not lose updates."""
    c = Counters()
    n_threads, per_thread = 8, 2000

    def work():
        for _ in range(per_thread):
            c.add_flops(1)

    with counting(c):
        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert c.flops == n_threads * per_thread


def test_kernels_report_into_shared_counter_across_threads():
    c = Counters()
    A = np.random.default_rng(0).standard_normal((20, 20))

    def work():
        getf2(A.copy())

    with counting(c):
        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    single = Counters()
    with counting(single):
        getf2(A.copy())
    assert c.flops == 4 * single.flops
