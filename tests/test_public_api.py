"""Guard the package's public surface.

Every lazily exported top-level name must resolve, and the documented
entry points must exist with their documented signatures.
"""

import inspect

import pytest

import repro


def test_all_lazy_exports_resolve():
    for name in repro._EXPORTS:
        obj = getattr(repro, name)
        assert obj is not None, name


def test_dir_lists_exports():
    d = dir(repro)
    for name in ("calu", "caqr", "tslu", "tsqr", "solve", "MachineModel"):
        assert name in d


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_a_thing


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize(
    "name,params",
    [
        ("calu", {"A", "b", "tr", "tree", "executor", "lookahead", "overwrite", "update_width", "check_finite"}),
        ("caqr", {"A", "b", "tr", "tree", "executor", "lookahead", "overwrite", "check_finite"}),
        ("tslu", {"A", "tr", "tree", "executor", "overwrite", "check_finite"}),
        ("tsqr", {"A", "tr", "tree", "executor", "overwrite", "check_finite"}),
        ("solve", {"A", "rhs", "b", "tr", "tree", "refine", "cores"}),
        ("lstsq", {"A", "rhs", "b", "tr", "tree", "cores"}),
    ],
)
def test_documented_signatures(name, params):
    fn = getattr(repro, name)
    sig = set(inspect.signature(fn).parameters)
    assert params <= sig, f"{name} missing {params - sig}"


def test_subpackages_importable():
    import repro.analysis
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.distmem
    import repro.kernels
    import repro.machine
    import repro.runtime


def test_experiment_registry_matches_cli_help():
    from repro.bench.experiments import EXPERIMENTS

    # Every registered experiment returns something with .format().
    for name, fn in EXPERIMENTS.items():
        assert callable(fn), name


def test_every_public_function_has_docstring():
    import repro.analysis as analysis
    import repro.core as core
    import repro.kernels as kernels

    for mod in (kernels, core, analysis):
        for name in mod.__all__:
            obj = getattr(mod, name)
            assert (obj.__doc__ or "").strip(), f"{mod.__name__}.{name} lacks a docstring"
