"""The dispatch autotuner: decision invariants, calibration, wiring.

The autotuner is advisory — it may pick either backend depending on the
host — so these tests pin the *contract*, not the choice: decisions are
well-formed, memoized, auditable as trace events, injectable with a
synthetic :class:`PipeCalibration` for determinism, and reachable
through ``resolve_executor("auto")`` and the service config.
"""

from __future__ import annotations

import pytest

from repro.core.trees import TreeKind
from repro.machine import autotune as at
from repro.machine.autotune import (
    DispatchDecision,
    PipeCalibration,
    autotune,
    calibrate_pipe,
    measure_roundtrip,
)
from repro.machine.presets import generic
from repro.resilience.events import EVENT_KINDS


@pytest.fixture(autouse=True)
def _fresh_cache():
    at.clear_cache()
    yield
    at.clear_cache()


#: Deterministic dispatch prices: no live worker spawn in unit tests.
FAKE_PIPE = PipeCalibration(roundtrip_s=1e-4, spawn_s=5e-2, measured=False)


def _decide(**kw):
    kw.setdefault("pipe", FAKE_PIPE)
    kw.setdefault("model", generic(4))
    kw.setdefault("cores", 4)
    return autotune("lu", 384, 32, b=32, tr=4, tree=TreeKind.BINARY, **kw)


class TestDecisionInvariants:
    def test_well_formed(self):
        d = _decide()
        assert d.backend in ("threaded", "process")
        assert d.max_ops in (1, 2, 4, 8, 16)
        assert d.n_workers >= 1
        assert set(d.predicted_s) == {"threaded", "process"}
        assert all(v > 0 for v in d.predicted_s.values())
        assert d.roundtrip_s == FAKE_PIPE.roundtrip_s
        assert d.shape == (384, 32) and d.b == 32 and d.tr == 4
        assert d.reason  # human-auditable

    def test_predicted_backend_is_argmin(self):
        d = _decide()
        assert d.backend == min(d.predicted_s, key=d.predicted_s.__getitem__)

    def test_threaded_choice_keeps_frontier_wide(self):
        # A brutal round-trip price forces the threaded backend, which
        # caps fusion at 4 to preserve intra-panel parallelism.
        d = _decide(pipe=PipeCalibration(roundtrip_s=1.0, spawn_s=10.0, measured=False))
        assert d.backend == "threaded"
        assert d.max_ops <= 4

    def test_cheap_dispatch_prefers_shallow_batches(self):
        # Free dispatch: nothing to amortize, so fusion stays minimal.
        free = PipeCalibration(roundtrip_s=0.0, spawn_s=0.0, measured=False)
        assert _decide(pipe=free).max_ops == 1

    def test_no_shape_defaults_to_threaded_light_fusion(self):
        d = autotune("qr", pipe=FAKE_PIPE, model=generic(4), cores=4)
        assert d.backend == "threaded" and d.max_ops == 4
        assert d.shape is None and d.predicted_s == {}

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown factorization kind"):
            autotune("cholesky", 64, 64, b=16, tr=4, pipe=FAKE_PIPE, model=generic(4), cores=4)

    def test_persistent_pool_drops_spawn_cost(self):
        cold = _decide(persistent_pool=False)
        warm = _decide(persistent_pool=True)
        assert warm.predicted_s["process"] <= cold.predicted_s["process"]
        assert warm.predicted_s["threaded"] == cold.predicted_s["threaded"]


class TestMemoization:
    def test_defaulted_calls_memoize(self, monkeypatch):
        monkeypatch.setattr(at, "calibrate_pipe", lambda *a, **k: FAKE_PIPE)
        d1 = autotune("lu", 96, 48, b=16, tr=4, tree=TreeKind.BINARY)
        d2 = autotune("lu", 96, 48, b=16, tr=4, tree=TreeKind.BINARY)
        assert d1 is d2

    def test_explicit_model_bypasses_cache(self):
        d1 = _decide()
        d2 = _decide()
        assert d1 is not d2  # injected model/pipe: never memoized
        assert d1.to_dict() == d2.to_dict()

    def test_clear_cache_forgets(self, monkeypatch):
        monkeypatch.setattr(at, "calibrate_pipe", lambda *a, **k: FAKE_PIPE)
        d1 = autotune("lu", 96, 48, b=16, tr=4, tree=TreeKind.BINARY)
        at.clear_cache()
        d2 = autotune("lu", 96, 48, b=16, tr=4, tree=TreeKind.BINARY)
        assert d1 is not d2


class TestAuditTrail:
    def test_event_kind_is_registered(self):
        assert "autotune" in EVENT_KINDS

    def test_event_carries_the_decision(self):
        e = _decide().event()
        assert e.kind == "autotune"
        for fragment in ("backend=", "max_ops=", "shape=384x32", "roundtrip="):
            assert fragment in e.detail

    def test_to_dict_round_trips_through_json(self):
        import json

        d = _decide()
        blob = json.loads(json.dumps(d.to_dict()))
        assert blob["backend"] == d.backend
        assert blob["max_ops"] == d.max_ops
        assert tuple(blob["shape"]) == d.shape


class TestCalibration:
    def test_calibrate_returns_positive_prices_and_caches(self):
        c1 = calibrate_pipe(samples=4)
        c2 = calibrate_pipe(samples=4)
        assert c1 is c2  # memoized
        assert c1.roundtrip_s > 0 and c1.spawn_s > 0
        assert measure_roundtrip(samples=4) == c1.roundtrip_s

    def test_refresh_measures_again(self):
        c1 = calibrate_pipe(samples=4)
        c2 = calibrate_pipe(samples=4, refresh=True)
        assert c2 is not c1


class TestWiring:
    def test_resolve_executor_auto_returns_owned_backend(self):
        from repro.runtime.process import ProcessExecutor, resolve_executor
        from repro.runtime.threaded import ThreadedExecutor

        ex, owned = resolve_executor(
            "auto", 4, hints={"kind": "lu", "m": 96, "n": 48, "b": 16, "tr": 4}
        )
        try:
            assert owned
            assert isinstance(ex, (ThreadedExecutor, ProcessExecutor))
            assert isinstance(ex.autotune_decision, DispatchDecision)
        finally:
            if isinstance(ex, ProcessExecutor):
                ex.close()

    def test_service_config_validates_fuse(self):
        from repro.service.service import ServiceConfig

        ServiceConfig(fuse="auto")
        ServiceConfig(fuse=None)
        ServiceConfig(fuse=8)
        with pytest.raises(ValueError):
            ServiceConfig(fuse=0)
        with pytest.raises(ValueError):
            ServiceConfig(fuse="always")
