"""Tests for the analytic machine model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.model import KernelProfile, MachineModel
from repro.machine.presets import amd16_acml, generic, intel8_mkl
from repro.runtime.task import Cost


@pytest.fixture
def mach():
    return intel8_mkl()


class TestEfficiency:
    def test_saturation_monotone_in_k(self, mach):
        effs = [mach.efficiency(Cost("gemm", 1000, 1000, k)) for k in (4, 16, 64, 256)]
        assert effs == sorted(effs)
        assert effs[-1] <= 1.0

    def test_library_factor_applies(self, mach):
        c_mkl = Cost("gemm", 500, 500, 100, library="mkl")
        c_acml = Cost("gemm", 500, 500, 100, library="acml")
        assert mach.efficiency(c_mkl) > mach.efficiency(c_acml)

    def test_unknown_kernel_gets_default(self, mach):
        assert 0.0 < mach.efficiency(Cost("mystery_kernel", 100, 100, 100)) <= 1.0

    def test_efficiency_capped_at_one(self):
        m = generic(profiles={"x": KernelProfile(eff=5.0)})
        assert m.efficiency(Cost("x", 10, 10, 10)) == 1.0

    def test_saturation_dim_prefers_k(self):
        assert MachineModel.saturation_dim(Cost("gemm", 1000, 500, 64)) == 64
        assert MachineModel.saturation_dim(Cost("getf2", 1000, 50)) == 50
        assert MachineModel.saturation_dim(Cost("x")) == 1.0


class TestBytesPerFlop:
    def test_blas3_shrinks_with_inner_dim(self, mach):
        b1 = mach.bytes_per_flop(Cost("gemm", 1000, 1000, 10))
        b2 = mach.bytes_per_flop(Cost("gemm", 1000, 1000, 100))
        assert b1 > b2

    def test_membound_cached_vs_streaming(self, mach):
        small = mach.bytes_per_flop(Cost("getf2", 100, 50))
        huge = mach.bytes_per_flop(Cost("getf2", 10_000_000, 50))
        assert small < huge
        prof = mach.profile("getf2")
        assert small < 2 * prof.bpf_cached + 0.5
        assert huge > prof.bpf_stream * 0.9

    def test_membound_transition_smooth(self, mach):
        """No cliffs: bpf grows monotonically with the footprint."""
        vals = [mach.bytes_per_flop(Cost("getf2", m, 100)) for m in (10**3, 10**4, 10**5, 10**6, 10**7)]
        assert vals == sorted(vals)

    def test_inv_dim_makes_skinny_panels_hungrier(self, mach):
        wide = mach.bytes_per_flop(Cost("rgetf2", 10**6, 200))
        skinny = mach.bytes_per_flop(Cost("rgetf2", 10**6, 10))
        assert skinny > wide


class TestRatesAndTimes:
    def test_compute_rate_positive(self, mach):
        assert mach.compute_rate(Cost("gemm", 100, 100, 100, flops=1)) > 0

    def test_intra_parallel_credits_vendor_panel(self, mach):
        prof = mach.profile("getrf_panel")
        assert prof.intra_parallel > 1.0
        # Cached vendor panel beats the raw BLAS2 kernel.
        c_vendor = Cost("getrf_panel", 500, 100, flops=1e6, library="mkl")
        c_blas2 = Cost("getf2", 500, 100, flops=1e6, library="mkl")
        assert mach.seq_time(c_vendor) < mach.seq_time(c_blas2)

    def test_seq_time_includes_overhead(self, mach):
        t = mach.seq_time(Cost("gemm", 1, 1, 1, flops=0, library="repro"))
        assert t == pytest.approx(mach.task_overhead_us * 1e-6)

    def test_overhead_factor_per_library(self, mach):
        t_repro = mach.task_overhead_s(Cost("gemm", library="repro"))
        t_mkl = mach.task_overhead_s(Cost("gemm", library="mkl"))
        assert t_mkl < t_repro

    def test_pure_memory_task(self, mach):
        work, rate, demand = mach.work_and_demand(Cost("laswp", words=1000))
        assert work == 8000.0
        assert demand == 1.0
        assert rate == mach.core_bw_gbs * 1e9

    def test_empty_task(self, mach):
        work, rate, demand = mach.work_and_demand(Cost("copy"))
        assert work == 0.0

    def test_bandwidth_caps_membound_rate(self, mach):
        c = Cost("getf2", 10**6, 100, flops=1e10)
        _, rate, bpf = mach.work_and_demand(c)
        assert rate * bpf <= mach.bandwidth_cap(c) + 1e-6


class TestShareRates:
    def test_compute_bound_tasks_unconstrained(self, mach):
        rates = mach.share_rates([(1e9, 0.0), (2e9, 0.0)])
        assert rates == [1e9, 2e9]

    def test_bandwidth_split_fairly(self, mach):
        bw = mach.mem_bw_gbs * 1e9
        # Two identical hungry tasks: each gets half the bandwidth.
        r = mach.share_rates([(1e12, 8.0), (1e12, 8.0)])
        assert r[0] == pytest.approx(bw / 2 / 8.0)
        assert r[1] == pytest.approx(r[0])

    def test_small_consumer_gets_full_rate(self, mach):
        bw = mach.mem_bw_gbs * 1e9
        small = bw / 100.0  # needs 1% of bandwidth
        r = mach.share_rates([(small, 1.0), (1e13, 8.0)])
        assert r[0] == pytest.approx(small)
        assert r[1] == pytest.approx((bw - small) / 8.0)

    def test_total_bandwidth_never_exceeded(self, mach):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = rng.integers(1, 10)
            demands = [(float(rng.uniform(1e6, 1e12)), float(rng.uniform(0, 10))) for _ in range(n)]
            rates = mach.share_rates(demands)
            used = sum(r * d[1] for r, d in zip(rates, demands))
            assert used <= mach.mem_bw_gbs * 1e9 * (1 + 1e-9)
            for r, (mx, _) in zip(rates, demands):
                assert r <= mx * (1 + 1e-9)

    def test_empty(self, mach):
        assert mach.share_rates([]) == []


class TestPresets:
    def test_intel_peak(self):
        m = intel8_mkl()
        assert m.cores == 8
        assert m.peak_core_gflops * m.cores == pytest.approx(80.0)

    def test_amd_peak(self):
        m = amd16_acml()
        assert m.cores == 16
        assert m.peak_core_gflops == pytest.approx(8.8)

    def test_overrides(self):
        m = intel8_mkl(cores=4, task_overhead_us=99.0)
        assert m.cores == 4 and m.task_overhead_us == 99.0

    def test_generic_sizes(self):
        assert generic(2).cores == 2

    def test_mkl_gemm_ceiling_near_paper(self):
        """MKL's measured 61.4 GFLOP/s at n=1e4 ~ the modelled gemm ceiling."""
        m = intel8_mkl()
        c = Cost("gemm", 10000, 128, 128, library="mkl")
        ceiling = m.compute_rate(c) * m.cores / 1e9
        assert 55.0 < ceiling < 70.0

    def test_amd_machine_plateau_low(self):
        """Every library plateaus near 40 GFLOP/s on the AMD box (paper)."""
        m = amd16_acml()
        c = Cost("gemm", 5000, 200, 200, library="plasma")
        ceiling = m.compute_rate(c) * m.cores / 1e9
        assert 30.0 < ceiling < 50.0


@given(
    st.floats(1.0, 1e12),
    st.floats(0.0, 16.0),
    st.integers(1, 6),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_property_share_rates_max_min_fair(max_rate, demand, n, seed):
    """No task can raise its rate without lowering a slower task's."""
    mach = generic(4)
    rng = np.random.default_rng(seed)
    demands = [(max_rate * float(rng.uniform(0.1, 1)), demand * float(rng.uniform(0.1, 1))) for _ in range(n)]
    rates = mach.share_rates(demands)
    assert len(rates) == n
    used = sum(r * d for r, (_, d) in zip(rates, demands))
    assert used <= mach.mem_bw_gbs * 1e9 * (1 + 1e-9)
    for r, (mx, d) in zip(rates, demands):
        assert 0 <= r <= mx * (1 + 1e-9)
        if d == 0:
            assert r == pytest.approx(mx)
