"""Tests for host calibration of the machine model."""

import numpy as np
import pytest

from repro.machine.calibrate import (
    KernelSample,
    _time_once,
    calibrate_host,
    fit_profile,
    measure_kernel_rates,
)
from repro.runtime.task import Cost


class TestTimeOnce:
    def test_setup_runs_fresh_per_rep(self):
        # Destructive kernels (getf2 and friends) need a fresh operand
        # every repetition; setup must produce one and fn must receive it.
        produced = []

        def setup():
            arr = np.zeros(4)
            produced.append(arr)
            return arr

        seen = []
        rate = _time_once(lambda a: seen.append(a), 1.0, min_time=1e-6, setup=setup)
        assert rate > 0
        assert len(seen) == len(produced) >= 1
        assert all(a is b for a, b in zip(seen, produced))

    def test_setup_cost_excluded_from_timing(self):
        # A setup far slower than the kernel must not drag the measured
        # rate down: timing the copy was the calibration bug this guards.
        import time as _time

        kernel_s, setup_s, flops = 0.002, 0.02, 1e6
        rate = _time_once(
            lambda _: _time.sleep(kernel_s),
            flops,
            min_time=0.004,
            setup=lambda: _time.sleep(setup_s),
        )
        # Rate if setup leaked into the timed region: flops/(kernel+setup).
        poisoned = flops / (kernel_s + setup_s) / 1e9
        assert rate > 3 * poisoned

    def test_no_setup_calls_fn_without_argument(self):
        calls = []
        rate = _time_once(lambda: calls.append(1), 5.0, min_time=1e-6)
        assert rate > 0
        assert len(calls) >= 1


class TestFitProfile:
    def test_recovers_synthetic_curve(self):
        r_inf, d_half = 8.0, 24.0
        samples = [KernelSample(d, r_inf * d / (d + d_half)) for d in (8, 16, 32, 64, 128)]
        prof = fit_profile(samples, peak_gflops=10.0)
        assert prof.eff == pytest.approx(r_inf / 10.0, rel=0.05)
        assert prof.half_dim == pytest.approx(d_half, rel=0.1)

    def test_single_sample(self):
        prof = fit_profile([KernelSample(32, 5.0)], peak_gflops=10.0)
        assert prof.eff == pytest.approx(0.5)
        assert prof.half_dim == 0.0

    def test_no_samples(self):
        with pytest.raises(ValueError):
            fit_profile([], peak_gflops=1.0)

    def test_eff_clamped(self):
        samples = [KernelSample(d, 100.0) for d in (16, 32)]
        prof = fit_profile(samples, peak_gflops=1.0)
        assert prof.eff <= 1.0


class TestMeasure:
    @pytest.fixture(scope="class")
    def rates(self):
        # Tiny, fast measurement pass.
        return measure_kernel_rates(dims=(8, 16), rows=256)

    def test_all_kernels_measured(self, rates):
        assert set(rates) == {"gemm", "getf2", "rgetf2", "geqr2", "geqr3"}
        for samples in rates.values():
            assert len(samples) == 2
            assert all(s.gflops > 0 for s in samples)

    def test_gemm_fastest_class(self, rates):
        best_gemm = max(s.gflops for s in rates["gemm"])
        best_blas2 = max(s.gflops for s in rates["getf2"])
        assert best_gemm > best_blas2


class TestCalibrateHost:
    @pytest.fixture(scope="class")
    def mach(self):
        return calibrate_host(cores=2, dims=(8, 16), rows=256)

    def test_model_well_formed(self, mach):
        assert mach.cores == 2
        assert mach.peak_core_gflops > 0
        for kernel in ("gemm", "getf2", "rgetf2", "geqr2", "geqr3", "trsm_llnu", "larfb"):
            assert kernel in mach.profiles
            assert 0 < mach.profiles[kernel].eff <= 1.0

    def test_model_prices_tasks(self, mach):
        t = mach.seq_time(Cost("gemm", 256, 64, 64, flops=2 * 256 * 64 * 64))
        assert t > 0

    def test_model_runs_simulation(self, mach):
        from repro.bench.methods import simulate_lu

        r = simulate_lu("calu", 2000, 200, mach, tr=2)
        assert r.gflops > 0

    def test_blas2_membound(self, mach):
        assert mach.profiles["getf2"].membound
        assert not mach.profiles["gemm"].membound
