"""The named-primitive factories and the dynamic lock witness."""

import threading
import time

from repro.runtime import sync
from repro.runtime.sync import (
    LockWitness,
    TrackedCondition,
    TrackedLock,
    make_condition,
    make_lock,
    make_rlock,
    note_roundtrip,
    witnessing,
)


class TestFactoriesPlain:
    """Outside sanitize mode the factories must be zero-overhead stdlib."""

    def test_make_lock_is_stdlib(self):
        lock = make_lock("t.plain")
        assert isinstance(lock, type(threading.Lock()))

    def test_make_rlock_is_stdlib(self):
        lock = make_rlock("t.plain")
        assert isinstance(lock, type(threading.RLock()))

    def test_make_condition_is_stdlib(self):
        cond = make_condition("t.plain")
        assert type(cond) is threading.Condition

    def test_note_roundtrip_is_noop(self):
        note_roundtrip()  # must not raise with no witness active

    def test_no_witness_active_by_default(self):
        assert sync.active_witness() is None


class TestWitnessingContext:
    def test_primitives_created_inside_are_tracked(self):
        with witnessing() as w:
            lock = make_lock("t.in")
            rlock = make_rlock("t.rin")
            cond = make_condition("t.cin")
        assert isinstance(lock, TrackedLock)
        assert isinstance(rlock, TrackedLock)
        assert isinstance(cond, TrackedCondition)
        assert lock.witness is w

    def test_context_exit_restores_plain_mode(self):
        with witnessing():
            pass
        assert sync.active_witness() is None
        assert isinstance(make_lock("t.after"), type(threading.Lock()))

    def test_condition_aliases_tracked_lock_name(self):
        with witnessing() as w:
            lock = make_lock("t.state")
            cond = make_condition("t.state", lock)
        with cond:
            pass
        assert w.acquired == {"t.state": 1}


class TestWitnessRecording:
    def test_acquisition_counts_and_hold_times(self):
        with witnessing() as w:
            lock = make_lock("t.a")
        with lock:
            time.sleep(0.01)
        with lock:
            pass
        assert w.acquired["t.a"] == 2
        assert w.hold_max_s["t.a"] >= 0.01
        assert w.hold_total_s["t.a"] >= w.hold_max_s["t.a"]

    def test_nested_acquisition_records_edge(self):
        with witnessing() as w:
            a = make_lock("t.a")
            b = make_lock("t.b")
        with a:
            with b:
                pass
        assert w.edge_names() == {("t.a", "t.b")}
        assert w.edges[("t.a", "t.b")] == 1

    def test_sequential_acquisition_records_no_edge(self):
        with witnessing() as w:
            a = make_lock("t.a")
            b = make_lock("t.b")
        with a:
            pass
        with b:
            pass
        assert w.edge_names() == set()

    def test_rlock_reentry_is_not_an_edge(self):
        with witnessing() as w:
            a = make_rlock("t.a")
        with a:
            with a:
                pass
        assert w.edge_names() == set()
        assert w.acquired["t.a"] == 2

    def test_held_stack_is_per_thread(self):
        with witnessing() as w:
            a = make_lock("t.a")
            b = make_lock("t.b")
        edges_seen = []

        def other():
            with b:
                edges_seen.append(w.edge_names())

        with a:
            t = threading.Thread(target=other)
            t.start()
            t.join()
        # The other thread held nothing when it took b: no cross-thread edge.
        assert edges_seen == [set()]

    def test_condition_wait_releases_the_lock(self):
        with witnessing() as w:
            cond = make_condition("t.cond")
        ready = threading.Event()

        def waiter():
            with cond:
                ready.set()
                cond.wait(5)

        t = threading.Thread(target=waiter)
        t.start()
        assert ready.wait(5)
        # The waiter is inside cond.wait(); the mutex must be free for us.
        with cond:
            cond.notify()
        t.join(5)
        assert not t.is_alive()
        # One acquisition from each thread plus the waiter's reacquisition.
        assert w.acquired["t.cond"] == 3

    def test_roundtrip_marker_records_held_locks(self):
        with witnessing() as w:
            a = make_lock("t.a")
            b = make_lock("t.b")
            note_roundtrip()
            assert w.roundtrip_held == set()
            with a:
                note_roundtrip()
            with b:
                pass
        assert w.roundtrip_held == {"t.a"}

    def test_snapshot_is_json_shaped(self):
        with witnessing() as w:
            a = make_lock("t.a")
            b = make_lock("t.b")
        with a:
            with b:
                pass
        snap = w.snapshot()
        assert snap["locks"] == ["t.a", "t.b"]
        assert snap["edges"] == {"t.a -> t.b": 1}
        assert set(snap["hold_max_s"]) == {"t.a", "t.b"}

    def test_tracked_lock_protocol(self):
        w = LockWitness()
        lock = TrackedLock("t.a", w)
        assert not lock.locked()
        assert lock.acquire(timeout=1)
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        lock.release()
