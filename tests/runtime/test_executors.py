"""Tests for the threaded and simulated executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters import counting
from repro.machine.presets import generic
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.task import Cost, Task, TaskKind
from repro.runtime.threaded import ThreadedExecutor


def _mk(flops=1e6, kernel="gemm"):
    return Cost(kernel, 100, 100, 100, flops=flops)


def random_graph(seed: int, n_tasks: int) -> tuple[TaskGraph, list, list]:
    """A random DAG whose tasks append their id to a shared log."""
    rng = np.random.default_rng(seed)
    g = TaskGraph(f"rand{seed}")
    log: list[int] = []
    deps_record = []

    def mk(i):
        def fn():
            log.append(i)

        return fn

    for i in range(n_tasks):
        k = int(rng.integers(0, min(i, 3) + 1))
        deps = sorted(rng.choice(i, size=k, replace=False).tolist()) if i and k else []
        deps_record.append(deps)
        g.add(f"t{i}", TaskKind.S, _mk(), fn=mk(i), deps=deps)
    return g, log, deps_record


class TestReadyQueue:
    def test_priority_order(self):
        q = ReadyQueue("priority")
        for i, p in enumerate([1.0, 5.0, 3.0]):
            q.push(Task(tid=i, name=str(i), kind=TaskKind.S, cost=_mk(), priority=p))
        assert [q.pop().tid for _ in range(3)] == [1, 2, 0]

    def test_fifo_ignores_priority(self):
        q = ReadyQueue("fifo")
        for i, p in enumerate([1.0, 5.0, 3.0]):
            q.push(Task(tid=i, name=str(i), kind=TaskKind.S, cost=_mk(), priority=p))
        assert [q.pop().tid for _ in range(3)] == [0, 1, 2]

    def test_stable_ties(self):
        q = ReadyQueue("priority")
        for i in range(5):
            q.push(Task(tid=i, name=str(i), kind=TaskKind.S, cost=_mk(), priority=2.0))
        assert [q.pop().tid for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            ReadyQueue("bogus")

    def test_len_and_bool(self):
        q = ReadyQueue()
        assert not q and len(q) == 0
        q.push(Task(tid=0, name="x", kind=TaskKind.S, cost=_mk()))
        assert q and len(q) == 1


class TestThreadedExecutor:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_executes_all_respecting_deps(self, workers, seed):
        g, log, deps = random_graph(seed, 40)
        ThreadedExecutor(workers).run(g)
        assert sorted(log) == list(range(40))
        pos = {t: i for i, t in enumerate(log)}
        for t, dd in enumerate(deps):
            for d in dd:
                assert pos[d] < pos[t]

    def test_trace_complete(self):
        g, _, _ = random_graph(3, 25)
        trace = ThreadedExecutor(2).run(g)
        assert len(trace.records) == 25
        trace.validate_schedule(g)

    def test_exception_propagates(self):
        g = TaskGraph()

        def boom():
            raise RuntimeError("task failed")

        g.add("boom", TaskKind.P, _mk(), fn=boom)
        g.add("after", TaskKind.S, _mk(), fn=lambda: None, deps=[0])
        with pytest.raises(RuntimeError, match="task failed"):
            ThreadedExecutor(2).run(g)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)

    def test_empty_graph(self):
        trace = ThreadedExecutor(2).run(TaskGraph())
        assert trace.records == []

    def test_symbolic_tasks_allowed(self):
        g = TaskGraph()
        g.add("sym", TaskKind.P, _mk())  # fn=None
        trace = ThreadedExecutor(1).run(g)
        assert len(trace.records) == 1


class TestSimulatedExecutor:
    def test_schedule_valid_and_deterministic(self):
        mach = generic(4)
        g, _, _ = random_graph(5, 60)
        t1 = SimulatedExecutor(mach).run(g)
        g2, _, _ = random_graph(5, 60)
        t2 = SimulatedExecutor(mach).run(g2)
        t1.validate_schedule(g)
        assert t1.makespan == t2.makespan
        assert [(r.tid, r.core, r.start) for r in t1.records] == [
            (r.tid, r.core, r.start) for r in t2.records
        ]

    def test_execute_flag_runs_numerics(self):
        mach = generic(2)
        g, log, deps = random_graph(7, 30)
        SimulatedExecutor(mach, execute=True).run(g)
        assert sorted(log) == list(range(30))
        pos = {t: i for i, t in enumerate(log)}
        for t, dd in enumerate(deps):
            for d in dd:
                assert pos[d] < pos[t]

    def test_without_execute_numerics_skipped(self):
        mach = generic(2)
        g, log, _ = random_graph(8, 10)
        SimulatedExecutor(mach, execute=False).run(g)
        assert log == []

    def test_parallel_speedup(self):
        """Independent equal tasks on c cores finish ~c times faster."""
        def build(n):
            g = TaskGraph()
            for i in range(n):
                g.add(f"t{i}", TaskKind.S, _mk(1e8))
            return g

        t1 = SimulatedExecutor(generic(1)).run(build(8))
        t4 = SimulatedExecutor(generic(4)).run(build(8))
        assert t1.makespan / t4.makespan == pytest.approx(4.0, rel=0.05)

    def test_chain_not_parallelizable(self):
        g = TaskGraph()
        prev = None
        for i in range(6):
            prev = g.add(f"t{i}", TaskKind.S, _mk(1e8), deps=[prev] if prev is not None else [])
        t1 = SimulatedExecutor(generic(1)).run(g)
        g2 = TaskGraph()
        prev = None
        for i in range(6):
            prev = g2.add(f"t{i}", TaskKind.S, _mk(1e8), deps=[prev] if prev is not None else [])
        t4 = SimulatedExecutor(generic(4)).run(g2)
        # Sync latency makes the multicore chain marginally *slower*.
        assert t4.makespan >= t1.makespan * 0.99

    def test_priority_policy_prefers_high_priority(self):
        mach = generic(1)
        g = TaskGraph()
        g.add("low", TaskKind.S, _mk(), priority=0.0)
        g.add("high", TaskKind.P, _mk(), priority=10.0)
        trace = SimulatedExecutor(mach).run(g)
        order = [r.name for r in sorted(trace.records, key=lambda r: r.start)]
        assert order == ["high", "low"]

    def test_fifo_policy(self):
        mach = generic(1)
        g = TaskGraph()
        g.add("low", TaskKind.S, _mk(), priority=0.0)
        g.add("high", TaskKind.P, _mk(), priority=10.0)
        trace = SimulatedExecutor(mach, policy="fifo").run(g)
        order = [r.name for r in sorted(trace.records, key=lambda r: r.start)]
        assert order == ["low", "high"]

    def test_zero_cost_tasks_complete(self):
        g = TaskGraph()
        g.add("empty", TaskKind.X, Cost("copy"))
        trace = SimulatedExecutor(generic(2)).run(g)
        assert len(trace.records) == 1

    def test_memory_bound_contention(self):
        """Two concurrent memory-bound tasks share aggregate bandwidth."""
        mach = generic(4, mem_bw_gbs=4.0, core_bw_gbs=4.0, task_overhead_us=0.0)

        def build(n):
            g = TaskGraph()
            for i in range(n):
                g.add(f"t{i}", TaskKind.P, Cost("getf2", 100000, 64, flops=1e8))
            return g

        t_one = SimulatedExecutor(mach).run(build(1))
        t_four = SimulatedExecutor(mach).run(build(4))
        # With bw shared, 4 tasks take ~4x the single-task time, not 1x.
        ratio = t_four.makespan / t_one.makespan
        assert ratio > 2.0

    def test_sync_counted_for_remote_deps(self):
        mach = generic(4)
        g = TaskGraph()
        a = g.add("a", TaskKind.P, _mk())
        b = g.add("b", TaskKind.P, _mk())
        g.add("c", TaskKind.S, _mk(), deps=[a, b])
        with counting() as c:
            SimulatedExecutor(mach).run(g)
        assert c.syncs >= 1


def _mk_words(words):
    return Cost("laswp", words=words)


@given(st.integers(0, 100), st.integers(1, 8), st.integers(5, 40))
@settings(max_examples=25, deadline=None)
def test_property_simulated_schedule_always_valid(seed, cores, n_tasks):
    mach = generic(cores)
    g, _, _ = random_graph(seed, n_tasks)
    trace = SimulatedExecutor(mach).run(g)
    trace.validate_schedule(g)
    assert len(trace.records) == n_tasks
    assert trace.makespan > 0.0
