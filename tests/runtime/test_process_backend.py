"""Tests for the shared-memory process backend.

Four layers, matching the subsystem's structure:

* :class:`~repro.runtime.shm.SharedArena` — allocation, spec round-trip,
  zero-copy attach, teardown;
* the worker pool — descriptors really execute in another process,
  worker-side exceptions propagate, a killed worker is detected,
  respawned and surfaced as a structured ``worker_death`` failure;
* engine dispatch — ``meta["op"]`` tasks go to workers (their closures
  are *not* called), descriptor-less tasks run inline, ``op_sync``
  mirrors worker results into the parent, and an idempotent task whose
  worker dies is retried by the usual :class:`RetryPolicy`;
* end to end — CALU and CAQR through ``executor="process"`` produce
  **bitwise-identical** factors to the threaded backend on binary and
  flat reduction trees, and checkpoint/resume works across backends.
"""

import os

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.resilience.checkpoint import Checkpoint, MemoryStore
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime import ops
from repro.runtime.graph import TaskGraph
from repro.runtime.process import ProcessExecutor, _WorkerPool, resolve_executor
from repro.runtime.shm import SharedArena, ShmBinding, attach_array, spec_nbytes
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng

TREES = [TreeKind.BINARY, TreeKind.FLAT]

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="test ops are registered in-process and reach workers via fork",
)


# ----------------------------------------------------------------------
# Test-only ops: registered in the parent, inherited by forked workers.
# ----------------------------------------------------------------------


def _op_write_pid(payload):
    buf = attach_array(payload["buf"])
    buf[0] = float(os.getpid())


def _op_die(payload):
    os._exit(3)


def _op_die_once(payload):
    counter = attach_array(payload["counter"])
    if counter[0] == 0:
        counter[0] = 1
        os._exit(3)
    counter[1] = 42.0


def _op_raise(payload):
    raise ValueError(f"worker-side error on {payload['what']}")


@pytest.fixture(autouse=True)
def _test_ops():
    extra = {
        "test_write_pid": _op_write_pid,
        "test_die": _op_die,
        "test_die_once": _op_die_once,
        "test_raise": _op_raise,
    }
    ops.OPS.update(extra)
    yield
    for name in extra:
        ops.OPS.pop(name, None)


# ----------------------------------------------------------------------
# SharedArena
# ----------------------------------------------------------------------


class TestSharedArena:
    def test_alloc_zeroed_aligned_contiguous(self):
        arena = SharedArena()
        try:
            a = arena.alloc((7, 5))
            b = arena.alloc(3, dtype=np.int64)
            assert a.shape == (7, 5) and a.dtype == np.float64
            assert np.all(a == 0) and np.all(b == 0)
            assert a.flags["C_CONTIGUOUS"]
            for arr in (a, b):
                assert arr.__array_interface__["data"][0] % 64 == 0
        finally:
            arena.destroy()

    def test_place_copies_and_spec_round_trips(self):
        arena = SharedArena()
        try:
            src = make_rng(0).standard_normal((6, 4))
            view = arena.place(src)
            assert np.array_equal(view, src)
            assert view is not src
            spec = arena.spec(view)
            assert spec_nbytes(spec) == src.nbytes
            again = attach_array(spec)
            assert np.array_equal(again, src)
            # Same physical pages: a write through one view is seen by
            # the other (this is what makes worker writes visible).
            again[2, 1] = 99.0
            assert view[2, 1] == 99.0
        finally:
            arena.destroy()

    def test_spec_rejects_foreign_and_noncontiguous_arrays(self):
        arena = SharedArena()
        try:
            view = arena.place(np.zeros((4, 4)))
            with pytest.raises(ValueError):
                arena.spec(np.zeros((2, 2)))
            with pytest.raises(ValueError):
                arena.spec(view[:, ::2])
        finally:
            arena.destroy()

    def test_grows_past_one_segment(self):
        arena = SharedArena(segment_bytes=1 << 12)
        try:
            specs = [arena.spec(arena.place(np.full(400, float(i)))) for i in range(4)]
            assert len({s[0] for s in specs}) > 1  # multiple segments
            for i, s in enumerate(specs):
                assert np.all(attach_array(s) == float(i))
        finally:
            arena.destroy()

    def test_destroy_idempotent_and_blocks_alloc(self):
        arena = SharedArena()
        arena.alloc(8)
        arena.destroy()
        arena.destroy()
        with pytest.raises(ValueError):
            arena.alloc(8)

    def test_binding_tracks_matrix_and_workspace(self):
        arena = SharedArena()
        try:
            A = arena.place(np.arange(12.0).reshape(3, 4))
            shm = ShmBinding(arena, A)
            assert np.array_equal(attach_array(shm.a_spec), A)
            view, spec = shm.alloc((2, 2), dtype=np.int64)
            view[:] = 7
            assert np.all(attach_array(spec) == 7)
        finally:
            arena.destroy()


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------


class TestWorkerPool:
    def test_op_runs_in_another_process(self):
        arena = SharedArena()
        pool = _WorkerPool(1)
        try:
            buf = arena.alloc(1)
            pool.run(0, ("test_write_pid", {"buf": arena.spec(buf)}))
            assert buf[0] > 0
            assert int(buf[0]) != os.getpid()
        finally:
            pool.close()
            arena.destroy()

    def test_worker_exception_propagates(self):
        pool = _WorkerPool(1)
        try:
            with pytest.raises(ValueError, match="worker-side error on panel-3"):
                pool.run(0, ("test_raise", {"what": "panel-3"}))
            # The worker survived the exception and keeps serving.
            arena = SharedArena()
            try:
                buf = arena.alloc(1)
                pool.run(0, ("test_write_pid", {"buf": arena.spec(buf)}))
                assert buf[0] > 0
            finally:
                arena.destroy()
        finally:
            pool.close()

    def test_worker_death_detected_and_respawned(self):
        arena = SharedArena()
        pool = _WorkerPool(1)
        try:
            buf = arena.alloc(1)
            pool.run(0, ("test_write_pid", {"buf": arena.spec(buf)}))
            first_pid = int(buf[0])
            with pytest.raises(RuntimeFailure) as info:
                pool.run(0, ("test_die", {}))
            assert info.value.failure_kind == "worker_death"
            assert "test_die" in str(info.value)
            # The pool respawned the worker: next dispatch succeeds on a
            # different process.
            pool.run(0, ("test_write_pid", {"buf": arena.spec(buf)}))
            assert int(buf[0]) not in (0, first_pid)
        finally:
            pool.close()
            arena.destroy()

    def test_unknown_op_is_a_worker_side_error(self):
        pool = _WorkerPool(1)
        try:
            with pytest.raises(ValueError, match="unknown op"):
                pool.run(0, ("no_such_op", {}))
        finally:
            pool.close()

    def test_close_idempotent_and_blocks_run(self):
        pool = _WorkerPool(2)
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            pool.run(0, ("test_write_pid", {}))


# ----------------------------------------------------------------------
# Engine dispatch through ProcessExecutor
# ----------------------------------------------------------------------


def _one_task_graph(fn=None, **meta):
    g = TaskGraph("proc-dispatch")
    g.add("t0", TaskKind.S, Cost("gemm", flops=1e3), fn=fn, **meta)
    return g


class TestEngineDispatch:
    def test_op_task_runs_in_worker_not_closure(self):
        arena = SharedArena()
        closure_ran = []
        synced = []
        try:
            buf = arena.alloc(1)
            with ProcessExecutor(1) as ex:
                ex.run(
                    _one_task_graph(
                        fn=lambda: closure_ran.append(1),
                        op=("test_write_pid", {"buf": arena.spec(buf)}),
                        op_sync=lambda: synced.append(float(buf[0])),
                    )
                )
            assert not closure_ran, "descriptor tasks must not run their closure"
            assert synced and synced[0] > 0 and int(synced[0]) != os.getpid()
        finally:
            arena.destroy()

    def test_closure_only_tasks_run_inline(self):
        ran = []
        with ProcessExecutor(2) as ex:
            ex.run(_one_task_graph(fn=lambda: ran.append(os.getpid())))
            assert ran == [os.getpid()]
            # No descriptors were dispatched, so no worker ever started.
            assert not ex.pool.started

    def test_worker_death_retried_for_idempotent_task(self):
        arena = SharedArena()
        try:
            counter = arena.alloc(2)
            g = TaskGraph("flaky")
            g.add(
                "t0",
                TaskKind.S,
                Cost("gemm", flops=1e3),
                idempotent=True,
                op=("test_die_once", {"counter": arena.spec(counter)}),
            )
            with ProcessExecutor(1, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)) as ex:
                trace = ex.run(g)
            assert counter[1] == 42.0  # second attempt completed the op
            assert trace.resilience_summary().get("retry") == 1
        finally:
            arena.destroy()

    def test_worker_death_without_retry_fails_structured(self):
        g = _one_task_graph(op=("test_die", {}))
        with ProcessExecutor(1) as ex:
            with pytest.raises(RuntimeFailure) as info:
                ex.run(g)
        assert info.value.failure_kind == "worker_death"

    def test_pool_recreated_after_close(self):
        ex = ProcessExecutor(1)
        first = ex.pool
        ex.close()
        assert ex.pool is not first
        ex.close()


# ----------------------------------------------------------------------
# resolve_executor
# ----------------------------------------------------------------------


class TestResolveExecutor:
    def test_strings_create_owned_instances(self):
        for name, cls in (("threaded", ThreadedExecutor), ("process", ProcessExecutor)):
            ex, owned = resolve_executor(name, 2)
            assert isinstance(ex, cls) and owned
            if isinstance(ex, ProcessExecutor):
                ex.close()

    def test_objects_pass_through_unowned(self):
        obj = ThreadedExecutor(2)
        ex, owned = resolve_executor(obj)
        assert ex is obj and not owned

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")


# ----------------------------------------------------------------------
# End to end: bitwise equality with the threaded backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_calu_process_matches_threaded_bitwise(tree):
    A = make_rng(50).standard_normal((72, 48))
    ref = calu(A, b=12, tr=4, tree=tree, executor="threaded")
    f = calu(A, b=12, tr=4, tree=tree, executor="process")
    np.testing.assert_array_equal(f.piv, ref.piv)
    np.testing.assert_array_equal(f.lu, ref.lu)


@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_caqr_process_matches_threaded_bitwise(tree):
    A = make_rng(51).standard_normal((72, 48))
    ref = caqr(A, b=12, tr=4, tree=tree, executor="threaded")
    f = caqr(A, b=12, tr=4, tree=tree, executor="process")
    np.testing.assert_array_equal(f.R, ref.R)
    np.testing.assert_array_equal(f.packed, ref.packed)
    for s_ref, s_f in zip(ref.panels, f.panels):
        a_ref, a_f = s_ref.to_arrays(), s_f.to_arrays()
        assert set(a_ref) == set(a_f)
        for key in a_ref:
            np.testing.assert_array_equal(a_f[key], a_ref[key])
    rhs = make_rng(52).standard_normal(72)
    np.testing.assert_array_equal(f.apply_qt(rhs), ref.apply_qt(rhs))


def test_tslu_tsqr_process_match_threaded():
    A = make_rng(53).standard_normal((96, 12))
    ref_l, ref_piv = tslu(A.copy(), tr=4, executor="threaded")
    got_l, got_piv = tslu(A.copy(), tr=4, executor="process")
    np.testing.assert_array_equal(got_l, ref_l)
    np.testing.assert_array_equal(got_piv, ref_piv)
    ref_q = tsqr(A.copy(), tr=4, executor="threaded")
    got_q = tsqr(A.copy(), tr=4, executor="process")
    np.testing.assert_array_equal(got_q.R, ref_q.R)


def test_shared_executor_instance_across_runs():
    # One pool, many factorizations: the workers persist across runs.
    A = make_rng(54).standard_normal((48, 32))
    with ProcessExecutor(2) as ex:
        f1 = calu(A, b=8, tr=2, executor=ex)
        f2 = calu(A, b=8, tr=2, executor=ex)
    np.testing.assert_array_equal(f1.lu, f2.lu)
    np.testing.assert_array_equal(f1.piv, f2.piv)


def test_calu_process_crash_resume_bitwise_identical():
    # Crash a threaded checkpointed run mid-flight, then resume it on the
    # process backend: the journal skip + arena repopulation path must
    # still converge to the uninterrupted answer bitwise.
    A0 = make_rng(55).standard_normal((64, 64))
    clean = calu(A0, b=8, tr=2)
    ckpt = Checkpoint(MemoryStore())

    class CrashAfter:
        def __init__(self, inner, n):
            self.inner, self.n, self.count = inner, n, 0

        def run(self, graph, journal=None):
            import threading

            lock = threading.Lock()
            for t in graph.tasks:
                fn = t.fn
                if fn is None:
                    continue

                def wrapped(fn=fn, name=t.name):
                    with lock:
                        self.count += 1
                        if self.count > self.n:
                            raise RuntimeError(f"chaos kill in {name}")
                    fn()

                t.fn = wrapped
            return self.inner.run(graph, journal=journal)

    crash_at = max(1, len(clean.trace.records) // 2)
    with pytest.raises(RuntimeFailure):
        calu(A0, b=8, tr=2, executor=CrashAfter(ThreadedExecutor(2), crash_at), checkpoint=ckpt)
    f = calu(A0, b=8, tr=2, executor="process", checkpoint=ckpt)
    if ckpt.snapshot_chain():
        assert f.trace.resilience_summary().get("resume") == 1
    np.testing.assert_array_equal(f.lu, clean.lu)
    np.testing.assert_array_equal(f.piv, clean.piv)


def test_solve_and_lstsq_accept_process_executor():
    from repro.linalg import lstsq, solve

    rng = make_rng(56)
    A = rng.standard_normal((48, 48)) + 48 * np.eye(48)
    rhs = rng.standard_normal(48)
    x_t = solve(A, rhs, executor="threaded")
    x_p = solve(A, rhs, executor="process")
    np.testing.assert_array_equal(x_p, x_t)
    B = rng.standard_normal((64, 32))
    c = rng.standard_normal(64)
    y_t = lstsq(B, c, executor="threaded")
    y_p = lstsq(B, c, executor="process")
    np.testing.assert_array_equal(y_p, y_t)
