"""Shared-memory leak protection: atexit backstop and kill -9 coverage.

Two layers keep ``/dev/shm`` clean when a driver forgets (or never gets
the chance) to call :meth:`SharedArena.destroy`:

* a module-level ``atexit`` hook destroys every live arena on normal
  interpreter exit;
* ``kill -9`` skips atexit entirely — there the stdlib
  ``multiprocessing`` resource tracker (a separate process that
  outlives the SIGKILL'd parent) unlinks the registered segments.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.runtime import shm as shm_mod
from repro.runtime.shm import SharedArena

SRC = str(Path(__file__).resolve().parents[2] / "src")

shm_fs = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="requires a /dev/shm tmpfs"
)


def _segment_paths(arena):
    return [f"/dev/shm/{seg.name}" for seg in arena._segments]


def _wait_gone(paths, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(os.path.exists(p) for p in paths):
            return True
        time.sleep(0.05)
    return not any(os.path.exists(p) for p in paths)


class TestAtexitHook:
    def test_hook_is_registered_and_destroys_live_arenas(self):
        arena = SharedArena()
        arena.alloc((8, 8))
        assert arena in shm_mod._LIVE_ARENAS
        shm_mod._atexit_destroy()
        assert arena._destroyed

    def test_hook_survives_an_already_destroyed_arena(self):
        arena = SharedArena()
        arena.alloc(4)
        arena.destroy()
        shm_mod._atexit_destroy()  # must not raise

    @shm_fs
    def test_normal_exit_without_destroy_leaks_nothing(self):
        # A child that builds an arena, keeps a strong global reference
        # (so __del__ alone cannot be the cleaner) and exits without
        # calling destroy(): the atexit hook must unlink the segments.
        code = textwrap.dedent(
            """
            import sys
            from repro.runtime.shm import SharedArena
            KEEP = SharedArena()
            KEEP.alloc((64, 64))
            for seg in KEEP._segments:
                print(seg.name)
            sys.stdout.flush()
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert out.returncode == 0, out.stderr
        names = out.stdout.split()
        assert names, "child created no segments"
        assert _wait_gone([f"/dev/shm/{n}" for n in names]), (
            "segments leaked after normal exit: " + out.stdout
        )


@shm_fs
class TestKillDashNine:
    def test_sigkill_leaks_nothing(self):
        # The child reports its segment names, then SIGKILLs itself —
        # no atexit, no __del__.  The multiprocessing resource tracker
        # must reap the segments.
        code = textwrap.dedent(
            """
            import os, sys
            from repro.runtime.shm import SharedArena
            arena = SharedArena()
            arena.alloc((64, 64))
            for seg in arena._segments:
                print(seg.name)
            sys.stdout.flush()
            os.kill(os.getpid(), 9)
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert out.returncode == -signal.SIGKILL
        names = out.stdout.split()
        assert names, "child created no segments"
        assert _wait_gone([f"/dev/shm/{n}" for n in names]), (
            "segments leaked after kill -9: " + out.stdout
        )
