"""Tests for TaskGraph and block-level dependency discovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.graph import BlockTracker, TaskGraph, col_blocks
from repro.runtime.task import Cost, TaskKind


def cost(flops=1.0):
    return Cost("gemm", 10, 10, 10, flops=flops)


class TestTaskGraph:
    def test_add_and_lookup(self):
        g = TaskGraph("t")
        a = g.add("a", TaskKind.P, cost())
        b = g.add("b", TaskKind.S, cost(), deps=[a])
        assert len(g) == 2
        assert g.preds[b] == [a]
        assert g.succs[a] == [b]

    def test_duplicate_deps_collapse(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.P, cost())
        b = g.add("b", TaskKind.S, cost(), deps=[a, a, a])
        assert g.preds[b] == [a]

    def test_out_of_range_dep_raises(self):
        g = TaskGraph()
        g.add("a", TaskKind.P, cost())
        with pytest.raises(ValueError, match="out of range"):
            g.add("b", TaskKind.S, cost(), deps=[5])

    def test_self_dep_raises(self):
        g = TaskGraph()
        g.add("a", TaskKind.P, cost())
        with pytest.raises(ValueError):
            g.add("b", TaskKind.S, cost(), deps=[1])

    def test_topological_order_respects_deps(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.P, cost())
        b = g.add("b", TaskKind.S, cost(), deps=[a])
        c = g.add("c", TaskKind.S, cost(), deps=[a])
        d = g.add("d", TaskKind.X, cost(), deps=[b, c])
        order = g.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        assert pos[a] < pos[b] < pos[d]
        assert pos[a] < pos[c] < pos[d]

    def test_validate_empty(self):
        TaskGraph().validate()

    def test_totals_and_kind_counts(self):
        g = TaskGraph()
        g.add("a", TaskKind.P, Cost("getf2", flops=10, words=3))
        g.add("b", TaskKind.S, Cost("gemm", flops=20, words=4))
        g.add("c", TaskKind.S, Cost("gemm", flops=30, words=5))
        assert g.total_flops() == 60
        assert g.total_words() == 12
        assert g.count_by_kind() == {"P": 1, "S": 2}

    def test_critical_path(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.P, cost(1))
        b = g.add("b", TaskKind.S, cost(10), deps=[a])
        c = g.add("c", TaskKind.S, cost(2), deps=[a])
        d = g.add("d", TaskKind.X, cost(1), deps=[b, c])
        length, path = g.critical_path(lambda t: t.cost.flops)
        assert length == 12
        assert path == [a, b, d]

    def test_critical_path_empty(self):
        assert TaskGraph().critical_path(lambda t: 1.0) == (0.0, [])

    def test_run_sequential_executes_in_dep_order(self):
        seen = []
        g = TaskGraph()
        a = g.add("a", TaskKind.P, cost(), fn=lambda: seen.append("a"))
        g.add("b", TaskKind.S, cost(), fn=lambda: seen.append("b"), deps=[a])
        g.run_sequential()
        assert seen == ["a", "b"]


class TestBlockTracker:
    def test_read_after_write(self):
        t = BlockTracker()
        g = TaskGraph()
        w = t.add_task(g, "w", TaskKind.P, cost(), writes=[(0, 0)])
        r = t.add_task(g, "r", TaskKind.S, cost(), reads=[(0, 0)])
        assert g.preds[r] == [w]

    def test_write_after_read(self):
        t = BlockTracker()
        g = TaskGraph()
        w = t.add_task(g, "w", TaskKind.P, cost(), writes=[(0, 0)])
        r1 = t.add_task(g, "r1", TaskKind.S, cost(), reads=[(0, 0)])
        r2 = t.add_task(g, "r2", TaskKind.S, cost(), reads=[(0, 0)])
        w2 = t.add_task(g, "w2", TaskKind.S, cost(), writes=[(0, 0)])
        assert set(g.preds[w2]) == {w, r1, r2}

    def test_write_after_write(self):
        t = BlockTracker()
        g = TaskGraph()
        w1 = t.add_task(g, "w1", TaskKind.P, cost(), writes=[(0, 0)])
        w2 = t.add_task(g, "w2", TaskKind.S, cost(), writes=[(0, 0)])
        assert g.preds[w2] == [w1]

    def test_reader_list_reset_after_write(self):
        t = BlockTracker()
        g = TaskGraph()
        t.add_task(g, "w", TaskKind.P, cost(), writes=[(0, 0)])
        t.add_task(g, "r", TaskKind.S, cost(), reads=[(0, 0)])
        w2 = t.add_task(g, "w2", TaskKind.S, cost(), writes=[(0, 0)])
        r2 = t.add_task(g, "r2", TaskKind.S, cost(), reads=[(0, 0)])
        # r2 depends only on the latest writer, not historical readers.
        assert g.preds[r2] == [w2]

    def test_independent_blocks_no_deps(self):
        t = BlockTracker()
        g = TaskGraph()
        t.add_task(g, "w1", TaskKind.P, cost(), writes=[(0, 0)])
        w2 = t.add_task(g, "w2", TaskKind.P, cost(), writes=[(1, 1)])
        assert g.preds[w2] == []

    def test_extra_deps_are_merged(self):
        t = BlockTracker()
        g = TaskGraph()
        a = t.add_task(g, "a", TaskKind.P, cost(), writes=[(0, 0)])
        b = t.add_task(g, "b", TaskKind.P, cost(), writes=[(1, 1)])
        c = t.add_task(g, "c", TaskKind.S, cost(), reads=[(0, 0)], extra_deps=[b])
        assert set(g.preds[c]) == {a, b}

    def test_symbolic_workspace_keys(self):
        t = BlockTracker()
        g = TaskGraph()
        p = t.add_task(g, "p", TaskKind.P, cost(), writes=[("V", 0, 1)])
        s = t.add_task(g, "s", TaskKind.S, cost(), reads=[("V", 0, 1)])
        assert g.preds[s] == [p]

    def test_read_and_write_same_block(self):
        t = BlockTracker()
        g = TaskGraph()
        a = t.add_task(g, "a", TaskKind.S, cost(), reads=[(0, 0)], writes=[(0, 0)])
        b = t.add_task(g, "b", TaskKind.S, cost(), reads=[(0, 0)], writes=[(0, 0)])
        assert g.preds[b] == [a]


def test_col_blocks_helper():
    assert col_blocks(range(2, 5), 7) == [(2, 7), (3, 7), (4, 7)]


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_property_tracker_serializes_conflicting_writes(data):
    """For any access sequence, two writers of one block are ordered."""
    n_tasks = data.draw(st.integers(2, 20))
    t = BlockTracker()
    g = TaskGraph()
    accesses = []
    for i in range(n_tasks):
        reads = data.draw(st.lists(st.integers(0, 3), max_size=2))
        writes = data.draw(st.lists(st.integers(0, 3), max_size=2))
        accesses.append((set(reads), set(writes)))
        t.add_task(
            g,
            f"t{i}",
            TaskKind.S,
            cost(),
            reads=[(b, 0) for b in reads],
            writes=[(b, 0) for b in writes],
        )
    g.validate()
    # Transitive closure via topological longest-path over reachability.
    order = g.topological_order()
    reach = [set() for _ in range(n_tasks)]
    for u in reversed(order):
        for v in g.succs[u]:
            reach[u].add(v)
            reach[u] |= reach[v]
    for i in range(n_tasks):
        for j in range(i + 1, n_tasks):
            ri, wi = accesses[i]
            rj, wj = accesses[j]
            conflict = (wi & wj) or (wi & rj) or (ri & wj)
            if conflict:
                assert j in reach[i], f"conflicting tasks {i},{j} not ordered"


class TestFootprint:
    def test_footprint_accumulates(self):
        t = BlockTracker()
        g = TaskGraph()
        a = t.add_task(g, "a", TaskKind.S, cost(), reads=[(0, 0)], writes=[(1, 0)])
        reads, writes = t.footprint(a)
        assert reads == frozenset({(0, 0)})
        assert writes == frozenset({(1, 0)})

    def test_footprint_merges_repeat_commits(self):
        t = BlockTracker()
        t.commit(0, reads=[(0, 0)])
        t.commit(0, reads=[(0, 1)], writes=[(2, 2)])
        assert t.footprint(0) == (frozenset({(0, 0), (0, 1)}), frozenset({(2, 2)}))

    def test_unknown_tid_raises(self):
        with pytest.raises(KeyError):
            BlockTracker().footprint(99)

    def test_known_tids_sorted(self):
        t = BlockTracker()
        t.commit(5, writes=[(0, 0)])
        t.commit(2, reads=[(0, 0)])
        assert t.known_tids() == [2, 5]

    def test_add_task_mirrors_footprint_into_meta(self):
        t = BlockTracker()
        g = TaskGraph()
        a = t.add_task(g, "a", TaskKind.S, cost(), reads=[(0, 0)], writes=[(1, 0)])
        task = g.tasks[a]
        assert task.reads == frozenset({(0, 0)})
        assert task.writes == frozenset({(1, 0)})
        assert task.has_footprint

    def test_graph_add_accepts_meta_footprint(self):
        # Builders with hand-wired deps (e.g. CALU's leftswaps) declare
        # their footprint directly through graph.add meta kwargs.
        g = TaskGraph()
        a = g.add(
            "a",
            TaskKind.X,
            cost(),
            reads=frozenset({(0, 0)}),
            writes=frozenset({(1, 0)}),
        )
        assert g.tasks[a].reads == frozenset({(0, 0)})
        assert g.tasks[a].writes == frozenset({(1, 0)})
        assert g.tasks[a].has_footprint

    def test_plain_task_has_no_footprint(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.S, cost())
        assert not g.tasks[a].has_footprint
        assert g.tasks[a].reads == frozenset()
        assert g.tasks[a].writes == frozenset()


class TestToDot:
    def test_escapes_quotes_and_backslashes(self):
        g = TaskGraph('g"ra\\ph')
        g.add('t "quoted" \\slash', TaskKind.P, cost())
        dot = g.to_dot()
        assert '"g\\"ra\\\\ph"' in dot
        assert 'label="t \\"quoted\\" \\\\slash"' in dot

    def test_deterministic_edge_order(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.P, cost())
        b = g.add("b", TaskKind.S, cost(), deps=[a])
        c = g.add("c", TaskKind.S, cost(), deps=[a])
        g.succs[a] = [c, b]  # scramble; to_dot must sort
        dot = g.to_dot()
        assert dot.index("t0 -> t1") < dot.index("t0 -> t2")

    def test_stable_across_calls(self):
        g = TaskGraph("same")
        a = g.add("a", TaskKind.P, cost())
        g.add("b", TaskKind.S, cost(), deps=[a])
        assert g.to_dot() == g.to_dot()

    def test_max_tasks_guard(self):
        g = TaskGraph()
        for i in range(5):
            g.add(f"t{i}", TaskKind.P, cost())
        with pytest.raises(ValueError, match="max_tasks"):
            g.to_dot(max_tasks=3)
