"""Task fusion preserves every property the unfused graph proves.

The fused rewrite (:mod:`repro.runtime.fuse`) changes the unit of
dispatch, never the meaning: these tests hold it to that bar —

* structure: group caps, ``X``-task exclusion, footprint unions,
  acyclicity, race-freedom on real builder graphs *and* on randomly
  generated tracker graphs (the property test);
* numerics: bitwise-identical factors through the threaded,
  work-stealing and process backends with fusion on;
* resilience at super-task granularity: journal resume skips completed
  super-tasks by name, and a worker death mid-batch retries the whole
  descriptor list on a fresh worker.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.calu import build_calu_graph, calu, calu_program
from repro.core.caqr import caqr
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.core.tsqr import tsqr
from repro.resilience.checkpoint import Checkpoint, MemoryStore
from repro.resilience.recovery import RetryPolicy
from repro.runtime import ops
from repro.runtime.fuse import FUSED_KERNEL, fusable_task, fuse_graph, fuse_program
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.process import ProcessExecutor
from repro.runtime.program import as_program
from repro.runtime.shm import SharedArena, attach_array
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from repro.verify.races import check_races

fork_available = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="test ops are registered in-process and reach workers via fork"
)


def _race_errors(graph: TaskGraph):
    return [f for f in check_races(graph) if f.severity == "error"]


def _member_names(graph: TaskGraph) -> list[str]:
    """Original task names, ungrouping fused super-tasks."""
    out: list[str] = []
    for t in graph.tasks:
        out.extend(t.meta.get("fused", (t.name,)))
    return out


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------


class TestStructure:
    def _calu_graph(self, tree=TreeKind.BINARY):
        layout = BlockLayout(48, 48, 8)
        return build_calu_graph(layout, 4, tree)[0]

    def test_max_ops_one_is_identity(self):
        g = self._calu_graph()
        p = as_program(g)
        assert fuse_program(p, max_ops=1) is p
        assert len(fuse_graph(g, max_ops=1).tasks) == len(g.tasks)

    def test_groups_respect_cap_and_preserve_membership(self):
        g = self._calu_graph()
        for cap in (2, 4, 8, 16):
            fused = fuse_graph(g, max_ops=cap)
            assert len(fused.tasks) < len(g.tasks)  # something actually fused
            for t in fused.tasks:
                members = t.meta.get("fused")
                if members is not None:
                    assert 2 <= len(members) <= cap
                    assert t.cost.kernel == FUSED_KERNEL
            # Every original task appears exactly once across the rewrite.
            assert sorted(_member_names(fused)) == sorted(x.name for x in g.tasks)

    def test_x_tasks_stay_singletons(self):
        layout = BlockLayout(48, 48, 8)
        A = np.random.default_rng(0).standard_normal((48, 48))
        program, _ = calu_program(
            layout, 4, TreeKind.BINARY, A=A, checkpoint=Checkpoint(MemoryStore())
        )
        fused = fuse_program(program, max_ops=8).materialize()
        names = {t.name for t in fused.tasks}
        for t in fused.tasks:
            if t.kind is TaskKind.X:
                assert "fused" not in t.meta
        # Checkpoint tasks and the left-swap epilogue keep their identity
        # (their names are journal resume keys).
        assert "leftswaps" in names
        assert any(name.startswith("C[") for name in names)

    def test_footprints_are_member_unions(self):
        g = self._calu_graph()
        by_name = {t.name: t for t in g.tasks}
        fused = fuse_graph(g, max_ops=8)
        for t in fused.tasks:
            members = t.meta.get("fused")
            if members is None:
                continue
            reads = frozenset().union(*(by_name[m].reads for m in members))
            writes = frozenset().union(*(by_name[m].writes for m in members))
            assert t.reads == reads and t.writes == writes
            assert t.cost.flops == sum(by_name[m].cost.flops for m in members)

    def test_fused_builder_graphs_stay_race_free(self):
        for tree in (TreeKind.BINARY, TreeKind.FLAT):
            for cap in (2, 8):
                fused = fuse_graph(self._calu_graph(tree), max_ops=cap)
                assert not _race_errors(fused)
                fused.topological_order()  # raises on a cycle

    def test_unfusable_tasks(self):
        g = TaskGraph("t")
        x = g.add("x", TaskKind.X, Cost("noop"))
        bare = g.add("bare", TaskKind.S, Cost("gemm", flops=1.0))
        foot = g.add(
            "foot", TaskKind.S, Cost("gemm", flops=1.0), reads=frozenset({1}), writes=frozenset({2})
        )
        assert not fusable_task(g.tasks[x])
        assert not fusable_task(g.tasks[bare])  # no footprint -> singleton
        assert fusable_task(g.tasks[foot])


# ----------------------------------------------------------------------
# Property test: random tracker graphs
# ----------------------------------------------------------------------


def _random_tracker_graph(seed: int, n_tasks: int = 40, n_blocks: int = 12):
    """A random race-free graph of closures mutating a shared vector.

    Dependencies come from :class:`BlockTracker` exactly as the real
    builders derive them, so the graph is race-free by construction and
    any valid schedule produces the same bytes.
    """
    rng = np.random.default_rng(seed)
    state = np.zeros(n_blocks)

    def make_fn(t, reads, writes):
        def fn() -> None:
            acc = float(t)
            for r in sorted(reads):
                acc += state[r]
            for w in sorted(writes):
                state[w] = 0.5 * state[w] + acc
        return fn

    graph = TaskGraph(f"random-{seed}")
    tracker = BlockTracker()
    for t in range(n_tasks):
        reads = tuple(rng.choice(n_blocks, size=rng.integers(0, 3), replace=False))
        writes = (int(rng.integers(0, n_blocks)),)
        tracker.add_task(
            graph,
            f"t{t}",
            TaskKind.S,
            Cost("gemm", flops=float(rng.integers(1, 100))),
            fn=make_fn(t, reads, writes),
            reads=reads,
            writes=writes,
        )
    return graph, state


@pytest.mark.parametrize("seed", range(8))
def test_fusing_random_graphs_preserves_races_and_results(seed):
    rng = np.random.default_rng(1000 + seed)
    cap = int(rng.choice([2, 3, 4, 8]))

    ref_graph, ref_state = _random_tracker_graph(seed)
    assert not _race_errors(ref_graph)
    ref_graph.run_sequential()

    fused_graph, fused_state = _random_tracker_graph(seed)
    fused = fuse_graph(fused_graph, max_ops=cap)
    assert not _race_errors(fused)
    fused.run_sequential()
    assert np.array_equal(ref_state, fused_state)

    # The fused graph must also be schedule-independent: a threaded run
    # with real concurrency lands on the same bytes.
    thr_graph, thr_state = _random_tracker_graph(seed)
    ThreadedExecutor(3).run(fuse_graph(thr_graph, max_ops=cap))
    assert np.array_equal(ref_state, thr_state)


# ----------------------------------------------------------------------
# Bitwise parity across backends
# ----------------------------------------------------------------------


class TestFusedDriverParity:
    A = np.random.default_rng(7).standard_normal((96, 48))

    def test_calu_fused_threaded_and_stealing_bitwise(self):
        ref = calu(self.A, b=16, tr=4, tree=TreeKind.BINARY)
        for make in (lambda: None, lambda: ThreadedExecutor(2), lambda: WorkStealingExecutor(3)):
            for cap in (2, 8):
                f = calu(self.A, b=16, tr=4, tree=TreeKind.BINARY, executor=make(), fuse=cap)
                assert np.array_equal(ref.lu, f.lu)
                assert np.array_equal(ref.piv, f.piv)

    def test_caqr_fused_threaded_and_stealing_bitwise(self):
        ref = caqr(self.A, b=16, tr=4, tree=TreeKind.FLAT)
        for make in (lambda: None, lambda: WorkStealingExecutor(3)):
            f = caqr(self.A, b=16, tr=4, tree=TreeKind.FLAT, executor=make(), fuse=8)
            assert np.array_equal(ref.packed, f.packed)
            assert np.array_equal(ref.R, f.R)
            for s_ref, s_f in zip(ref.panels, f.panels, strict=True):
                a, b_ = s_ref.to_arrays(), s_f.to_arrays()
                assert set(a) == set(b_)
                for k in a:
                    assert np.array_equal(a[k], b_[k])

    def test_tsqr_fused_bitwise(self):
        ref = tsqr(self.A, tr=4)
        f = tsqr(self.A, tr=4, fuse=8)
        assert np.array_equal(ref.R, f.R)

    @needs_fork
    def test_calu_fused_process_bitwise(self):
        ref = calu(self.A, b=16, tr=4, tree=TreeKind.BINARY)
        f = calu(self.A, b=16, tr=4, tree=TreeKind.BINARY, executor="process", fuse=8)
        assert np.array_equal(ref.lu, f.lu)
        assert np.array_equal(ref.piv, f.piv)

    @needs_fork
    def test_caqr_fused_process_bitwise(self):
        ref = caqr(self.A, b=16, tr=4, tree=TreeKind.FLAT)
        f = caqr(self.A, b=16, tr=4, tree=TreeKind.FLAT, executor="process", fuse=8)
        assert np.array_equal(ref.packed, f.packed)
        assert np.array_equal(ref.R, f.R)


# ----------------------------------------------------------------------
# Resilience at super-task granularity
# ----------------------------------------------------------------------


class TestFusedResilience:
    def test_journal_resume_skips_completed_super_tasks(self):
        A = np.random.default_rng(11).standard_normal((64, 32))
        ckpt = Checkpoint(MemoryStore())
        ref = calu(A, b=8, tr=4, tree=TreeKind.BINARY, checkpoint=ckpt, fuse=4)
        again = calu(A, b=8, tr=4, tree=TreeKind.BINARY, checkpoint=ckpt, fuse=4)
        assert np.array_equal(ref.lu, again.lu)
        assert np.array_equal(ref.piv, again.piv)
        resumes = [e for e in again.trace.events if e.kind == "resume"]
        assert resumes and resumes[0].value > 0  # super-tasks skipped by name
        # A resumed run re-executes only the unjournaled epilogue.
        assert len(again.trace.records) < len(ref.trace.records)


def _op_fuse_die_once(payload):
    counter = attach_array(payload["counter"])
    if counter[0] == 0:
        counter[0] = 1
        os._exit(3)
    counter[1] += 1.0


def _op_fuse_mark(payload):
    attach_array(payload["out"])[0] = 42.0


@pytest.fixture()
def _fuse_test_ops():
    extra = {"test_fuse_die_once": _op_fuse_die_once, "test_fuse_mark": _op_fuse_mark}
    ops.OPS.update(extra)
    yield
    for name in extra:
        ops.OPS.pop(name, None)


@needs_fork
def test_worker_death_retries_whole_super_task(_fuse_test_ops):
    """A death mid-batch re-dispatches the full descriptor list."""
    arena = SharedArena()
    try:
        counter = arena.alloc(2)
        out = arena.alloc(1)
        g = TaskGraph("fused-flaky")
        t0 = g.add(
            "t0",
            TaskKind.S,
            Cost("gemm", flops=1e3),
            idempotent=True,
            reads=frozenset(),
            writes=frozenset({("c", 0)}),
            op=("test_fuse_die_once", {"counter": arena.spec(counter)}),
        )
        g.add(
            "t1",
            TaskKind.S,
            Cost("gemm", flops=1e3),
            deps=[t0],
            idempotent=True,
            reads=frozenset({("c", 0)}),
            writes=frozenset({("o", 0)}),
            op=("test_fuse_mark", {"out": arena.spec(out)}),
        )
        fused = fuse_graph(g, max_ops=2)
        assert len(fused.tasks) == 1 and fused.tasks[0].meta["fused"] == ("t0", "t1")
        assert fused.tasks[0].idempotent
        with ProcessExecutor(1, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)) as ex:
            trace = ex.run(fused)
        assert trace.resilience_summary().get("retry") == 1
        # The retried batch re-ran from its first member: both ops landed.
        assert counter[1] == 1.0 and out[0] == 42.0
    finally:
        arena.destroy()
