"""Tests for trace export (JSON / SVG) and table CSV export."""

import json

import numpy as np

from repro.bench.tables import Table
from repro.core.calu import build_calu_graph
from repro.core.layout import BlockLayout
from repro.machine.presets import generic
from repro.resilience.events import ResilienceEvent
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.task import TaskKind
from repro.runtime.trace import Trace


def small_trace():
    graph, _ = build_calu_graph(BlockLayout(400, 200, 100), 2)
    return SimulatedExecutor(generic(4)).run(graph), graph


class TestJson:
    def test_roundtrip_fields(self):
        trace, graph = small_trace()
        doc = json.loads(trace.to_json())
        assert doc["n_cores"] == 4
        assert doc["makespan"] > 0
        assert len(doc["records"]) == len(graph.tasks)
        rec = doc["records"][0]
        assert set(rec) == {"tid", "name", "kind", "core", "start", "end"}

    def test_kinds_are_strings(self):
        trace, _ = small_trace()
        doc = json.loads(trace.to_json())
        assert all(r["kind"] in "PLUSX" for r in doc["records"])

    def test_empty_trace(self):
        doc = json.loads(Trace([], 2).to_json())
        assert doc["records"] == []

    def test_from_json_round_trip_equivalent(self):
        trace, graph = small_trace()
        trace.events.append(
            ResilienceEvent("retry", task="P[0]", tid=0, detail="re-ran", value=1.0)
        )
        trace.events.append(ResilienceEvent("checkpoint", task="C[0]", tid=99))
        back = Trace.from_json(trace.to_json())
        assert back.n_cores == trace.n_cores
        assert back.makespan == trace.makespan
        assert [(r.tid, r.name, r.kind, r.core, r.start, r.end) for r in back.records] == [
            (r.tid, r.name, r.kind, r.core, r.start, r.end) for r in trace.records
        ]
        assert all(isinstance(r.kind, TaskKind) for r in back.records)
        # Diagnostics behave identically on the deserialized trace.
        assert back.resilience_summary() == trace.resilience_summary() == {
            "retry": 1,
            "checkpoint": 1,
        }
        assert back.events == trace.events
        back.validate_schedule(graph)

    def test_from_json_empty(self):
        back = Trace.from_json(Trace([], 3).to_json())
        assert back.records == [] and back.n_cores == 3 and back.events == []


class TestSvg:
    def test_valid_document(self):
        trace, graph = small_trace()
        svg = trace.to_svg()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # One rect per nonzero-duration task plus core lanes and legend.
        n_nonzero = sum(1 for r in trace.records if r.duration > 0)
        assert svg.count("<title>") == n_nonzero

    def test_core_lanes_labeled(self):
        trace, _ = small_trace()
        svg = trace.to_svg()
        for core in range(4):
            assert f"core {core}" in svg

    def test_panel_color_present(self):
        trace, _ = small_trace()
        assert "#c0392b" in trace.to_svg()  # the paper's red panel bars

    def test_empty_trace_renders(self):
        svg = Trace([], 2).to_svg()
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")


class TestTableCsv:
    def test_csv_format(self):
        t = Table(
            title="x",
            row_header="n",
            row_labels=["10", "20"],
            col_labels=["a", "b"],
            values=np.array([[1.5, 2.0], [3.25, 4.0]]),
        )
        csv = t.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "n,a,b"
        assert lines[1] == "10,1.5,2"
        assert lines[2] == "20,3.25,4"


class TestCliSave(object):
    def test_save_writes_files(self, tmp_path):
        from repro.bench.__main__ import main

        rc = main(["stability", "--save", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "stability.txt").exists()
        assert (tmp_path / "stability.csv").exists()
