"""Engine run-level deadline: the watchdog aborts late runs structurally."""

import time

import pytest

from repro.resilience.recovery import RuntimeFailure
from repro.runtime.engine import ExecutionEngine
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind


def chain(fns):
    g = TaskGraph("chain")
    prev = None
    for i, fn in enumerate(fns):
        prev = g.add(
            f"t{i}",
            TaskKind.S,
            Cost("gemm", 4, 4, 4, flops=100.0),
            fn=fn,
            deps=[] if prev is None else [prev],
        )
    return g


def engine(**kw):
    kw.setdefault("n_workers", 2)
    kw.setdefault("watchdog_poll_s", 0.01)
    return ExecutionEngine(**kw)


class TestDeadline:
    def test_deadline_aborts_slow_run(self):
        g = chain([lambda: time.sleep(0.1) for _ in range(10)])
        t0 = time.monotonic()
        with pytest.raises(RuntimeFailure) as exc:
            engine(deadline=time.monotonic() + 0.05).run(g)
        assert exc.value.failure_kind == "deadline"
        # The abort is prompt: nowhere near the 1 s the chain would take.
        assert time.monotonic() - t0 < 0.6

    def test_deadline_failure_mentions_progress(self):
        g = chain([lambda: time.sleep(0.1) for _ in range(5)])
        with pytest.raises(RuntimeFailure) as exc:
            engine(deadline=time.monotonic() + 0.05).run(g)
        assert "deadline" in str(exc.value)
        assert "tasks done" in str(exc.value)

    def test_generous_deadline_is_inert(self):
        g = chain([lambda: None for _ in range(5)])
        trace = engine(deadline=time.monotonic() + 60.0).run(g)
        assert len(trace.records) == 5
        assert not [e for e in trace.events if e.kind == "deadline"]

    def test_already_expired_deadline(self):
        g = chain([lambda: time.sleep(0.05) for _ in range(3)])
        with pytest.raises(RuntimeFailure) as exc:
            engine(deadline=time.monotonic() - 1.0).run(g)
        assert exc.value.failure_kind == "deadline"

    def test_no_deadline_runs_to_completion(self):
        g = chain([lambda: None for _ in range(3)])
        trace = engine().run(g)
        assert len(trace.records) == 3
