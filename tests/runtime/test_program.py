"""Unit tests for streaming graph programs and their engine consumption.

Covers the :class:`~repro.runtime.program.GraphProgram` contract
(ordered window emission, tid ranges, idempotent ``emit_through``,
materialization, eager-graph wrapping) and the streaming behavior the
engine layers on top: bounded live-task working set under a finite
look-ahead and run statistics in the trace.
"""

import pytest

from repro.core.priorities import lookahead_depth
from repro.machine.presets import generic
from repro.runtime.graph import TaskGraph
from repro.runtime.program import GraphProgram, as_program, supports_streaming
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor


def chain_program(n: int = 6, lookahead: int | None = 0):
    """One task per window, all serialized through a single block."""
    order: list[int] = []

    def emit(w, graph, tracker):
        def fn(w=w):
            order.append(w)

        tracker.add_task(
            graph,
            f"t{w}",
            TaskKind.S,
            Cost("gemm", flops=1.0),
            fn=fn,
            reads=[("x",)] if w else [],
            writes=[("x",)],
            iteration=w,
        )

    return GraphProgram("chain", n, emit, lookahead=lookahead), order


def test_emit_next_records_ordered_windows():
    program, _ = chain_program(3)
    assert program.emitted == 0 and not program.exhausted
    first = program.emit_next()
    assert [t.name for t in first] == ["t0"]
    assert program.windows == [(0, 1)]
    program.emit_next()
    program.emit_next()
    assert program.windows == [(0, 1), (1, 2), (2, 3)]
    assert program.exhausted
    assert program.emit_seconds > 0.0
    # Incremental emission discovered the chain edges.
    assert program.graph.preds == [[], [0], [1]]


def test_emit_next_after_exhaustion_raises():
    program, _ = chain_program(1)
    program.emit_next()
    with pytest.raises(ValueError, match="all 1 windows emitted"):
        program.emit_next()


def test_emit_through_is_idempotent_and_clamps():
    program, _ = chain_program(4)
    program.emit_through(1)
    assert program.emitted == 2
    program.emit_through(1)
    assert program.emitted == 2
    program.emit_through(99)  # clamps at n_windows
    assert program.exhausted and len(program.graph.tasks) == 4


def test_materialize_matches_incremental_emission():
    eager, _ = chain_program(5)
    graph = eager.materialize()
    stepped, _ = chain_program(5)
    while not stepped.exhausted:
        stepped.emit_next()
    assert [t.name for t in graph.tasks] == [t.name for t in stepped.graph.tasks]
    assert graph.preds == stepped.graph.preds
    assert len(graph.tasks) == 5


def test_negative_window_count_rejected():
    with pytest.raises(ValueError, match="n_windows"):
        GraphProgram("bad", -1, lambda w, g, t: None)


def test_from_graph_wraps_eager_graph():
    g = TaskGraph("pre")
    g.add("only", TaskKind.P, Cost("getf2"))
    program = GraphProgram.from_graph(g)
    assert program.graph is g
    assert program.exhausted and program.windows == [(0, 1)]
    assert program.lookahead == -1
    assert program.name == "pre"


def test_as_program_coercion():
    g = TaskGraph("g")
    program = as_program(g)
    assert isinstance(program, GraphProgram) and program.graph is g
    assert as_program(program) is program
    with pytest.raises(TypeError, match="expected a TaskGraph or GraphProgram"):
        as_program(42)


def test_supports_streaming_only_engine_backends():
    assert supports_streaming(ThreadedExecutor(1))
    assert supports_streaming(WorkStealingExecutor(1))
    assert supports_streaming(SimulatedExecutor(generic(1)))

    class DuckTyped:
        def run(self, graph):  # pragma: no cover - never called
            return None

    assert not supports_streaming(DuckTyped())


def test_lookahead_depth_get_set_restore():
    prev = lookahead_depth(2)
    try:
        assert lookahead_depth() == 2
        assert lookahead_depth(0) == 2
        assert lookahead_depth() == 0
    finally:
        lookahead_depth(prev)
    assert lookahead_depth() == prev
    with pytest.raises(ValueError, match=">= -1"):
        lookahead_depth(-2)
    with pytest.raises(TypeError):
        lookahead_depth(1.5)
    with pytest.raises(TypeError):
        lookahead_depth(True)


@pytest.mark.parametrize(
    "make_executor",
    [
        pytest.param(lambda: ThreadedExecutor(2), id="threaded"),
        pytest.param(lambda: WorkStealingExecutor(2), id="stealing"),
    ],
)
def test_streamed_chain_runs_in_order_with_bounded_window(make_executor):
    program, order = chain_program(8, lookahead=0)
    trace = make_executor().run(program)
    assert order == list(range(8))
    stats = trace.stats
    assert stats["n_tasks"] == 8
    assert stats["windows_emitted"] == stats["n_windows"] == 8
    # With lookahead 0 the engine keeps at most windows W and W+1 live:
    # the chain never has more than 2 unfinished tasks in the graph.
    assert stats["peak_live_tasks"] <= 2
    assert stats["emit_seconds"] > 0.0


def test_streamed_chain_virtual_clock():
    program, _ = chain_program(5, lookahead=1)
    trace = SimulatedExecutor(generic(2)).run(program)
    assert len(trace.records) == 5
    assert trace.stats["windows_emitted"] == 5
    assert trace.stats["peak_live_tasks"] <= 3


def test_eager_graph_through_engine_reports_single_window():
    g = TaskGraph("eager")
    g.add("a", TaskKind.P, Cost("getf2"))
    g.add("b", TaskKind.S, Cost("gemm"), deps=[0])
    trace = ThreadedExecutor(1).run(g)
    assert trace.stats["n_windows"] == 1
    assert trace.stats["n_tasks"] == 2


def test_infinite_lookahead_emits_everything_up_front():
    program, order = chain_program(6, lookahead=-1)
    trace = ThreadedExecutor(2).run(program)
    assert order == list(range(6))
    # All windows were emitted before anything completed.
    assert trace.stats["peak_live_tasks"] == 6
