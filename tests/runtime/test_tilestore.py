"""Tile stores: spec protocol, windowed transfers, byte accounting."""

import os

import numpy as np
import pytest

from repro.counters import counting
from repro.runtime.shm import SharedArena
from repro.runtime.tilestore import (
    ArenaTileStore,
    MmapTileStore,
    TileStore,
    attach_array,
    open_store,
    spec_nbytes,
)


@pytest.fixture(params=["shm", "mmap"])
def store(request):
    s, _ = open_store(request.param)
    yield s
    s.destroy()


def test_reserve_load_store_roundtrip(store):
    spec = store.reserve((30, 4))
    data = np.arange(120, dtype=np.float64).reshape(30, 4)
    store.store(spec, data)
    np.testing.assert_array_equal(store.load(spec), data)


def test_reserve_reads_as_zeros(store):
    spec = store.reserve((5, 3))
    np.testing.assert_array_equal(store.load(spec), np.zeros((5, 3)))


def test_sub_window_addressing(store):
    spec = store.reserve((20, 3))
    data = np.arange(60, dtype=np.float64).reshape(20, 3)
    store.store(spec, data)
    win = TileStore.sub(spec, 7, 13)
    assert spec_nbytes(win) == 6 * 3 * 8
    np.testing.assert_array_equal(store.load(win), data[7:13])
    store.store(win, -data[7:13])
    np.testing.assert_array_equal(store.load(spec)[7:13], -data[7:13])
    np.testing.assert_array_equal(store.load(spec)[:7], data[:7])


def test_sub_out_of_range(store):
    spec = store.reserve((4, 4))
    with pytest.raises(ValueError, match="outside"):
        TileStore.sub(spec, 2, 5)


def test_io_accounting_and_counters(store):
    spec = store.reserve((16, 4))
    block = np.ones((16, 4))
    with counting() as c:
        store.store(spec, block)
        store.load(TileStore.sub(spec, 0, 8))
    assert store.io.write_bytes == 16 * 4 * 8
    assert store.io.read_bytes == 8 * 4 * 8
    assert store.io.writes == 1 and store.io.reads == 1
    assert c.store_write_bytes == store.io.write_bytes
    assert c.store_read_bytes == store.io.read_bytes


def test_load_into_recycled_buffer(store):
    spec = store.reserve((6, 2))
    store.store(spec, np.full((6, 2), 3.0))
    buf = np.empty((6, 2))
    out = store.load(spec, out=buf)
    assert out is buf
    np.testing.assert_array_equal(buf, np.full((6, 2), 3.0))
    with pytest.raises(ValueError, match="does not match"):
        store.load(spec, out=np.empty((5, 2)))


def test_attach_array_resolves_both_backends(store):
    # attach_array is what descriptor-dispatched ops use: it must
    # resolve shm names and absolute spill-file paths alike.
    spec = store.reserve((9, 3))
    vals = np.arange(27, dtype=np.float64).reshape(9, 3)
    store.store(spec, vals)
    view = attach_array(spec)
    np.testing.assert_array_equal(view, vals)
    # Writes through the attached view are visible to store loads
    # (shared plane, not a private copy).
    view[0, 0] = 99.0
    assert store.load(TileStore.sub(spec, 0, 1))[0, 0] == 99.0


def test_mmap_spec_of_view_walks_to_root():
    with MmapTileStore() as s:
        arr = s.alloc((12, 5))
        arr[...] = np.arange(60).reshape(12, 5)
        tail = arr[8:]  # sliced memmap: inherits parent's offset attribute
        spec = s.spec(tail)
        assert os.path.isabs(spec[0])
        np.testing.assert_array_equal(s.load(spec), np.asarray(arr[8:]))


def test_mmap_alloc_spans_segments():
    with MmapTileStore(segment_bytes=1 << 12) as s:
        specs = [s.reserve((100,)) for _ in range(10)]  # 800 B each
        for i, sp in enumerate(specs):
            s.store(sp, np.full(100, float(i)))
        for i, sp in enumerate(specs):
            np.testing.assert_array_equal(s.load(sp), np.full(100, float(i)))
        assert len(s._paths) > 1


def test_mmap_destroy_removes_spill_dir():
    s = MmapTileStore()
    root = s.root
    s.reserve((4, 4))
    assert os.path.isdir(root)
    s.destroy()
    assert not os.path.exists(root)
    with pytest.raises(ValueError, match="destroyed"):
        s.reserve((2, 2))


def test_mmap_sparse_reservation_costs_no_disk():
    with MmapTileStore() as s:
        spec = s.reserve((1 << 16, 8))  # 4 MiB reserved
        path = spec[0]
        # Sparse file: apparent size is the segment, blocks are ~0.
        assert os.path.getsize(path) >= 4 << 20
        assert os.stat(path).st_blocks * 512 < 1 << 20
        s.store(TileStore.sub(spec, 0, 1024), np.ones((1024, 8)))
        assert os.stat(path).st_blocks * 512 >= 1024 * 8 * 8


def test_open_store_resolution():
    arena = SharedArena()
    try:
        wrapped, owned = open_store(arena)
        assert isinstance(wrapped, ArenaTileStore) and not owned
        assert wrapped.arena is arena
        existing, owned2 = open_store(wrapped)
        assert existing is wrapped and not owned2
        with pytest.raises(ValueError, match="unknown tile store"):
            open_store("tape")
    finally:
        arena.destroy()


def test_arena_store_zero_copy_view(store):
    if store.kind != "shm":
        pytest.skip("arena-backed store only")
    arr = store.alloc((4, 4))
    arr[...] = 5.0
    spec = store.spec(arr)
    np.testing.assert_array_equal(store.load(spec), arr)
