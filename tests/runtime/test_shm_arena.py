"""SharedArena edge cases: allocation, specs, the no-zero place path."""

import numpy as np
import pytest

from repro.runtime.shm import SharedArena, attach_array, spec_nbytes


@pytest.fixture
def arena():
    a = SharedArena(segment_bytes=1 << 16)  # 64 KiB segments
    yield a
    a.destroy()


def test_alloc_zeroed_contract(arena):
    x = arena.alloc((7, 5))
    assert x.shape == (7, 5) and x.dtype == np.float64
    assert np.count_nonzero(x) == 0


def test_alloc_larger_than_segment_bytes(arena):
    # An allocation bigger than segment_bytes gets a segment of its own.
    big = arena.alloc((1 << 14,))  # 128 KiB of float64 > 64 KiB segment
    assert big.nbytes > arena.segment_bytes
    big[:] = 1.0
    spec = arena.spec(big)
    assert spec_nbytes(spec) == big.nbytes
    np.testing.assert_array_equal(attach_array(spec), big)


def test_alloc_fills_multiple_segments(arena):
    # Segments grow as needed; earlier arrays stay valid and addressable.
    arrays = [arena.alloc((1000,)) for _ in range(20)]  # 8 KB each
    assert len(arena._segments) > 1
    for i, arr in enumerate(arrays):
        arr.fill(i)
    for i, arr in enumerate(arrays):
        assert attach_array(arena.spec(arr))[0] == i


def test_zero_size_shapes(arena):
    empty = arena.alloc((0, 4))
    assert empty.size == 0
    spec = arena.spec(empty)
    assert spec_nbytes(spec) == 0
    assert attach_array(spec).shape == (0, 4)
    # A zero-size alloc must not corrupt the bump allocator.
    after = arena.alloc((3,))
    after[:] = 7.0
    assert attach_array(arena.spec(after))[0] == 7.0


def test_spec_on_trailing_contiguous_view(arena):
    x = arena.place(np.arange(40, dtype=np.float64).reshape(10, 4))
    tail = x[6:]  # contiguous trailing row window
    spec = arena.spec(tail)
    assert spec[1] == arena.spec(x)[1] + 6 * 4 * 8
    np.testing.assert_array_equal(attach_array(spec), x[6:])


def test_spec_rejects_noncontiguous(arena):
    x = arena.place(np.zeros((8, 8)))
    with pytest.raises(ValueError, match="C-contiguous"):
        arena.spec(x[:, :4])


def test_spec_rejects_foreign_array(arena):
    with pytest.raises(ValueError, match="does not live"):
        arena.spec(np.zeros((4, 4)))


def test_place_no_zero_path_bitwise(arena):
    # place() uses the no-zero alloc internally; the placed bytes must
    # be bitwise identical to the source, including negative zeros,
    # denormals, infs and NaN payloads.
    src = np.array(
        [[-0.0, np.inf, -np.inf], [np.nan, 5e-324, -1.5]], dtype=np.float64
    )
    out = arena.place(src)
    assert out.tobytes() == src.tobytes()
    nz = arena.alloc(src.shape, src.dtype, zero=False)
    nz[...] = src
    assert nz.tobytes() == src.tobytes()


def test_alloc_after_destroy_raises(arena):
    arena.destroy()
    with pytest.raises(ValueError, match="destroyed"):
        arena.alloc((4,))
