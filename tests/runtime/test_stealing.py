"""Tests for the work-stealing executor."""

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng
from tests.runtime.test_executors import random_graph


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_executes_all_respecting_deps(workers, seed):
    g, log, deps = random_graph(seed, 50)
    WorkStealingExecutor(workers, seed=seed).run(g)
    assert sorted(log) == list(range(50))
    pos = {t: i for i, t in enumerate(log)}
    for t, dd in enumerate(deps):
        for d in dd:
            assert pos[d] < pos[t]


def test_trace_complete_and_valid():
    g, _, _ = random_graph(3, 30)
    trace = WorkStealingExecutor(3).run(g)
    assert len(trace.records) == 30
    trace.validate_schedule(g)


def test_exception_propagates():
    from repro.runtime.graph import TaskGraph
    from repro.runtime.task import Cost, TaskKind

    g = TaskGraph()

    def boom():
        raise RuntimeError("steal-fail")

    g.add("boom", TaskKind.P, Cost("gemm", flops=1), fn=boom)
    with pytest.raises(RuntimeError, match="steal-fail"):
        WorkStealingExecutor(2).run(g)


def test_empty_graph():
    from repro.runtime.graph import TaskGraph

    trace = WorkStealingExecutor(2).run(TaskGraph())
    assert trace.records == []


def test_invalid_worker_count():
    with pytest.raises(ValueError):
        WorkStealingExecutor(0)


def test_calu_results_identical_to_central_queue():
    A0 = make_rng(7).standard_normal((120, 120))
    f_central = calu(A0, b=30, tr=4, executor=ThreadedExecutor(2))
    f_steal = calu(A0, b=30, tr=4, executor=WorkStealingExecutor(2))
    assert np.array_equal(f_central.lu, f_steal.lu)
    assert np.array_equal(f_central.piv, f_steal.piv)


def test_caqr_results_identical_to_central_queue():
    A0 = make_rng(8).standard_normal((100, 60))
    f_central = caqr(A0, b=20, tr=3, executor=ThreadedExecutor(2))
    f_steal = caqr(A0, b=20, tr=3, executor=WorkStealingExecutor(3))
    assert np.array_equal(f_central.packed, f_steal.packed)


def test_steals_are_counted_as_syncs():
    from repro.counters import counting

    g, _, _ = random_graph(9, 60)
    with counting() as c:
        WorkStealingExecutor(4).run(g)
    # With 4 workers and 60 tasks, at least some stealing happens.
    assert c.syncs >= 0  # presence of the counter; value is timing-dependent


def test_stress_many_small_tasks():
    g, log, _ = random_graph(11, 300)
    WorkStealingExecutor(4).run(g)
    assert sorted(log) == list(range(300))
