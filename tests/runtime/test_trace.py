"""Tests for execution traces, statistics and Gantt rendering."""

import pytest

from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.runtime.trace import TaskRecord, Trace


def rec(tid, kind, core, start, end, name=None):
    return TaskRecord(tid=tid, name=name or f"t{tid}", kind=kind, core=core, start=start, end=end)


def two_core_trace():
    return Trace(
        [
            rec(0, TaskKind.P, 0, 0.0, 1.0),
            rec(1, TaskKind.S, 1, 0.0, 0.5),
            rec(2, TaskKind.S, 0, 1.0, 2.0),
            rec(3, TaskKind.L, 1, 1.5, 2.0),
        ],
        n_cores=2,
    )


def test_makespan():
    assert two_core_trace().makespan == 2.0


def test_makespan_empty():
    assert Trace([], 2).makespan == 0.0


def test_busy_time_total_and_per_core():
    t = two_core_trace()
    assert t.busy_time() == pytest.approx(3.0)
    assert t.busy_time(core=0) == pytest.approx(2.0)
    assert t.busy_time(core=1) == pytest.approx(1.0)


def test_idle_fraction():
    t = two_core_trace()
    assert t.idle_fraction() == pytest.approx(1.0 - 3.0 / 4.0)


def test_busy_by_kind():
    t = two_core_trace()
    by = t.busy_by_kind()
    assert by["P"] == pytest.approx(1.0)
    assert by["S"] == pytest.approx(1.5)
    assert by["L"] == pytest.approx(0.5)


def test_gflops():
    t = two_core_trace()
    assert t.gflops(2e9) == pytest.approx(1.0)
    assert Trace([], 1).gflops(1e9) == 0.0


def test_gantt_renders_rows_and_legend():
    out = two_core_trace().gantt(width=40)
    lines = out.splitlines()
    assert lines[0].startswith("core  0")
    assert lines[1].startswith("core  1")
    assert "#" in lines[0]  # panel glyph
    assert "legend" in lines[-1]


def test_gantt_empty():
    assert Trace([], 2).gantt() == "(empty trace)"


def test_summary_mentions_idle():
    s = two_core_trace().summary()
    assert "idle" in s and "makespan" in s


def test_validate_schedule_detects_core_overlap():
    g = TaskGraph()
    g.add("a", TaskKind.P, Cost("gemm"))
    g.add("b", TaskKind.P, Cost("gemm"))
    bad = Trace(
        [rec(0, TaskKind.P, 0, 0.0, 1.0, "a"), rec(1, TaskKind.P, 0, 0.5, 1.5, "b")],
        n_cores=1,
    )
    with pytest.raises(AssertionError, match="overlap"):
        bad.validate_schedule(g)


def test_validate_schedule_detects_dependency_violation():
    g = TaskGraph()
    a = g.add("a", TaskKind.P, Cost("gemm"))
    g.add("b", TaskKind.S, Cost("gemm"), deps=[a])
    bad = Trace(
        [rec(0, TaskKind.P, 0, 0.5, 1.0, "a"), rec(1, TaskKind.S, 1, 0.0, 0.4, "b")],
        n_cores=2,
    )
    with pytest.raises(AssertionError, match="started before"):
        bad.validate_schedule(g)


def test_validate_schedule_accepts_valid():
    g = TaskGraph()
    a = g.add("a", TaskKind.P, Cost("gemm"))
    g.add("b", TaskKind.S, Cost("gemm"), deps=[a])
    ok = Trace(
        [rec(0, TaskKind.P, 0, 0.0, 1.0, "a"), rec(1, TaskKind.S, 1, 1.0, 2.0, "b")],
        n_cores=2,
    )
    ok.validate_schedule(g)


def test_duration_property():
    r = rec(0, TaskKind.S, 0, 1.5, 4.0)
    assert r.duration == pytest.approx(2.5)
