"""Property test: random DAGs under injected failures, all executors.

The invariant (the satellite's acceptance criterion): for any DAG shape
and any deterministic fault plan, an executor run either

* completes with every task's value equal to the fault-free sequential
  result (retries may occur, but never corrupt dataflow), or
* raises a structured ``RuntimeFailure`` whose partial trace is
  dependency-closed — every recorded task ran after all of its
  predecessors.

Never a hang (the per-test timeout in conftest backstops that), never a
silently wrong value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.presets import generic
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.process import ProcessExecutor
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor

# All pool front-ends share the engine's retry/fault/journal lifecycle,
# so the executor-semantics properties must hold for each of them.
# (These graphs are closure-only, so the process backend exercises its
# proxy-thread path: descriptors absent -> tasks run inline in-parent.)
POOL_EXECUTORS = [
    pytest.param(ThreadedExecutor, id="threaded"),
    pytest.param(WorkStealingExecutor, id="stealing"),
    pytest.param(ProcessExecutor, id="process"),
]


def value_graph(seed: int, n_tasks: int) -> tuple[TaskGraph, dict, list]:
    """A random DAG computing ``vals[i] = 1 + sum(vals[preds])``.

    The recurrence makes every value depend on the exact set of
    predecessor values, so a task that ran before its inputs — or ran
    twice with stale inputs — produces a detectably wrong number.
    """
    rng = np.random.default_rng(seed)
    g = TaskGraph(f"prop{seed}")
    vals: dict[int, float] = {}
    deps_record: list[list[int]] = []

    def mk(i, deps):
        def fn():
            vals[i] = 1.0 + sum(vals[d] for d in deps)

        return fn

    for i in range(n_tasks):
        k = int(rng.integers(0, min(i, 3) + 1))
        deps = sorted(rng.choice(i, size=k, replace=False).tolist()) if i and k else []
        deps_record.append(deps)
        g.add(
            f"t{i}",
            TaskKind.S,
            Cost("gemm", flops=1e3),
            fn=mk(i, deps),
            deps=deps,
            idempotent=True,
        )
    return g, vals, deps_record


def sequential_values(deps_record: list[list[int]]) -> dict[int, float]:
    vals: dict[int, float] = {}
    for i, deps in enumerate(deps_record):
        vals[i] = 1.0 + sum(vals[d] for d in deps)
    return vals


def assert_trace_dependency_closed(trace, deps_record) -> None:
    done = {r.tid for r in trace.records}
    for r in trace.records:
        missing = [d for d in deps_record[r.tid] if d not in done]
        assert not missing, f"t{r.tid} recorded but its deps {missing} are not"


@pytest.mark.parametrize("executor_cls", POOL_EXECUTORS)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n_tasks=st.integers(1, 24))
def test_pool_transient_faults_never_corrupt_dataflow(executor_cls, seed, n_tasks):
    g, vals, deps = value_graph(seed, n_tasks)
    plan = FaultPlan(seed, raise_rate=0.3, transient=True)
    ex = executor_cls(
        3, fault_plan=plan, retry=RetryPolicy(max_retries=3, backoff_s=1e-5)
    )
    trace = ex.run(g)
    assert vals == sequential_values(deps)
    assert len(trace.records) == n_tasks


@pytest.mark.parametrize("executor_cls", POOL_EXECUTORS)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n_tasks=st.integers(1, 24))
def test_pool_permanent_faults_fail_structured(executor_cls, seed, n_tasks):
    g, vals, deps = value_graph(seed, n_tasks)
    # Permanent faults with no retry budget: either the plan happened to
    # spare every task, or the run dies structured with a closed trace.
    plan = FaultPlan(seed, raise_rate=0.3)
    ex = executor_cls(3, fault_plan=plan, retry=RetryPolicy(max_retries=0))
    try:
        trace = ex.run(g)
    except RuntimeFailure as e:
        assert e.failure_kind == "injected"
        assert e.task, "structured failure must name its victim"
        assert e.trace is not None
        assert_trace_dependency_closed(e.trace, deps)
        # Whatever did complete computed the right value.
        seq = sequential_values(deps)
        for r in e.trace.records:
            assert vals.get(r.tid) == seq[r.tid]
    else:
        assert vals == sequential_values(deps)
        assert len(trace.records) == n_tasks


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_tasks=st.integers(1, 20))
def test_simulated_matches_threaded_failure_verdict(seed, n_tasks):
    # The same plan on the simulated executor (execute mode) must reach
    # the same verdict class: both complete, or both raise structured.
    def outcome(make_ex):
        g, vals, deps = value_graph(seed, n_tasks)
        try:
            make_ex().run(g)
        except RuntimeFailure as e:
            return ("failed", e.failure_kind)
        return ("ok", vals == sequential_values(deps))

    plan_args = dict(raise_rate=0.3)
    threaded = outcome(
        lambda: ThreadedExecutor(
            1, fault_plan=FaultPlan(seed, **plan_args), retry=RetryPolicy(max_retries=0)
        )
    )
    simulated = outcome(
        lambda: SimulatedExecutor(
            generic(1), execute=True, fault_plan=FaultPlan(seed, **plan_args)
        )
    )
    assert threaded == simulated


@pytest.mark.parametrize("executor_cls", POOL_EXECUTORS)
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_worker_count_does_not_change_results(executor_cls, seed):
    results = []
    for workers in (1, 2, 4):
        g, vals, deps = value_graph(seed, 16)
        plan = FaultPlan(seed, raise_rate=0.4, stall_rate=0.2, stall_s=1e-4, transient=True)
        ex = executor_cls(
            workers, fault_plan=plan, retry=RetryPolicy(max_retries=4, backoff_s=1e-5)
        )
        ex.run(g)
        results.append(vals == sequential_values(deps))
    assert results == [True, True, True]
