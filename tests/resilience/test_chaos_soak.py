"""Chaos soak: kill, corrupt and resume factorizations until they agree.

The tentpole's acceptance criteria, exercised end to end:

* a CALU/CAQR run killed at an arbitrary point (in-process failure or a
  real ``kill -9`` of the worker process) resumes from its checkpoint
  and produces **bitwise-identical** factors to an uninterrupted run;
* ABFT checksums repair single-tile corruption of a trailing update in
  place, without aborting;
* repeated crash/resume cycles (the soak) always converge to the
  fault-free answer.

Long randomized variants are marked ``stress`` and excluded from the
default run (see ``pytest.ini`` addopts).
"""

import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.machine.presets import generic
from repro.resilience.checkpoint import Checkpoint, FileStore, MemoryStore
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import assert_lu_ok, make_rng

SRC = str(Path(__file__).resolve().parents[2] / "src")


class CrashAfter:
    """Executor wrapper killing the run after *n* task bodies.

    Wraps every task closure with a shared counter; body ``n + 1``
    raises, which the inner executor surfaces as a structured
    :class:`RuntimeFailure` carrying the partial trace.
    """

    def __init__(self, inner, n: int):
        self.inner = inner
        self.n = n
        self.count = 0
        self._lock = threading.Lock()

    def run(self, graph, journal=None):
        for t in graph.tasks:
            fn = t.fn
            if fn is None:
                continue

            def wrapped(fn=fn, name=t.name):
                with self._lock:
                    self.count += 1
                    if self.count > self.n:
                        raise RuntimeError(f"chaos kill in {name}")
                fn()

            t.fn = wrapped
        if journal is not None:
            return self.inner.run(graph, journal=journal)
        return self.inner.run(graph)


def _threaded():
    return ThreadedExecutor(2)

def _simulated():
    return SimulatedExecutor(generic(2), execute=True)


# ----------------------------------------------------------------------
# CALU crash/resume
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_inner", [_threaded, _simulated], ids=["threaded", "simulated"])
@pytest.mark.parametrize("frac", [0.05, 0.25, 0.6, 0.95])
def test_calu_crash_resume_bitwise_identical(make_inner, frac):
    A0 = make_rng(0).standard_normal((64, 64))
    clean = calu(A0, b=8, tr=2)
    crash_at = max(1, int(len(clean.trace.records) * frac))
    ckpt = Checkpoint(MemoryStore())
    with pytest.raises(RuntimeFailure):
        calu(A0, b=8, tr=2, executor=CrashAfter(make_inner(), crash_at), checkpoint=ckpt)
    # A crash before the first snapshot legitimately restarts from
    # scratch; past it, the resume event must be in the trace.
    expect_resume = bool(ckpt.snapshot_chain())
    f = calu(A0, b=8, tr=2, executor=make_inner(), checkpoint=ckpt)
    if expect_resume:
        assert f.trace.resilience_summary().get("resume") == 1
    assert np.array_equal(f.lu, clean.lu)
    assert np.array_equal(f.piv, clean.piv)
    assert_lu_ok(A0, f.lu, f.piv)


def test_calu_coarse_interval_resume_identical():
    A0 = make_rng(1).standard_normal((64, 64))
    clean = calu(A0, b=8, tr=2)
    ckpt = Checkpoint(MemoryStore(), interval=3)
    with pytest.raises(RuntimeFailure):
        calu(A0, b=8, tr=2, executor=CrashAfter(_threaded(), 70), checkpoint=ckpt)
    f = calu(A0, b=8, tr=2, checkpoint=ckpt)
    assert np.array_equal(f.lu, clean.lu)
    assert np.array_equal(f.piv, clean.piv)


def test_calu_resume_of_completed_run_is_cheap_and_identical():
    A0 = make_rng(2).standard_normal((48, 48))
    ckpt = Checkpoint(MemoryStore())
    first = calu(A0, b=8, tr=2, checkpoint=ckpt)
    again = calu(A0, b=8, tr=2, checkpoint=ckpt)
    # Only the terminal left-swap task re-runs; everything else skips.
    assert len(again.trace.records) <= 2
    assert again.trace.resilience_summary().get("resume") == 1
    assert np.array_equal(first.lu, again.lu)
    assert np.array_equal(first.piv, again.piv)


def test_calu_checkpoint_namespace_rebinds_on_different_input():
    store = MemoryStore()
    A0 = make_rng(3).standard_normal((32, 32))
    A1 = make_rng(4).standard_normal((32, 32))
    calu(A0, b=8, tr=2, checkpoint=Checkpoint(store))
    # Same namespace, different matrix: stale snapshots must be
    # discarded (signature mismatch), not replayed into wrong factors.
    f = calu(A1, b=8, tr=2, checkpoint=Checkpoint(store))
    clean = calu(A1, b=8, tr=2)
    assert np.array_equal(f.lu, clean.lu)
    assert np.array_equal(f.piv, clean.piv)


# ----------------------------------------------------------------------
# Real process death: kill -9 semantics via os._exit in a child
# ----------------------------------------------------------------------
_CHILD = textwrap.dedent(
    """
    import os, sys
    import numpy as np
    from repro.core.calu import calu
    from repro.resilience.checkpoint import Checkpoint, FileStore
    from repro.runtime.threaded import ThreadedExecutor

    root, crash_at = sys.argv[1], int(sys.argv[2])
    A = np.random.default_rng(1234).standard_normal((96, 96))

    class Killer:
        def __init__(self):
            self.inner = ThreadedExecutor(1)
            self.count = 0

        def run(self, graph, journal=None):
            for t in graph.tasks:
                fn = t.fn
                if fn is None:
                    continue
                def wrapped(fn=fn):
                    self.count += 1
                    if self.count > crash_at:
                        os._exit(9)  # no cleanup, no flush: kill -9
                    fn()
                t.fn = wrapped
            return self.inner.run(graph, journal=journal)

    calu(A, b=16, tr=2, executor=Killer(), checkpoint=Checkpoint(FileStore(root)))
    os._exit(0)
    """
)


def test_calu_survives_process_kill(tmp_path):
    root = str(tmp_path / "store")
    env = dict(os.environ, PYTHONPATH=SRC)
    # Crash after the second boundary task (C[1] is closure #44 in this
    # configuration): with async snapshot writes, reaching boundary K
    # guarantees boundary K-1 is durable, so C[0] must survive the kill.
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, root, "50"], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 9, proc.stderr
    # A fresh process resumes from the surviving FileStore snapshots.
    A = np.random.default_rng(1234).standard_normal((96, 96))
    f = calu(A, b=16, tr=2, checkpoint=Checkpoint(FileStore(root)))
    assert f.trace.resilience_summary().get("resume") == 1
    clean = calu(A, b=16, tr=2)
    assert np.array_equal(f.lu, clean.lu)
    assert np.array_equal(f.piv, clean.piv)


# ----------------------------------------------------------------------
# CAQR crash/resume
# ----------------------------------------------------------------------
@pytest.mark.parametrize("frac", [0.2, 0.5, 0.85])
def test_caqr_crash_resume_bitwise_identical(frac):
    A0 = make_rng(5).standard_normal((80, 48))
    clean = caqr(A0, b=8, tr=2)
    crash_at = max(1, int(len(clean.trace.records) * frac))
    ckpt = Checkpoint(MemoryStore())
    with pytest.raises(RuntimeFailure):
        caqr(A0, b=8, tr=2, executor=CrashAfter(_threaded(), crash_at), checkpoint=ckpt)
    expect_resume = bool(ckpt.snapshot_chain())
    f = caqr(A0, b=8, tr=2, checkpoint=ckpt)
    if expect_resume:
        assert f.trace.resilience_summary().get("resume") == 1
    assert np.array_equal(f.packed, clean.packed)
    assert np.array_equal(f.R, clean.R)
    # The implicit-Q tree factors were restored too: the resumed
    # factorization is fully usable, not just R-correct.
    assert np.array_equal(f.q_explicit(), clean.q_explicit())
    Q = f.q_explicit()
    assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-12


# ----------------------------------------------------------------------
# ABFT: single-tile corruption of a trailing update
# ----------------------------------------------------------------------
def test_abft_corrects_single_tile_corruption():
    A0 = make_rng(6).standard_normal((48, 48))
    plan = FaultPlan(0, corrupt_rate={"S": 1.0}, max_faults=1)
    f = calu(A0, b=8, tr=2, executor=ThreadedExecutor(1, fault_plan=plan), abft=True)
    counts = f.trace.resilience_summary()
    assert counts.get("fault_corrupt") == 1
    assert counts.get("abft_correct") == 1
    assert f.degraded_panels == ()
    assert_lu_ok(A0, f.lu, f.piv)


def test_abft_silent_without_faults():
    A0 = make_rng(7).standard_normal((48, 48))
    f = calu(A0, b=8, tr=2, abft=True)
    assert f.trace.events == []
    clean = calu(A0, b=8, tr=2)
    assert np.array_equal(f.lu, clean.lu)


# ----------------------------------------------------------------------
# The soak: randomized crash points, repeated resume cycles
# ----------------------------------------------------------------------
def _soak_once(seed: int, qr: bool = False) -> None:
    rng = np.random.default_rng(seed)
    shape = (80, 48) if qr else (64, 64)
    A0 = make_rng(seed).standard_normal(shape)
    run = (lambda **kw: caqr(A0, b=8, tr=2, **kw)) if qr else (
        lambda **kw: calu(A0, b=8, tr=2, **kw))
    clean = run()
    ckpt = Checkpoint(MemoryStore(), interval=int(rng.integers(1, 3)))
    f = None
    for _ in range(12):  # crash, resume, crash again ... until it completes
        crash_at = int(rng.integers(1, 120))
        try:
            f = run(executor=CrashAfter(_threaded(), crash_at), checkpoint=ckpt)
            break
        except RuntimeFailure:
            continue
    if f is None:
        f = run(checkpoint=ckpt)
    if qr:
        assert np.array_equal(f.packed, clean.packed)
        assert np.array_equal(f.q_explicit(), clean.q_explicit())
    else:
        assert np.array_equal(f.lu, clean.lu)
        assert np.array_equal(f.piv, clean.piv)


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_soak_calu(seed):
    _soak_once(seed)


def test_chaos_soak_caqr():
    _soak_once(2, qr=True)


@pytest.mark.stress
@pytest.mark.parametrize("seed", range(3, 23))
def test_chaos_soak_calu_stress(seed):
    _soak_once(seed)


@pytest.mark.stress
@pytest.mark.parametrize("seed", range(23, 33))
def test_chaos_soak_caqr_stress(seed):
    _soak_once(seed, qr=True)
