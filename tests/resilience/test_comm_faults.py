"""Lossy-channel modelling in the distributed-memory CommLog."""

import numpy as np
import pytest

from repro.distmem.comm import AlphaBeta, CommLog
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RuntimeFailure


def fill(log: CommLog, n_msgs: int = 30, words: int = 100) -> None:
    for i in range(n_msgs):
        log.new_round()
        log.send(i % 4, (i + 1) % 4, np.ones(words))


class TestCleanChannel:
    def test_no_plan_no_overhead(self):
        log = CommLog()
        fill(log, 10)
        assert log.n_messages == 10
        assert log.n_retransmits == 0 and not log.events

    def test_local_sends_free_with_plan(self):
        log = CommLog(fault_plan=FaultPlan(0, msg_drop_rate=1.0))
        log.send(2, 2, np.ones(50))
        assert log.n_messages == 0


class TestLossyChannel:
    def test_drops_are_retransmitted_and_counted(self):
        plan = FaultPlan(0, msg_drop_rate=0.3)
        log = CommLog(fault_plan=plan)
        fill(log, 40)
        assert log.n_drops > 0
        assert log.n_retransmits == log.n_drops + log.n_corruptions
        # Every retransmission is an extra message on the wire.
        assert log.n_messages == 40 + log.n_retransmits
        assert all(e.kind == "comm_drop" for e in log.events)

    def test_corruptions_detected_by_checksum(self):
        plan = FaultPlan(1, msg_corrupt_rate=0.3)
        log = CommLog(fault_plan=plan)
        fill(log, 40)
        assert log.n_corruptions > 0
        assert any(e.kind == "comm_corrupt" for e in log.events)

    def test_recovery_traffic_costs_alpha_beta_time(self):
        model = AlphaBeta(alpha=1e-6, beta=1e-9)
        clean = CommLog()
        fill(clean, 30)
        lossy = CommLog(fault_plan=FaultPlan(0, msg_drop_rate=0.4))
        fill(lossy, 30)
        assert lossy.time(model) > clean.time(model)

    def test_deterministic_loss_schedule(self):
        def run():
            log = CommLog(fault_plan=FaultPlan(7, msg_drop_rate=0.3, msg_corrupt_rate=0.1))
            fill(log, 25)
            return log.n_drops, log.n_corruptions, log.n_messages

        assert run() == run()

    def test_persistent_loss_raises_structured(self):
        # Drop rate 1.0: every copy of the message is lost; after
        # max_retransmits the reliable transport gives up.
        log = CommLog(fault_plan=FaultPlan(0, msg_drop_rate=1.0), max_retransmits=3)
        with pytest.raises(RuntimeFailure) as ei:
            log.send(0, 1, np.ones(10))
        assert ei.value.failure_kind == "comm"
        assert "0->1" in str(ei.value)


class TestDistributedTSLUWithFaults:
    def test_distributed_tournament_survives_lossy_channel(self):
        # The distmem TSLU is SPMD-by-coordination over CommLog; with a
        # lossy channel its pivots must be unchanged (reliable
        # transport), just more expensive.
        from repro.distmem.tslu_dist import distributed_tslu

        rng = np.random.default_rng(0)
        A = rng.standard_normal((64, 8))
        clean_log = CommLog()
        lossy_log = CommLog(fault_plan=FaultPlan(0, msg_drop_rate=0.3))
        clean = distributed_tslu(A, P=4, comm=clean_log)
        lossy = distributed_tslu(A, P=4, comm=lossy_log)
        np.testing.assert_array_equal(clean.piv, lossy.piv)
        np.testing.assert_allclose(clean.lu, lossy.lu)
        assert lossy_log.n_messages > clean_log.n_messages
        assert lossy_log.n_retransmits > 0

    def test_hopeless_channel_fails_structured(self):
        from repro.distmem.tslu_dist import distributed_tslu

        A = np.random.default_rng(1).standard_normal((32, 4))
        log = CommLog(fault_plan=FaultPlan(0, msg_drop_rate=1.0), max_retransmits=2)
        with pytest.raises(RuntimeFailure) as ei:
            distributed_tslu(A, P=4, comm=log)
        assert ei.value.failure_kind == "comm"
