"""End-to-end fault injection on CALU/CAQR: graceful degradation.

The contract under test (the tentpole's acceptance criterion): with
seeded faults the factorizations either complete with *correct* factors
— retries and degradations visible in the trace — or raise a structured
``RuntimeFailure`` naming the offending task.  Never a hang, never
silently wrong factors.
"""

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import assert_lu_ok, make_rng


class TestCALUDegradation:
    def test_corrupted_tournament_recomputed_from_clean_panel(self):
        A0 = make_rng(0).standard_normal((48, 48))
        # One corruption, hitting the first P task to finish (a leaf,
        # with n_workers=1): its candidate buffer is poisoned, the
        # merge detects it, and the finalize task replays the whole
        # tournament from the untouched panel — recovery ladder rung 1,
        # yielding factors bitwise-identical to a fault-free run.
        plan = FaultPlan(0, corrupt_rate={"P": 1.0}, max_faults=1)
        ex = ThreadedExecutor(1, fault_plan=plan)
        f = calu(A0, b=8, tr=4, executor=ex)
        assert_lu_ok(A0, f.lu, f.piv)
        assert f.recovered_panels == (0,)
        assert f.degraded_panels == ()
        counts = f.trace.resilience_summary()
        assert counts.get("fault_corrupt") == 1
        assert counts.get("recompute", 0) >= 1
        clean = calu(A0, b=8, tr=4)
        assert np.array_equal(f.lu, clean.lu)
        assert np.array_equal(f.piv, clean.piv)

    def test_corrupted_tournament_falls_back_to_partial_pivoting(self):
        A0 = make_rng(0).standard_normal((48, 48))
        # With the recompute rung disabled, the historical behaviour:
        # the finalize task degrades the panel to classic GEPP.
        plan = FaultPlan(0, corrupt_rate={"P": 1.0}, max_faults=1)
        ex = ThreadedExecutor(1, fault_plan=plan)
        f = calu(A0, b=8, tr=4, executor=ex, tournament_recompute=False)
        assert_lu_ok(A0, f.lu, f.piv)
        assert f.degraded_panels == (0,)
        assert f.recovered_panels == ()
        counts = f.trace.resilience_summary()
        assert counts.get("fault_corrupt") == 1
        assert counts.get("degraded", 0) >= 1

    def test_degraded_panel_factors_match_plain_gepp_quality(self):
        A0 = make_rng(1).standard_normal((40, 40))
        plan = FaultPlan(2, corrupt_rate={"P": 1.0}, max_faults=1)
        f = calu(
            A0,
            b=10,
            tr=4,
            executor=ThreadedExecutor(1, fault_plan=plan),
            tournament_recompute=False,
        )
        x = f.solve(np.ones(40))
        r = np.linalg.norm(A0 @ x - 1.0)
        assert r < 1e-8

    def test_injected_raises_recovered_by_retry(self):
        A0 = make_rng(2).standard_normal((48, 48))
        # TSLU leaves are idempotent, and transient pre-execution
        # faults are always retryable -- the run must complete.
        plan = FaultPlan(3, raise_rate=0.4, transient=True)
        ex = ThreadedExecutor(
            2, fault_plan=plan, retry=RetryPolicy(max_retries=3, backoff_s=1e-4)
        )
        f = calu(A0, b=8, tr=4, executor=ex)
        assert_lu_ok(A0, f.lu, f.piv)
        assert f.trace.retries() >= 1

    def test_fault_free_run_has_empty_event_log(self):
        A0 = make_rng(3).standard_normal((32, 32))
        f = calu(A0, b=8, tr=4)
        assert_lu_ok(A0, f.lu, f.piv)
        assert f.trace is not None and f.trace.events == []
        assert f.degraded_panels == ()


class TestCAQRCorruption:
    def test_matrix_corruption_never_silent(self):
        A0 = make_rng(4).standard_normal((40, 24))
        # CAQR has no pivoting fallback: a NaN poked into the matrix
        # must surface as a structured health failure.
        plan = FaultPlan(0, corrupt_rate=1.0, max_faults=1)
        ex = ThreadedExecutor(1, fault_plan=plan)
        with pytest.raises(RuntimeFailure) as ei:
            caqr(A0, b=8, tr=4, executor=ex)
        assert ei.value.failure_kind == "health"

    def test_caqr_retry_recovers_transient_raises(self):
        A0 = make_rng(5).standard_normal((40, 24))
        plan = FaultPlan(1, raise_rate={"S": 0.5}, transient=True)
        ex = ThreadedExecutor(
            2, fault_plan=plan, retry=RetryPolicy(max_retries=3, retry_all=True, backoff_s=1e-4)
        )
        f = caqr(A0, b=8, tr=4, executor=ex)
        Q = f.q_explicit()
        assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-12


def _chaos_calu(seed: int) -> None:
    A0 = make_rng(seed).standard_normal((48, 48))
    plan = FaultPlan(
        seed, raise_rate=0.2, corrupt_rate={"P": 0.15, "*": 0.02}, stall_rate=0.05,
        stall_s=0.002, transient=True, max_faults=6,
    )
    ex = ThreadedExecutor(
        2, fault_plan=plan, retry=RetryPolicy(max_retries=2, backoff_s=1e-4),
        stall_timeout=30.0,
    )
    try:
        f = calu(A0, b=8, tr=4, executor=ex)
    except RuntimeFailure as e:
        # Structured failure: diagnosable, with partial progress.
        assert e.failure_kind and e.trace is not None
    else:
        # Completed: the factors must be *correct*, not just finite.
        assert_lu_ok(A0, f.lu, f.piv)


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_calu_correct_or_structured(seed):
    _chaos_calu(seed)


@pytest.mark.stress
@pytest.mark.parametrize("seed", range(2, 22))
def test_chaos_calu_correct_or_structured_stress(seed):
    _chaos_calu(seed)
