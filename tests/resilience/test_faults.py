"""Unit tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.resilience.events import EVENT_KINDS, ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.runtime.task import Cost, Task, TaskKind


def mk_task(tid: int, kind: TaskKind = TaskKind.S, name: str | None = None, **kw) -> Task:
    return Task(tid=tid, name=name or f"t{tid}", kind=kind, cost=Cost("gemm", 8, 8, 8), **kw)


class TestDeterminism:
    def test_decide_is_pure(self):
        plan = FaultPlan(7, raise_rate=0.5, corrupt_rate=0.5, stall_rate=0.5)
        t = mk_task(3)
        first = plan.decide(t, 0)
        for _ in range(5):
            assert plan.decide(t, 0) == first

    def test_same_seed_same_schedule(self):
        ts = [mk_task(i) for i in range(50)]
        a = [FaultPlan(11, raise_rate=0.3).decide(t) for t in ts]
        b = [FaultPlan(11, raise_rate=0.3).decide(t) for t in ts]
        assert a == b

    def test_different_seed_different_schedule(self):
        ts = [mk_task(i) for i in range(200)]
        a = [bool(FaultPlan(1, raise_rate=0.3).decide(t)) for t in ts]
        b = [bool(FaultPlan(2, raise_rate=0.3).decide(t)) for t in ts]
        assert a != b

    def test_rates_are_roughly_honored(self):
        plan = FaultPlan(0, raise_rate=0.25)
        hits = sum(bool(plan.decide(mk_task(i))) for i in range(400))
        assert 0.15 < hits / 400 < 0.35


class TestTransience:
    def test_transient_clears_on_retry(self):
        plan = FaultPlan(0, raise_rate=1.0, transient=True)
        t = mk_task(0)
        assert plan.decide(t, 0).get("raise")
        assert plan.decide(t, 1) == {}

    def test_persistent_redraws(self):
        plan = FaultPlan(0, raise_rate=1.0, transient=False)
        t = mk_task(0)
        assert plan.decide(t, 0).get("raise")
        assert plan.decide(t, 7).get("raise")


class TestRates:
    def test_per_kind_mapping(self):
        plan = FaultPlan(0, raise_rate={"P": 1.0, "*": 0.0})
        assert plan.decide(mk_task(0, TaskKind.P)).get("raise")
        assert not plan.decide(mk_task(0, TaskKind.S))

    def test_star_default(self):
        plan = FaultPlan(0, raise_rate={"*": 1.0})
        assert plan.decide(mk_task(0, TaskKind.L)).get("raise")

    def test_missing_kind_means_zero(self):
        plan = FaultPlan(0, raise_rate={"P": 1.0})
        assert not plan.decide(mk_task(0, TaskKind.S))


class TestBudgetAndEvents:
    def test_max_faults_caps_injections(self):
        plan = FaultPlan(0, raise_rate=1.0, max_faults=2)
        fired = 0
        for i in range(10):
            try:
                plan.pre_task(mk_task(i))
            except InjectedFault:
                fired += 1
        assert fired == 2
        assert plan.n_injected == 2

    def test_pre_task_raises_pre_execution_fault(self):
        plan = FaultPlan(0, raise_rate=1.0)
        with pytest.raises(InjectedFault) as ei:
            plan.pre_task(mk_task(5, name="victim"))
        assert ei.value.pre_execution
        assert ei.value.task == "victim"
        assert ei.value.tid == 5

    def test_events_recorded_via_callback(self):
        seen: list[ResilienceEvent] = []
        plan = FaultPlan(0, raise_rate=1.0)
        with pytest.raises(InjectedFault):
            plan.pre_task(mk_task(0), record=seen.append)
        assert [e.kind for e in seen] == ["fault_raise"]
        assert all(e.kind in EVENT_KINDS for e in seen)

    def test_event_to_dict_roundtrips(self):
        ev = ResilienceEvent("retry", "t0", 0, detail="x", value=1.5)
        d = ev.to_dict()
        assert d["kind"] == "retry" and d["value"] == 1.5


class TestCorruption:
    def test_corrupt_hook_preferred(self):
        hit = []
        t = mk_task(0, meta={"corrupt": lambda: hit.append(1)})
        plan = FaultPlan(0, corrupt_rate=1.0, target=np.ones(4))
        assert plan.post_task(t)
        assert hit and np.isfinite(plan.target).all()

    def test_target_poisoned_without_hook(self):
        target = np.ones((3, 3))
        plan = FaultPlan(0, corrupt_rate=1.0, target=target)
        assert plan.post_task(mk_task(0))
        assert np.isnan(target).sum() == 1

    def test_no_hook_no_target_is_noop(self):
        plan = FaultPlan(0, corrupt_rate=1.0)
        assert not plan.post_task(mk_task(0))


class TestMessageFaults:
    def test_deterministic_verdicts(self):
        a = [FaultPlan(3, msg_drop_rate=0.5).on_message(0, 1, 10, s) for s in range(50)]
        b = [FaultPlan(3, msg_drop_rate=0.5).on_message(0, 1, 10, s) for s in range(50)]
        assert a == b
        assert "drop" in a

    def test_zero_rates_clean_channel(self):
        plan = FaultPlan(0)
        assert all(plan.on_message(0, 1, 10, s) is None for s in range(20))

    def test_corrupt_verdict(self):
        plan = FaultPlan(1, msg_corrupt_rate=1.0)
        assert plan.on_message(0, 1, 10, 0) == "corrupt"
