"""Fault injection on the simulated (virtual-time) executor."""

import numpy as np
import pytest

from repro.machine.presets import generic
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.task import Cost, TaskKind


def line_graph(n: int = 4) -> TaskGraph:
    g = TaskGraph("line")
    prev = None
    for i in range(n):
        prev = g.add(
            f"t{i}",
            TaskKind.S,
            Cost("gemm", 64, 64, 64, flops=1e6, words=1e4),
            deps=[] if prev is None else [prev],
        )
    return g


class TestVirtualFaults:
    def test_stalls_extend_makespan(self):
        mach = generic(2)
        clean = SimulatedExecutor(mach).run(line_graph())
        faulty = SimulatedExecutor(
            mach, fault_plan=FaultPlan(0, stall_rate=1.0, stall_s=0.01)
        ).run(line_graph())
        assert faulty.makespan >= clean.makespan + 4 * 0.01 * 0.99
        assert faulty.resilience_summary()["fault_stall"] == 4

    def test_injected_raise_is_structured_with_partial_trace(self):
        plan = FaultPlan(0, raise_rate={"S": 1.0}, max_faults=1)
        with pytest.raises(RuntimeFailure) as ei:
            SimulatedExecutor(generic(2), fault_plan=plan).run(line_graph())
        assert ei.value.failure_kind == "injected"
        assert isinstance(ei.value.__cause__, InjectedFault)
        assert ei.value.trace is not None

    def test_retry_recovers_and_costs_virtual_time(self):
        mach = generic(2)
        clean = SimulatedExecutor(mach).run(line_graph())
        retry = RetryPolicy(max_retries=2, backoff_s=0.01)
        tr = SimulatedExecutor(
            mach, fault_plan=FaultPlan(0, raise_rate=1.0, transient=True), retry=retry
        ).run(line_graph())
        assert len(tr.records) == 4
        assert tr.retries() == 4
        assert tr.makespan > clean.makespan  # backoff shows up in virtual time

    def test_same_plan_same_virtual_schedule(self):
        def run():
            plan = FaultPlan(5, raise_rate=0.5, stall_rate=0.5, transient=True)
            tr = SimulatedExecutor(
                generic(2), fault_plan=plan, retry=RetryPolicy(max_retries=3, backoff_s=0.01)
            ).run(line_graph(8))
            return tr.makespan, sorted((e.kind, e.tid) for e in tr.events)

        assert run() == run()


class TestExecuteMode:
    def test_corruption_caught_by_health_guard(self):
        arr = np.ones(8)

        def guard():
            if not np.isfinite(arr).all():
                return ResilienceEvent("health", detail="NaN", fatal=True)
            return None

        g = TaskGraph("x")
        g.add("t0", TaskKind.S, Cost("gemm", flops=1e3), fn=lambda: None, health=guard)
        plan = FaultPlan(0, corrupt_rate=1.0, target=arr)
        with pytest.raises(RuntimeFailure) as ei:
            SimulatedExecutor(generic(1), execute=True, fault_plan=plan).run(g)
        assert ei.value.failure_kind == "health"

    def test_executes_closures_in_dependency_order(self):
        out = []
        g = TaskGraph("x")
        g.add("a", TaskKind.S, Cost("gemm", flops=1e3), fn=lambda: out.append("a"))
        g.add("b", TaskKind.S, Cost("gemm", flops=1e3), fn=lambda: out.append("b"), deps=[0])
        SimulatedExecutor(generic(2), execute=True).run(g)
        assert out == ["a", "b"]
