"""Tests for the checkpoint/journal subsystem.

Covers the serialization framing (CRC-verified payloads), both stores
(in-memory and the crash-surviving file store), the snapshot chain and
its corruption fallbacks, the write-ahead task journal (including torn
tails from a killed writer), pickle round-trips of the structured
failure types, and journal-aware resume on all three executors.
"""

import json
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.machine.presets import generic
from repro.resilience.checkpoint import (
    Checkpoint,
    FileStore,
    MemoryStore,
    pack_arrays,
    restore_matrix,
    unpack_arrays,
)
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import InjectedFault
from repro.resilience.journal import TaskJournal
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.task import Cost, Task, TaskKind
from repro.runtime.threaded import ThreadedExecutor


def _mk(flops=1e5):
    return Cost("gemm", 50, 50, 50, flops=flops)


# ----------------------------------------------------------------------
# Payload framing
# ----------------------------------------------------------------------
class TestPackArrays:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(12, dtype=float).reshape(3, 4),
            "b": np.int64(7),
            "c": np.array([1, 2, 3], dtype=np.int64),
        }
        out = unpack_arrays(pack_arrays(arrays))
        assert out is not None
        assert sorted(out) == ["a", "b", "c"]
        assert np.array_equal(out["a"], arrays["a"])
        assert int(out["b"]) == 7
        assert np.array_equal(out["c"], arrays["c"])

    def test_bad_magic_is_none(self):
        data = pack_arrays({"a": np.ones(3)})
        assert unpack_arrays(b"XXXX" + data[4:]) is None

    def test_flipped_byte_is_none(self):
        data = bytearray(pack_arrays({"a": np.ones(8)}))
        data[-3] ^= 0xFF
        assert unpack_arrays(bytes(data)) is None

    def test_truncation_is_none(self):
        data = pack_arrays({"a": np.ones(8)})
        assert unpack_arrays(data[: len(data) // 2]) is None
        assert unpack_arrays(b"") is None


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return FileStore(tmp_path / "ckpt")


class TestStores:
    def test_array_round_trip(self, store):
        store.save_arrays("ckpt/panel/0", {"x": np.arange(6.0)})
        out = store.load_arrays("ckpt/panel/0")
        assert out is not None and np.array_equal(out["x"], np.arange(6.0))

    def test_missing_key_is_none(self, store):
        assert store.load_arrays("nope") is None

    def test_saved_arrays_are_snapshots(self, store):
        x = np.zeros(4)
        store.save_arrays("k", {"x": x})
        x[:] = 9.0
        assert np.array_equal(store.load_arrays("k")["x"], np.zeros(4))

    def test_keys_and_delete(self, store):
        store.save_arrays("a/1", {"x": np.ones(1)})
        store.save_arrays("a/2", {"x": np.ones(1)})
        store.append_line("a/log", "hello")
        assert store.keys() == ["a/1", "a/2", "a/log"]
        store.delete("a/1")
        assert "a/1" not in store.keys()
        store.clear("a/")
        assert store.keys() == []

    def test_line_log(self, store):
        assert store.read_lines("log") == []
        store.append_line("log", "one")
        store.append_line("log", "two")
        assert store.read_lines("log") == ["one", "two"]


class TestFileStore:
    def test_survives_reopen(self, tmp_path):
        FileStore(tmp_path / "s").save_arrays("ckpt/panel/3", {"x": np.arange(4.0)})
        out = FileStore(tmp_path / "s").load_arrays("ckpt/panel/3")
        assert out is not None and np.array_equal(out["x"], np.arange(4.0))

    def test_truncated_payload_is_none(self, tmp_path):
        fs = FileStore(tmp_path / "s")
        fs.save_arrays("k", {"x": np.arange(64.0)})
        path = fs._path("k", ".npc")
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        assert fs.load_arrays("k") is None

    def test_no_tmp_litter(self, tmp_path):
        fs = FileStore(tmp_path / "s")
        for i in range(5):
            fs.save_arrays(f"k{i}", {"x": np.ones(2)})
        assert not [n for n in os.listdir(fs.root) if n.endswith(".tmp")]

    def _record_fsyncs(self, monkeypatch):
        """Patch os.fsync to log whether each fd is a file or directory."""
        import stat as stat_mod

        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(
                "dir" if stat_mod.S_ISDIR(os.fstat(fd).st_mode) else "file"
            )
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        return synced

    def test_save_arrays_fsyncs_directory_after_replace(
        self, tmp_path, monkeypatch
    ):
        # os.replace makes the rename atomic, but only an fsync of the
        # *containing directory* makes it durable: without it a crash
        # can roll back to a state where the key never existed.
        fs = FileStore(tmp_path / "s", fsync=True)
        synced = self._record_fsyncs(monkeypatch)
        fs.save_arrays("k", {"x": np.ones(3)})
        assert "dir" in synced
        assert synced.index("file") < synced.index("dir")  # file first

    def test_append_line_fsyncs_directory_on_creation_only(
        self, tmp_path, monkeypatch
    ):
        fs = FileStore(tmp_path / "s", fsync=True)
        synced = self._record_fsyncs(monkeypatch)
        fs.append_line("log", "first")  # creates the file: dir entry is new
        assert synced.count("dir") == 1
        fs.append_line("log", "second")  # existing file: no dir sync needed
        assert synced.count("dir") == 1
        assert synced.count("file") == 2

    def test_no_fsync_flag_means_no_fsync(self, tmp_path, monkeypatch):
        fs = FileStore(tmp_path / "s", fsync=False)
        synced = self._record_fsyncs(monkeypatch)
        fs.save_arrays("k", {"x": np.ones(3)})
        fs.append_line("log", "line")
        assert synced == []


# ----------------------------------------------------------------------
# Checkpoint snapshot chain
# ----------------------------------------------------------------------
class _Layout:
    """Minimal stand-in for the factorization block layout."""

    def __init__(self, m, n, b):
        self.m, self.n, self.b = m, n, b

    def panel_width(self, K):
        return min(self.b, self.n - K * self.b)


def _fill_boundaries(ckpt, F, layout, boundaries):
    """Snapshot matrix *F* at each boundary as the factorization would."""
    for K in boundaries:
        prevK = ckpt.prev_boundary(K)
        c1 = K * layout.b + layout.panel_width(K)
        prev_c1 = prevK * layout.b + layout.panel_width(prevK) if prevK >= 0 else 0
        ckpt.save_snapshot(
            K,
            cols=F[:, prev_c1:c1],
            urows=F[prev_c1:c1, c1 : layout.n],
            trailing=F[c1 : layout.m, c1 : layout.n],
        )


class TestCheckpoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            Checkpoint(interval=0)
        with pytest.raises(ValueError):
            Checkpoint(keep_trailing=0)

    def test_should_snapshot_interval(self):
        c = Checkpoint(interval=2)
        assert [c.should_snapshot(K) for K in range(4)] == [False, True, False, True]
        assert c.prev_boundary(3) == 1

    def test_prepare_keeps_matching_signature(self):
        c = Checkpoint()
        sig = {"algo": "calu", "m": 8, "n": 8}
        assert c.prepare(sig) is False  # nothing stored yet
        c.save_snapshot(0, cols=np.ones((4, 2)), urows=np.ones((2, 2)), trailing=np.ones((2, 2)))
        assert c.prepare(sig) is True
        assert c.load_snapshot(0) is not None

    def test_prepare_clears_on_mismatch(self):
        c = Checkpoint()
        c.prepare({"algo": "calu", "m": 8})
        c.save_snapshot(0, cols=np.ones((4, 2)), urows=np.ones((2, 2)), trailing=np.ones((2, 2)))
        assert c.prepare({"algo": "calu", "m": 16}) is False
        assert c.load_snapshot(0) is None

    def test_chain_and_restore(self):
        layout = _Layout(12, 12, 4)
        rng = np.random.default_rng(0)
        F = rng.standard_normal((12, 12))
        c = Checkpoint()
        _fill_boundaries(c, F, layout, [0, 1, 2])
        assert c.snapshot_chain() == [0, 1, 2]
        A = np.zeros((12, 12))
        K, snaps = restore_matrix(A, layout, c)
        assert K == 2 and sorted(snaps) == [0, 1, 2]
        assert np.array_equal(A, F)

    def test_trailing_pruned_to_keep(self):
        layout = _Layout(16, 16, 4)
        F = np.arange(256.0).reshape(16, 16)
        c = Checkpoint(keep_trailing=2)
        _fill_boundaries(c, F, layout, [0, 1, 2, 3])
        assert c._trailing_ks() == [2, 3]
        # Delta payloads all survive: the chain still reaches back to 0.
        assert c.snapshot_chain() == [0, 1, 2, 3]

    def test_corrupt_newest_trailing_falls_back_one_boundary(self, tmp_path):
        layout = _Layout(16, 16, 4)
        F = np.arange(256.0).reshape(16, 16)
        fs = FileStore(tmp_path / "s")
        c = Checkpoint(fs, keep_trailing=2)
        _fill_boundaries(c, F, layout, [0, 1, 2])
        c.flush()  # corrupt the file at rest, not racing the async writer
        path = fs._path("ckpt/trailing/2", ".npc")
        with open(path, "wb") as f:
            f.write(b"garbage")
        assert c.snapshot_chain() == [0, 1]
        A = np.zeros((16, 16))
        K, _ = restore_matrix(A, layout, c)
        assert K == 1
        c1 = 2 * 4  # boundary-1 frontier
        assert np.array_equal(A[:, :c1], F[:, :c1])
        assert np.array_equal(A[:c1, c1:], F[:c1, c1:])
        assert np.array_equal(A[c1:, c1:], F[c1:, c1:])

    def test_nothing_restorable_leaves_matrix_untouched(self):
        layout = _Layout(8, 8, 4)
        A = np.full((8, 8), 7.0)
        K, snaps = restore_matrix(A, layout, Checkpoint())
        assert K == -1 and snaps == {}
        assert np.array_equal(A, np.full((8, 8), 7.0))


# ----------------------------------------------------------------------
# Async snapshot writer
# ----------------------------------------------------------------------
class _ThreadSpyStore(MemoryStore):
    """Records which thread performs each array write."""

    def __init__(self):
        super().__init__()
        self.writer_threads: list[str] = []

    def save_arrays(self, key, arrays):
        self.writer_threads.append(threading.current_thread().name)
        super().save_arrays(key, arrays)


class _FlakyStore(MemoryStore):
    def __init__(self):
        super().__init__()
        self.fail = False

    def save_arrays(self, key, arrays):
        if self.fail:
            raise OSError("disk full")
        super().save_arrays(key, arrays)


def _one_snapshot(ckpt, K=0):
    ckpt.save_snapshot(
        K, cols=np.ones((4, 2)), urows=np.ones((2, 2)), trailing=np.ones((2, 2))
    )


class TestAsyncSnapshotWriter:
    def test_writes_happen_off_the_caller_thread(self):
        store = _ThreadSpyStore()
        c = Checkpoint(store)
        _one_snapshot(c)
        c.flush()
        assert store.writer_threads
        assert set(store.writer_threads) == {"repro-ckpt-writer"}

    def test_sync_mode_writes_inline(self):
        store = _ThreadSpyStore()
        c = Checkpoint(store, async_writes=False)
        _one_snapshot(c)
        assert set(store.writer_threads) == {threading.current_thread().name}

    def test_reads_flush_implicitly(self):
        # No explicit flush anywhere: every read-side API drains the
        # writer first, so a snapshot is visible the moment save returns.
        layout = _Layout(12, 12, 4)
        F = np.arange(144.0).reshape(12, 12)
        c = Checkpoint()
        _fill_boundaries(c, F, layout, [0, 1, 2])
        assert c.snapshot_chain() == [0, 1, 2]
        A = np.zeros((12, 12))
        K, _ = restore_matrix(A, layout, c)
        assert K == 2 and np.array_equal(A, F)

    def test_snapshot_copies_live_views_at_the_boundary(self):
        # The factorization keeps mutating its matrix after the boundary;
        # the async path must have copied the views synchronously.
        store = MemoryStore()
        c = Checkpoint(store)
        live = np.ones((2, 2))
        c.save_snapshot(0, cols=live, urows=live, trailing=live)
        live[:] = -7.0  # mutate before the background write lands
        c.flush()
        snap = c.load_snapshot(0)
        assert np.array_equal(snap["cols"], np.ones((2, 2)))

    def test_write_error_surfaces_on_flush(self):
        store = _FlakyStore()
        c = Checkpoint(store)
        store.fail = True
        _one_snapshot(c)  # returns: failure happens on the writer
        with pytest.raises(OSError, match="disk full"):
            c.flush()
        # The error is delivered once; the writer keeps serving.
        store.fail = False
        _one_snapshot(c, K=1)
        c.flush()

    def test_write_error_surfaces_on_next_save_without_flush(self):
        store = _FlakyStore()
        c = Checkpoint(store)
        store.fail = True
        _one_snapshot(c)
        deadline = time.monotonic() + 5.0
        while c._writer._error is None and time.monotonic() < deadline:
            time.sleep(0.005)
        store.fail = False
        with pytest.raises(OSError, match="disk full"):
            _one_snapshot(c, K=1)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork to SIGKILL a writer")
    def test_chain_survives_sigkill_after_flush(self, tmp_path):
        # fsync-on-replace durability, end to end: a process killed with
        # SIGKILL right after flush() leaves a fully restorable chain.
        layout = _Layout(12, 12, 4)
        F = np.arange(144.0).reshape(12, 12)
        pid = os.fork()
        if pid == 0:  # child: write, flush, die without any cleanup
            try:
                c = Checkpoint(FileStore(tmp_path / "s", fsync=True))
                _fill_boundaries(c, F, layout, [0, 1, 2])
                c.flush()
            finally:
                os.kill(os.getpid(), signal.SIGKILL)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        c = Checkpoint(FileStore(tmp_path / "s"))
        assert c.snapshot_chain() == [0, 1, 2]
        A = np.zeros((12, 12))
        K, _ = restore_matrix(A, layout, c)
        assert K == 2 and np.array_equal(A, F)


# ----------------------------------------------------------------------
# Task journal
# ----------------------------------------------------------------------
def _chain_graph(n=5, log=None, name="chain"):
    g = TaskGraph(name)
    prev = None
    for i in range(n):
        def fn(i=i):
            if log is not None:
                log.append(i)

        prev = g.add(f"t{i}", TaskKind.S, _mk(), fn=fn, deps=[prev] if prev is not None else [])
    return g


class TestTaskJournal:
    def test_record_and_reload(self, tmp_path):
        fs = FileStore(tmp_path / "s")
        j = TaskJournal(fs, key="jl")
        j.bind(_chain_graph())
        j.record_name("t0", 0)
        j.record_name("t1", 1)
        assert TaskJournal(fs, key="jl").bind(_chain_graph()) == {"t0", "t1"}

    def test_torn_tail_stops_at_last_intact_line(self):
        store = MemoryStore()
        store.append_line("jl", json.dumps({"header": {"graph": "chain", "n_tasks": 5}}))
        store.append_line("jl", json.dumps({"task": "t0", "tid": 0}))
        store.append_line("jl", json.dumps({"task": "t1", "tid": 1}))
        store.append_line("jl", '{"task": "t2", "ti')  # killed mid-append
        store.append_line("jl", json.dumps({"task": "t3", "tid": 3}))
        j = TaskJournal(store, key="jl")
        assert j.bind(_chain_graph()) == {"t0", "t1"}

    def test_header_mismatch_resets(self):
        store = MemoryStore()
        j = TaskJournal(store, key="jl")
        j.bind(_chain_graph(5))
        j.record_name("t0")
        assert TaskJournal(store, key="jl").bind(_chain_graph(7, name="other")) == set()

    def test_foreign_task_names_ignored(self):
        j = TaskJournal()
        j.bind(_chain_graph(5))
        j.record_name("t1")
        j.record_name("not-in-graph")
        assert j.bind(_chain_graph(5)) == {"t1"}

    def test_duplicate_records_collapse(self):
        store = MemoryStore()
        j = TaskJournal(store, key="jl")
        j.record_name("t0")
        j.record_name("t0")
        assert len(store.read_lines("jl")) == 1 and len(j) == 1

    def test_record_task_object(self):
        j = TaskJournal()
        j.record(Task(tid=3, name="t3", kind=TaskKind.S, cost=_mk()))
        assert "t3" in j.completed

    def test_reset(self):
        j = TaskJournal()
        j.bind(_chain_graph())
        j.record_name("t0")
        j.reset()
        assert len(j) == 0 and j.bind(_chain_graph()) == set()

    def test_checkpoint_namespaced_journal(self, tmp_path):
        c = Checkpoint(FileStore(tmp_path / "s"), key="run1")
        c.journal().record_name("t0")
        assert "t0" in c.journal().completed
        c.clear()
        assert len(c.journal()) == 0


# ----------------------------------------------------------------------
# Pickle round-trips of the structured failure types
# ----------------------------------------------------------------------
class TestPickleRoundTrips:
    def test_runtime_failure(self):
        f = RuntimeFailure("boom", task="S[1,2,3]", tid=17, failure_kind="injected")
        g = pickle.loads(pickle.dumps(f))
        assert str(g) == "boom"
        assert (g.task, g.tid, g.failure_kind) == ("S[1,2,3]", 17, "injected")
        assert g.trace is None

    def test_injected_fault(self):
        f = InjectedFault("injected exception", task="P[0]", tid=3, pre_execution=False)
        g = pickle.loads(pickle.dumps(f))
        assert (g.task, g.tid, g.pre_execution) == ("P[0]", 3, False)

    def test_resilience_event_dict_round_trip(self):
        e = ResilienceEvent("abft_correct", task="S[0,1,1]", tid=9, detail="fixed", value=2.5)
        assert ResilienceEvent.from_dict(e.to_dict()) == e
        assert ResilienceEvent.from_dict(json.loads(json.dumps(e.to_dict()))) == e


# ----------------------------------------------------------------------
# Journal-aware resume on every executor
# ----------------------------------------------------------------------
def _executors():
    return [
        ("threaded", lambda: ThreadedExecutor(2)),
        ("simulated", lambda: SimulatedExecutor(generic(2), execute=True)),
        ("stealing", lambda: WorkStealingExecutor(2)),
    ]


@pytest.mark.parametrize("name,make", _executors(), ids=[n for n, _ in _executors()])
class TestExecutorResume:
    def test_full_journal_skips_everything(self, name, make):
        journal = TaskJournal()
        log: list[int] = []
        make().run(_chain_graph(5, log), journal=journal)
        assert log == [0, 1, 2, 3, 4]
        assert len(journal) == 5

        log2: list[int] = []
        trace = make().run(_chain_graph(5, log2), journal=journal)
        assert log2 == []
        assert trace.records == []
        assert trace.resilience_summary().get("resume") == 1
        trace.validate_schedule(_chain_graph(5))

    def test_partial_journal_runs_only_frontier(self, name, make):
        journal = TaskJournal()
        journal.bind(_chain_graph(5))
        journal.mark_completed(["t0", "t1", "t2"])
        log: list[int] = []
        trace = make().run(_chain_graph(5, log), journal=journal)
        assert log == [3, 4]
        assert sorted(r.name for r in trace.records) == ["t3", "t4"]
        assert journal.completed == frozenset({"t0", "t1", "t2", "t3", "t4"})
        trace.validate_schedule(_chain_graph(5))

    def test_journal_records_as_tasks_complete(self, name, make):
        journal = TaskJournal()
        make().run(_chain_graph(4), journal=journal)
        assert journal.completed == frozenset({"t0", "t1", "t2", "t3"})

    def test_diamond_skip_releases_successors(self, name, make):
        def diamond(log):
            g = TaskGraph("diamond")
            a = g.add("a", TaskKind.P, _mk(), fn=lambda: log.append("a"))
            l = g.add("l", TaskKind.L, _mk(), fn=lambda: log.append("l"), deps=[a])
            u = g.add("u", TaskKind.U, _mk(), fn=lambda: log.append("u"), deps=[a])
            g.add("s", TaskKind.S, _mk(), fn=lambda: log.append("s"), deps=[l, u])
            return g

        journal = TaskJournal()
        journal.bind(diamond([]))
        journal.mark_completed(["a", "l"])
        log: list[str] = []
        make().run(diamond(log), journal=journal)
        assert log == ["u", "s"]
