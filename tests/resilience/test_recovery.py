"""Unit tests for retry policies and structured runtime failures."""

import pytest

from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import InjectedFault
from repro.resilience.recovery import FAILURE_KINDS, RetryPolicy, RuntimeFailure
from repro.runtime.task import Cost, Task, TaskKind
from repro.runtime.trace import TaskRecord, Trace


def mk_task(idempotent: bool = False) -> Task:
    return Task(tid=0, name="t0", kind=TaskKind.S, cost=Cost("gemm"), idempotent=idempotent)


class TestRetryPolicy:
    def test_idempotent_task_is_retried(self):
        p = RetryPolicy(max_retries=2)
        assert p.should_retry(mk_task(idempotent=True), ValueError("x"), 0)

    def test_non_idempotent_task_is_not_retried(self):
        p = RetryPolicy(max_retries=2)
        assert not p.should_retry(mk_task(), ValueError("x"), 0)

    def test_pre_execution_fault_always_retryable(self):
        p = RetryPolicy(max_retries=2)
        exc = InjectedFault("boom", pre_execution=True)
        assert p.should_retry(mk_task(), exc, 0)

    def test_post_execution_fault_not_retryable_on_non_idempotent(self):
        p = RetryPolicy(max_retries=2)
        exc = InjectedFault("boom", pre_execution=False)
        assert not p.should_retry(mk_task(), exc, 0)

    def test_max_retries_bounds_attempts(self):
        p = RetryPolicy(max_retries=2)
        t = mk_task(idempotent=True)
        assert p.should_retry(t, ValueError("x"), 1)
        assert not p.should_retry(t, ValueError("x"), 2)

    def test_zero_retries_disables(self):
        p = RetryPolicy(max_retries=0, retry_all=True)
        assert not p.should_retry(mk_task(idempotent=True), ValueError("x"), 0)

    def test_retry_all_lifts_safety_check(self):
        p = RetryPolicy(max_retries=1, retry_all=True)
        assert p.should_retry(mk_task(), ValueError("x"), 0)

    def test_exponential_backoff(self):
        p = RetryPolicy(backoff_s=0.01, backoff_multiplier=2.0)
        assert p.delay(0) == pytest.approx(0.01)
        assert p.delay(2) == pytest.approx(0.04)

    def test_backoff_cap(self):
        p = RetryPolicy(backoff_s=0.01, backoff_multiplier=10.0, max_backoff_s=0.05)
        assert p.delay(0) == pytest.approx(0.01)
        assert p.delay(1) == pytest.approx(0.05)  # 0.1 capped
        assert p.delay(5) == pytest.approx(0.05)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(backoff_s=0.01, jitter=0.5, seed=7)
        d = p.delay(1, tid=3)
        # Same (seed, tid, attempt) -> bit-identical delay, every time.
        assert d == p.delay(1, tid=3)
        base = 0.01 * p.backoff_multiplier
        assert base <= d <= base * 1.5
        # Different tids spread out within the same attempt.
        delays = {p.delay(1, tid=t) for t in range(16)}
        assert len(delays) > 1

    def test_jitter_varies_with_seed(self):
        a = RetryPolicy(backoff_s=0.01, jitter=0.5, seed=0).delay(1, tid=3)
        b = RetryPolicy(backoff_s=0.01, jitter=0.5, seed=1).delay(1, tid=3)
        assert a != b

    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(backoff_s=0.01, jitter=0.0, seed=5)
        assert p.delay(3, tid=9) == pytest.approx(0.01 * p.backoff_multiplier**3)

    def test_schedule_matches_delay(self):
        p = RetryPolicy(max_retries=4, backoff_s=0.01, jitter=0.25, seed=2)
        sched = p.schedule(tid=6)
        assert sched == [p.delay(a, tid=6) for a in range(4)]
        # Monotone non-decreasing base keeps the schedule growing even
        # though jitter wiggles each term by at most +25%.
        assert len(sched) == 4
        assert all(d > 0 for d in sched)


class TestRuntimeFailure:
    def test_is_a_runtime_error(self):
        # Callers that catch RuntimeError (the pre-resilience contract)
        # keep working.
        assert issubclass(RuntimeFailure, RuntimeError)

    def test_kind_vocabulary(self):
        assert "timeout" in FAILURE_KINDS and "health" in FAILURE_KINDS

    def test_carries_task_and_trace(self):
        tr = Trace(
            [TaskRecord(0, "t0", TaskKind.S, 0, 0.0, 1.0)],
            2,
            [ResilienceEvent("retry", "t0", 0)],
        )
        f = RuntimeFailure("boom", task="t0", tid=0, failure_kind="timeout", trace=tr)
        assert f.task == "t0" and f.failure_kind == "timeout"
        s = f.summary()
        assert "timeout" in s and "t0" in s and "1 tasks completed" in s and "retry=1" in s

    def test_summary_without_trace(self):
        s = RuntimeFailure("boom", failure_kind="deadlock").summary()
        assert s.startswith("deadlock")
