"""Input validation at public entry points and the solve health loop."""

import numpy as np
import pytest

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.linalg import SolveReport, lstsq, solve
from repro.resilience.health import (
    NumericalHealthWarning,
    finite_block_guard,
    validate_matrix,
    validate_rhs,
)
from tests.conftest import make_rng


class TestValidateMatrix:
    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_matrix(np.ones(5))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_matrix(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_matrix(np.ones((0, 4)))

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="numeric"):
            validate_matrix(np.array([["a", "b"], ["c", "d"]]))

    def test_rejects_complex(self):
        with pytest.raises(ValueError, match="real"):
            validate_matrix(np.ones((2, 2), dtype=complex))

    def test_rejects_nonfinite_naming_argument(self):
        A = np.ones((3, 3))
        A[1, 1] = np.inf
        with pytest.raises(ValueError, match="A contains 1 NaN or Inf"):
            validate_matrix(A)

    def test_finite_check_optional(self):
        A = np.ones((3, 3))
        A[0, 0] = np.nan
        validate_matrix(A, require_finite=False)  # no raise


class TestValidateRhs:
    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError, match="4 rows"):
            validate_rhs(np.ones(4), 5)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            validate_rhs(np.ones((2, 2, 2)), 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_rhs(np.ones((5, 0)), 5)

    def test_rejects_nonfinite(self):
        rhs = np.ones(5)
        rhs[0] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            validate_rhs(rhs, 5)


class TestEntryPoints:
    def test_factorizations_reject_empty(self):
        empty = np.empty((0, 0))
        for fac in (calu, caqr):
            with pytest.raises(ValueError, match="empty"):
                fac(empty)
        for fac in (tslu, tsqr):
            with pytest.raises(ValueError, match="empty"):
                fac(empty)

    def test_factorizations_reject_1d(self):
        vec = np.ones(8)
        for fac in (calu, caqr, tslu, tsqr):
            with pytest.raises(ValueError, match="2-D"):
                fac(vec)

    def test_solve_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            solve(np.ones((4, 3)), np.ones(4))

    def test_solve_rejects_rhs_mismatch(self):
        A = make_rng(0).standard_normal((8, 8))
        with pytest.raises(ValueError, match="rhs"):
            solve(A, np.ones(5))

    def test_solve_rejects_nonfinite_input(self):
        A = make_rng(0).standard_normal((8, 8))
        A[2, 2] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            solve(A, np.ones(8))

    def test_lstsq_rejects_wide(self):
        with pytest.raises(ValueError, match="m >= n"):
            lstsq(np.ones((3, 5)), np.ones(3))

    def test_lstsq_validates_rhs(self):
        A = make_rng(1).standard_normal((12, 4))
        with pytest.raises(ValueError, match="rhs"):
            lstsq(A, np.ones(7))


class TestSolveHealthLoop:
    def test_well_conditioned_solve_converges(self):
        A = make_rng(2).standard_normal((24, 24)) + 24 * np.eye(24)
        rhs = np.ones(24)
        x, rep = solve(A, rhs, b=8, tr=2, report=True)
        assert isinstance(rep, SolveReport)
        assert rep.converged and rep.residual <= rep.tol
        assert np.allclose(A @ x, rhs, atol=1e-8)

    def test_auto_refine_escalates_on_unmet_tolerance(self):
        A = make_rng(3).standard_normal((16, 16)) + 16 * np.eye(16)
        rhs = np.ones(16)
        # An unreachable tolerance forces the escalation path and the
        # health warning reporting the achieved residual.
        with pytest.warns(NumericalHealthWarning, match="residual"):
            x, rep = solve(A, rhs, b=8, tr=2, rtol=1e-30, report=True)
        assert not rep.converged
        assert rep.refine_steps >= 1
        assert np.isfinite(rep.residual)

    def test_auto_refine_can_be_disabled(self):
        A = make_rng(4).standard_normal((16, 16)) + 16 * np.eye(16)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", NumericalHealthWarning)
            x = solve(A, np.ones(16), b=8, tr=2, auto_refine=False, rtol=1e-30)
        assert x.shape == (16,)

    def test_report_forwards_degraded_panels(self):
        A = make_rng(5).standard_normal((16, 16)) + 16 * np.eye(16)
        _, rep = solve(A, np.ones(16), b=8, tr=2, report=True)
        assert rep.degraded_panels == ()


class TestFiniteBlockGuard:
    def test_clean_block_passes(self):
        A = np.ones((6, 6))
        assert finite_block_guard(A, 0, 3, 0, 3, "t")() is None

    def test_nan_block_is_fatal(self):
        A = np.ones((6, 6))
        A[4, 4] = np.nan
        ev = finite_block_guard(A, 3, 6, 3, 6, "t")()
        assert ev is not None and ev.fatal and ev.kind == "health"

    def test_nan_outside_window_ignored(self):
        A = np.ones((6, 6))
        A[0, 0] = np.nan
        assert finite_block_guard(A, 3, 6, 3, 6, "t")() is None


def test_health_warning_is_user_warning():
    assert issubclass(NumericalHealthWarning, UserWarning)
