"""Resilience behaviour of the threaded executor: retries, watchdog, guards."""

import threading
import time

import numpy as np
import pytest

from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor


def chain_graph(fns, idempotent=False):
    """t0 -> t1 -> ... with the given closures."""
    g = TaskGraph("chain")
    prev = None
    for i, fn in enumerate(fns):
        prev = g.add(
            f"t{i}",
            TaskKind.S,
            Cost("gemm", 4, 4, 4, flops=100.0),
            fn=fn,
            deps=[] if prev is None else [prev],
            idempotent=idempotent,
        )
    return g


class Flaky:
    """Raises on the first *n_failures* calls, then succeeds."""

    def __init__(self, n_failures: int = 1):
        self.calls = 0
        self.n_failures = n_failures
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
            if self.calls <= self.n_failures:
                raise ValueError(f"flaky failure #{self.calls}")


class TestRetries:
    def test_idempotent_flaky_task_recovers(self):
        flaky = Flaky(1)
        g = chain_graph([flaky, lambda: None], idempotent=True)
        tr = ThreadedExecutor(2, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)).run(g)
        assert flaky.calls == 2
        assert tr.retries() == 1
        assert len(tr.records) == 2

    def test_non_idempotent_flaky_task_fails_structured(self):
        g = chain_graph([Flaky(1), lambda: None], idempotent=False)
        with pytest.raises(RuntimeFailure) as ei:
            ThreadedExecutor(2, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)).run(g)
        assert ei.value.failure_kind == "task_error"
        assert ei.value.task == "t0"
        assert isinstance(ei.value.__cause__, ValueError)
        assert ei.value.trace is not None

    def test_retries_exhausted(self):
        flaky = Flaky(5)
        g = chain_graph([flaky], idempotent=True)
        with pytest.raises(RuntimeFailure):
            ThreadedExecutor(1, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)).run(g)
        assert flaky.calls == 3  # initial + 2 retries

    def test_plain_executor_raises_structured_failure(self):
        # Unified failure semantics: even with no resilience options
        # configured, a task error surfaces as a RuntimeFailure naming
        # the task and chaining the original exception.
        g = chain_graph([Flaky(1)])
        with pytest.raises(RuntimeFailure, match="flaky") as ei:
            ThreadedExecutor(2).run(g)
        assert ei.value.failure_kind == "task_error"
        assert ei.value.task == "t0"
        assert isinstance(ei.value.__cause__, ValueError)
        assert ei.value.trace is not None


class TestInjectedFaults:
    def test_injected_fault_without_retry_is_structured(self):
        g = chain_graph([lambda: None for _ in range(4)])
        plan = FaultPlan(0, raise_rate=1.0)
        with pytest.raises(RuntimeFailure) as ei:
            ThreadedExecutor(2, fault_plan=plan).run(g)
        assert ei.value.failure_kind == "injected"
        assert isinstance(ei.value.__cause__, InjectedFault)

    def test_transient_faults_recovered_by_retry(self):
        n = 6
        done = []
        g = chain_graph([(lambda i=i: done.append(i)) for i in range(n)])
        plan = FaultPlan(0, raise_rate=1.0, transient=True)
        tr = ThreadedExecutor(
            2, fault_plan=plan, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)
        ).run(g)
        # Every task faulted pre-execution on attempt 0 and recovered.
        assert sorted(done) == list(range(n))
        assert tr.retries() == n
        assert tr.resilience_summary()["fault_raise"] == n

    def test_fault_schedule_independent_of_workers(self):
        def run(workers):
            g = chain_graph([lambda: None for _ in range(8)])
            plan = FaultPlan(3, raise_rate=0.5, transient=True)
            ThreadedExecutor(
                workers, fault_plan=plan, retry=RetryPolicy(max_retries=2, backoff_s=1e-4)
            ).run(g)
            return sorted((e.kind, e.tid) for e in plan.injected)

        assert run(1) == run(4)

    def test_injected_stall_delays_but_completes(self):
        g = chain_graph([lambda: None])
        plan = FaultPlan(0, stall_rate=1.0, stall_s=0.05)
        t0 = time.perf_counter()
        tr = ThreadedExecutor(1, fault_plan=plan).run(g)
        assert time.perf_counter() - t0 >= 0.05
        assert tr.resilience_summary()["fault_stall"] == 1


class TestWatchdog:
    def test_task_timeout_fires(self):
        g = chain_graph([lambda: time.sleep(0.5)])
        with pytest.raises(RuntimeFailure) as ei:
            ThreadedExecutor(1, task_timeout=0.05, watchdog_poll_s=0.01).run(g)
        assert ei.value.failure_kind == "timeout"
        assert ei.value.task == "t0"
        assert ei.value.trace is not None

    def test_stall_timeout_fires(self):
        g = chain_graph([lambda: None, lambda: time.sleep(0.5)])
        with pytest.raises(RuntimeFailure) as ei:
            ThreadedExecutor(1, stall_timeout=0.05, watchdog_poll_s=0.01).run(g)
        assert ei.value.failure_kind == "stall"
        # Partial trace: the first task completed before the stall.
        assert [r.name for r in ei.value.trace.records] == ["t0"]

    def test_watchdog_returns_promptly_not_after_sleep(self):
        g = chain_graph([lambda: time.sleep(1.0)])
        t0 = time.perf_counter()
        with pytest.raises(RuntimeFailure):
            ThreadedExecutor(1, task_timeout=0.05, watchdog_poll_s=0.01).run(g)
        # The stuck worker is abandoned, not joined to completion.
        assert time.perf_counter() - t0 < 0.8

    def test_healthy_run_unaffected_by_watchdog(self):
        g = chain_graph([lambda: None for _ in range(5)])
        tr = ThreadedExecutor(2, task_timeout=5.0, stall_timeout=5.0).run(g)
        assert len(tr.records) == 5 and not tr.events


class TestHealthGuards:
    def test_fatal_guard_aborts_structured(self):
        arr = np.ones(4)

        def bad():
            arr[2] = np.nan

        def guard():
            if not np.isfinite(arr).all():
                return ResilienceEvent("health", "t0", 0, detail="NaN in arr", fatal=True)
            return None

        g = TaskGraph("h")
        g.add("t0", TaskKind.S, Cost("gemm"), fn=bad, health=guard)
        g.add("t1", TaskKind.S, Cost("gemm"), fn=lambda: None, deps=[0])
        with pytest.raises(RuntimeFailure) as ei:
            ThreadedExecutor(2, retry=RetryPolicy()).run(g)
        assert ei.value.failure_kind == "health"
        assert "NaN" in str(ei.value)

    def test_non_fatal_guard_recorded_only(self):
        g = TaskGraph("h")
        g.add(
            "t0",
            TaskKind.S,
            Cost("gemm"),
            fn=lambda: None,
            health=lambda: ResilienceEvent("health", "t0", 0, detail="warn"),
        )
        tr = ThreadedExecutor(1, retry=RetryPolicy()).run(g)
        assert tr.resilience_summary() == {"health": 1}

    def test_health_checks_can_be_disabled(self):
        g = TaskGraph("h")
        g.add(
            "t0",
            TaskKind.S,
            Cost("gemm"),
            fn=lambda: None,
            health=lambda: ResilienceEvent("health", fatal=True),
        )
        tr = ThreadedExecutor(1, retry=RetryPolicy(), health_checks=False).run(g)
        assert not tr.events


class TestTraceEvents:
    def test_summary_mentions_events(self):
        g = chain_graph([Flaky(1)], idempotent=True)
        tr = ThreadedExecutor(1, retry=RetryPolicy(backoff_s=1e-4)).run(g)
        assert "retry" in tr.summary()
        assert tr.degradations() == []

    def test_to_json_includes_events(self):
        import json

        g = chain_graph([Flaky(1)], idempotent=True)
        tr = ThreadedExecutor(1, retry=RetryPolicy(backoff_s=1e-4)).run(g)
        data = json.loads(tr.to_json())
        assert data["events"] and data["events"][0]["kind"] == "retry"
