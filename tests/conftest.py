"""Shared fixtures and assertion helpers for the test suite.

The suite tests a threaded runtime, so a scheduling bug shows up as a
*hang*, not a failure.  Two defenses make hangs diagnosable and bounded:
``faulthandler`` is armed so a stuck run can dump every thread's stack,
and an autouse fixture gives each test a hard wall-clock timeout
(``PYTEST_SINGLE_TIMEOUT`` seconds, default 120) after which the stacks
are dumped and the process exits non-zero instead of blocking CI
forever.
"""

from __future__ import annotations

import faulthandler
import functools
import os

import numpy as np
import pytest

from repro.kernels.lu import piv_to_perm

faulthandler.enable()

_TEST_TIMEOUT_S = float(os.environ.get("PYTEST_SINGLE_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _per_test_timeout():
    """Hard per-test timeout: dump all thread stacks and exit on a hang."""
    if _TEST_TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(_TEST_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def assert_lu_ok(A0: np.ndarray, lu: np.ndarray, piv: np.ndarray, tol: float = 1e-12) -> None:
    """Check ``A0[perm] == L U`` for a packed in-place LU factorization."""
    m, n = A0.shape
    r = min(m, n)
    L = np.tril(lu[:, :r], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(lu[:r, :])
    perm = piv_to_perm(piv, m)
    err = np.linalg.norm(A0[perm] - L @ U) / max(np.linalg.norm(A0), 1e-300)
    assert err < tol, f"LU backward error {err:.3e} exceeds {tol:.1e}"


@functools.lru_cache(maxsize=1)
def _static_lock_analysis():
    from repro.verify.lockcheck import analyze

    return analyze()


def assert_lock_sanity(
    witness,
    *,
    allowed_roundtrip: tuple[str, ...] = (),
    hold_bound_s: float = 1.0,
    ipc_hold_bound_s: float = 30.0,
    min_coverage: float = 0.9,
) -> None:
    """Cross-check a dynamic lock witness against the static lockcheck graph.

    Asserts the run produced no acquisition-order edges outside the
    static graph (LK101), no locks held across process-pool round-trips
    beyond *allowed_roundtrip* (LK102), no lock held anywhere near a
    watchdog threshold (IPC-spanning locks in *allowed_roundtrip* get
    the larger bound, since they legally cover a worker round-trip and
    its kill/respawn recovery), and that at least *min_coverage* of the
    static lock-order edges the workload exercised were actually
    witnessed.
    """
    from repro.verify.lockcheck import coverage, cross_check

    result = _static_lock_analysis()
    findings = cross_check(witness, result, allowed_roundtrip=allowed_roundtrip)
    assert not findings, "lock witness vs static graph:\n" + "\n".join(
        f"  {f}" for f in findings
    )
    for name, held in witness.hold_max_s.items():
        bound = ipc_hold_bound_s if name in allowed_roundtrip else hold_bound_s
        assert held <= bound, (
            f"lock {name!r} held {held:.3f}s (bound {bound}s): long enough "
            f"to trip a watchdog or starve the run"
        )
    frac, exercised, missed = coverage(witness, result)
    assert frac >= min_coverage, (
        f"witnessed only {frac:.0%} of the {len(exercised)} exercised "
        f"static lock-order edges; missed: {sorted(missed)}"
    )


def assert_qr_ok(A0: np.ndarray, Q: np.ndarray, R: np.ndarray, tol: float = 1e-12) -> None:
    """Check ``A0 == Q R`` and ``Q`` has orthonormal columns."""
    err = np.linalg.norm(A0 - Q @ R) / max(np.linalg.norm(A0), 1e-300)
    orth = np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1]))
    assert err < tol, f"QR backward error {err:.3e} exceeds {tol:.1e}"
    assert orth < tol * 10, f"orthogonality error {orth:.3e} exceeds {tol * 10:.1e}"
