"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.bench.plots import ascii_chart
from repro.bench.tables import Table


def make_table(values, rows=None, cols=None, **kw):
    values = np.asarray(values, dtype=float)
    return Table(
        title="test chart",
        row_header="n",
        row_labels=rows or [str(i) for i in range(values.shape[0])],
        col_labels=cols or [f"c{j}" for j in range(values.shape[1])],
        values=values,
        **kw,
    )


def test_contains_markers_and_legend():
    t = make_table([[1.0, 2.0], [3.0, 4.0], [2.0, 8.0]])
    out = ascii_chart(t)
    assert "o=c0" in out and "x=c1" in out
    assert "o" in out and "x" in out


def test_row_labels_on_axis():
    t = make_table([[1.0], [2.0], [3.0]], rows=["10", "500", "1000"])
    out = ascii_chart(t)
    last = out.splitlines()[-2]
    assert "10" in last and "1000" in last


def test_max_value_at_top_row():
    t = make_table([[0.0], [10.0]])
    lines = ascii_chart(t, height=10).splitlines()
    # First grid line holds the maximum.
    assert "o" in lines[1]


def test_log_scale():
    t = make_table([[0.1], [1000.0]])
    out = ascii_chart(t, logy=True)
    assert "(log y-axis)" in out


def test_constant_series_no_crash():
    t = make_table([[5.0], [5.0]])
    assert "o" in ascii_chart(t)


def test_empty():
    t = make_table(np.zeros((0, 0)).reshape(0, 0))
    assert ascii_chart(t) == "(empty chart)"


def test_table_format_embeds_chart():
    t = make_table([[1.0, 2.0], [3.0, 4.0]], chart=True)
    out = t.format()
    assert "series:" in out


def test_table_format_without_chart():
    t = make_table([[1.0, 2.0], [3.0, 4.0]])
    assert "series:" not in t.format()
