"""Smoke and shape tests for the experiment drivers (scaled down)."""

import numpy as np
import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    fig3_fig4,
    fig5,
    fig8,
    lookahead_ablation,
    overhead_ablation,
    stability,
    table1,
    table3,
    tree_ablation,
)
from repro.machine.presets import intel8_mkl

SMALL_NS = (50, 200)


class TestFig3Fig4:
    def test_idle_drops_with_tr8(self):
        pair = fig3_fig4(m=20000, n=500)
        assert pair.idle_tr8 < pair.idle_tr1
        assert pair.gflops_tr8 > pair.gflops_tr1

    def test_format_contains_gantt(self):
        pair = fig3_fig4(m=10000, n=300)
        out = pair.format()
        assert "core" in out and "idle fraction" in out


class TestFig5Shape:
    @pytest.fixture(scope="class")
    def tbl(self):
        return fig5(ns=SMALL_NS)

    def test_columns(self, tbl):
        assert tbl.col_labels == [
            "MKL_dgetf2",
            "MKL_dgetrf",
            "PLASMA_dgetrf",
            "CALU(Tr=4)",
            "CALU(Tr=8)",
        ]

    def test_calu_beats_dgetf2_big(self, tbl):
        ratios = tbl.ratio("CALU(Tr=8)", "MKL_dgetf2")
        assert (ratios > 3.0).all()

    def test_calu_beats_dgetrf(self, tbl):
        ratios = tbl.ratio("CALU(Tr=8)", "MKL_dgetrf")
        assert (ratios > 1.2).all()
        assert (ratios < 4.0).all()  # bounded, per the paper's 1.5-2.3x

    def test_calu_beats_plasma_small_n(self, tbl):
        assert tbl.cell("50", "CALU(Tr=8)") > 2.0 * tbl.cell("50", "PLASMA_dgetrf")


class TestFig8Shape:
    @pytest.fixture(scope="class")
    def tbl(self):
        return fig8(ns=SMALL_NS)

    def test_tsqr_beats_mkl(self, tbl):
        ratios = tbl.ratio("TSQR(Tr=8)", "MKL_dgeqrf")
        assert (ratios > 2.0).all()

    def test_tsqr_beats_geqr2_hugely(self, tbl):
        assert (tbl.ratio("TSQR(Tr=8)", "MKL_dgeqr2") > 8.0).all()


class TestSquareTables:
    def test_table1_mkl_wins_small(self):
        t = table1(sizes=(1000, 2000))
        assert t.cell("1000", "MKL_dgetrf") > t.cell("1000", "CALU(Tr=8)")
        assert t.cell("1000", "MKL_dgetrf") > t.cell("1000", "PLASMA_dgetrf")

    def test_table1_gap_closes_with_size(self):
        t = table1(sizes=(1000, 5000))
        gap_small = t.cell("1000", "MKL_dgetrf") / t.cell("1000", "CALU(Tr=4)")
        gap_big = t.cell("5000", "MKL_dgetrf") / t.cell("5000", "CALU(Tr=4)")
        assert gap_big < gap_small

    def test_table3_runs(self):
        t = table3(sizes=(1000,))
        assert (t.values > 0).all()


class TestAblations:
    def test_tree_ablation_runs(self):
        t = tree_ablation(m=20000, ns=(50, 100))
        assert (t.values > 0).all()

    def test_lookahead_helps(self):
        t = lookahead_ablation(sizes=(2000,))
        assert t.cell("2000", "lookahead=1") >= t.cell("2000", "lookahead=0") * 0.95

    def test_overhead_degrades_performance(self):
        t = overhead_ablation(n=1000, overheads=(0.0, 320.0))
        # More scheduling overhead can only slow CALU down.
        assert (t.values[1] < t.values[0]).all()

    def test_overhead_hurts_small_blocks_more(self):
        t = overhead_ablation(n=1000, overheads=(0.0, 320.0))
        drop_b50 = t.values[0][0] / t.values[1][0]
        drop_b200 = t.values[0][2] / t.values[1][2]
        assert drop_b50 > drop_b200  # more tasks -> more sensitive (paper)

    def test_stability_table(self):
        t = stability(sizes=(256,), trials=3)
        gepp = t.cell("256", "GEPP")
        calu = t.cell("256", "CALU(Tr=8)")
        inc = t.cell("256", "tiled(nb=n/16)")
        assert calu < 5.0 * gepp  # ca-pivoting is GEPP-like
        assert inc > 1.1 * calu  # incremental pivoting grows faster


def test_registry_complete():
    assert set(EXPERIMENTS) == {
        "fig3_fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "table2",
        "table3",
        "tree_ablation",
        "lookahead_ablation",
        "lookahead_depth_ablation",
        "overhead_ablation",
        "stability",
        "bb_extension",
        "hybrid_update",
        "fig1_fig2",
        "scaling",
    }


def test_cli_rejects_unknown():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["does_not_exist"])
