"""Gap-filling tests for method runners and experiment plumbing."""

import numpy as np
import pytest

from repro.bench.methods import lu_graph, simulate_lu
from repro.machine.presets import generic, intel8_mkl
from repro.runtime.task import TaskKind


class TestHybridMethod:
    def test_calu_hybrid_builds(self):
        g = lu_graph("calu_hybrid", 2000, 400, tr=4)
        g.validate()
        libs = {t.cost.library for t in g.tasks}
        assert libs == {"repro", "mkl"}

    def test_hybrid_panel_stays_repro(self):
        g = lu_graph("calu_hybrid", 1000, 500, tr=4)
        for t in g.tasks:
            if t.kind is TaskKind.P:
                assert t.cost.library == "repro"
            if t.kind in (TaskKind.S, TaskKind.U):
                assert t.cost.library == "mkl"

    def test_hybrid_at_least_as_fast_as_plain(self):
        mach = intel8_mkl()
        plain = simulate_lu("calu", 3000, 3000, mach, tr=4).gflops
        hybrid = simulate_lu("calu_hybrid", 3000, 3000, mach, tr=4).gflops
        assert hybrid >= plain * 0.999


class TestUpdateWidthPlumbing:
    def test_update_width_reduces_tasks(self):
        g1 = lu_graph("calu", 2000, 2000, tr=4)
        g2 = lu_graph("calu", 2000, 2000, tr=4, update_width=400)
        assert len(g2) < len(g1)

    def test_update_width_same_flops(self):
        g1 = lu_graph("calu", 1500, 1500, tr=4)
        g2 = lu_graph("calu", 1500, 1500, tr=4, update_width=300)
        assert g1.total_flops() == pytest.approx(g2.total_flops())

    def test_simulate_with_update_width(self):
        r = simulate_lu("calu", 2000, 1000, generic(4), tr=2, update_width=200)
        assert r.gflops > 0


class TestSimulatedPolicies:
    def test_priority_vs_fifo_both_complete(self):
        from repro.runtime.simulated import SimulatedExecutor

        mach = generic(4)
        g = lu_graph("calu", 1600, 800, tr=4)
        t_prio = SimulatedExecutor(mach, policy="priority").run(g)
        g2 = lu_graph("calu", 1600, 800, tr=4)
        t_fifo = SimulatedExecutor(mach, policy="fifo").run(g2)
        t_prio.validate_schedule(g)
        t_fifo.validate_schedule(g2)
        assert len(t_prio.records) == len(t_fifo.records)

    def test_lookahead_priority_not_slower_on_tall(self):
        from repro.runtime.simulated import SimulatedExecutor

        mach = generic(4)
        g_p = lu_graph("calu", 40000, 400, tr=4)
        g_f = lu_graph("calu", 40000, 400, tr=4)
        mk_p = SimulatedExecutor(mach, policy="priority").run(g_p).makespan
        mk_f = SimulatedExecutor(mach, policy="fifo").run(g_f).makespan
        assert mk_p <= mk_f * 1.2


class TestMachineEdgeCases:
    def test_single_core_machine(self):
        r = simulate_lu("calu", 1000, 500, generic(1), tr=2)
        assert r.gflops > 0
        assert r.trace.idle_fraction() < 0.05  # one core never waits for peers

    def test_zero_overhead_machine(self):
        mach = generic(4, task_overhead_us=0.0, sync_latency_us=0.0)
        r = simulate_lu("calu", 1000, 500, mach, tr=4)
        assert r.gflops > 0

    def test_huge_bandwidth_removes_contention(self):
        slow = generic(4, mem_bw_gbs=1.0)
        fast = generic(4, mem_bw_gbs=10_000.0)
        g_s = simulate_lu("mkl_getf2", 100_000, 64, slow).gflops
        g_f = simulate_lu("mkl_getf2", 100_000, 64, fast).gflops
        assert g_f > g_s * 1.5  # BLAS2 panel is bandwidth-limited
