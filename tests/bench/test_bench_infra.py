"""Tests for workloads, tables and method runners."""

import numpy as np
import pytest

from repro.bench.methods import lu_graph, qr_graph, simulate_lu, simulate_qr
from repro.bench.tables import Series, Table
from repro.bench.workloads import (
    ill_conditioned,
    near_rank_deficient,
    random_matrix,
    vandermonde_ls,
)
from repro.machine.presets import generic


class TestWorkloads:
    def test_random_matrix_deterministic(self):
        np.testing.assert_array_equal(random_matrix(5, 3, seed=7), random_matrix(5, 3, seed=7))

    def test_ill_conditioned_cond(self):
        A = ill_conditioned(40, 40, cond=1e8, seed=1)
        c = np.linalg.cond(A)
        assert 1e7 < c < 1e9

    def test_near_rank_deficient(self):
        A = near_rank_deficient(30, 20, rank=5, noise=0.0, seed=2)
        assert np.linalg.matrix_rank(A) == 5

    def test_vandermonde_ls(self):
        A, rhs, coeffs = vandermonde_ls(100, 4, seed=3)
        assert A.shape == (100, 5)
        x = np.linalg.lstsq(A, rhs, rcond=None)[0]
        np.testing.assert_allclose(x, coeffs, atol=1e-5)


class TestTable:
    def make(self):
        return Table(
            title="t",
            row_header="n",
            row_labels=["10", "20"],
            col_labels=["a", "b"],
            values=np.array([[1.0, 2.0], [3.0, 4.0]]),
            notes=["note"],
        )

    def test_cell_and_column(self):
        t = self.make()
        assert t.cell("20", "a") == 3.0
        np.testing.assert_array_equal(t.column("b"), [2.0, 4.0])

    def test_ratio(self):
        t = self.make()
        np.testing.assert_allclose(t.ratio("b", "a"), [2.0, 4.0 / 3.0])

    def test_format_contains_everything(self):
        s = t = self.make().format()
        for token in ("t", "a", "b", "10", "20", "note"):
            assert token in s

    def test_series(self):
        s = Series("x", [1, 2], [3.0, 4.0])
        assert s.label == "x"


class TestMethodRunners:
    @pytest.mark.parametrize(
        "method", ["calu", "mkl_getrf", "acml_getrf", "mkl_getf2", "plasma_getrf"]
    )
    def test_lu_graphs_build_and_validate(self, method):
        g = lu_graph(method, 2000, 400, tr=4)
        g.validate()
        assert g.total_flops() > 0

    @pytest.mark.parametrize(
        "method", ["caqr", "tsqr", "mkl_geqrf", "acml_geqrf", "mkl_geqr2", "plasma_geqrf"]
    )
    def test_qr_graphs_build_and_validate(self, method):
        g = qr_graph(method, 2000, 400, tr=4)
        g.validate()
        assert g.total_flops() > 0

    def test_unknown_methods(self):
        with pytest.raises(ValueError):
            lu_graph("nope", 100, 100)
        with pytest.raises(ValueError):
            qr_graph("nope", 100, 100)

    def test_simulate_lu_returns_rate(self):
        r = simulate_lu("calu", 4000, 400, generic(4), tr=4)
        assert r.gflops > 0
        assert r.trace.makespan > 0
        r.trace.validate_schedule(r.graph)

    def test_simulate_qr_returns_rate(self):
        r = simulate_qr("tsqr", 4000, 100, generic(4), tr=4)
        assert r.gflops > 0

    def test_tsqr_is_single_panel(self):
        g = qr_graph("tsqr", 5000, 200, tr=4)
        # No trailing updates: every task is a panel task.
        assert set(t.kind.value for t in g.tasks) == {"P"}

    def test_gflops_normalized_by_standard_count(self):
        """CALU's extra flops cost time but are not credited as work."""
        from repro.analysis.flops import lu_flops

        mach = generic(4)
        r = simulate_lu("calu", 4000, 400, mach, tr=4)
        assert r.gflops == pytest.approx(lu_flops(4000, 400) / r.trace.makespan / 1e9)
