"""Tests for the automated reproduction report."""

import numpy as np
import pytest

from repro.bench.report import CLAIMS, check_claims, generate_report
from repro.bench.tables import Table


def fake_fig5(win: bool = True):
    cols = ["MKL_dgetf2", "MKL_dgetrf", "PLASMA_dgetrf", "CALU(Tr=4)", "CALU(Tr=8)"]
    vals = np.array(
        [
            [1.0, 4.0, 1.0, 3.0, 5.0],
            [1.4, 5.0, 3.5, 10.0, 15.0],
            [1.5, 17.0, 19.0, 30.0, 39.0],
            [1.5, 26.0, 38.0, 45.0, 48.0],
        ]
    )
    if not win:
        vals[:, 4] = 0.5  # CALU loses everywhere
    return Table(
        title="f",
        row_header="n",
        row_labels=["10", "100", "500", "1000"],
        col_labels=cols,
        values=vals,
    )


def test_claims_registry_nonempty():
    assert len(CLAIMS) >= 10
    assert {c.experiment for c in CLAIMS} >= {"fig5", "fig6", "table1", "stability"}


def test_check_claims_only_present_experiments():
    checks = check_claims({"fig5": fake_fig5()})
    assert checks
    assert all(c.experiment == "fig5" for c, _, _ in checks)


def test_claim_passes_on_good_data():
    checks = check_claims({"fig5": fake_fig5(win=True)})
    mkl_claim = [ok for c, ok, _ in checks if "beats MKL" in c.text]
    assert mkl_claim == [True]


def test_claim_fails_on_bad_data():
    checks = check_claims({"fig5": fake_fig5(win=False)})
    mkl_claim = [ok for c, ok, _ in checks if "beats MKL" in c.text]
    assert mkl_claim == [False]


def test_generate_report_markdown():
    report = generate_report({"fig5": fake_fig5()})
    assert report.startswith("# Reproduction report")
    assert "| fig5 |" in report
    assert "PASS" in report
    assert "### fig5" in report  # raw output embedded


def test_cli_report(tmp_path):
    from repro.bench.__main__ import main

    out = tmp_path / "report.md"
    rc = main(["stability", "--report", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "Reproduction report" in text
    assert "stability" in text
