"""Cross-validation of the full stack against SciPy/NumPy references."""

import numpy as np
import pytest
import scipy.linalg

from repro.baselines.tiled_lu import tiled_lu
from repro.baselines.tiled_qr import tiled_qr
from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.machine.presets import generic
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng


@pytest.mark.parametrize("seed", range(5))
def test_calu_solution_matches_scipy_solve(seed):
    rng = make_rng(seed)
    n = int(rng.integers(30, 150))
    A = rng.standard_normal((n, n))
    rhs = rng.standard_normal(n)
    f = calu(A, b=max(4, n // 5), tr=4)
    x = f.solve(rhs)
    x_ref = scipy.linalg.solve(A, rhs)
    np.testing.assert_allclose(x, x_ref, rtol=1e-7, atol=1e-9)


@pytest.mark.parametrize("seed", range(5))
def test_caqr_ls_matches_numpy_lstsq(seed):
    rng = make_rng(seed + 100)
    m = int(rng.integers(80, 250))
    n = int(rng.integers(10, 60))
    A = rng.standard_normal((m, n))
    rhs = rng.standard_normal(m)
    f = caqr(A, b=max(4, n // 3), tr=4)
    x = f.solve_ls(rhs)
    x_ref = np.linalg.lstsq(A, rhs, rcond=None)[0]
    np.testing.assert_allclose(x, x_ref, rtol=1e-7, atol=1e-9)


def test_all_lu_variants_agree_on_solution():
    rng = make_rng(7)
    n = 96
    A = rng.standard_normal((n, n))
    rhs = rng.standard_normal(n)
    x_ref = scipy.linalg.solve(A, rhs)
    x_calu = calu(A, b=24, tr=4).solve(rhs)
    x_tiled = tiled_lu(A, nb=24).solve(rhs)
    np.testing.assert_allclose(x_calu, x_ref, rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(x_tiled, x_ref, rtol=1e-8, atol=1e-10)


def test_all_qr_variants_same_r_up_to_signs():
    rng = make_rng(8)
    A = rng.standard_normal((120, 48))
    r_ref = np.abs(np.linalg.qr(A)[1])
    for f in (
        tsqr(A, tr=4, tree=TreeKind.BINARY),
        caqr(A, b=16, tr=4),
        tiled_qr(A, nb=24),
    ):
        np.testing.assert_allclose(np.abs(np.asarray(f.R)[:48, :48]), r_ref, rtol=1e-7, atol=1e-9)


def test_threaded_and_simulated_numerics_bitwise_identical():
    """The two executors run the same closures over the same graph, so
    results are not just close — they are identical."""
    A0 = make_rng(9).standard_normal((128, 128))
    f_thr = calu(A0, b=32, tr=4, executor=ThreadedExecutor(4))
    f_sim = calu(A0, b=32, tr=4, executor=SimulatedExecutor(generic(4), execute=True))
    assert np.array_equal(f_thr.lu, f_sim.lu)
    assert np.array_equal(f_thr.piv, f_sim.piv)


def test_tslu_pivot_quality_vs_gepp():
    """Tournament pivots give a residual within a small factor of GEPP's."""
    rng = make_rng(10)
    A = rng.standard_normal((400, 40))
    lu_t, piv_t = tslu(A, tr=8)
    from repro.kernels.lu import piv_to_perm

    perm = piv_to_perm(piv_t, 400)
    L = np.tril(lu_t[:, :40], -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(lu_t[:40])
    err_t = np.linalg.norm(A[perm] - L @ U) / np.linalg.norm(A)
    assert err_t < 1e-13


def test_repeated_factorizations_are_deterministic():
    A0 = make_rng(11).standard_normal((100, 60))
    f1 = calu(A0, b=20, tr=4)
    f2 = calu(A0, b=20, tr=4)
    assert np.array_equal(f1.lu, f2.lu)
    q1 = caqr(A0, b=20, tr=4)
    q2 = caqr(A0, b=20, tr=4)
    assert np.array_equal(q1.packed, q2.packed)


def test_iterative_refinement_with_calu():
    """CALU factors support classic iterative refinement to full accuracy."""
    rng = make_rng(12)
    n = 128
    A = rng.standard_normal((n, n))
    x_true = rng.standard_normal(n)
    rhs = A @ x_true
    f = calu(A, b=32, tr=4)
    x = f.solve(rhs)
    for _ in range(2):
        r = rhs - A @ x
        x = x + f.solve(r)
    assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-13
