"""Metamorphic properties of the factorizations.

Relations that must hold between factorizations of *related* inputs —
a complementary axis to direct backward-error checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.tsqr import tsqr
from tests.conftest import make_rng


class TestScalingRelations:
    def test_lu_scaling(self):
        """calu(c A) has U scaled by c and identical L and pivots."""
        A = make_rng(0).standard_normal((80, 80))
        c = 3.5
        f1 = calu(A, b=20, tr=4)
        f2 = calu(c * A, b=20, tr=4)
        np.testing.assert_array_equal(f1.piv, f2.piv)
        np.testing.assert_allclose(f2.U, c * f1.U, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(f2.L, f1.L, rtol=1e-9, atol=1e-12)

    def test_qr_scaling(self):
        """tsqr(c A) for c > 0 scales R by c, leaves |Q| unchanged."""
        A = make_rng(1).standard_normal((150, 15))
        c = 2.0
        f1 = tsqr(A, tr=4)
        f2 = tsqr(c * A, tr=4)
        np.testing.assert_allclose(f2.R, c * f1.R, rtol=1e-11)

    def test_negation_flips_u_not_pivots(self):
        A = make_rng(2).standard_normal((60, 60))
        f1 = calu(A, b=15, tr=4)
        f2 = calu(-A, b=15, tr=4)
        np.testing.assert_array_equal(f1.piv, f2.piv)  # |values| unchanged
        np.testing.assert_allclose(f2.U, -f1.U, rtol=1e-12)


class TestPermutationRelations:
    def test_qr_r_invariant_under_row_permutation(self):
        """R of QR depends on A only through A^T A, which row
        permutations preserve — so |R| must match."""
        rng = make_rng(3)
        A = rng.standard_normal((200, 12))
        perm = rng.permutation(200)
        f1 = tsqr(A, tr=4)
        f2 = tsqr(A[perm], tr=4)
        np.testing.assert_allclose(np.abs(f1.R), np.abs(f2.R), rtol=1e-9, atol=1e-11)

    def test_lu_column_scaling_tracks_pivots(self):
        """Scaling one column rescales that column of U; pivots are
        chosen per column so they are unchanged when all columns scale
        uniformly positive."""
        A = make_rng(4).standard_normal((70, 70))
        d = np.full(70, 2.0)
        f1 = calu(A, b=14, tr=2)
        f2 = calu(A * d, b=14, tr=2)
        np.testing.assert_array_equal(f1.piv, f2.piv)


class TestCompositionRelations:
    def test_qr_of_orthogonal_times_a(self):
        """Q0 @ A has the same R (up to signs) as A for orthonormal Q0."""
        rng = make_rng(5)
        A = rng.standard_normal((100, 10))
        Q0, _ = np.linalg.qr(rng.standard_normal((100, 100)))
        f1 = tsqr(A, tr=4)
        f2 = tsqr(Q0 @ A, tr=4)
        np.testing.assert_allclose(np.abs(f1.R), np.abs(f2.R), rtol=1e-8, atol=1e-10)

    def test_solve_then_multiply_roundtrip(self):
        A = make_rng(6).standard_normal((90, 90))
        f = calu(A, b=30, tr=2)
        x = make_rng(7).standard_normal(90)
        np.testing.assert_allclose(f.solve(A @ x), x, rtol=1e-8, atol=1e-9)
        np.testing.assert_allclose(A @ f.solve(x), x, rtol=1e-8, atol=1e-9)

    def test_block_column_consistency(self):
        """The R of the first k columns of CAQR equals the R of a CAQR
        on just those columns (up to signs) — panels factor left to right."""
        A = make_rng(8).standard_normal((120, 60))
        f_full = caqr(A, b=20, tr=2)
        f_part = caqr(A[:, :20], b=20, tr=2)
        np.testing.assert_allclose(
            np.abs(f_full.R[:20, :20]), np.abs(f_part.R), rtol=1e-9, atol=1e-11
        )


class TestDtypes:
    def test_float32_lu(self):
        A = make_rng(9).standard_normal((100, 100)).astype(np.float32)
        f = calu(A, b=25, tr=4)
        assert f.lu.dtype == np.float32
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-4  # single-precision tolerance

    def test_float32_qr(self):
        A = make_rng(10).standard_normal((200, 20)).astype(np.float32)
        f = tsqr(A, tr=4)
        assert f.R.dtype == np.float32
        Q = f.q_explicit()
        assert np.linalg.norm(Q.T @ Q - np.eye(20)) < 1e-4

    def test_float32_caqr_solve(self):
        A = make_rng(11).standard_normal((150, 30)).astype(np.float32)
        x0 = make_rng(12).standard_normal(30).astype(np.float32)
        f = caqr(A, b=10, tr=2)
        x = f.solve_ls(A @ x0)
        assert np.linalg.norm(x - x0) / np.linalg.norm(x0) < 1e-3

    def test_integer_input_promoted_to_float64(self):
        A = np.arange(1, 17).reshape(4, 4) + np.eye(4, dtype=int) * 20
        f = calu(A, b=2, tr=2)
        assert f.lu.dtype == np.float64


@given(st.integers(0, 200), st.floats(0.1, 100.0))
@settings(max_examples=15, deadline=None)
def test_property_qr_scaling(seed, c):
    A = make_rng(seed).standard_normal((60, 6))
    f1 = tsqr(A, tr=4)
    f2 = tsqr(c * A, tr=4)
    np.testing.assert_allclose(f2.R, c * f1.R, rtol=1e-9, atol=1e-9)
