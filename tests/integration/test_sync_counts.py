"""Synchronization-count claims from the paper's Sections II-III.

The central communication argument: a TSLU/TSQR panel needs
``O(log2 Tr)`` synchronizations with a binary tree (one per level) and
``O(1)`` with a flat tree, versus one per *column* for classic partial
pivoting.  We verify it structurally (tree depth of the panel task
chain) and dynamically (sync events counted by the simulator).
"""

import math

import numpy as np

from repro.core.calu import build_calu_graph, merged_chunks
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind, tree_height
from repro.core.tslu import add_tslu_tasks
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.task import TaskKind


def panel_depth(m: int, b: int, tr: int, tree: TreeKind) -> int:
    """Length of the longest P-task dependency chain of one panel."""
    layout = BlockLayout(m, b, b)
    graph = TaskGraph()
    tracker = BlockTracker()
    chunks = merged_chunks(layout, 0, tr)
    add_tslu_tasks(graph, tracker, layout, 0, chunks, tree)
    depth = [0] * len(graph.tasks)
    for t in graph.topological_order():
        for s in graph.succs[t]:
            depth[s] = max(depth[s], depth[t] + 1)
    return max(depth) + 1


def test_binary_tree_depth_is_log():
    for tr in (2, 4, 8, 16):
        d = panel_depth(6400, 100, tr, TreeKind.BINARY)
        # leaves + log2(tr) merge levels + finalize
        assert d == 2 + math.ceil(math.log2(tr))


def test_flat_tree_depth_constant():
    for tr in (2, 4, 8, 16):
        d = panel_depth(6400, 100, tr, TreeKind.FLAT)
        assert d == 3  # leaves + single merge + finalize


def test_tree_height_helper_matches():
    assert tree_height(8, TreeKind.BINARY) == 3
    assert tree_height(8, TreeKind.FLAT) == 1
    assert tree_height(8, TreeKind.HYBRID, arity=4) == 2


def test_classic_panel_would_need_b_synchronizations():
    """Column-by-column pivoting implies a chain of length b, far deeper
    than the tournament's log2(Tr) — the quantity CALU removes."""
    b, tr = 100, 8
    assert panel_depth(6400, b, tr, TreeKind.BINARY) < b / 4


def test_simulated_sync_events_scale_with_tree_height():
    """Per panel, the simulator charges ~one cross-core sync per level."""
    from repro.counters import counting
    from repro.machine.presets import generic
    from repro.runtime.simulated import SimulatedExecutor

    mach = generic(8)

    def syncs(tree: TreeKind) -> int:
        layout = BlockLayout(12800, 100, 100)
        graph, _ = build_calu_graph(layout, 8, tree)
        with counting() as c:
            SimulatedExecutor(mach).run(graph)
        return c.syncs

    s_flat = syncs(TreeKind.FLAT)
    s_binary = syncs(TreeKind.BINARY)
    # The binary tree has 2 extra merge levels over flat at Tr=8.
    assert s_binary > s_flat


def test_calu_total_p_tasks_per_panel():
    """Tasks P per panel: Tr leaves + (merge nodes) + 1 finalize."""
    layout = BlockLayout(800, 100, 100)
    graph, _ = build_calu_graph(layout, 8, TreeKind.BINARY)
    p_tasks = [t for t in graph.tasks if t.kind is TaskKind.P and t.iteration == 0]
    assert len(p_tasks) == 8 + 7 + 1


def test_words_counter_tracks_task_traffic():
    from repro.counters import counting
    from repro.machine.presets import generic
    from repro.runtime.simulated import SimulatedExecutor

    layout = BlockLayout(1600, 200, 100)
    graph, _ = build_calu_graph(layout, 4)
    with counting() as c:
        SimulatedExecutor(generic(4)).run(graph)
    assert c.words > 0
