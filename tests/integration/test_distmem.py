"""Tests for the simulated distributed-memory TSLU/TSQR substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeKind
from repro.distmem.comm import AlphaBeta, CommLog, RowBlocks
from repro.distmem.tslu_dist import distributed_gepp_panel, distributed_tslu
from repro.distmem.tsqr_dist import distributed_tsqr
from tests.conftest import assert_lu_ok, make_rng


class TestCommLog:
    def test_counts(self):
        log = CommLog()
        log.new_round()
        log.send(0, 1, np.zeros(10))
        log.send(2, 1, np.zeros(5))
        log.new_round()
        log.send(1, 0, np.zeros(3))
        assert log.n_messages == 3
        assert log.n_rounds == 2
        assert log.total_words == 18

    def test_self_send_is_local(self):
        log = CommLog()
        log.new_round()
        log.send(1, 1, np.zeros(100))
        assert log.n_messages == 0

    def test_alpha_beta_time(self):
        log = CommLog()
        log.new_round()
        log.send(0, 1, np.zeros(10))
        log.send(2, 1, np.zeros(10))  # same receiver: serialized, 20 words
        log.new_round()
        log.send(1, 0, np.zeros(5))
        t = log.time(AlphaBeta(alpha=1.0, beta=0.1))
        assert t == pytest.approx(1.0 + 2.0 + 1.0 + 0.5)


class TestRowBlocks:
    def test_bounds_cover(self):
        d = RowBlocks(103, 4)
        rows = [d.bounds(r) for r in range(4)]
        assert rows[0][0] == 0 and rows[-1][1] == 103
        for (a0, a1), (b0, b1) in zip(rows, rows[1:]):
            assert a1 == b0

    def test_owner_consistent(self):
        d = RowBlocks(50, 3)
        for row in range(50):
            o = d.owner(row)
            r0, r1 = d.bounds(o)
            assert r0 <= row < r1

    def test_more_ranks_than_rows(self):
        d = RowBlocks(3, 8)
        assert len(d.active_ranks) <= 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            RowBlocks(0, 2)


class TestDistributedTSLU:
    @pytest.mark.parametrize("P,tree", [(1, TreeKind.BINARY), (4, TreeKind.BINARY), (7, TreeKind.FLAT), (8, TreeKind.HYBRID)])
    def test_factorization_correct(self, P, tree):
        A = make_rng(P).standard_normal((320, 16))
        res = distributed_tslu(A, P=P, tree=tree)
        assert_lu_ok(A, res.lu, res.piv, tol=1e-11)

    def test_message_rounds_log_p_binary(self):
        A = make_rng(0).standard_normal((512, 16))
        res = distributed_tslu(A, P=8, tree=TreeKind.BINARY)
        # 3 tree rounds + ceil(log2 8) broadcast rounds + 1 swap round.
        tree_rounds = 3
        bcast_rounds = 3
        assert res.comm.n_rounds <= tree_rounds + bcast_rounds + 1

    def test_flat_tree_single_merge_round(self):
        A = make_rng(1).standard_normal((512, 16))
        res_flat = distributed_tslu(A, P=8, tree=TreeKind.FLAT)
        res_bin = distributed_tslu(A, P=8, tree=TreeKind.BINARY)
        # Flat: all candidates converge on the root in one round.
        assert res_flat.comm.n_rounds < res_bin.comm.n_rounds

    def test_same_pivots_as_shared_memory(self):
        """With matching chunk boundaries the tournament is identical."""
        from repro.core.tslu import tslu

        P, q, b = 4, 5, 8
        m = P * q * b  # rank blocks == shared-memory chunks
        A = make_rng(2).standard_normal((m, b))
        res = distributed_tslu(A, P=P, tree=TreeKind.BINARY)
        _, piv_shared = tslu(A, tr=P, tree=TreeKind.BINARY)
        np.testing.assert_array_equal(res.piv, piv_shared)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            distributed_tslu(np.zeros((4, 8)), P=2)


class TestDistributedGEPP:
    def test_factorization_correct(self):
        A = make_rng(3).standard_normal((200, 12))
        res = distributed_gepp_panel(A, P=4)
        assert_lu_ok(A, res.lu, res.piv, tol=1e-11)

    def test_pivots_match_sequential_gepp(self):
        from repro.kernels.lu import getf2

        A = make_rng(4).standard_normal((150, 10))
        res = distributed_gepp_panel(A, P=4)
        ref = A.copy()
        piv_ref = getf2(ref)
        np.testing.assert_array_equal(res.piv, piv_ref)
        np.testing.assert_allclose(res.lu, ref, rtol=1e-12, atol=1e-14)

    def test_needs_round_per_column(self):
        A = make_rng(5).standard_normal((400, 20))
        res = distributed_gepp_panel(A, P=8)
        assert res.comm.n_rounds >= 2 * 20  # >= reduce + bcast per column


class TestCommunicationOptimality:
    """The paper's Section II claims, measured end to end."""

    def test_tslu_needs_b_times_fewer_rounds(self):
        b, P = 32, 8
        A = make_rng(6).standard_normal((1024, b))
        ca = distributed_tslu(A, P=P, tree=TreeKind.BINARY)
        classic = distributed_gepp_panel(A, P=P)
        ratio = classic.comm.n_rounds / ca.comm.n_rounds
        assert ratio > b / 4  # O(b log P) vs O(log P)

    def test_tslu_latency_dominated_time_advantage(self):
        b, P = 32, 8
        A = make_rng(7).standard_normal((1024, b))
        ca = distributed_tslu(A, P=P, tree=TreeKind.BINARY)
        classic = distributed_gepp_panel(A, P=P)
        model = AlphaBeta(alpha=1e-5, beta=1e-9)  # latency-dominated network
        assert ca.comm.time(model) < classic.comm.time(model) / 4

    def test_binary_beats_flat_in_parallel_time(self):
        """Binary trees are optimal in parallel (paper): the flat root
        serializes P-1 receives."""
        b, P = 16, 16
        A = make_rng(8).standard_normal((2048, b))
        binary = distributed_tsqr(A, P=P, tree=TreeKind.BINARY)
        flat = distributed_tsqr(A, P=P, tree=TreeKind.FLAT)
        model = AlphaBeta(alpha=1e-7, beta=1e-7)  # bandwidth visible
        assert binary.comm.time(model) < flat.comm.time(model)
        # Total volume is identical: P-1 triangles either way.
        assert binary.comm.total_words == flat.comm.total_words


class TestDistributedTSQR:
    @pytest.mark.parametrize("P,tree", [(1, TreeKind.BINARY), (4, TreeKind.BINARY), (6, TreeKind.FLAT)])
    def test_r_correct_via_gram(self, P, tree):
        A = make_rng(P + 10).standard_normal((300, 12))
        res = distributed_tsqr(A, P=P, tree=tree)
        G1 = A.T @ A
        G2 = res.R.T @ res.R
        assert np.linalg.norm(G1 - G2) / np.linalg.norm(G1) < 1e-12

    def test_r_matches_shared_memory_abs(self):
        from repro.core.tsqr import tsqr

        P, q, b = 4, 4, 8
        m = P * q * b
        A = make_rng(11).standard_normal((m, b))
        res = distributed_tsqr(A, P=P, tree=TreeKind.BINARY)
        f = tsqr(A, tr=P, tree=TreeKind.BINARY)
        np.testing.assert_allclose(np.abs(res.R), np.abs(f.R), rtol=1e-9, atol=1e-11)

    def test_triangular_payloads_only(self):
        b, P = 16, 4
        A = make_rng(12).standard_normal((400, b))
        res = distributed_tsqr(A, P=P, tree=TreeKind.BINARY)
        tri = b * (b + 1) // 2
        assert res.comm.total_words == (P - 1) * tri

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            distributed_tsqr(np.zeros((4, 8)), P=2)


@given(st.integers(1, 10), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_distributed_tslu_valid(P, seed):
    rng = make_rng(seed)
    b = int(rng.integers(1, 10))
    m = b * int(rng.integers(1, 20))
    A = rng.standard_normal((m, b))
    res = distributed_tslu(A, P=P)
    assert_lu_ok(A, res.lu, res.piv, tol=1e-9)
