"""Tests for the full distributed CALU factorization."""

import math

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeKind
from repro.distmem import AlphaBeta, distributed_calu
from tests.conftest import assert_lu_ok, make_rng


@pytest.mark.parametrize("m,n,P,b", [(128, 128, 4, 32), (200, 120, 3, 25), (96, 96, 8, 16), (64, 100, 2, 16)])
def test_factorization_correct(m, n, P, b):
    A0 = make_rng(m + n + P).standard_normal((m, n))
    res = distributed_calu(A0, P=P, b=b)
    assert_lu_ok(A0, res.lu, res.piv, tol=1e-11)


def test_single_rank_matches_sequential_blocked_lu(*_):
    """P=1: no communication at all, plain blocked CALU numerics."""
    A0 = make_rng(0).standard_normal((90, 90))
    res = distributed_calu(A0, P=1, b=30)
    assert res.comm.n_messages == 0
    assert_lu_ok(A0, res.lu, res.piv)


def test_solution_matches_scipy():
    A0 = make_rng(1).standard_normal((120, 120))
    res = distributed_calu(A0, P=4, b=30)
    rhs = make_rng(2).standard_normal(120)
    r = min(A0.shape)
    L = np.tril(res.lu, -1) + np.eye(120)
    U = np.triu(res.lu)
    y = scipy.linalg.solve_triangular(L, rhs[res.perm], lower=True)
    x = scipy.linalg.solve_triangular(U, y)
    np.testing.assert_allclose(A0 @ x, rhs, rtol=1e-8, atol=1e-9)


def test_rounds_scale_with_panels_times_logp():
    """O((n/b) log2 P) rounds — not O(n log2 P)."""
    m = n = 256
    A0 = make_rng(3).standard_normal((m, n))
    res = distributed_calu(A0, P=8, b=32)
    panels = n // 32
    logp = math.ceil(math.log2(8))
    # Per panel: tree rounds + pivot bcast + swap round + U bcast.
    upper = panels * (logp + logp + 1 + logp)
    assert res.comm.n_rounds <= upper
    # And far below a classic panel's per-column pattern.
    classic_rounds = n * (logp + 1)
    assert res.comm.n_rounds < classic_rounds / 4


def test_flat_vs_binary_tree_both_correct():
    A0 = make_rng(4).standard_normal((160, 80))
    for tree in (TreeKind.BINARY, TreeKind.FLAT):
        res = distributed_calu(A0, P=5, b=20, tree=tree)
        assert_lu_ok(A0, res.lu, res.piv, tol=1e-11)


def test_alpha_beta_time_positive():
    A0 = make_rng(5).standard_normal((100, 100))
    res = distributed_calu(A0, P=4, b=25)
    assert res.comm.time(AlphaBeta()) > 0.0


@given(st.integers(1, 8), st.integers(0, 50))
@settings(max_examples=12, deadline=None)
def test_property_distributed_calu(P, seed):
    rng = make_rng(seed)
    b = int(rng.integers(4, 24))
    m = int(rng.integers(b, 120))
    n = int(rng.integers(b, 120))
    A0 = rng.standard_normal((m, n))
    res = distributed_calu(A0, P=P, b=b)
    assert_lu_ok(A0, res.lu, res.piv, tol=1e-9)
