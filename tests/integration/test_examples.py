"""Every example script must run to completion (they are part of the API)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))

# The calibration example times kernels; keep it but give it headroom.
TIMEOUTS = {"calibrate_and_predict.py": 600, "simulate_multicore.py": 600}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=TIMEOUTS.get(script.name, 300),
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable's minimum
