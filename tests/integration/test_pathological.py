"""Stress tests on pathological matrices.

Partial pivoting's worst cases and rank-deficient inputs: the
communication-avoiding algorithms must degrade exactly like (not worse
than) their classical counterparts.
"""

import numpy as np
import pytest
import scipy.linalg

from repro.analysis.errors import growth_factor
from repro.bench.workloads import near_rank_deficient
from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from tests.conftest import make_rng


def wilkinson(n: int) -> np.ndarray:
    """The classic GEPP worst case: growth factor 2^(n-1)."""
    A = -np.tril(np.ones((n, n)), -1) + np.eye(n)
    A[:, -1] = 1.0
    return A


class TestWilkinson:
    def test_gepp_exhibits_exponential_growth(self):
        n = 24
        _, _, U = scipy.linalg.lu(wilkinson(n))
        assert growth_factor(wilkinson(n), U) == pytest.approx(2.0 ** (n - 1), rel=1e-10)

    def test_calu_factors_wilkinson_correctly(self):
        """Growth is awful (as for GEPP) but the factorization is exact."""
        n = 24
        A = wilkinson(n)
        f = calu(A, b=8, tr=4)
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-8  # exponential growth costs digits, identically to GEPP

    def test_calu_growth_matches_gepp_on_wilkinson(self):
        n = 20
        A = wilkinson(n)
        f = calu(A, b=n, tr=1)  # single panel, Tr=1: exactly GEPP
        _, _, U = scipy.linalg.lu(A)
        assert growth_factor(A, f.U) == pytest.approx(growth_factor(A, U), rel=1e-10)

    def test_caqr_unaffected_by_wilkinson(self):
        """QR has no growth problem; CAQR stays at machine precision."""
        A = wilkinson(64)
        f = caqr(A, b=16, tr=4)
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-13


class TestRankDeficiency:
    def test_tsqr_rank_deficient_panel(self):
        A = near_rank_deficient(200, 10, rank=4, noise=1e-13, seed=0)
        f = tsqr(A, tr=4)
        Q = f.q_explicit()
        assert np.linalg.norm(A - Q @ f.R) / np.linalg.norm(A) < 1e-11
        # Trailing diagonal of R collapses to the noise level.
        d = np.abs(np.diag(f.R))
        assert d[5:].max() < 1e-9 * d[0]

    def test_calu_rank_deficient_matrix(self):
        A = near_rank_deficient(80, 80, rank=40, noise=1e-10, seed=1)
        f = calu(A, b=16, tr=4)
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-8

    def test_tslu_with_duplicate_rows(self):
        rng = make_rng(2)
        base = rng.standard_normal((8, 8))
        A = np.vstack([base] * 5 + [rng.standard_normal((8, 8))])
        lu, piv = tslu(A, tr=4)
        from tests.conftest import assert_lu_ok

        assert_lu_ok(A, lu, piv, tol=1e-10)


class TestScaleExtremes:
    def test_tiny_magnitudes(self):
        A = make_rng(3).standard_normal((60, 20)) * 1e-150
        f = caqr(A, b=10, tr=2)
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-12

    def test_huge_magnitudes(self):
        A = make_rng(4).standard_normal((60, 20)) * 1e120
        lu, piv = tslu(A, tr=4)
        from tests.conftest import assert_lu_ok

        assert_lu_ok(A, lu, piv, tol=1e-12)

    def test_mixed_scales_rows(self):
        rng = make_rng(5)
        A = rng.standard_normal((80, 16))
        A[::3] *= 1e8  # wildly varying row norms
        f = calu(A, b=8, tr=4)
        err = np.linalg.norm(A - f.reconstruct()) / np.linalg.norm(A)
        assert err < 1e-12

    def test_single_column(self):
        A = make_rng(6).standard_normal((50, 1))
        lu, piv = tslu(A, tr=4)
        from repro.kernels.lu import piv_to_perm

        perm = piv_to_perm(piv, 50)
        # Pivot is the max-magnitude entry, as in partial pivoting.
        assert abs(A[perm[0], 0]) == np.abs(A).max()

    def test_one_by_one(self):
        f = calu(np.array([[3.0]]), b=1, tr=1)
        assert f.reconstruct()[0, 0] == pytest.approx(3.0)
