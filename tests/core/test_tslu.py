"""Tests for TSLU — tournament-pivoting panel factorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.kernels.lu import getf2, piv_to_perm
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import assert_lu_ok, make_rng


@pytest.mark.parametrize("tree", list(TreeKind))
@pytest.mark.parametrize("m,n,tr", [(64, 8, 4), (200, 20, 4), (333, 10, 7), (100, 30, 1), (50, 50, 4)])
def test_backward_error(m, n, tr, tree):
    A0 = make_rng(m * 7 + n + tr).standard_normal((m, n))
    lu, piv = tslu(A0, tr=tr, tree=tree)
    assert_lu_ok(A0, lu, piv, tol=1e-12)


def test_tr1_equals_gepp():
    """Paper: 'when b = 1 or Tr = 1, CALU is equivalent to partial pivoting'."""
    A0 = make_rng(1).standard_normal((150, 12))
    lu, piv = tslu(A0, tr=1)
    ref = A0.copy()
    piv_ref = getf2(ref)
    np.testing.assert_array_equal(piv_to_perm(piv, 150), piv_to_perm(piv_ref, 150))
    np.testing.assert_allclose(lu, ref, rtol=1e-11, atol=1e-13)


def test_pivot_rows_are_original_rows():
    """The tournament must select b *rows of A*, not linear combinations."""
    A0 = make_rng(2).standard_normal((120, 10))
    lu, piv = tslu(A0, tr=4)
    perm = piv_to_perm(piv, 120)
    # The first 10 rows after pivoting factor the pivot block exactly:
    # reconstruct and compare against the original pivot rows.
    L = np.tril(lu[:10, :10], -1) + np.eye(10)
    U = np.triu(lu[:10, :10])
    np.testing.assert_allclose(L @ U, A0[perm[:10], :10], rtol=1e-10, atol=1e-12)


def test_multiplier_growth_modest():
    """|L| stays small on random matrices (the paper's stability claim)."""
    worst = 0.0
    for seed in range(5):
        A0 = make_rng(seed).standard_normal((256, 32))
        lu, piv = tslu(A0, tr=8)
        L = np.tril(lu[:, :32], -1)
        worst = max(worst, np.abs(L).max())
    assert worst < 10.0  # GEPP gives 1.0; tournament stays the same order


def test_flat_tree_single_merge_same_pivots_as_stacked_gepp():
    """A flat tree merges all candidate sets in one GEPP."""
    A0 = make_rng(3).standard_normal((80, 8))
    lu_f, piv_f = tslu(A0, tr=4, tree=TreeKind.FLAT)
    assert_lu_ok(A0, lu_f, piv_f, tol=1e-12)


def test_binary_vs_flat_both_valid_but_may_differ():
    A0 = make_rng(4).standard_normal((160, 16))
    lu_b, piv_b = tslu(A0, tr=4, tree=TreeKind.BINARY)
    lu_f, piv_f = tslu(A0, tr=4, tree=TreeKind.FLAT)
    assert_lu_ok(A0, lu_b, piv_b)
    assert_lu_ok(A0, lu_f, piv_f)


def test_wide_panel_rejected():
    with pytest.raises(ValueError, match="tall"):
        tslu(np.zeros((5, 10)))


def test_overwrite_flag():
    A0 = make_rng(5).standard_normal((60, 6))
    A = A0.copy()
    lu, piv = tslu(A, tr=2, overwrite=True)
    assert lu is A  # factored in place
    assert_lu_ok(A0, lu, piv)


def test_input_not_modified_by_default():
    A0 = make_rng(6).standard_normal((60, 6))
    A = A0.copy()
    tslu(A, tr=2)
    np.testing.assert_array_equal(A, A0)


def test_custom_executor():
    A0 = make_rng(7).standard_normal((90, 9))
    lu, piv = tslu(A0, tr=3, executor=ThreadedExecutor(3))
    assert_lu_ok(A0, lu, piv)


def test_getf2_leaf_kernel():
    A0 = make_rng(8).standard_normal((100, 10))
    lu, piv = tslu(A0, tr=4, leaf_kernel="getf2")
    assert_lu_ok(A0, lu, piv)


def test_duplicated_rows_matrix():
    """Rank-deficient-ish panels with repeated rows still factor (GEPP-like)."""
    rng = make_rng(9)
    base = rng.standard_normal((10, 6))
    A0 = np.vstack([base, base + 1e-8 * rng.standard_normal((10, 6)), rng.standard_normal((20, 6))])
    lu, piv = tslu(A0, tr=4)
    assert_lu_ok(A0, lu, piv, tol=1e-7)


@given(st.integers(1, 8), st.sampled_from(list(TreeKind)), st.integers(0, 300))
@settings(max_examples=25, deadline=None)
def test_property_tslu_valid_factorization(tr, tree, seed):
    rng = make_rng(seed)
    n = int(rng.integers(1, 12))
    m = n * int(rng.integers(1, 12))
    A0 = rng.standard_normal((m, n))
    lu, piv = tslu(A0, tr=tr, tree=tree)
    assert_lu_ok(A0, lu, piv, tol=1e-10)
    perm = piv_to_perm(piv, m)
    assert sorted(perm) == list(range(m))
