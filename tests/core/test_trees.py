"""Tests for reduction-tree schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeKind, reduction_schedule, tree_height


def simulate_merges(n_leaves, levels):
    """Replay a merge schedule; return the set of leaves merged into slot 0."""
    contents = {i: {i} for i in range(n_leaves)}
    for level in levels:
        dsts = set()
        for dst, srcs in level:
            assert dst == srcs[0]
            assert dst not in dsts, "two merges target the same slot in one level"
            dsts.add(dst)
            merged = set()
            for s in srcs:
                merged |= contents[s]
            contents[dst] = merged
    return contents[0]


class TestBinary:
    def test_single_leaf_no_merges(self):
        assert reduction_schedule(1, TreeKind.BINARY) == []

    def test_two_leaves(self):
        assert reduction_schedule(2, TreeKind.BINARY) == [[(0, [0, 1])]]

    def test_four_leaves_matches_paper(self):
        levels = reduction_schedule(4, TreeKind.BINARY)
        assert levels == [[(0, [0, 1]), (2, [2, 3])], [(0, [0, 2])]]

    def test_height_log2(self):
        assert tree_height(8, TreeKind.BINARY) == 3
        assert tree_height(16, TreeKind.BINARY) == 4

    def test_odd_leaf_count_carries_over(self):
        levels = reduction_schedule(5, TreeKind.BINARY)
        assert simulate_merges(5, levels) == set(range(5))

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_leaves_reach_root(self, n):
        levels = reduction_schedule(n, TreeKind.BINARY)
        assert simulate_merges(n, levels) == set(range(n))


class TestFlat:
    def test_single_level(self):
        levels = reduction_schedule(6, TreeKind.FLAT)
        assert len(levels) == 1
        assert levels[0] == [(0, [0, 1, 2, 3, 4, 5])]

    def test_height_one(self):
        assert tree_height(16, TreeKind.FLAT) == 1

    @pytest.mark.parametrize("n", [2, 3, 8, 17])
    def test_all_leaves_reach_root(self, n):
        assert simulate_merges(n, reduction_schedule(n, TreeKind.FLAT)) == set(range(n))


class TestHybrid:
    def test_groups_then_binary(self):
        levels = reduction_schedule(8, TreeKind.HYBRID, arity=4)
        # Two flat merges of 4, then one binary level over leaders 0 and 4.
        assert levels[0] == [(0, [0, 1, 2, 3]), (4, [4, 5, 6, 7])]
        assert levels[1] == [(0, [0, 4])]

    def test_group_not_multiple(self):
        levels = reduction_schedule(10, TreeKind.HYBRID, arity=4)
        assert simulate_merges(10, levels) == set(range(10))

    def test_arity_larger_than_leaves_is_flat(self):
        levels = reduction_schedule(3, TreeKind.HYBRID, arity=8)
        assert levels == [[(0, [0, 1, 2])]]

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            reduction_schedule(4, TreeKind.HYBRID, arity=1)

    @pytest.mark.parametrize("n,arity", [(5, 2), (9, 3), (16, 4), (17, 5)])
    def test_all_leaves_reach_root(self, n, arity):
        assert simulate_merges(n, reduction_schedule(n, TreeKind.HYBRID, arity)) == set(range(n))


def test_invalid_leaf_count():
    with pytest.raises(ValueError):
        reduction_schedule(0, TreeKind.BINARY)


@given(st.integers(1, 64), st.sampled_from(list(TreeKind)), st.integers(2, 6))
@settings(max_examples=80, deadline=None)
def test_property_every_tree_reduces_all_leaves(n, kind, arity):
    levels = reduction_schedule(n, kind, arity)
    assert simulate_merges(n, levels) == set(range(n))
    # Binary tree synchronization count is O(log2 Tr), flat is 1 (paper claim).
    if kind is TreeKind.BINARY and n > 1:
        import math

        assert len(levels) == math.ceil(math.log2(n))
    if kind is TreeKind.FLAT and n > 1:
        assert len(levels) == 1


@given(st.integers(2, 64))
@settings(max_examples=40, deadline=None)
def test_property_each_slot_consumed_once(n):
    """After a slot is merged away it never appears as a source again."""
    levels = reduction_schedule(n, TreeKind.BINARY)
    dead: set[int] = set()
    for level in levels:
        for dst, srcs in level:
            for s in srcs:
                assert s not in dead
            for s in srcs:
                if s != dst:
                    dead.add(s)
