"""Tests for the Section V extensions: B > b updates and hybrid updates."""

import numpy as np
import pytest

from repro.core.calu import build_calu_graph, calu
from repro.core.layout import BlockLayout
from tests.conftest import make_rng


@pytest.mark.parametrize(
    "m,n,b,B",
    [(200, 200, 25, 50), (150, 150, 20, 80), (300, 120, 30, 120), (130, 130, 33, 66), (97, 97, 16, 96)],
)
def test_bb_numeric_correct(m, n, b, B):
    A0 = make_rng(m + n + B).standard_normal((m, n))
    f = calu(A0, b=b, tr=4, update_width=B)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-12


def test_bb_equals_plain_when_B_is_b():
    A0 = make_rng(1).standard_normal((160, 160))
    f1 = calu(A0, b=40, tr=4)
    f2 = calu(A0, b=40, tr=4, update_width=40)
    np.testing.assert_array_equal(f1.lu, f2.lu)
    np.testing.assert_array_equal(f1.piv, f2.piv)


def test_bb_same_factorization_different_grouping():
    """Grouping only changes task granularity, not arithmetic."""
    A0 = make_rng(2).standard_normal((200, 200))
    f1 = calu(A0, b=25, tr=4)
    f2 = calu(A0, b=25, tr=4, update_width=100)
    np.testing.assert_allclose(f1.lu, f2.lu, atol=0)
    np.testing.assert_array_equal(f1.piv, f2.piv)


def test_bb_reduces_task_count():
    lay = BlockLayout(2000, 2000, 100)
    g1, _ = build_calu_graph(lay, 4)
    g2, _ = build_calu_graph(lay, 4, update_width=400)
    g2.validate()
    assert len(g2) < 0.6 * len(g1)


def test_bb_preserves_total_flops():
    lay = BlockLayout(1600, 1600, 100)
    g1, _ = build_calu_graph(lay, 4)
    g2, _ = build_calu_graph(lay, 4, update_width=400)
    assert g1.total_flops() == pytest.approx(g2.total_flops(), rel=1e-12)


def test_bb_invalid_width():
    lay = BlockLayout(400, 400, 100)
    with pytest.raises(ValueError, match="update_width"):
        build_calu_graph(lay, 2, update_width=50)


def test_hybrid_library_tags():
    lay = BlockLayout(800, 800, 100)
    g, _ = build_calu_graph(lay, 4, update_library="mkl")
    kinds = {}
    for t in g.tasks:
        kinds.setdefault(t.kind.value, set()).add(t.cost.library)
    assert kinds["P"] == {"repro"}  # TSLU panel stays ours
    assert kinds["S"] == {"mkl"}  # updates priced as vendor quality
    assert kinds["U"] == {"mkl"}


def test_hybrid_graph_structure_unchanged():
    lay = BlockLayout(600, 600, 100)
    g1, _ = build_calu_graph(lay, 4)
    g2, _ = build_calu_graph(lay, 4, update_library="mkl")
    assert len(g1) == len(g2)
    assert g1.preds == g2.preds
