"""Tests for the look-ahead priority scheme."""

from repro.core.priorities import task_priority


def test_panel_outranks_everything_in_its_iteration():
    K = 3
    p = task_priority("P", K)
    for kind in ("F", "L", "U", "S", "X"):
        assert p > task_priority(kind, K, J=K + 2)


def test_earlier_iterations_outrank_later():
    assert task_priority("S", 1, J=5) > task_priority("S", 2, J=5)
    assert task_priority("P", 0) > task_priority("P", 1)


def test_lookahead_1_boosts_next_column():
    """Updates of column K+1 outrank other updates of iteration K (paper)."""
    K = 2
    boosted = task_priority("S", K, J=K + 1, lookahead=1)
    plain = task_priority("S", K, J=K + 3, lookahead=1)
    assert boosted < task_priority("P", K)  # never above the current panel
    assert boosted > plain


def test_lookahead_1_next_panel_outranks_remaining_updates():
    """After col-(K+1) updates, panel K+1 runs before iteration-K leftovers."""
    K = 2
    next_panel = task_priority("P", K + 1, lookahead=1)
    leftover = task_priority("S", K, J=K + 4, lookahead=1)
    assert next_panel > leftover


def test_lookahead_0_no_column_boost():
    K = 2
    a = task_priority("S", K, J=K + 1, lookahead=0, n_cols=10)
    b = task_priority("S", K, J=K + 3, lookahead=0, n_cols=10)
    # No era boost: both sit in iteration K, mild left-first ordering only.
    assert abs(a - b) < 1.0
    assert a > b


def test_lookahead_infinite_orders_by_column():
    K = 0
    cols = [task_priority("S", K, J=j, lookahead=-1) for j in range(1, 6)]
    assert cols == sorted(cols, reverse=True)


def test_u_before_s_same_column():
    assert task_priority("U", 1, J=4) > task_priority("S", 1, J=4)


def test_finalize_between_p_and_l():
    assert task_priority("P", 2) > task_priority("F", 2) > task_priority("L", 2)
