"""Out-of-core TSQR/TSLU: parity with in-memory, traffic, memory caps."""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.analysis.io_model import panel_io_ca_flat, predicted_panel_io
from repro.core.outofcore import (
    MatrixSource,
    as_source,
    direct_tsqr,
    plan_chunks,
    tslu_ooc,
    tsqr_ooc,
)
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.counters import counting
from repro.kernels.lu import piv_to_perm

RNG = np.random.default_rng(7)


# ---------------------------------------------------------------------------
# Planning and sources
# ---------------------------------------------------------------------------


def test_as_source_forms():
    A = RNG.standard_normal((10, 3))
    s = as_source(A)
    assert s.shape == (10, 3)
    np.testing.assert_array_equal(s.fill(2, 5), A[2:5])
    s2 = as_source(((10, 3), lambda r0, r1: A[r0:r1]))
    assert isinstance(s2, MatrixSource) and s2.shape == (10, 3)
    with pytest.raises(ValueError, match="2-D"):
        as_source(np.zeros(5))


def test_plan_chunks_budget_bounds_block_height():
    n = 8
    budget = 3 * 4 * n * n * 8  # room for 4 block-rows per resident block
    chunks = plan_chunks(1000, n, memory_budget=budget, n_workers=1)
    assert all(c.rows <= 4 * n for c in chunks)
    assert chunks[-1].r1 == 1000
    # Explicit tr pins the exact in-memory chunking.
    assert [
        (c.r0, c.r1) for c in plan_chunks(1000, n, tr=4, merge_tail=False)
    ] == [(0, 256), (256, 512), (512, 768), (768, 1000)]


# ---------------------------------------------------------------------------
# Bitwise parity with the in-memory drivers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("store_kind", ["mmap", "shm"])
def test_tsqr_ooc_bitwise_parity(store_kind):
    m, n, tr = 900, 12, 5
    A = RNG.standard_normal((m, n))
    f_mem = tsqr(A, tr=tr, tree=TreeKind.FLAT)
    Amem = np.array(A, order="C")
    tsqr(Amem, tr=tr, tree=TreeKind.FLAT, overwrite=True)  # in-place reference panel
    with tsqr_ooc(A, tr=tr, store=store_kind) as f_ooc:
        np.testing.assert_array_equal(f_mem.R, f_ooc.R)
        np.testing.assert_array_equal(Amem, f_ooc.panel())
        x = RNG.standard_normal(m)
        np.testing.assert_array_equal(f_mem.apply_qt(x), f_ooc.apply_qt(x))
        np.testing.assert_array_equal(f_mem.apply_q(x), f_ooc.apply_q(x))
        Q = f_ooc.q_explicit()
        assert np.allclose(Q @ f_ooc.R, A)
        assert np.allclose(Q.T @ Q, np.eye(n))


@pytest.mark.parametrize("store_kind", ["mmap", "shm"])
def test_tslu_ooc_bitwise_parity(store_kind):
    m, n, tr = 900, 12, 5
    A = RNG.standard_normal((m, n))
    lu_mem, piv_mem = tslu(A, tr=tr, tree=TreeKind.FLAT)
    with tslu_ooc(A, tr=tr, store=store_kind) as res:
        np.testing.assert_array_equal(lu_mem, res.lu())
        np.testing.assert_array_equal(piv_mem, res.piv)
        np.testing.assert_array_equal(res.lu_rows(100, 200), lu_mem[100:200])


def test_tslu_ooc_binary_tree_matches_in_memory():
    # The candidate reduction happens in RAM, so any tree is allowed
    # out of core; parity must hold tree for tree.
    m, n, tr = 700, 8, 6
    A = RNG.standard_normal((m, n))
    lu_mem, piv_mem = tslu(A, tr=tr, tree=TreeKind.BINARY)
    with tslu_ooc(A, tr=tr, tree=TreeKind.BINARY) as res:
        np.testing.assert_array_equal(lu_mem, res.lu())
        np.testing.assert_array_equal(piv_mem, res.piv)


def test_driver_store_param_routes_out_of_core():
    m, n, tr = 600, 10, 4
    A = RNG.standard_normal((m, n))
    f_mem = tsqr(A, tr=tr, tree=TreeKind.FLAT)
    with tsqr(A, tr=tr, store="mmap") as f_ooc:
        np.testing.assert_array_equal(f_mem.R, f_ooc.R)
    lu_mem, piv_mem = tslu(A, tr=tr, tree=TreeKind.FLAT)
    lu_ooc, piv_ooc = tslu(A, tr=tr, tree=TreeKind.FLAT, store="mmap")
    np.testing.assert_array_equal(lu_mem, lu_ooc)
    np.testing.assert_array_equal(piv_mem, piv_ooc)


def test_driver_store_param_rejects_conflicts():
    A = RNG.standard_normal((40, 4))
    with pytest.raises(ValueError, match="executor"):
        tsqr(A, store="mmap", executor="process")
    with pytest.raises(ValueError, match="FLAT"):
        tsqr(A, store="mmap", tree=TreeKind.BINARY)
    with pytest.raises(ValueError, match="executor"):
        tslu(A, memory_budget=1 << 20, executor="process")


def test_generator_source_never_materializes_panel():
    m, n = 2000, 6

    def fill(r0, r1):
        out = np.empty((r1 - r0, n))
        for i in range(r0, r1):
            out[i - r0] = np.random.default_rng(1000 + i).standard_normal(n)
        return out

    with tsqr_ooc(((m, n), fill), memory_budget=40 * n * n * 8) as f:
        G = np.zeros((n, n))
        for r0 in range(0, m, 500):
            blk = fill(r0, r0 + 500)
            G += blk.T @ blk
        # R'R = A'A: verifies R without ever holding A.
        assert np.allclose(f.R.T @ f.R, G)


def test_check_finite_during_staging():
    A = RNG.standard_normal((100, 4))
    A[63, 2] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        tsqr_ooc(A, tr=2)
    with pytest.raises(ValueError, match="non-finite"):
        tslu_ooc(A, tr=2)
    # Opting out stages the data as-is (and the factorization then
    # fails loudly in the tournament rather than silently).
    with pytest.raises(RuntimeError, match="corrupted"):
        tslu_ooc(A, tr=2, check_finite=False)


# ---------------------------------------------------------------------------
# Direct TSQR
# ---------------------------------------------------------------------------


def test_direct_tsqr_r_only_reads_once():
    m, n = 1500, 10
    A = RNG.standard_normal((m, n))
    with counting() as c:
        d = direct_tsqr(A, tr=6)
    assert d.store is None and d.q_spec is None
    assert c.store_read_bytes == 0 and c.store_write_bytes == 0
    assert np.allclose(np.abs(d.R), np.abs(np.linalg.qr(A)[1]))
    with pytest.raises(ValueError, match="without want_q"):
        d.q_explicit()


def test_direct_tsqr_explicit_q():
    m, n = 1200, 9
    A = RNG.standard_normal((m, n))
    with direct_tsqr(A, tr=5, want_q=True) as d:
        Q = d.q_explicit()
        assert np.allclose(Q @ d.R, A)
        assert np.allclose(Q.T @ Q, np.eye(n))
        np.testing.assert_array_equal(d.q_rows(200, 300), Q[200:300])
    assert np.array_equal(A, A)  # input untouched


def test_direct_tsqr_io_matches_model():
    m, n = 2000, 8
    fast = 64 * n * 8  # force streaming in the model
    assert predicted_panel_io("direct_tsqr", m, n, fast) == m * n
    assert predicted_panel_io("direct_tsqr_q", m, n, fast) == 4 * m * n
    with pytest.raises(ValueError, match="unknown"):
        predicted_panel_io("tape", m, n, fast)
    A = RNG.standard_normal((m, n))
    with counting() as c:
        with direct_tsqr(A, tr=8, want_q=True) as d:
            d.q_rows(0, 1)
    # want_q traffic: write Q1 (mn) + read Q1 (mn) + write Q (mn).
    measured = (c.store_read_bytes + c.store_write_bytes) // 8 - n  # minus q_rows probe
    assert measured == 3 * m * n


# ---------------------------------------------------------------------------
# Measured traffic vs the I/O model
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algo", ["tsqr", "tslu"])
def test_streamed_traffic_within_model_bounds(algo):
    m, n = 4000, 16
    budget = 8 * n * n * 8  # tiny fast memory: forces many leaf blocks
    A = RNG.standard_normal((m, n))
    with counting() as c:
        if algo == "tsqr":
            fact = tsqr_ooc(A, memory_budget=budget, n_workers=1)
        else:
            fact = tslu_ooc(A, memory_budget=budget, n_workers=1)
        fact.destroy()
    measured_words = (c.store_read_bytes + c.store_write_bytes) / 8
    predicted = panel_io_ca_flat(m, n, budget // 8)
    assert predicted < 2.0 * m * n * 3  # sanity: model is in streaming regime
    ratio = measured_words / predicted
    assert 0.5 <= ratio <= 2.0, f"{algo}: measured/predicted = {ratio:.3f}"


# ---------------------------------------------------------------------------
# Memory-capped subprocess: the panel truly never fits
# ---------------------------------------------------------------------------

_CAPPED_SCRIPT = textwrap.dedent(
    """
    import resource, sys
    import numpy as np
    from repro.analysis.io_model import panel_io_ca_flat
    from repro.core.outofcore import tsqr_ooc, tslu_ooc
    from repro.counters import counting
    from repro.kernels.lu import piv_to_perm

    m, n = 320_000, 32
    budget = 4 << 20          # 4 MiB fast-memory budget for the planner
    headroom = 64 << 20       # allowance over baseline VSZ (thread stack,
                              # allocator slack, transient mmap windows)
    panel_bytes = m * n * 8   # 78 MiB: exceeds the headroom, so the panel
                              # provably never exists in the address space

    def fill(r0, r1):
        # Pure function of the absolute row index: strides are aligned
        # to multiples of `step` so any chunking sees the same rows.
        out = np.empty((r1 - r0, n))
        step = 4096
        s = (r0 // step) * step
        while s < r1:
            blk = np.random.default_rng(s).standard_normal((min(step, m - s), n))
            a0, a1 = max(r0, s), min(r1, s + step)
            out[a0 - r0 : a1 - r0] = blk[a0 - s : a1 - s]
            s += step
        return out

    # Warm up lazy allocations (BLAS buffers, pyc imports), then cap the
    # address space: from here on, materializing the panel dies.
    tsqr_ooc(((4 * n, n), fill), tr=2).destroy()
    with open("/proc/self/statm") as fh:
        vsz_pages = int(fh.read().split()[0])
    cap = vsz_pages * resource.getpagesize() + headroom
    assert panel_bytes > headroom, "panel must not fit in the allowance"
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    with counting() as c:
        f = tsqr_ooc(((m, n), fill), memory_budget=budget, n_workers=1)
    # Gram check: R'R == A'A without ever holding A.
    G = np.zeros((n, n))
    for r0 in range(0, m, 8192):
        blk = fill(r0, min(m, r0 + 8192))
        G += blk.T @ blk
    assert np.allclose(f.R.T @ f.R, G), "R fails the Gram identity"
    f.destroy()
    words = (c.store_read_bytes + c.store_write_bytes) / 8
    ratio = words / panel_io_ca_flat(m, n, budget // 8)
    assert 0.5 <= ratio <= 2.0, f"tsqr traffic ratio {ratio:.3f}"

    with counting() as c:
        lu = tslu_ooc(((m, n), fill), memory_budget=budget, n_workers=1)
    perm = piv_to_perm(lu.piv, m)
    U = np.triu(lu.lu_rows(0, n))
    # Spot-check PA = LU on a window strictly below the pivot block.
    r0, r1 = 100_000, 100_064
    Lw = lu.lu_rows(r0, r1)
    rows = np.empty((r1 - r0, n))
    for i in range(r0, r1):
        src = int(perm[i])
        rows[i - r0] = fill(src, src + 1)[0]
    assert np.allclose(Lw @ U, rows), "PA != LU on sampled window"
    lu.destroy()
    words = (c.store_read_bytes + c.store_write_bytes) / 8
    ratio = words / panel_io_ca_flat(m, n, budget // 8)
    assert 0.5 <= ratio <= 2.0, f"tslu traffic ratio {ratio:.3f}"
    print("CAPPED-OK")
    """
)


@pytest.mark.slow
@pytest.mark.skipif(sys.platform != "linux", reason="RLIMIT_AS semantics are Linux-specific")
def test_memory_capped_factorization():
    """Factor a 78 MiB panel in a child whose address space may grow by
    at most 192 MiB over baseline: only the streaming path survives."""
    import os

    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", _CAPPED_SCRIPT],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        env=env,
        timeout=900,
    )
    assert proc.returncode == 0, f"capped child failed:\n{proc.stdout}\n{proc.stderr}"
    assert "CAPPED-OK" in proc.stdout


def test_tslu_ooc_piv_semantics():
    # Same contract as tslu: A[perm] == L @ U.
    m, n = 300, 6
    A = RNG.standard_normal((m, n))
    with tslu_ooc(A, tr=3) as res:
        lu = res.lu()
        perm = piv_to_perm(res.piv, m)
        L = np.tril(lu[:n], -1) + np.eye(n)
        U = np.triu(lu[:n])
        full_L = np.vstack([L, lu[n:]])
        assert np.allclose(full_L @ U, A[perm])
