"""Tests for TSQR — tall-skinny QR via reduction trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeKind
from repro.core.tsqr import tsqr
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng


@pytest.mark.parametrize("tree", list(TreeKind))
@pytest.mark.parametrize("m,n,tr", [(64, 8, 4), (200, 20, 4), (333, 10, 7), (100, 30, 1), (40, 40, 4)])
def test_factorization(m, n, tr, tree):
    A0 = make_rng(m + n + tr).standard_normal((m, n))
    f = tsqr(A0, tr=tr, tree=tree)
    Q = f.q_explicit()
    assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-13
    assert np.linalg.norm(Q.T @ Q - np.eye(n)) < 1e-12


def test_r_is_upper_triangular():
    f = tsqr(make_rng(0).standard_normal((100, 10)), tr=4)
    np.testing.assert_array_equal(f.R, np.triu(f.R))


def test_r_matches_numpy_up_to_signs():
    A0 = make_rng(1).standard_normal((150, 12))
    f = tsqr(A0, tr=4)
    _, R_ref = np.linalg.qr(A0)
    np.testing.assert_allclose(np.abs(f.R), np.abs(R_ref), rtol=1e-9, atol=1e-11)


def test_apply_qt_then_q_is_identity():
    A0 = make_rng(2).standard_normal((90, 9))
    f = tsqr(A0, tr=3)
    C = make_rng(3).standard_normal((90, 4))
    np.testing.assert_allclose(f.apply_q(f.apply_qt(C)), C, atol=1e-12)


def test_apply_qt_maps_a_to_r():
    A0 = make_rng(4).standard_normal((120, 8))
    f = tsqr(A0, tr=4)
    W = f.apply_qt(A0)
    np.testing.assert_allclose(W[:8], f.R, atol=1e-11)
    np.testing.assert_allclose(W[8:], 0.0, atol=1e-11)


def test_vector_rhs_shapes():
    A0 = make_rng(5).standard_normal((60, 6))
    f = tsqr(A0, tr=2)
    v = make_rng(6).standard_normal(60)
    assert f.apply_qt(v).shape == (60,)
    assert f.apply_q(v).shape == (60,)


def test_least_squares():
    A0 = make_rng(7).standard_normal((200, 15))
    x0 = make_rng(8).standard_normal(15)
    f = tsqr(A0, tr=4)
    x = f.solve_ls(A0 @ x0)
    assert np.linalg.norm(x - x0) < 1e-10


def test_least_squares_matches_lstsq():
    A0 = make_rng(9).standard_normal((120, 10))
    rhs = make_rng(10).standard_normal(120)
    f = tsqr(A0, tr=4)
    x = f.solve_ls(rhs)
    x_ref = np.linalg.lstsq(A0, rhs, rcond=None)[0]
    np.testing.assert_allclose(x, x_ref, rtol=1e-9, atol=1e-11)


def test_wide_rejected():
    with pytest.raises(ValueError, match="tall"):
        tsqr(np.zeros((4, 9)))


def test_input_preserved_by_default():
    A0 = make_rng(11).standard_normal((50, 5))
    A = A0.copy()
    tsqr(A, tr=2)
    np.testing.assert_array_equal(A, A0)


def test_overwrite():
    A0 = make_rng(12).standard_normal((50, 5))
    A = A0.copy()
    f = tsqr(A, tr=2, overwrite=True)
    assert not np.array_equal(A, A0)  # factored in place


def test_trees_give_same_r_up_to_signs():
    A0 = make_rng(13).standard_normal((160, 16))
    rs = [np.abs(tsqr(A0, tr=4, tree=t).R) for t in TreeKind]
    np.testing.assert_allclose(rs[0], rs[1], rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(rs[0], rs[2], rtol=1e-9, atol=1e-11)


def test_geqr2_leaf_kernel():
    A0 = make_rng(14).standard_normal((80, 8))
    f = tsqr(A0, tr=4, leaf_kernel="geqr2")
    Q = f.q_explicit()
    assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-13


def test_custom_executor():
    A0 = make_rng(15).standard_normal((70, 7))
    f = tsqr(A0, tr=3, executor=ThreadedExecutor(2))
    Q = f.q_explicit()
    assert np.linalg.norm(A0 - Q @ f.R) / np.linalg.norm(A0) < 1e-13


def test_orthogonalization_use_case():
    """The paper's motivating application: orthogonalize a block of vectors."""
    V = make_rng(16).standard_normal((500, 6))
    f = tsqr(V, tr=8, tree=TreeKind.FLAT)
    Q = f.q_explicit()
    # Q spans the same space as V.
    proj = Q @ (Q.T @ V)
    np.testing.assert_allclose(proj, V, atol=1e-10)


@given(st.integers(1, 8), st.sampled_from(list(TreeKind)), st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_property_tsqr_orthogonal(tr, tree, seed):
    rng = make_rng(seed)
    n = int(rng.integers(1, 10))
    m = n * int(rng.integers(1, 15))
    A0 = rng.standard_normal((m, n))
    f = tsqr(A0, tr=tr, tree=tree)
    Q = f.q_explicit()
    assert np.linalg.norm(Q.T @ Q - np.eye(n)) < 1e-11
    assert np.linalg.norm(A0 - Q @ f.R) / max(np.linalg.norm(A0), 1e-30) < 1e-11
