"""Tests for the high-level solver API (repro.linalg)."""

import numpy as np
import pytest
import scipy.linalg

from repro.core.calu import calu
from repro.linalg import condest_1, det, iterative_refinement, lstsq, slogdet, solve
from tests.conftest import make_rng


class TestSolve:
    def test_matches_scipy(self):
        A = make_rng(0).standard_normal((120, 120))
        rhs = make_rng(1).standard_normal(120)
        np.testing.assert_allclose(solve(A, rhs), scipy.linalg.solve(A, rhs), rtol=1e-8, atol=1e-10)

    def test_refinement_improves(self):
        from repro.bench.workloads import ill_conditioned

        A = ill_conditioned(100, 100, cond=1e12, seed=2)
        x_true = make_rng(3).standard_normal(100)
        rhs = A @ x_true
        x0 = solve(A, rhs)
        x1 = solve(A, rhs, refine=3)
        assert np.linalg.norm(A @ x1 - rhs) <= np.linalg.norm(A @ x0 - rhs) * 1.01

    def test_multiple_rhs(self):
        A = make_rng(4).standard_normal((60, 60))
        B = make_rng(5).standard_normal((60, 3))
        X = solve(A, B)
        np.testing.assert_allclose(A @ X, B, rtol=1e-8, atol=1e-9)


class TestTransposedSolve:
    def test_trans_solve(self):
        A = make_rng(6).standard_normal((80, 80))
        rhs = make_rng(7).standard_normal(80)
        f = calu(A, b=20, tr=4)
        x = f.solve(rhs, trans=True)
        np.testing.assert_allclose(A.T @ x, rhs, rtol=1e-8, atol=1e-9)

    def test_trans_matches_scipy(self):
        A = make_rng(8).standard_normal((50, 50))
        rhs = make_rng(9).standard_normal(50)
        f = calu(A, b=10, tr=2)
        np.testing.assert_allclose(
            f.solve(rhs, trans=True), scipy.linalg.solve(A.T, rhs), rtol=1e-8, atol=1e-9
        )


class TestLstsq:
    def test_matches_numpy(self):
        A = make_rng(10).standard_normal((200, 30))
        rhs = make_rng(11).standard_normal(200)
        x = lstsq(A, rhs)
        x_ref = np.linalg.lstsq(A, rhs, rcond=None)[0]
        np.testing.assert_allclose(x, x_ref, rtol=1e-8, atol=1e-10)


class TestIterativeRefinement:
    def test_history_monotone_enough(self):
        A = make_rng(12).standard_normal((90, 90))
        rhs = make_rng(13).standard_normal(90)
        f = calu(A, b=30, tr=2)
        x, hist = iterative_refinement(A, f, rhs, max_iters=3)
        assert len(hist) >= 2
        assert hist[-1] <= hist[0] * 10  # never blows up
        np.testing.assert_allclose(A @ x, rhs, rtol=1e-9, atol=1e-9)

    def test_early_stop_on_tol(self):
        A = make_rng(14).standard_normal((40, 40))
        rhs = make_rng(15).standard_normal(40)
        f = calu(A, b=10, tr=2)
        _, hist = iterative_refinement(A, f, rhs, max_iters=10, tol=1e-6)
        assert len(hist) < 11


class TestCondest:
    @pytest.mark.parametrize("seed", range(4))
    def test_within_factor_of_true(self, seed):
        A = make_rng(seed).standard_normal((60, 60))
        f = calu(A, b=15, tr=4)
        est = condest_1(f, a=A)
        true = np.linalg.cond(A, 1)
        assert true / 10 <= est <= true * 10

    def test_ill_conditioned_detected(self):
        from repro.bench.workloads import ill_conditioned

        A = ill_conditioned(80, 80, cond=1e10, seed=5)
        f = calu(A, b=20, tr=4)
        est = condest_1(f, a=A)
        assert est > 1e7

    def test_identity(self):
        A = np.eye(30)
        f = calu(A, b=10, tr=2)
        assert condest_1(f, a=A) == pytest.approx(1.0, rel=0.5)

    def test_requires_norm_or_matrix(self):
        f = calu(np.eye(10), b=5, tr=1)
        with pytest.raises(ValueError):
            condest_1(f)

    def test_rectangular_rejected(self):
        f = calu(make_rng(6).standard_normal((20, 10)), b=5, tr=2)
        with pytest.raises(ValueError):
            condest_1(f, anorm=1.0)


class TestDeterminant:
    @pytest.mark.parametrize("seed", range(5))
    def test_slogdet_matches_numpy(self, seed):
        A = make_rng(seed + 50).standard_normal((40, 40))
        f = calu(A, b=10, tr=4)
        sign, logdet = slogdet(f)
        sign_ref, logdet_ref = np.linalg.slogdet(A)
        assert sign == pytest.approx(sign_ref)
        assert logdet == pytest.approx(logdet_ref, rel=1e-8)

    def test_det_small_matrix(self):
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        f = calu(A, b=2, tr=1)
        assert det(f) == pytest.approx(5.0, rel=1e-12)

    def test_rectangular_rejected(self):
        f = calu(make_rng(7).standard_normal((12, 6)), b=3, tr=2)
        with pytest.raises(ValueError):
            slogdet(f)
