"""Tests for multithreaded CAQR (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caqr import build_caqr_graph, caqr
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.machine.presets import generic
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng

SHAPES = [
    (64, 64, 16, 4, TreeKind.FLAT),
    (120, 120, 32, 4, TreeKind.FLAT),
    (200, 80, 25, 4, TreeKind.BINARY),
    (97, 53, 16, 3, TreeKind.FLAT),
    (64, 100, 16, 2, TreeKind.BINARY),  # wide
    (300, 40, 10, 8, TreeKind.HYBRID),
    (57, 62, 44, 6, TreeKind.BINARY),  # wide + ragged (regression)
    (130, 130, 33, 5, TreeKind.FLAT),
]


@pytest.mark.parametrize("m,n,b,tr,tree", SHAPES)
def test_reconstruct(m, n, b, tr, tree):
    A0 = make_rng(m * 3 + n + b + tr).standard_normal((m, n))
    f = caqr(A0, b=b, tr=tr, tree=tree)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-12, err


@pytest.mark.parametrize("m,n,b,tr,tree", SHAPES)
def test_orthogonality(m, n, b, tr, tree):
    A0 = make_rng(m + n + b + tr).standard_normal((m, n))
    f = caqr(A0, b=b, tr=tr, tree=tree)
    Q = f.q_explicit()
    assert np.linalg.norm(Q.T @ Q - np.eye(min(m, n))) < 1e-11


def test_r_upper_triangular():
    f = caqr(make_rng(0).standard_normal((90, 60)), b=20, tr=3)
    np.testing.assert_array_equal(f.R, np.triu(f.R))


def test_r_matches_numpy_abs():
    A0 = make_rng(1).standard_normal((100, 40))
    f = caqr(A0, b=10, tr=4)
    _, R_ref = np.linalg.qr(A0)
    np.testing.assert_allclose(np.abs(f.R[:40, :40]), np.abs(R_ref), rtol=1e-8, atol=1e-10)


def test_apply_roundtrip():
    A0 = make_rng(2).standard_normal((80, 50))
    f = caqr(A0, b=16, tr=2)
    C = make_rng(3).standard_normal((80, 3))
    np.testing.assert_allclose(f.apply_q(f.apply_qt(C)), C, atol=1e-11)


def test_apply_qt_gives_r():
    A0 = make_rng(4).standard_normal((70, 30))
    f = caqr(A0, b=10, tr=2)
    W = f.apply_qt(A0)
    np.testing.assert_allclose(W[:30], f.R, atol=1e-10)
    np.testing.assert_allclose(W[30:], 0.0, atol=1e-10)


def test_solve_ls():
    A0 = make_rng(5).standard_normal((150, 40))
    x0 = make_rng(6).standard_normal(40)
    f = caqr(A0, b=16, tr=4)
    x = f.solve_ls(A0 @ x0)
    assert np.linalg.norm(x - x0) < 1e-9


def test_solve_ls_rejects_wide():
    f = caqr(make_rng(7).standard_normal((30, 50)), b=10, tr=2)
    with pytest.raises(ValueError):
        f.solve_ls(np.ones(30))


def test_executors_agree():
    A0 = make_rng(8).standard_normal((90, 90))
    f1 = caqr(A0, b=30, tr=3, executor=ThreadedExecutor(3))
    f2 = caqr(A0, b=30, tr=3, executor=ThreadedExecutor(1))
    f3 = caqr(A0, b=30, tr=3, executor=SimulatedExecutor(generic(4), execute=True))
    np.testing.assert_allclose(f1.packed, f2.packed, atol=0)
    np.testing.assert_allclose(f1.packed, f3.packed, atol=0)


def test_single_panel_equals_tsqr():
    from repro.core.tsqr import tsqr

    A0 = make_rng(9).standard_normal((120, 20))
    fc = caqr(A0, b=20, tr=4, tree=TreeKind.BINARY)
    ft = tsqr(A0, tr=4, tree=TreeKind.BINARY)
    np.testing.assert_allclose(fc.R[:20], ft.R, atol=1e-12)


def test_vector_rhs():
    A0 = make_rng(10).standard_normal((60, 20))
    f = caqr(A0, b=10, tr=2)
    v = make_rng(11).standard_normal(60)
    assert f.apply_qt(v).shape == (60,)


def test_default_block_size():
    A0 = make_rng(12).standard_normal((200, 150))
    assert caqr(A0, tr=2).b == 100


class TestGraphStructure:
    def test_acyclic_and_symbolic(self):
        layout = BlockLayout(500, 300, 100)
        graph, stores = build_caqr_graph(layout, 4)
        graph.validate()
        assert stores == []
        assert all(t.fn is None for t in graph.tasks)

    def test_kind_counts(self):
        layout = BlockLayout(400, 200, 100)  # M=4, N=2, 2 panels
        graph, _ = build_caqr_graph(layout, 2, TreeKind.BINARY)
        counts = graph.count_by_kind()
        # Iteration 0: 2 leaves + 1 merge = 3 P; iteration 1: >=1 leaf.
        assert counts["P"] >= 4
        assert counts["S"] >= 3  # leaf updates + tree updates for column 1

    def test_flops_above_standard_count(self):
        from repro.analysis.flops import qr_flops

        layout = BlockLayout(2000, 1000, 100)
        graph, _ = build_caqr_graph(layout, 4)
        base = qr_flops(2000, 1000)
        assert base <= graph.total_flops() <= 2.5 * base

    def test_symbolic_numeric_same_structure(self):
        layout = BlockLayout(200, 120, 40)
        g_sym, _ = build_caqr_graph(layout, 3)
        A = make_rng(13).standard_normal((200, 120))
        g_num, _ = build_caqr_graph(layout, 3, A=A)
        assert len(g_sym) == len(g_num)
        assert g_sym.preds == g_num.preds


@given(st.integers(0, 400))
@settings(max_examples=15, deadline=None)
def test_property_caqr_random_shapes(seed):
    rng = make_rng(seed)
    m = int(rng.integers(2, 110))
    n = int(rng.integers(2, 110))
    b = int(rng.integers(1, min(m, n) + 1))
    tr = int(rng.integers(1, 7))
    A0 = rng.standard_normal((m, n))
    f = caqr(A0, b=b, tr=tr)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-10, (m, n, b, tr, err)
