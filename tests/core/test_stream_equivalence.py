"""Streamed graph programs are indistinguishable from eager builds.

Two layers of equivalence, per ISSUE 4's acceptance:

* **structural** — ``*_program(...).materialize()`` reproduces the
  eager ``build_*_graph(...)`` result task-for-task (names, kinds,
  costs, priorities, footprints) and edge-for-edge;
* **behavioral** — factorizations driven through streaming engine
  executors (threaded, work-stealing, simulated-execute, and the
  shared-memory process backend) reproduce an eager sequential run
  **bitwise**: same pivots, same packed factors, for CALU and CAQR
  across binary and flat reduction trees and all look-ahead depths.
"""

import numpy as np
import pytest

from repro.baselines.lapack_lu import build_getrf_graph, getrf_program
from repro.baselines.lapack_qr import build_geqrf_graph, geqrf_program
from repro.baselines.tiled_lu import build_tiled_lu_graph, tiled_lu_program
from repro.baselines.tiled_qr import build_tiled_qr_graph, tiled_qr_program
from repro.core.calu import build_calu_graph, calu, calu_program
from repro.core.caqr import build_caqr_graph, caqr, caqr_program
from repro.core.layout import BlockLayout
from repro.core.priorities import lookahead_depth
from repro.core.trees import TreeKind
from repro.core.tslu import tslu_program
from repro.core.tsqr import tsqr_program
from repro.machine.presets import generic
from repro.runtime.process import ProcessExecutor
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.threaded import ThreadedExecutor
from repro.runtime.trace import Trace
from repro.verify.equivalence import compare_graphs
from tests.conftest import make_rng

TREES = [TreeKind.BINARY, TreeKind.FLAT]


class EagerSequential:
    """Duck-typed executor: drivers hand it a *materialized* graph."""

    def run(self, graph, journal=None):
        assert hasattr(graph, "tasks"), "duck-typed executors must get eager graphs"
        graph.run_sequential()
        return Trace([], 1)


def assert_equivalent(streamed, eager):
    findings = compare_graphs(streamed, eager)
    assert not findings, "\n".join(str(f) for f in findings)


# ---------------------------------------------------------------------------
# Structural: materialized programs == eager graphs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_calu_program_materializes_to_eager_graph(tree):
    layout = BlockLayout(96, 64, 16)
    streamed = calu_program(layout, 4, tree)[0].materialize()
    eager = build_calu_graph(layout, 4, tree)[0]
    assert_equivalent(streamed, eager)


@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_caqr_program_materializes_to_eager_graph(tree):
    layout = BlockLayout(96, 64, 16)
    streamed = caqr_program(layout, 4, tree)[0].materialize()
    eager = build_caqr_graph(layout, 4, tree)[0]
    assert_equivalent(streamed, eager)


def test_numeric_calu_program_matches_eager_graph():
    A = make_rng(11).standard_normal((48, 48))
    layout = BlockLayout(48, 48, 8)
    streamed = calu_program(layout, 4, TreeKind.BINARY, A=A.copy(), guards=False)[0]
    eager = build_calu_graph(layout, 4, TreeKind.BINARY, A=A.copy(), guards=False)[0]
    assert_equivalent(streamed.materialize(), eager)


@pytest.mark.parametrize(
    "make_program,make_eager",
    [
        pytest.param(
            lambda: getrf_program(128, 128, b=32),
            lambda: build_getrf_graph(128, 128, b=32),
            id="getrf",
        ),
        pytest.param(
            lambda: geqrf_program(128, 128, b=32),
            lambda: build_geqrf_graph(128, 128, b=32),
            id="geqrf",
        ),
        pytest.param(
            lambda: tiled_lu_program(96, 96, nb=16),
            lambda: build_tiled_lu_graph(96, 96, nb=16),
            id="tiled-lu",
        ),
        pytest.param(
            lambda: tiled_qr_program(96, 96, nb=16),
            lambda: build_tiled_qr_graph(96, 96, nb=16),
            id="tiled-qr",
        ),
    ],
)
def test_baseline_programs_materialize_identically(make_program, make_eager):
    assert_equivalent(make_program().materialize(), make_eager())


def test_tslu_tsqr_programs_are_deterministic():
    A = make_rng(7).standard_normal((64, 16))
    p1, _ = tslu_program(A.copy(), tr=4)
    p2, _ = tslu_program(A.copy(), tr=4)
    assert p1.n_windows == 2  # tournament window + L-trsm window
    assert_equivalent(p1.materialize(), p2.materialize())
    q1, _ = tsqr_program(A.copy(), tr=4)
    q2, _ = tsqr_program(A.copy(), tr=4)
    assert q1.n_windows == 1
    assert_equivalent(q1.materialize(), q2.materialize())


def test_windows_partition_the_graph():
    layout = BlockLayout(96, 64, 16)
    program, _ = calu_program(layout, 4, TreeKind.BINARY)
    program.materialize()
    # Windows tile [0, n_tasks) without gaps or overlaps, in order.
    expect = 0
    for start, end in program.windows:
        assert start == expect and end >= start
        expect = end
    assert expect == len(program.graph.tasks)
    # One window per panel plus the left-swap epilogue.
    assert program.n_windows == layout.n_panels + 1


# ---------------------------------------------------------------------------
# Behavioral: streamed runs reproduce eager runs bitwise
# ---------------------------------------------------------------------------

EXECUTORS = [
    pytest.param(lambda: ThreadedExecutor(3), id="threaded"),
    pytest.param(lambda: WorkStealingExecutor(3, seed=5), id="stealing"),
    pytest.param(lambda: SimulatedExecutor(generic(2), execute=True), id="simulated"),
    pytest.param(lambda: ProcessExecutor(3), id="process"),
]


@pytest.mark.parametrize("make_executor", EXECUTORS)
@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_calu_streamed_matches_eager_bitwise(tree, make_executor):
    A = make_rng(42).standard_normal((72, 48))
    ref = calu(A, b=12, tr=4, tree=tree, executor=EagerSequential())
    f = calu(A, b=12, tr=4, tree=tree, executor=make_executor())
    np.testing.assert_array_equal(f.piv, ref.piv)
    np.testing.assert_array_equal(f.lu, ref.lu)


@pytest.mark.parametrize("make_executor", EXECUTORS)
@pytest.mark.parametrize("tree", TREES, ids=[t.value for t in TREES])
def test_caqr_streamed_matches_eager_bitwise(tree, make_executor):
    A = make_rng(43).standard_normal((72, 48))
    ref = caqr(A, b=12, tr=4, tree=tree, executor=EagerSequential())
    f = caqr(A, b=12, tr=4, tree=tree, executor=make_executor())
    np.testing.assert_array_equal(f.packed, ref.packed)
    rhs = make_rng(44).standard_normal(72)
    np.testing.assert_array_equal(f.apply_qt(rhs), ref.apply_qt(rhs))


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_lookahead_depth_does_not_change_factors(depth):
    A = make_rng(45).standard_normal((64, 64))
    ref = calu(A, b=16, tr=4, executor=EagerSequential())
    f = calu(A, b=16, tr=4, lookahead=depth)
    np.testing.assert_array_equal(f.piv, ref.piv)
    np.testing.assert_array_equal(f.lu, ref.lu)
    # Streaming bound: the engine reports a bounded live window.
    stats = f.trace.stats
    assert stats["n_windows"] == stats["windows_emitted"]


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_default_lookahead_depth_drives_streaming(depth):
    A = make_rng(46).standard_normal((60, 40))
    prev = lookahead_depth(depth)
    try:
        f = calu(A, b=10, tr=3)
    finally:
        lookahead_depth(prev)
    ref = calu(A, b=10, tr=3, executor=EagerSequential())
    np.testing.assert_array_equal(f.piv, ref.piv)
    np.testing.assert_array_equal(f.lu, ref.lu)
