"""Tests for multithreaded CALU (Algorithm 1)."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.errors import growth_factor, lu_backward_error
from repro.core.calu import CALUFactorization, build_calu_graph, calu
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.machine.presets import generic
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.task import TaskKind
from repro.runtime.threaded import ThreadedExecutor
from tests.conftest import make_rng

SHAPES = [
    (64, 64, 16, 4, TreeKind.BINARY),
    (120, 120, 32, 4, TreeKind.BINARY),
    (200, 80, 25, 4, TreeKind.FLAT),
    (97, 53, 16, 3, TreeKind.BINARY),
    (64, 100, 16, 2, TreeKind.BINARY),  # wide
    (300, 40, 10, 8, TreeKind.HYBRID),
    (50, 50, 50, 4, TreeKind.BINARY),  # single panel
    (130, 130, 33, 5, TreeKind.FLAT),  # ragged blocks
]


@pytest.mark.parametrize("m,n,b,tr,tree", SHAPES)
def test_reconstruct(m, n, b, tr, tree):
    A0 = make_rng(m + n + b + tr).standard_normal((m, n))
    f = calu(A0, b=b, tr=tr, tree=tree)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-12


def test_backward_error_metric():
    A0 = make_rng(0).standard_normal((80, 80))
    f = calu(A0, b=16, tr=4)
    assert lu_backward_error(A0, f.perm, f.L, f.U) < 1e-13


def test_solve_square():
    A0 = make_rng(1).standard_normal((100, 100))
    x0 = make_rng(2).standard_normal(100)
    f = calu(A0, b=25, tr=4)
    x = f.solve(A0 @ x0)
    assert np.linalg.norm(x - x0) / np.linalg.norm(x0) < 1e-10


def test_solve_multiple_rhs():
    A0 = make_rng(3).standard_normal((60, 60))
    X0 = make_rng(4).standard_normal((60, 3))
    f = calu(A0, b=20, tr=2)
    X = f.solve(A0 @ X0)
    assert np.linalg.norm(X - X0) < 1e-9


def test_solve_rejects_rectangular():
    f = calu(make_rng(5).standard_normal((40, 20)), b=10, tr=2)
    with pytest.raises(ValueError):
        f.solve(np.ones(40))


def test_equivalent_to_gepp_when_single_panel_tr1():
    """b = n and Tr = 1 reduces CALU to plain GEPP."""
    A0 = make_rng(6).standard_normal((50, 50))
    f = calu(A0, b=50, tr=1)
    lu_ref, piv_ref = scipy.linalg.lu_factor(A0)
    np.testing.assert_array_equal(f.piv, piv_ref)
    np.testing.assert_allclose(f.lu, lu_ref, rtol=1e-10, atol=1e-12)


def test_growth_factor_comparable_to_gepp():
    gs = []
    for seed in range(4):
        A0 = make_rng(seed).standard_normal((192, 192))
        f = calu(A0, b=32, tr=8)
        gs.append(growth_factor(A0, f.U))
    _, _, U = scipy.linalg.lu(make_rng(0).standard_normal((192, 192)))
    g_ref = growth_factor(make_rng(0).standard_normal((192, 192)), U)
    assert max(gs) < 10 * g_ref  # same order as GEPP, per the paper


def test_default_block_size_is_paper_value():
    A0 = make_rng(7).standard_normal((150, 150))
    f = calu(A0, tr=2)
    assert f.b == 100
    A0 = make_rng(7).standard_normal((150, 40))
    assert calu(A0, tr=2).b == 40


def test_overwrite():
    A0 = make_rng(8).standard_normal((60, 60))
    A = A0.copy()
    f = calu(A, b=20, tr=2, overwrite=True)
    assert f.lu is A


def test_executors_agree():
    """Threaded, sequential and simulated execution give identical factors."""
    A0 = make_rng(9).standard_normal((90, 90))
    f1 = calu(A0, b=30, tr=3, executor=ThreadedExecutor(3))
    f2 = calu(A0, b=30, tr=3, executor=ThreadedExecutor(1))
    f3 = calu(A0, b=30, tr=3, executor=SimulatedExecutor(generic(4), execute=True))
    np.testing.assert_array_equal(f1.piv, f2.piv)
    np.testing.assert_array_equal(f1.piv, f3.piv)
    np.testing.assert_allclose(f1.lu, f2.lu, rtol=0, atol=0)
    np.testing.assert_allclose(f1.lu, f3.lu, rtol=0, atol=0)


def test_lookahead_variants_same_result():
    A0 = make_rng(10).standard_normal((80, 80))
    fs = [calu(A0, b=20, tr=2, lookahead=la) for la in (0, 1, -1)]
    for f in fs[1:]:
        np.testing.assert_array_equal(fs[0].piv, f.piv)
        np.testing.assert_allclose(fs[0].lu, f.lu, atol=0)


def test_perm_property_roundtrip():
    A0 = make_rng(11).standard_normal((70, 30))
    f = calu(A0, b=10, tr=2)
    perm = f.perm
    assert sorted(perm) == list(range(70))
    np.testing.assert_allclose(A0[perm], f.L @ f.U, rtol=0, atol=1e-11)


def test_ill_conditioned_still_accurate():
    from repro.bench.workloads import ill_conditioned

    A0 = ill_conditioned(80, 80, cond=1e12, seed=3)
    f = calu(A0, b=16, tr=4)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-12


class TestGraphStructure:
    def test_task_kind_counts(self):
        """Task counts per iteration follow Algorithm 1's structure."""
        layout = BlockLayout(400, 200, 100)  # M=4, N=2
        tr = 2
        graph, _ = build_calu_graph(layout, tr, TreeKind.BINARY)
        counts = graph.count_by_kind()
        # Per iteration: tr leaves + (tr-1) merges + 1 finalize = 2+1+1 = 4 P's
        # (iteration 1 has fewer chunks if fewer block rows remain).
        assert counts["P"] >= 4
        assert counts["U"] == 1  # only iteration 0 has a trailing column
        assert counts["S"] >= 1
        assert counts["X"] == 1  # the deferred left swaps

    def test_single_panel_has_no_left_swaps(self):
        layout = BlockLayout(300, 100, 100)
        graph, _ = build_calu_graph(layout, 2)
        assert "X" not in graph.count_by_kind()

    def test_graph_is_acyclic(self):
        layout = BlockLayout(500, 300, 100)
        graph, _ = build_calu_graph(layout, 4)
        graph.validate()

    def test_symbolic_graph_has_no_closures(self):
        layout = BlockLayout(500, 300, 100)
        graph, _ = build_calu_graph(layout, 4)
        assert all(t.fn is None for t in graph.tasks)

    def test_symbolic_and_numeric_graphs_identical_structure(self):
        layout = BlockLayout(200, 120, 40)
        g_sym, _ = build_calu_graph(layout, 3)
        A = make_rng(12).standard_normal((200, 120))
        g_num, _ = build_calu_graph(layout, 3, A=A)
        assert len(g_sym) == len(g_num)
        for ts, tn in zip(g_sym.tasks, g_num.tasks):
            assert ts.name == tn.name
            assert ts.cost == tn.cost
        assert g_sym.preds == g_num.preds

    def test_total_flops_close_to_formula(self):
        from repro.analysis.flops import lu_flops

        layout = BlockLayout(2000, 1000, 100)
        graph, _ = build_calu_graph(layout, 4)
        base = lu_flops(2000, 1000)
        # CALU does the panel work roughly twice plus tree merges.
        assert base <= graph.total_flops() <= 1.6 * base

    def test_panel_flops_on_critical_path(self):
        """Every panel P task precedes the next iteration's P tasks."""
        layout = BlockLayout(300, 300, 100)
        graph, _ = build_calu_graph(layout, 2)
        order = {t: i for i, t in enumerate(graph.topological_order())}
        p_by_iter: dict[int, list[int]] = {}
        for t in graph.tasks:
            if t.kind is TaskKind.P:
                p_by_iter.setdefault(t.iteration, []).append(t.tid)
        # Weak check: at least one P of iter K precedes all P of iter K+1 in topo order.
        for k in range(2):
            assert min(order[t] for t in p_by_iter[k]) < min(order[t] for t in p_by_iter[k + 1])


@given(st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_property_calu_random_shapes(seed):
    rng = make_rng(seed)
    m = int(rng.integers(2, 120))
    n = int(rng.integers(2, 120))
    b = int(rng.integers(1, min(m, n) + 1))
    tr = int(rng.integers(1, 7))
    A0 = rng.standard_normal((m, n))
    f = calu(A0, b=b, tr=tr)
    err = np.linalg.norm(A0 - f.reconstruct()) / np.linalg.norm(A0)
    assert err < 1e-10, (m, n, b, tr, err)
