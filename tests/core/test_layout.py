"""Tests for the block-layout index arithmetic (paper Algorithm 1 lines 5-7)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calu import merged_chunks
from repro.core.layout import BlockLayout


class TestBasics:
    def test_grid_dimensions(self):
        lay = BlockLayout(100, 60, 20)
        assert (lay.M, lay.N) == (5, 3)

    def test_ragged_grid(self):
        lay = BlockLayout(105, 61, 20)
        assert (lay.M, lay.N) == (6, 4)

    def test_n_panels(self):
        assert BlockLayout(100, 60, 20).n_panels == 3
        assert BlockLayout(60, 100, 20).n_panels == 3  # min(m, n) governs
        assert BlockLayout(10, 10, 100).n_panels == 1

    def test_col_range_clipped(self):
        lay = BlockLayout(50, 45, 20)
        assert lay.col_range(0) == (0, 20)
        assert lay.col_range(2) == (40, 45)

    def test_row_range_clipped(self):
        lay = BlockLayout(45, 50, 20)
        assert lay.row_range(2) == (40, 45)

    def test_panel_width_wide_matrix(self):
        lay = BlockLayout(30, 100, 20)
        assert lay.panel_width(0) == 20
        assert lay.panel_width(1) == 10  # clipped at min(m, n) = 30

    def test_invalid(self):
        with pytest.raises(ValueError):
            BlockLayout(0, 5, 2)
        with pytest.raises(ValueError):
            BlockLayout(5, 5, 0)


class TestPanelChunks:
    def test_matches_paper_formula_when_divisible(self):
        """I1 = (K-1)+(I-1)*ceil((M-K+1)/Tr), 1-based, in block units."""
        m, b, tr = 1600, 100, 8
        lay = BlockLayout(m, 800, b)
        for K0 in range(lay.n_panels):  # 0-based K0 = paper K-1
            chunks = lay.panel_chunks(K0, tr)
            Mb = lay.M
            per = math.ceil((Mb - K0) / tr)
            for c in chunks:
                assert c.b0 == K0 + c.index * per
                assert c.b1 == min(Mb, K0 + (c.index + 1) * per)

    def test_cover_active_rows_exactly(self):
        lay = BlockLayout(1000, 300, 100)
        for K in range(lay.n_panels):
            chunks = lay.panel_chunks(K, 4)
            assert chunks[0].r0 == K * 100
            assert chunks[-1].r1 == 1000
            for a, b2 in zip(chunks, chunks[1:]):
                assert a.r1 == b2.r0

    def test_fewer_blocks_than_tr(self):
        lay = BlockLayout(300, 300, 100)
        chunks = lay.panel_chunks(1, 8)  # only 2 active block rows
        assert 1 <= len(chunks) <= 2
        assert chunks[0].r0 == 100 and chunks[-1].r1 == 300

    def test_tr_one_single_chunk(self):
        lay = BlockLayout(500, 100, 50)
        chunks = lay.panel_chunks(0, 1)
        assert len(chunks) == 1
        assert (chunks[0].r0, chunks[0].r1) == (0, 500)

    def test_invalid_tr(self):
        with pytest.raises(ValueError):
            BlockLayout(10, 10, 2).panel_chunks(0, 0)

    def test_empty_when_no_active_rows(self):
        lay = BlockLayout(100, 200, 100)
        assert lay.panel_chunks(1, 4) == []

    def test_chunk_blocks(self):
        lay = BlockLayout(400, 100, 100)
        chunks = lay.panel_chunks(0, 2)
        assert chunks[0].blocks(0) == [(0, 0), (1, 0)]
        assert chunks[1].blocks(3) == [(2, 3), (3, 3)]

    def test_active_blocks(self):
        lay = BlockLayout(400, 100, 100)
        assert lay.active_blocks(2, 0) == [(2, 0), (3, 0)]


class TestMergedChunks:
    def test_short_tail_merged(self):
        lay = BlockLayout(410, 100, 100)  # last block row has 10 rows
        chunks = merged_chunks(lay, 0, 5)
        assert all(c.rows >= 100 for c in chunks)
        assert chunks[-1].r1 == 410

    def test_no_merge_needed(self):
        lay = BlockLayout(400, 100, 100)
        assert merged_chunks(lay, 0, 4) == lay.panel_chunks(0, 4)

    def test_single_short_chunk_kept(self):
        lay = BlockLayout(60, 60, 60)
        chunks = merged_chunks(lay, 0, 4)
        assert len(chunks) == 1 and chunks[0].rows == 60


@given(
    st.integers(1, 400),
    st.integers(1, 400),
    st.integers(1, 64),
    st.integers(1, 16),
)
@settings(max_examples=150, deadline=None)
def test_property_chunks_partition_active_rows(m, n, b, tr):
    lay = BlockLayout(m, n, b)
    for K in range(lay.n_panels):
        chunks = lay.panel_chunks(K, tr)
        if K * b >= m:
            assert chunks == []
            continue
        assert chunks[0].r0 == K * b
        assert chunks[-1].r1 == m
        covered = 0
        for a, b2 in zip(chunks, chunks[1:]):
            assert a.r1 == b2.r0
        assert len(chunks) <= tr
        for c in chunks:
            assert c.rows > 0
            assert c.r0 == c.b0 * b
            assert c.r1 == min(c.b1 * b, m)


@given(st.integers(2, 300), st.integers(1, 300), st.integers(1, 50), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_property_merged_chunks_tail_big_enough(m, n, b, tr):
    lay = BlockLayout(m, n, b)
    for K in range(lay.n_panels):
        chunks = merged_chunks(lay, K, tr)
        if not chunks:
            continue
        bk = lay.panel_width(K)
        if len(chunks) > 1:
            assert all(c.rows >= bk for c in chunks)
        assert chunks[0].r0 == K * b
        assert chunks[-1].r1 == m
