"""Tests for parameter heuristics, input validation and trace exports."""

import json

import numpy as np
import pytest

from repro.core.autotune import recommend_params
from repro.core.calu import calu
from repro.core.caqr import caqr
from repro.core.trees import TreeKind
from repro.core.tslu import tslu
from repro.core.tsqr import tsqr
from repro.linalg import lstsq, solve
from tests.conftest import make_rng


class TestRecommendParams:
    def test_tall_skinny_uses_all_cores(self):
        rec = recommend_params(1_000_000, 500, cores=8)
        assert rec.tr == 8
        assert rec.b == 100
        assert "tall-skinny" in rec.rationale

    def test_large_square_small_tr(self):
        rec = recommend_params(10_000, 10_000, cores=8)
        assert rec.tr == 2  # the paper's Table I optimum at 10^4

    def test_moderate_square(self):
        rec = recommend_params(2000, 2000, cores=8)
        assert 1 <= rec.tr <= 8

    def test_narrow_matrix_caps_b(self):
        assert recommend_params(500, 40, cores=4).b == 40

    def test_qr_gets_flat_tree(self):
        assert recommend_params(100_000, 100, kind="qr").tree is TreeKind.FLAT
        assert recommend_params(100_000, 100, kind="lu").tree is TreeKind.BINARY

    def test_tr_never_exceeds_chunkable_rows(self):
        rec = recommend_params(300, 100, cores=16)
        assert rec.tr <= 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_params(0, 5)
        with pytest.raises(ValueError):
            recommend_params(5, 5, kind="cholesky")

    def test_solve_uses_heuristics(self):
        A = make_rng(0).standard_normal((150, 150))
        rhs = make_rng(1).standard_normal(150)
        x = solve(A, rhs)  # no explicit parameters
        np.testing.assert_allclose(A @ x, rhs, rtol=1e-8, atol=1e-9)

    def test_lstsq_uses_heuristics(self):
        A = make_rng(2).standard_normal((400, 30))
        x0 = make_rng(3).standard_normal(30)
        x = lstsq(A, A @ x0)
        np.testing.assert_allclose(x, x0, rtol=1e-8, atol=1e-10)


class TestCheckFinite:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_calu_rejects_nonfinite(self, bad):
        A = make_rng(4).standard_normal((20, 20))
        A[3, 7] = bad
        with pytest.raises(ValueError, match="NaN or Inf"):
            calu(A, b=5, tr=2)

    def test_caqr_rejects_nonfinite(self):
        A = make_rng(5).standard_normal((20, 10))
        A[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            caqr(A, b=5, tr=2)

    def test_tslu_tsqr_reject_nonfinite(self):
        A = make_rng(6).standard_normal((30, 5))
        A[-1, -1] = np.inf
        with pytest.raises(ValueError):
            tslu(A, tr=2)
        with pytest.raises(ValueError):
            tsqr(A, tr=2)

    def test_opt_out(self):
        A = make_rng(7).standard_normal((20, 20))
        A[0, 0] = np.nan
        f = calu(A, b=5, tr=2, check_finite=False)  # garbage in, no raise
        assert np.isnan(f.lu).any()


class TestChromeTracing:
    def test_export_structure(self):
        from repro.core.calu import build_calu_graph
        from repro.core.layout import BlockLayout
        from repro.machine.presets import generic
        from repro.runtime.simulated import SimulatedExecutor

        graph, _ = build_calu_graph(BlockLayout(400, 200, 100), 2)
        trace = SimulatedExecutor(generic(4)).run(graph)
        doc = json.loads(trace.to_chrome_tracing())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(events) == len(graph.tasks)
        assert len(metas) == 4
        assert all(e["dur"] >= 0 for e in events)
        assert all(e["cat"] in "PLUSX" for e in events)


class TestDotAndSteps:
    def test_to_dot_rejects_huge(self):
        from repro.core.calu import build_calu_graph
        from repro.core.layout import BlockLayout

        graph, _ = build_calu_graph(BlockLayout(8000, 8000, 100), 8)
        with pytest.raises(ValueError, match="max_tasks"):
            graph.to_dot(max_tasks=100)

    def test_step_schedule_respects_deps_and_width(self):
        from repro.core.calu import build_calu_graph
        from repro.core.layout import BlockLayout

        graph, _ = build_calu_graph(BlockLayout(600, 600, 100), 2)
        steps = graph.step_schedule(3)
        assert all(len(s) <= 3 for s in steps)
        seen = set()
        for step in steps:
            for t in step:
                assert all(p in seen for p in graph.preds[t])
            seen.update(step)
        assert seen == set(range(len(graph.tasks)))
