"""Command-line entry point: ``python -m repro.bench [names...|all]``.

Options:

``--save DIR``
    Also write each experiment's formatted output to ``DIR/<name>.txt``
    (tables additionally as ``<name>.csv``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, run_all
from repro.bench.tables import Table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the simulated machines.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=["all"],
        help=f"experiments to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="write each result to DIR/<name>.txt (tables also as .csv)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write a Markdown reproduction report (claim checks + outputs)",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    results = run_all(names)
    if args.save:
        out = Path(args.save)
        out.mkdir(parents=True, exist_ok=True)
        for name, result in results.items():
            (out / f"{name}.txt").write_text(result.format() + "\n")
            if isinstance(result, Table):
                (out / f"{name}.csv").write_text(result.to_csv())
        print(f"\nresults written to {out}/")
    if args.report:
        from repro.bench.report import generate_report

        Path(args.report).write_text(generate_report(results) + "\n")
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
