"""One driver per table/figure of the paper's evaluation (Section IV).

Every driver returns a :class:`~repro.bench.tables.Table` (or, for the
execution diagrams, a :class:`GanttPair`) whose rows/columns mirror the
paper's artifact.  GFLOP/s numbers come from the simulated machine
models (see DESIGN.md for the substitution argument); the paper's
measured values are attached as notes so EXPERIMENTS.md can show
paper-vs-ours side by side.

Run ``python -m repro.bench <name>`` with one of
``fig1_fig2 fig3_fig4 fig5 fig6 fig7 fig8 table1 table2 table3``, the
ablations ``tree_ablation lookahead_ablation lookahead_depth_ablation
overhead_ablation stability scaling``, or the Section V extensions
``bb_extension hybrid_update``.  Add ``--save DIR`` and/or
``--report FILE``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.flops import lu_flops
from repro.bench.methods import lu_graph, simulate_lu, simulate_qr
from repro.bench.tables import Table
from repro.core.trees import TreeKind
from repro.machine.model import MachineModel
from repro.machine.presets import amd16_acml, intel8_mkl
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.trace import Trace

__all__ = [
    "DagFigure",
    "EXPERIMENTS",
    "GanttPair",
    "bb_extension",
    "fig1_fig2",
    "fig3_fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "hybrid_update",
    "lookahead_ablation",
    "lookahead_depth_ablation",
    "overhead_ablation",
    "run_all",
    "scaling",
    "stability",
    "table1",
    "table2",
    "table3",
    "tree_ablation",
]

TALL_NS = (10, 25, 50, 100, 150, 200, 500, 1000)


def _grid(
    sim,
    rows: list[tuple[str, int, int]],
    cols: list[tuple[str, str, dict]],
    machine: MachineModel,
) -> np.ndarray:
    out = np.zeros((len(rows), len(cols)))
    for i, (_, m, n) in enumerate(rows):
        for j, (_, method, kw) in enumerate(cols):
            out[i, j] = sim(method, m, n, machine, **kw).gflops
    return out


# ----------------------------------------------------------------------
# Figures 3 and 4 — execution diagrams
# ----------------------------------------------------------------------
@dataclass
class GanttPair:
    """The paper's Figures 3-4: CALU schedules at ``Tr=1`` vs ``Tr=8``."""

    trace_tr1: Trace
    trace_tr8: Trace
    idle_tr1: float
    idle_tr8: float
    gflops_tr1: float
    gflops_tr8: float

    def format(self) -> str:
        lines = [
            "Fig 3: CALU 1e5 x 1000, b=100, Tr=1 (8-core Intel model)",
            self.trace_tr1.gantt(100),
            f"idle fraction {100 * self.idle_tr1:.1f}%, {self.gflops_tr1:.1f} GFLOP/s",
            "",
            "Fig 4: same with Tr=8 — panel parallelized, idle removed",
            self.trace_tr8.gantt(100),
            f"idle fraction {100 * self.idle_tr8:.1f}%, {self.gflops_tr8:.1f} GFLOP/s",
            "",
            "Paper: with Tr=1 the panel (red, '#') leaves cores idle; with",
            "Tr=8 'except the very beginning and the very end ... there is",
            "no idle time and all the cores are kept busy'.",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def fig3_fig4(machine: MachineModel | None = None, m: int = 100_000, n: int = 1000) -> GanttPair:
    """CALU execution diagrams for a tall-skinny matrix, ``Tr=1`` vs ``Tr=8``."""
    mach = machine or intel8_mkl()
    flops = lu_flops(m, n)
    traces = []
    for tr in (1, 8):
        graph = lu_graph("calu", m, n, b=100, tr=tr)
        traces.append(SimulatedExecutor(mach).run(graph))
    t1, t8 = traces
    return GanttPair(
        trace_tr1=t1,
        trace_tr8=t8,
        idle_tr1=t1.idle_fraction(),
        idle_tr8=t8.idle_fraction(),
        gflops_tr1=t1.gflops(flops),
        gflops_tr8=t8.gflops(flops),
    )


# ----------------------------------------------------------------------
# Figures 5-7 — LU on tall-skinny matrices
# ----------------------------------------------------------------------
def _lu_tall(machine: MachineModel, m: int, ns=TALL_NS, tr_values=(4, 8)) -> Table:
    lib = "ACML" if machine.name.startswith("amd") else "MKL"
    cols = [(f"{lib}_dgetf2", "mkl_getf2", {})] if lib == "MKL" else []
    cols += [
        (f"{lib}_dgetrf", "mkl_getrf" if lib == "MKL" else "acml_getrf", {}),
        ("PLASMA_dgetrf", "plasma_getrf", {}),
    ]
    cols += [(f"CALU(Tr={t})", "calu", {"tr": t}) for t in tr_values]
    rows = [(str(n), m, n) for n in ns]
    values = _grid(simulate_lu, rows, cols, machine)
    return Table(
        title=f"LU GFLOP/s, m={m:.0e}, varying n ({machine.name} model)",
        row_header="n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        chart=True,
    )


def fig5(machine: MachineModel | None = None, ns=TALL_NS) -> Table:
    """Figure 5: CALU vs MKL dgetf2/dgetrf vs PLASMA, m=1e5, Intel 8-core."""
    t = _lu_tall(machine or intel8_mkl(), 100_000, ns)
    t.notes = [
        "Paper: CALU(Tr=8) best; 1.5-2x over MKL_dgetrf; beats PLASMA up to",
        "n<=300 (9.4x at n=10, 3.2x at n=200, 1.6x at 500, 1.1x at 1000).",
    ]
    return t


def fig6(machine: MachineModel | None = None, ns=TALL_NS) -> Table:
    """Figure 6: same as Fig 5 with m=1e6 (best CALU/dgetrf speedup 2.3x)."""
    t = _lu_tall(machine or intel8_mkl(), 1_000_000, ns)
    t.notes = [
        "Paper: speedup 2.3x vs MKL_dgetrf at n=500; 10x (Tr=8) and 8.3x",
        "(Tr=4) vs MKL_dgetf2 at n=100; 4x vs dgetf2 and 2x vs dgetrf at n=25;",
        "PLASMA overtakes CALU at n=1000.",
    ]
    return t


def fig7(machine: MachineModel | None = None, ns=TALL_NS) -> Table:
    """Figure 7: CALU vs ACML dgetrf vs PLASMA, m=1e5, AMD 16-core."""
    t = _lu_tall(machine or amd16_acml(), 100_000, ns, tr_values=(8, 16))
    t.notes = [
        "Paper: CALU(Tr=16) on average 5x faster than ACML_dgetrf and",
        "1.5x faster than PLASMA on this machine.",
    ]
    return t


# ----------------------------------------------------------------------
# Tables I and II — LU on square matrices
# ----------------------------------------------------------------------
def table1(machine: MachineModel | None = None, sizes=(1000, 2000, 3000, 4000, 5000, 10000)) -> Table:
    """Table I: LU GFLOP/s on square matrices, Intel 8-core, Tr in {1,2,4,8}."""
    mach = machine or intel8_mkl()
    cols = [("MKL_dgetrf", "mkl_getrf", {}), ("PLASMA_dgetrf", "plasma_getrf", {})]
    cols += [(f"CALU(Tr={t})", "calu", {"tr": t}) for t in (1, 2, 4, 8)]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_lu, rows, cols, mach)
    return Table(
        title=f"Table I: LU GFLOP/s, square matrices ({mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=[
            "Paper: MKL 38.4..61.4; PLASMA 17.8..48.3; CALU slower than MKL",
            "below 5000, CALU(Tr=2)=63.5 edges MKL=61.4 at 10000; CALU beats",
            "PLASMA for n > 3000.",
        ],
    )


def table2(machine: MachineModel | None = None, sizes=(1000, 2000, 3000, 4000, 5000)) -> Table:
    """Table II: LU GFLOP/s on square matrices, AMD 16-core, Tr in {1..16}."""
    mach = machine or amd16_acml()
    cols = [("ACML_dgetrf", "acml_getrf", {}), ("PLASMA_dgetrf", "plasma_getrf", {})]
    cols += [(f"CALU(Tr={t})", "calu", {"tr": t}) for t in (1, 2, 4, 8, 16)]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_lu, rows, cols, mach)
    return Table(
        title=f"Table II: LU GFLOP/s, square matrices ({mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=[
            "Paper: ACML wins for m=n<=2000, CALU wins for >=3000; CALU",
            "outperforms PLASMA at every size on this machine.",
        ],
    )


# ----------------------------------------------------------------------
# Figure 8 and Table III — QR
# ----------------------------------------------------------------------
def fig8(machine: MachineModel | None = None, ns=TALL_NS) -> Table:
    """Figure 8: TSQR/CAQR vs MKL dgeqr2/dgeqrf vs PLASMA, m=1e5, Intel."""
    mach = machine or intel8_mkl()
    m = 100_000
    cols = [
        ("MKL_dgeqr2", "mkl_geqr2", {}),
        ("MKL_dgeqrf", "mkl_geqrf", {}),
        ("PLASMA_dgeqrf", "plasma_geqrf", {}),
        ("TSQR(Tr=8)", "tsqr", {"tr": 8, "tree": TreeKind.BINARY}),
        ("CAQR(Tr=4)", "caqr", {"tr": 4, "tree": TreeKind.FLAT}),
    ]
    rows = [(str(n), m, n) for n in ns]
    values = _grid(simulate_qr, rows, cols, mach)
    return Table(
        title=f"Fig 8: QR GFLOP/s, m={m:.0e}, varying n ({mach.name} model)",
        row_header="n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        chart=True,
        notes=[
            "Paper: TSQR wins on tall-skinny — 5.3x vs MKL_dgeqrf and 3.6x vs",
            "PLASMA at n=200, 6.7x vs PLASMA at n=10; PLASMA overtakes TSQR at",
            "n=1000; CAQR ~1.6x over MKL_dgeqrf at n=500-1000 (20x vs dgeqr2).",
        ],
    )


def table3(machine: MachineModel | None = None, sizes=(1000, 2000, 3000, 4000, 5000)) -> Table:
    """Table III: QR GFLOP/s on square matrices, Intel 8-core, Tr in {1,2,4,8}."""
    mach = machine or intel8_mkl()
    cols = [("MKL_dgeqrf", "mkl_geqrf", {}), ("PLASMA_dgeqrf", "plasma_geqrf", {})]
    cols += [(f"CAQR(Tr={t})", "caqr", {"tr": t}) for t in (1, 2, 4, 8)]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_qr, rows, cols, mach)
    return Table(
        title=f"Table III: QR GFLOP/s, square matrices ({mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=["Paper: MKL more efficient than PLASMA, which beats CAQR."],
    )


# ----------------------------------------------------------------------
# Ablations (DESIGN.md section 5)
# ----------------------------------------------------------------------
def tree_ablation(machine: MachineModel | None = None, m: int = 100_000, ns=(50, 100, 200, 500)) -> Table:
    """Reduction-tree shapes for TSQR: binary vs flat vs hybrid."""
    mach = machine or intel8_mkl()
    cols = [
        ("binary", "tsqr", {"tr": 8, "tree": TreeKind.BINARY}),
        ("flat", "tsqr", {"tr": 8, "tree": TreeKind.FLAT}),
        ("hybrid", "tsqr", {"tr": 8, "tree": TreeKind.HYBRID}),
    ]
    rows = [(str(n), m, n) for n in ns]
    values = _grid(simulate_qr, rows, cols, mach)
    return Table(
        title=f"TSQR reduction-tree ablation, m={m:.0e} ({mach.name} model)",
        row_header="n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=[
            "Paper finds the height-1 (flat) tree 'an efficient alternative' on",
            "shared memory; hybrid is the Hadri et al. shape the conclusion cites.",
        ],
    )


def lookahead_ablation(machine: MachineModel | None = None, sizes=(2000, 5000)) -> Table:
    """Scheduler look-ahead depth for square CALU: 0 vs 1 (paper) vs full."""
    mach = machine or intel8_mkl()
    cols = [
        ("lookahead=0", "calu", {"tr": 4, "lookahead": 0}),
        ("lookahead=1", "calu", {"tr": 4, "lookahead": 1}),
        ("lookahead=inf", "calu", {"tr": 4, "lookahead": -1}),
    ]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_lu, rows, cols, mach)
    return Table(
        title=f"CALU look-ahead ablation, square matrices ({mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=["The paper uses look-ahead of 1 to keep the panel off the idle path."],
    )


def lookahead_depth_ablation(n: int = 256, b: int = 32, tr: int = 4, depths=(0, 1, 2)) -> Table:
    """Streaming look-ahead depth ``d``: numeric runtime vs working set.

    Unlike :func:`lookahead_ablation` (static priorities on the
    simulated machine), this sweeps the *process default*
    (:func:`repro.core.priorities.lookahead_depth`) through real
    threaded CALU runs.  The same knob widens the priority boost window
    and bounds how many panel windows the streaming
    :class:`~repro.runtime.program.GraphProgram` keeps emitted ahead of
    the lowest incomplete one, so larger ``d`` trades scheduler working
    set (peak live tasks) for pipelining slack.
    """
    import time

    from repro.core.calu import calu
    from repro.core.priorities import lookahead_depth

    A = np.random.default_rng(7).standard_normal((n, n))
    flops = lu_flops(n, n)
    cols = ["seconds", "GFLOP/s", "peak live tasks"]
    values = np.zeros((len(depths), len(cols)))
    calu(A, b=b, tr=tr)  # warm caches and the thread machinery
    for i, d in enumerate(depths):
        prev = lookahead_depth(d)
        try:
            best, peak = float("inf"), 0
            for _ in range(3):
                t0 = time.perf_counter()
                f = calu(A, b=b, tr=tr)
                dt = time.perf_counter() - t0
                if dt < best:
                    best, peak = dt, f.trace.stats["peak_live_tasks"]
        finally:
            lookahead_depth(prev)
        values[i] = (best, flops / best / 1e9, float(peak))
    return Table(
        title=f"CALU streaming look-ahead depth, m=n={n}, b={b}, Tr={tr} (numeric, threaded)",
        row_header="depth",
        row_labels=[f"d={d}" for d in depths],
        col_labels=cols,
        values=values,
        notes=[
            "d bounds both the priority boost window and the emitted-ahead",
            "panel windows of the streaming program: peak live tasks grows",
            "with d while the factors stay bitwise identical.",
        ],
    )


def overhead_ablation(machine: MachineModel | None = None, n: int = 2000, overheads=(0.0, 5.0, 20.0, 80.0, 320.0)) -> Table:
    """Scheduling-overhead sensitivity (the paper's 'too many tasks' caveat)."""
    base = machine or intel8_mkl()
    cols = [("CALU(Tr=4,b=50)", "calu", {"tr": 4, "b": 50}), ("CALU(Tr=4,b=100)", "calu", {"tr": 4, "b": 100}), ("CALU(Tr=4,b=200)", "calu", {"tr": 4, "b": 200})]
    rows = []
    values = np.zeros((len(overheads), len(cols)))
    for i, ov in enumerate(overheads):
        mach = intel8_mkl(task_overhead_us=ov) if base.name.startswith("intel") else base
        rows.append(f"{ov:.0f}us")
        for j, (_, method, kw) in enumerate(cols):
            values[i, j] = simulate_lu(method, n, n, mach, **kw).gflops
    return Table(
        title=f"CALU scheduling-overhead sensitivity, m=n={n} (intel8 model)",
        row_header="overhead",
        row_labels=rows,
        col_labels=[c[0] for c in cols],
        values=values,
        notes=[
            "Paper: 'for a too large number of tasks, the time spent in the",
            "scheduling can become significant' — smaller b means more tasks,",
            "so it degrades faster as the per-task overhead grows.",
        ],
    )


def stability(sizes=(128, 256, 512), trials: int = 3, seed: int = 0) -> Table:
    """Growth factors: CALU tournament pivoting vs GEPP vs incremental pivoting.

    Numeric (not simulated): validates the paper's stability claim for
    ca-pivoting against PLASMA-style incremental pivoting.
    """
    import scipy.linalg

    from repro.analysis.errors import growth_factor
    from repro.baselines.tiled_lu import tiled_lu
    from repro.core.calu import calu

    rng = np.random.default_rng(seed)
    rows = [str(s) for s in sizes]
    cols = ["GEPP", "CALU(Tr=8)", "tiled(nb=n/16)"]
    values = np.zeros((len(sizes), len(cols)))
    for i, nsz in enumerate(sizes):
        g = np.zeros(len(cols))
        for _ in range(trials):
            A = rng.standard_normal((nsz, nsz))
            _, _, U = scipy.linalg.lu(A)
            g[0] += growth_factor(A, U)
            f = calu(A, b=max(8, nsz // 8), tr=8)
            g[1] += growth_factor(A, f.U)
            t = tiled_lu(A, nb=max(8, nsz // 16))
            g[2] += growth_factor(A, t.U)
        values[i] = g / trials
    return Table(
        title="Element growth |U|max/|A|max (mean): ca-pivoting is GEPP-like,",
        row_header="n",
        row_labels=rows,
        col_labels=cols,
        values=values,
        notes=["incremental pivoting (PLASMA tiles) grows with the tile count."],
    )


@dataclass
class DagFigure:
    """The paper's Figures 1-2: the CALU task DAG and a step schedule."""

    dot: str
    steps: list[list[str]]
    kind_counts: dict[str, int]

    def format(self) -> str:
        lines = [
            "Fig 1: CALU task dependency graph, 4x4 blocks, Tr=2",
            f"tasks by kind: {self.kind_counts}",
            "(Graphviz source below; paper colours: P red, L yellow, U blue, S green)",
            "",
            self.dot,
            "",
            "Fig 2: step schedule on 4 threads (tasks executed concurrently per step)",
        ]
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  step {i:2d}: " + "  ".join(step))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def fig1_fig2(b: int = 100, tr: int = 2, n_threads: int = 4) -> DagFigure:
    """Figures 1-2: the task DAG of CALU on a 4x4-block matrix and its
    4-thread step schedule (paper Section III)."""
    from repro.core.calu import build_calu_graph
    from repro.core.layout import BlockLayout

    layout = BlockLayout(4 * b, 4 * b, b)
    graph, _ = build_calu_graph(layout, tr)
    steps = [
        [graph.tasks[t].name for t in step] for step in graph.step_schedule(n_threads)
    ]
    return DagFigure(dot=graph.to_dot(), steps=steps, kind_counts=graph.count_by_kind())


def bb_extension(machine: MachineModel | None = None, sizes=(2000, 5000), b: int = 100) -> Table:
    """The paper's Section V extension: trailing-update block size B > b.

    Larger B reduces the task count (cheaper scheduling, bigger BLAS3
    updates) at the cost of look-ahead granularity.
    """
    mach = machine or intel8_mkl()
    widths = (b, 2 * b, 4 * b, 8 * b)
    cols = [(f"B={w}", "calu", {"tr": 4, "b": b, "update_width": w}) for w in widths]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_lu, rows, cols, mach)
    return Table(
        title=f"CALU with trailing-update width B (b={b}, {mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=[
            "Paper Section V: 'we can optimize trailing submatrix updating time",
            "by reducing the number of tasks and by better exploiting BLAS3'.",
        ],
    )


def hybrid_update(machine: MachineModel | None = None, sizes=(1000, 2000, 5000)) -> Table:
    """The paper's closing conjecture: TSLU panel + vendor-quality updates.

    'Combining a fast panel factorization as in CALU with a highly
    optimized update of the trailing matrix as in MKL_dgetrf can lead
    to a more efficient algorithm for square matrices.'
    """
    mach = machine or intel8_mkl()
    cols = [
        ("MKL_dgetrf", "mkl_getrf", {}),
        ("CALU(Tr=4)", "calu", {"tr": 4}),
        ("hybrid(Tr=4)", "calu_hybrid", {"tr": 4}),
    ]
    rows = [(str(n), n, n) for n in sizes]
    values = _grid(simulate_lu, rows, cols, mach)
    return Table(
        title=f"Hybrid CALU panel + MKL-quality updates ({mach.name} model)",
        row_header="m=n",
        row_labels=[r[0] for r in rows],
        col_labels=[c[0] for c in cols],
        values=values,
        notes=["The hybrid should dominate plain CALU and approach/beat MKL."],
    )


def scaling(machine: MachineModel | None = None, m: int = 100_000, n: int = 500, cores=(1, 2, 4, 8, 16)) -> Table:
    """Strong scaling on tall-skinny LU: CALU vs the fork-join vendor model.

    Not a paper artifact per se, but the mechanism behind Figures 5-7:
    the vendor library's serial panel bounds its scaling (Amdahl), while
    the tournament panel keeps scaling with the cores.
    """
    base = machine or intel8_mkl()
    cols = ["MKL_dgetrf", "CALU(Tr=cores)"]
    values = np.zeros((len(cores), 2))
    for i, c in enumerate(cores):
        mach = intel8_mkl(cores=c, name=f"intel{c}") if base.name.startswith("intel") else base
        values[i, 0] = simulate_lu("mkl_getrf", m, n, mach).gflops
        values[i, 1] = simulate_lu("calu", m, n, mach, tr=max(1, c)).gflops
    return Table(
        title=f"Strong scaling, LU of {m}x{n} (intel model, cores swept)",
        row_header="cores",
        row_labels=[str(c) for c in cores],
        col_labels=cols,
        values=values,
        chart=True,
        notes=["The serial vendor panel caps MKL's scaling; TSLU keeps scaling."],
    )


EXPERIMENTS = {
    "fig1_fig2": fig1_fig2,
    "fig3_fig4": fig3_fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "tree_ablation": tree_ablation,
    "lookahead_ablation": lookahead_ablation,
    "lookahead_depth_ablation": lookahead_depth_ablation,
    "overhead_ablation": overhead_ablation,
    "stability": stability,
    "bb_extension": bb_extension,
    "hybrid_update": hybrid_update,
    "scaling": scaling,
}


def run_all(names=None, echo=print) -> dict[str, object]:
    """Run the named experiments (default: all); returns their results."""
    out = {}
    for name in names or EXPERIMENTS:
        result = EXPERIMENTS[name]()
        out[name] = result
        echo(f"\n=== {name} ===")
        echo(result.format())
    return out
