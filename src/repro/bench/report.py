"""Automated reproduction report.

Runs (or takes) the experiment results, checks the paper's qualitative
claims against them, and emits a Markdown report with a pass/fail per
claim — the machine-checkable core of EXPERIMENTS.md.

Usage::

    python -m repro.bench all --report report.md
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.tables import Table

__all__ = ["Claim", "CLAIMS", "check_claims", "generate_report"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper about one experiment."""

    experiment: str
    text: str
    check: Callable[[object], tuple[bool, str]]


def _ratio(t: Table, num: str, den: str, row: str) -> float:
    return t.cell(row, num) / t.cell(row, den)


def _mk(experiment: str, text: str):
    def wrap(fn):
        CLAIMS.append(Claim(experiment, text, fn))
        return fn

    return wrap


CLAIMS: list[Claim] = []


@_mk("fig3_fig4", "Tr=1 leaves cores idle during the panel; Tr=8 removes the idle time")
def _c_fig34(r):
    ok = r.idle_tr1 > 0.3 and r.idle_tr8 < 0.10
    return ok, f"idle {100 * r.idle_tr1:.0f}% -> {100 * r.idle_tr8:.1f}%"


@_mk("fig5", "CALU(Tr=8) beats MKL_dgetrf across the n sweep (paper: 1.5-2x)")
def _c_fig5_mkl(t):
    ratios = t.ratio("CALU(Tr=8)", "MKL_dgetrf")
    return bool((ratios > 1.0).all()), f"ratios {ratios.min():.1f}-{ratios.max():.1f}x"


@_mk("fig5", "CALU/PLASMA advantage shrinks as n grows (9.4x@10 -> 1.1x@1000)")
def _c_fig5_plasma(t):
    r = t.ratio("CALU(Tr=8)", "PLASMA_dgetrf")
    return bool(r[0] > 3.0 and r[-1] < 2.0), f"{r[0]:.1f}x at n=10, {r[-1]:.2f}x at n=1000"


@_mk("fig6", "~2.3x over MKL_dgetrf at n=500 and ~10x over MKL_dgetf2 at n=100")
def _c_fig6(t):
    a = _ratio(t, "CALU(Tr=8)", "MKL_dgetrf", "500")
    b = _ratio(t, "CALU(Tr=8)", "MKL_dgetf2", "100")
    return bool(1.7 < a < 3.0 and 6.0 < b < 14.0), f"{a:.2f}x (2.3), {b:.1f}x (10)"


@_mk("fig7", "CALU(Tr=16) ~5x over ACML_dgetrf on average, ahead of PLASMA")
def _c_fig7(t):
    avg = float(np.mean(t.ratio("CALU(Tr=16)", "ACML_dgetrf")))
    ahead = bool((t.column("CALU(Tr=16)") > t.column("PLASMA_dgetrf")).all())
    return bool(3.0 < avg < 7.0 and ahead), f"avg {avg:.1f}x vs ACML; ahead of PLASMA: {ahead}"


@_mk("fig8", "TSQR ~5.3x over MKL_dgeqrf at n=200; PLASMA catches TSQR by n=1000")
def _c_fig8(t):
    a = _ratio(t, "TSQR(Tr=8)", "MKL_dgeqrf", "200")
    catch = t.cell("1000", "PLASMA_dgeqrf") > 0.85 * t.cell("1000", "TSQR(Tr=8)")
    return bool(3.5 < a < 7.0 and catch), f"{a:.1f}x at n=200; caught at n=1000: {catch}"


@_mk("table1", "MKL wins small squares; CALU(Tr=2) reaches MKL at 10^4; CALU > PLASMA large")
def _c_table1(t):
    small = t.cell("1000", "MKL_dgetrf") > t.cell("1000", "CALU(Tr=4)")
    cross = t.cell("10000", "CALU(Tr=2)") >= 0.99 * t.cell("10000", "MKL_dgetrf")
    plasma = t.cell("5000", "CALU(Tr=4)") > t.cell("5000", "PLASMA_dgetrf")
    return bool(small and cross and plasma), f"small={small}, cross={cross}, >plasma={plasma}"


@_mk("table2", "ACML wins at 1000-2000; CALU wins from 3000; CALU >= PLASMA")
def _c_table2(t):
    best = {n: max(t.cell(n, f"CALU(Tr={tr})") for tr in (1, 2, 4, 8, 16)) for n in t.row_labels}
    a = t.cell("1000", "ACML_dgetrf") > best["1000"]
    b = all(best[n] > t.cell(n, "ACML_dgetrf") for n in ("3000", "4000", "5000"))
    c = all(best[n] > 0.95 * t.cell(n, "PLASMA_dgetrf") for n in t.row_labels)
    return bool(a and b and c), f"small={a}, large={b}, >=plasma={c}"


@_mk("table3", "on square QR, MKL leads CAQR and the gap narrows with size")
def _c_table3(t):
    best = {n: max(t.cell(n, f"CAQR(Tr={tr})") for tr in (1, 2, 4, 8)) for n in t.row_labels}
    lead = t.cell("1000", "MKL_dgeqrf") > best["1000"]
    narrow = (t.cell("1000", "MKL_dgeqrf") / best["1000"]) > (
        t.cell("5000", "MKL_dgeqrf") / best["5000"]
    )
    return bool(lead and narrow), f"lead={lead}, narrowing={narrow}"


@_mk("stability", "tournament pivoting is GEPP-like; incremental pivoting degrades")
def _c_stability(t):
    ok = all(
        t.cell(n, "CALU(Tr=8)") < 5.0 * t.cell(n, "GEPP")
        and t.cell(n, "tiled(nb=n/16)") > t.cell(n, "CALU(Tr=8)")
        for n in t.row_labels
    )
    return ok, "growth ordering GEPP ~ CALU < incremental holds"


@_mk("hybrid_update", "TSLU panel + vendor updates beats pure MKL at m=n=5000")
def _c_hybrid(t):
    ok = t.cell("5000", "hybrid(Tr=4)") > t.cell("5000", "MKL_dgetrf")
    return bool(ok), f"hybrid {t.cell('5000', 'hybrid(Tr=4)'):.1f} vs MKL {t.cell('5000', 'MKL_dgetrf'):.1f}"


def check_claims(results: dict[str, object]) -> list[tuple[Claim, bool, str]]:
    """Evaluate every claim whose experiment is present in *results*."""
    out = []
    for claim in CLAIMS:
        if claim.experiment in results:
            ok, detail = claim.check(results[claim.experiment])
            out.append((claim, ok, detail))
    return out


def generate_report(results: dict[str, object]) -> str:
    """Markdown reproduction report: claim checklist + raw outputs."""
    checks = check_claims(results)
    n_ok = sum(1 for _, ok, _ in checks if ok)
    lines = [
        "# Reproduction report",
        "",
        "Automated check of the paper's claims against this run's simulated",
        "results (Donfack-Grigori-Gupta, IPDPS 2010).",
        "",
        f"**{n_ok}/{len(checks)} claims hold.**",
        "",
        "| experiment | claim | result | detail |",
        "|---|---|---|---|",
    ]
    for claim, ok, detail in checks:
        mark = "PASS" if ok else "FAIL"
        lines.append(f"| {claim.experiment} | {claim.text} | {mark} | {detail} |")
    lines.append("")
    lines.append("## Raw outputs")
    for name, result in results.items():
        lines.append("")
        lines.append(f"### {name}")
        lines.append("")
        lines.append("```")
        lines.append(result.format())
        lines.append("```")
    return "\n".join(lines)
