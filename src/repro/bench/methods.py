"""Uniform method runners over the simulated machine.

Each method name maps to a task-graph builder; ``simulate_lu`` /
``simulate_qr`` build the (symbolic) graph for the requested problem
size, replay it on the machine model, and report GFLOP/s using the
*standard* operation counts — exactly how the paper normalizes: the
redundant flops of communication-avoiding algorithms cost time but do
not count as useful work.

LU methods: ``calu``, ``mkl_getrf``, ``acml_getrf``, ``mkl_getf2``,
``plasma_getrf``.
QR methods: ``caqr`` (which is TSQR when ``n <= b``), ``mkl_geqrf``,
``mkl_geqr2``, ``plasma_geqrf``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.flops import lu_flops, qr_flops
from repro.baselines.lapack_lu import build_getf2_graph, build_getrf_graph
from repro.baselines.lapack_qr import build_geqr2_graph, build_geqrf_graph
from repro.baselines.tiled_lu import build_tiled_lu_graph
from repro.baselines.tiled_qr import build_tiled_qr_graph
from repro.core.calu import build_calu_graph
from repro.core.caqr import build_caqr_graph
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.machine.model import MachineModel
from repro.runtime.graph import TaskGraph
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.trace import Trace

__all__ = ["SimResult", "lu_graph", "qr_graph", "simulate_lu", "simulate_qr"]

# Vendor-library blocked algorithms use their own internal panel widths
# (MKL-era nb); fixed here, machine-independent.  QR uses a narrower
# panel than LU, as LAPACK-era dgeqrf did.
VENDOR_PANEL = 128
VENDOR_PANEL_QR = 96
PLASMA_NB = 200


@dataclass
class SimResult:
    """One simulated run: rate plus the trace/graph for inspection."""

    method: str
    m: int
    n: int
    gflops: float
    trace: Trace
    graph: TaskGraph


def lu_graph(
    method: str,
    m: int,
    n: int,
    *,
    b: int | None = None,
    tr: int = 8,
    tree: TreeKind = TreeKind.BINARY,
    lookahead: int = 1,
    nb: int = PLASMA_NB,
    row_chunks: int = 8,
    update_width: int | None = None,
) -> TaskGraph:
    """Build the (symbolic) LU task graph for *method*.

    ``calu_hybrid`` is the paper's closing conjecture: CALU's TSLU
    panel combined with vendor-quality (MKL-personality) trailing
    updates.  ``update_width`` activates the B > b extension of the
    paper's Section V for the ``calu*`` methods.
    """
    if method in ("calu", "calu_hybrid"):
        bb = b if b is not None else min(100, n)
        layout = BlockLayout(m, n, bb)
        graph, _ = build_calu_graph(
            layout,
            tr,
            tree,
            A=None,
            lookahead=lookahead,
            update_width=update_width,
            update_library="mkl" if method == "calu_hybrid" else None,
        )
        return graph
    if method == "mkl_getrf":
        return build_getrf_graph(
            m, n, b=min(VENDOR_PANEL, n), row_chunks=row_chunks, library="mkl", lookahead=lookahead
        )
    if method == "acml_getrf":
        return build_getrf_graph(
            m, n, b=min(VENDOR_PANEL, n), row_chunks=row_chunks, library="acml", lookahead=lookahead
        )
    if method == "mkl_getf2":
        return build_getf2_graph(m, n, library="mkl")
    if method == "plasma_getrf":
        return build_tiled_lu_graph(m, n, nb=nb, library="plasma", lookahead=lookahead)
    raise ValueError(f"unknown LU method {method!r}")


def qr_graph(
    method: str,
    m: int,
    n: int,
    *,
    b: int | None = None,
    tr: int = 4,
    tree: TreeKind = TreeKind.FLAT,
    lookahead: int = 1,
    nb: int = PLASMA_NB,
) -> TaskGraph:
    """Build the (symbolic) QR task graph for *method*."""
    if method in ("caqr", "tsqr"):
        bb = b if b is not None else min(100, n)
        if method == "tsqr":
            bb = n  # single panel: the pure TSQR of Figure 8
        layout = BlockLayout(m, n, bb)
        graph, _ = build_caqr_graph(layout, tr, tree, A=None, lookahead=lookahead)
        return graph
    if method == "mkl_geqrf":
        return build_geqrf_graph(m, n, b=min(VENDOR_PANEL_QR, n), library="mkl", lookahead=lookahead)
    if method == "acml_geqrf":
        return build_geqrf_graph(m, n, b=min(VENDOR_PANEL_QR, n), library="acml", lookahead=lookahead)
    if method == "mkl_geqr2":
        return build_geqr2_graph(m, n, library="mkl")
    if method == "plasma_geqrf":
        return build_tiled_qr_graph(m, n, nb=nb, library="plasma", lookahead=lookahead)
    raise ValueError(f"unknown QR method {method!r}")


def simulate_lu(method: str, m: int, n: int, machine: MachineModel, **kw) -> SimResult:
    """Simulate one LU factorization; GFLOP/s uses the standard count."""
    graph = lu_graph(method, m, n, **kw)
    trace = SimulatedExecutor(machine).run(graph)
    return SimResult(
        method=method,
        m=m,
        n=n,
        gflops=trace.gflops(lu_flops(m, n)),
        trace=trace,
        graph=graph,
    )


def simulate_qr(method: str, m: int, n: int, machine: MachineModel, **kw) -> SimResult:
    """Simulate one QR factorization; GFLOP/s uses the standard count."""
    graph = qr_graph(method, m, n, **kw)
    trace = SimulatedExecutor(machine).run(graph)
    return SimResult(
        method=method,
        m=m,
        n=n,
        gflops=trace.gflops(qr_flops(m, n)),
        trace=trace,
        graph=graph,
    )
