"""Workload generators for tests, examples and numeric benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["random_matrix", "ill_conditioned", "near_rank_deficient", "vandermonde_ls"]


def random_matrix(m: int, n: int, seed: int = 0) -> np.ndarray:
    """Standard Gaussian ``m x n`` matrix (the paper's test matrices)."""
    return np.random.default_rng(seed).standard_normal((m, n))


def ill_conditioned(m: int, n: int, cond: float = 1e10, seed: int = 0) -> np.ndarray:
    """Matrix with prescribed 2-norm condition number via an SVD recipe."""
    rng = np.random.default_rng(seed)
    r = min(m, n)
    U, _ = np.linalg.qr(rng.standard_normal((m, r)))
    V, _ = np.linalg.qr(rng.standard_normal((n, r)))
    s = np.logspace(0.0, -np.log10(cond), r)
    return (U * s) @ V.T


def near_rank_deficient(m: int, n: int, rank: int, noise: float = 1e-12, seed: int = 0) -> np.ndarray:
    """Rank-``rank`` matrix plus tiny noise — a pivoting stress test."""
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    return B + noise * rng.standard_normal((m, n))


def vandermonde_ls(m: int, degree: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A tall-skinny least-squares problem (polynomial fitting).

    Returns ``(A, rhs, coeffs)`` with ``A`` an ``m x (degree+1)``
    Vandermonde matrix on ``[-1, 1]``, ``rhs = A @ coeffs + noise``.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(-1.0, 1.0, m)
    A = np.vander(t, degree + 1, increasing=True)
    coeffs = rng.standard_normal(degree + 1)
    rhs = A @ coeffs + 1e-8 * rng.standard_normal(m)
    return A, rhs, coeffs
