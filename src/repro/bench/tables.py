"""Result containers and text formatting for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Table", "Series"]


@dataclass
class Series:
    """One line of a figure: ``label`` over ``x`` with values ``y``."""

    label: str
    x: list
    y: list[float]


@dataclass
class Table:
    """A rows-by-columns result grid with labels, printable as text.

    ``values[i, j]`` is the measurement for ``row_labels[i]`` /
    ``col_labels[j]`` — GFLOP/s unless the driver says otherwise.
    """

    title: str
    row_header: str
    row_labels: list[str]
    col_labels: list[str]
    values: np.ndarray
    notes: list[str] = field(default_factory=list)
    # Figure-type results also render an ASCII line chart in format().
    chart: bool = False

    def column(self, label: str) -> np.ndarray:
        return self.values[:, self.col_labels.index(label)]

    def cell(self, row: str, col: str) -> float:
        return float(self.values[self.row_labels.index(row), self.col_labels.index(col)])

    def ratio(self, num_col: str, den_col: str) -> np.ndarray:
        """Speedup column: ``num / den`` per row."""
        return self.column(num_col) / self.column(den_col)

    def format(self, fmt: str = "{:8.2f}") -> str:
        widths = [max(10, len(c) + 2) for c in self.col_labels]
        head = f"{self.row_header:>10}" + "".join(
            f"{c:>{w}}" for c, w in zip(self.col_labels, widths, strict=True)
        )
        lines = [self.title, "-" * len(head), head, "-" * len(head)]
        for i, rl in enumerate(self.row_labels):
            cells = "".join(
                f"{fmt.format(self.values[i, j]):>{w}}" for j, w in enumerate(widths)
            )
            lines.append(f"{rl:>10}" + cells)
        lines.append("-" * len(head))
        lines.extend(self.notes)
        if self.chart:
            from repro.bench.plots import ascii_chart  # local: avoids an import cycle

            lines.append("")
            lines.append(ascii_chart(self))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated export: header row, then one row per label."""
        lines = [",".join([self.row_header, *self.col_labels])]
        for i, rl in enumerate(self.row_labels):
            lines.append(",".join([rl, *(f"{v:.6g}" for v in self.values[i])]))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()
