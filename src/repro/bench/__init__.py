"""Benchmark harness: regenerates every table and figure of the paper.

``workloads`` — matrix generators; ``methods`` — uniform runners that
build a method's task graph and execute it on a simulated machine;
``tables`` — result containers/formatters; ``experiments`` — one driver
per paper artifact (Figures 3-8, Tables I-III) plus the ablations.

Run from the command line::

    python -m repro.bench fig5
    python -m repro.bench all
"""

from repro.bench.methods import simulate_lu, simulate_qr
from repro.bench.tables import Series, Table
from repro.bench.workloads import ill_conditioned, random_matrix

__all__ = ["Series", "Table", "ill_conditioned", "random_matrix", "simulate_lu", "simulate_qr"]
