"""ASCII line charts for the figure-type experiment results.

The paper's Figures 5-8 are GFLOP/s-vs-n line plots; this renderer
turns a :class:`~repro.bench.tables.Table` into a terminal chart so a
``python -m repro.bench fig5`` run shows the *shape* at a glance —
which series wins, and where the crossovers fall — without any plotting
dependency.
"""

from __future__ import annotations

import math

from repro.bench.tables import Table

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(table: Table, width: int = 72, height: int = 20, logy: bool = False) -> str:
    """Render the table's columns as series over its rows.

    Rows become x positions (evenly spaced, labelled with the row
    labels); each column becomes a series with its own marker.  Set
    ``logy`` for a log10 y-axis.
    """
    n_rows, n_cols = table.values.shape
    if n_rows == 0 or n_cols == 0:
        return "(empty chart)"

    def ty(v: float) -> float:
        if logy:
            return math.log10(max(v, 1e-12))
        return v

    ys = [[ty(table.values[i, j]) for i in range(n_rows)] for j in range(n_cols)]
    lo = min(min(col) for col in ys)
    hi = max(max(col) for col in ys)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    xs = [int(round(i * (width - 1) / max(n_rows - 1, 1))) for i in range(n_rows)]
    for j in range(n_cols):
        marker = _MARKERS[j % len(_MARKERS)]
        for i in range(n_rows):
            row = height - 1 - int(round((ys[j][i] - lo) / (hi - lo) * (height - 1)))
            col = xs[i]
            # Later series win ties; overlaps show the most recent marker.
            grid[row][col] = marker

    def ylab(frac: float) -> str:
        v = lo + frac * (hi - lo)
        return f"{10 ** v:8.2f}" if logy else f"{v:8.1f}"

    lines = [table.title]
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        label = ylab(frac) if r % max(1, height // 5) == 0 or r == height - 1 else " " * 8
        lines.append(f"{label} |{''.join(row)}")
    # x axis with row labels spread along it.
    axis = [" "] * width
    for i, x in enumerate(xs):
        lbl = table.row_labels[i]
        start = min(x, width - len(lbl))
        for k, ch in enumerate(lbl):
            axis[start + k] = ch
    lines.append(" " * 8 + " " + "-" * width)
    lines.append(" " * 8 + " " + "".join(axis))
    legend = "  ".join(
        f"{_MARKERS[j % len(_MARKERS)]}={table.col_labels[j]}" for j in range(n_cols)
    )
    lines.append("series: " + legend)
    if logy:
        lines.append("(log y-axis)")
    return "\n".join(lines)
