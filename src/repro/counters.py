"""Global operation counters.

The paper argues about *communication* (number of synchronizations and
volume of data moved) as much as about flops.  Every kernel in
:mod:`repro.kernels` reports the floating-point operations it performs,
and the runtime reports synchronizations (task-graph edges crossed
between workers) and words moved, into the :class:`Counters` object
installed by :func:`counting`.

Counting is optional and costs one dictionary lookup per kernel call
when disabled.  Counters are shared between threads (the threaded
executor's workers all report into the same object), so updates are
guarded by a lock.

Example
-------
>>> import numpy as np
>>> from repro.counters import counting
>>> from repro.kernels.lu import getf2
>>> with counting() as c:
...     _ = getf2(np.random.default_rng(0).standard_normal((64, 32)))
>>> c.flops > 0
True
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.runtime.sync import make_lock

__all__ = [
    "Counters",
    "counting",
    "current_counters",
    "add_flops",
    "add_sync",
    "add_words",
    "add_roundtrip",
    "add_store_read",
    "add_store_write",
]


@dataclass
class Counters:
    """Accumulator for flops, synchronizations and data volume.

    Attributes
    ----------
    flops:
        Floating-point operations performed by the kernels (a fused
        multiply-add counts as two flops, matching LAPACK conventions).
    syncs:
        Synchronization events.  The runtime counts one per task-graph
        edge whose endpoints ran on different workers/cores; reduction
        trees therefore contribute ``O(log2 Tr)`` per panel with a
        binary tree and ``O(1)`` with a flat tree, the paper's claim.
    words:
        Words (double-precision elements) moved between tasks, i.e. the
        communication volume across task boundaries.
    comparisons:
        Pivot-search comparisons (partial pivoting / tournament).
    roundtrips:
        Worker pipe round-trips (one per descriptor batch shipped by
        the process backend's :class:`~repro.runtime.process._WorkerPool`).
        Task fusion batches many op descriptors per round-trip, so this
        is the dispatch-overhead number the fusion benchmarks gate on.
    store_read_bytes / store_write_bytes:
        Bytes explicitly transferred between fast memory and a
        :class:`~repro.runtime.tilestore.TileStore` (slow memory): every
        ``load``/``store`` on a tile store reports here.  This is the
        measured counterpart of :mod:`repro.analysis.io_model`'s
        predicted slow-memory traffic, gated by
        ``benchmarks/bench_outofcore.py``.
    kernel_calls:
        Per-kernel-name invocation counts.
    """

    flops: int = 0
    syncs: int = 0
    words: int = 0
    comparisons: int = 0
    roundtrips: int = 0
    store_read_bytes: int = 0
    store_write_bytes: int = 0
    kernel_calls: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: make_lock("counters.counters"), repr=False, compare=False
    )

    def add_flops(self, n: int) -> None:
        with self._lock:
            self.flops += int(n)

    def add_sync(self, n: int = 1) -> None:
        with self._lock:
            self.syncs += int(n)

    def add_words(self, n: int) -> None:
        with self._lock:
            self.words += int(n)

    def add_comparisons(self, n: int) -> None:
        with self._lock:
            self.comparisons += int(n)

    def add_roundtrip(self, n: int = 1) -> None:
        with self._lock:
            self.roundtrips += int(n)

    def add_store_read(self, nbytes: int) -> None:
        with self._lock:
            self.store_read_bytes += int(nbytes)

    def add_store_write(self, nbytes: int) -> None:
        with self._lock:
            self.store_write_bytes += int(nbytes)

    def merge(self, snapshot: dict[str, int]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. shipped back from a worker
        process) into this accumulator."""
        with self._lock:
            self.flops += int(snapshot.get("flops", 0))
            self.syncs += int(snapshot.get("syncs", 0))
            self.words += int(snapshot.get("words", 0))
            self.comparisons += int(snapshot.get("comparisons", 0))
            self.store_read_bytes += int(snapshot.get("store_read_bytes", 0))
            self.store_write_bytes += int(snapshot.get("store_write_bytes", 0))
            # roundtrips are counted on the parent side of the pipe only.

    def add_call(self, kernel: str) -> None:
        with self._lock:
            self.kernel_calls[kernel] = self.kernel_calls.get(kernel, 0) + 1

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the scalar counters."""
        with self._lock:
            return {
                "flops": self.flops,
                "syncs": self.syncs,
                "words": self.words,
                "comparisons": self.comparisons,
                "roundtrips": self.roundtrips,
                "store_read_bytes": self.store_read_bytes,
                "store_write_bytes": self.store_write_bytes,
            }

    def reset(self) -> None:
        with self._lock:
            self.flops = 0
            self.syncs = 0
            self.words = 0
            self.comparisons = 0
            self.roundtrips = 0
            self.store_read_bytes = 0
            self.store_write_bytes = 0
            self.kernel_calls.clear()


# A single module-global slot, not thread-local: the threaded executor's
# workers must all see the counter installed by the coordinating thread.
_active: list[Counters] = []
_active_lock = make_lock("counters.active")


def current_counters() -> Counters | None:
    """Return the innermost active :class:`Counters`, or ``None``."""
    # Reading the last element is atomic under the GIL; taking the lock
    # here would serialize every kernel call for no benefit.
    return _active[-1] if _active else None


@contextmanager
def counting(counters: Counters | None = None) -> Iterator[Counters]:
    """Install *counters* (or a fresh object) as the active accumulator."""
    c = counters if counters is not None else Counters()
    with _active_lock:
        _active.append(c)
    try:
        yield c
    finally:
        with _active_lock:
            _active.remove(c)


def add_flops(n: int) -> None:
    """Report *n* flops to the active counter, if any."""
    c = current_counters()
    if c is not None:
        c.add_flops(n)


def add_sync(n: int = 1) -> None:
    """Report *n* synchronization events to the active counter, if any."""
    c = current_counters()
    if c is not None:
        c.add_sync(n)


def add_words(n: int) -> None:
    """Report *n* words of inter-task traffic to the active counter."""
    c = current_counters()
    if c is not None:
        c.add_words(n)


def add_comparisons(n: int) -> None:
    """Report *n* pivot-search comparisons to the active counter."""
    c = current_counters()
    if c is not None:
        c.add_comparisons(n)


def add_roundtrip(n: int = 1) -> None:
    """Report *n* worker pipe round-trips to the active counter."""
    c = current_counters()
    if c is not None:
        c.add_roundtrip(n)


def add_store_read(nbytes: int) -> None:
    """Report *nbytes* read from a tile store (slow -> fast memory)."""
    c = current_counters()
    if c is not None:
        c.add_store_read(nbytes)


def add_store_write(nbytes: int) -> None:
    """Report *nbytes* written to a tile store (fast -> slow memory)."""
    c = current_counters()
    if c is not None:
        c.add_store_write(nbytes)


def add_call(kernel: str) -> None:
    """Report one invocation of *kernel* to the active counter."""
    c = current_counters()
    if c is not None:
        c.add_call(kernel)
