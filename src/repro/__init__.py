"""repro — Communication-avoiding LU and QR factorizations for multicore.

Reproduction of S. Donfack, L. Grigori, A. K. Gupta, *Adapting
communication-avoiding LU and QR factorizations to multicore
architectures*, IPDPS 2010.

The package provides:

``repro.kernels``
    A from-scratch, flop-counted dense linear-algebra substrate (the
    role MKL/ACML/LAPACK play in the paper): BLAS-like primitives,
    unblocked/blocked/recursive LU and QR, compact-WY Householder
    kernels and the structured triangular-pentagonal kernels used by
    reduction trees and tiled algorithms.

``repro.core``
    The paper's contribution: TSLU (tournament pivoting), TSQR,
    multithreaded CALU (Algorithm 1) and CAQR (Algorithm 2), with
    binary / flat / hybrid reduction trees.

``repro.runtime``
    Dynamic task graphs with look-ahead scheduling, executed either by
    real threads (:class:`~repro.runtime.threaded.ThreadedExecutor`)
    or in simulated time on a modelled multicore machine
    (:class:`~repro.runtime.simulated.SimulatedExecutor`).

``repro.machine``
    Analytic multicore performance models, including presets for the
    paper's two test machines (8-core Intel Xeon, 16-core AMD Opteron).

``repro.resilience``
    Fault injection (:class:`~repro.resilience.faults.FaultPlan`),
    task retry policies, structured runtime failures, numerical
    health guards, panel-granularity checkpoint/restart
    (:class:`~repro.resilience.checkpoint.Checkpoint` +
    :class:`~repro.resilience.journal.TaskJournal`) and ABFT
    checksums for the trailing update — the runtime's recovery layer.

``repro.service``
    An overload-safe factorization service
    (:class:`~repro.service.service.FactorizationService`): concurrent
    ``factor``/``solve``/``lstsq`` requests multiplexed onto one shared
    worker pool with plan caching, bounded admission, per-request
    deadlines, circuit breaking and pool supervision.

``repro.baselines``
    The comparison algorithms the paper benchmarks against: BLAS2
    ``getf2``/``geqr2``, blocked ``getrf``/``geqrf`` (MKL/ACML-like)
    and PLASMA-style tiled LU (incremental pivoting) and tiled QR.

``repro.analysis``
    Numerical-quality metrics (backward error, growth factor,
    orthogonality), closed-form flop counts and schedule statistics.

``repro.bench``
    Workload generators and one driver per table/figure of the paper's
    evaluation section.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

# Public name -> defining module.  Resolved lazily so that subpackages
# (kernels, runtime, ...) stay importable in isolation and importing
# `repro` does not pay for the whole dependency graph.
_EXPORTS = {
    "CALUFactorization": "repro.core.calu",
    "calu": "repro.core.calu",
    "CAQRFactorization": "repro.core.caqr",
    "caqr": "repro.core.caqr",
    "tslu": "repro.core.tslu",
    "TSQRFactorization": "repro.core.tsqr",
    "tsqr": "repro.core.tsqr",
    "TreeKind": "repro.core.trees",
    "Counters": "repro.counters",
    "counting": "repro.counters",
    "current_counters": "repro.counters",
    "MachineModel": "repro.machine.model",
    "amd16_acml": "repro.machine.presets",
    "generic": "repro.machine.presets",
    "intel8_mkl": "repro.machine.presets",
    "TaskGraph": "repro.runtime.graph",
    "SimulatedExecutor": "repro.runtime.simulated",
    "ProcessExecutor": "repro.runtime.process",
    "ThreadedExecutor": "repro.runtime.threaded",
    "WorkStealingExecutor": "repro.runtime.stealing",
    "calibrate_host": "repro.machine.calibrate",
    "FaultPlan": "repro.resilience.faults",
    "InjectedFault": "repro.resilience.faults",
    "RetryPolicy": "repro.resilience.recovery",
    "RuntimeFailure": "repro.resilience.recovery",
    "ResilienceEvent": "repro.resilience.events",
    "Checkpoint": "repro.resilience.checkpoint",
    "FileStore": "repro.resilience.checkpoint",
    "MemoryStore": "repro.resilience.checkpoint",
    "TaskJournal": "repro.resilience.journal",
    "NumericalHealthWarning": "repro.resilience.health",
    "FactorizationService": "repro.service",
    "ServiceConfig": "repro.service",
    "AdmissionRejected": "repro.service",
    "DeadlineExceeded": "repro.service",
    "CircuitBreaker": "repro.service",
    "SolveReport": "repro.linalg",
    "solve": "repro.linalg",
    "lstsq": "repro.linalg",
    "iterative_refinement": "repro.linalg",
    "condest_1": "repro.linalg",
    "slogdet": "repro.linalg",
    "det": "repro.linalg",
}


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return getattr(import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = sorted([*_EXPORTS, "__version__"])
