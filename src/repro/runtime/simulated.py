"""Discrete-event simulation of a task graph on a modelled machine.

This is how the repository reproduces the paper's *performance* results
at paper scale (``10^6 x 500`` matrices) on any host: the same task
graph the threaded executor runs is replayed in virtual time, with each
task priced by the :class:`~repro.machine.model.MachineModel` —
efficiency curves, shared-bandwidth contention (processor sharing with
max-min fairness), per-task scheduling overhead and cross-core
synchronization latency.

Mechanics
---------
Each core runs at most one task.  A running task goes through a fixed
*setup* phase (scheduling overhead, plus sync latency if it consumes
data produced on another core) and then a *work* phase whose rate is
recomputed at every event from the set of concurrently running tasks
(memory-bound tasks share the aggregate bandwidth).  Events are task
starts and completions; the simulation is fully deterministic.

Since the :class:`~repro.runtime.engine.ExecutionEngine` refactor the
event loop lives in the engine's virtual clock; this class is a thin
front-end sharing the lifecycle (journal skip + resume events, fault
injection, health guards, failure wrapping) with the threaded
executors, and accepts streaming
:class:`~repro.runtime.program.GraphProgram` sources — windows are
expanded in virtual-time order, deterministically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.engine import ExecutionEngine
from repro.runtime.graph import TaskGraph

if TYPE_CHECKING:  # avoid a runtime circular import with repro.machine
    from repro.machine.model import MachineModel
from repro.runtime.trace import Trace

__all__ = ["SimulatedExecutor"]


class SimulatedExecutor:
    """Run a task graph in simulated time on a :class:`MachineModel`.

    Parameters
    ----------
    machine:
        The multicore model that prices every task.
    policy:
        Ready-queue policy (``"priority"`` / ``"fifo"``).
    execute:
        If True, numeric closures are also executed (at completion, in
        simulated-time order, which respects dependencies) — used by
        tests to prove the simulated schedule computes the same result
        as the threaded one.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; injected
        stalls extend a task's setup phase in virtual time, injected
        exceptions abort the run at the task's completion event with a
        structured :class:`~repro.resilience.recovery.RuntimeFailure`
        carrying the partial trace, and (in ``execute`` mode)
        corruption faults poison the task's output.
    retry:
        Optional :class:`~repro.resilience.recovery.RetryPolicy`;
        recoverable injected faults then cost backoff time in the
        virtual schedule (recorded as ``retry`` events) instead of
        failing the run — mirroring the threaded executor.
    health_checks:
        Run ``meta["health"]`` guards after executed tasks (only
        meaningful with ``execute=True``).
    """

    def __init__(
        self,
        machine: MachineModel,
        policy: str = "priority",
        execute: bool = False,
        *,
        fault_plan=None,
        retry=None,
        health_checks: bool = True,
    ) -> None:
        self.machine = machine
        self.policy = policy
        self.execute = execute
        self.fault_plan = fault_plan
        self.retry = retry
        self.health_checks = health_checks

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        """Simulate (and with ``execute=True`` run) every task.

        Accepts an eager :class:`TaskGraph` or a streaming
        :class:`~repro.runtime.program.GraphProgram`.
        """
        engine = ExecutionEngine(
            clock="virtual",
            machine=self.machine,
            policy=self.policy,
            execute=self.execute,
            fault_plan=self.fault_plan,
            retry=self.retry,
            health_checks=self.health_checks,
        )
        return engine.run(graph, journal=journal)
