"""Discrete-event simulation of a task graph on a modelled machine.

This is how the repository reproduces the paper's *performance* results
at paper scale (``10^6 x 500`` matrices) on any host: the same task
graph the threaded executor runs is replayed in virtual time, with each
task priced by the :class:`~repro.machine.model.MachineModel` —
efficiency curves, shared-bandwidth contention (processor sharing with
max-min fairness), per-task scheduling overhead and cross-core
synchronization latency.

Mechanics
---------
Each core runs at most one task.  A running task goes through a fixed
*setup* phase (scheduling overhead, plus sync latency if it consumes
data produced on another core) and then a *work* phase whose rate is
recomputed at every event from the set of concurrently running tasks
(memory-bound tasks share the aggregate bandwidth).  Events are task
starts and completions; the simulation is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.counters import add_sync, add_words
from repro.resilience.events import ResilienceEvent
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.graph import TaskGraph

if TYPE_CHECKING:  # avoid a runtime circular import with repro.machine
    from repro.machine.model import MachineModel
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.task import Task
from repro.runtime.trace import TaskRecord, Trace

__all__ = ["SimulatedExecutor"]

_EPS = 1e-12


@dataclass
class _Running:
    task: Task
    core: int
    start: float
    setup_left: float  # seconds of fixed setup remaining
    work_left: float  # work units remaining (flops or bytes)
    max_rate: float  # work units / second cap
    demand: float  # bytes per work unit
    rate: float = 0.0
    failure: BaseException | None = None  # injected fault fired at completion
    corrupt: bool = False  # injected corruption applied at completion


class SimulatedExecutor:
    """Run a task graph in simulated time on a :class:`MachineModel`.

    Parameters
    ----------
    machine:
        The multicore model that prices every task.
    policy:
        Ready-queue policy (``"priority"`` / ``"fifo"``).
    execute:
        If True, numeric closures are also executed (at completion, in
        simulated-time order, which respects dependencies) — used by
        tests to prove the simulated schedule computes the same result
        as the threaded one.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; injected
        stalls extend a task's setup phase in virtual time, injected
        exceptions abort the run at the task's completion event with a
        structured :class:`~repro.resilience.recovery.RuntimeFailure`
        carrying the partial trace, and (in ``execute`` mode)
        corruption faults poison the task's output.
    retry:
        Optional :class:`~repro.resilience.recovery.RetryPolicy`;
        recoverable injected faults then cost backoff time in the
        virtual schedule (recorded as ``retry`` events) instead of
        failing the run — mirroring the threaded executor.
    health_checks:
        Run ``meta["health"]`` guards after executed tasks (only
        meaningful with ``execute=True``).
    """

    def __init__(
        self,
        machine: MachineModel,
        policy: str = "priority",
        execute: bool = False,
        *,
        fault_plan=None,
        retry=None,
        health_checks: bool = True,
    ) -> None:
        self.machine = machine
        self.policy = policy
        self.execute = execute
        self.fault_plan = fault_plan
        self.retry = retry
        self.health_checks = health_checks

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        mach = self.machine
        n = len(graph.tasks)
        indeg = graph.indegrees()
        ready = ReadyQueue(self.policy)

        skipped: set[int] = set()
        if journal is not None:
            done_names = journal.bind(graph)
            if done_names:
                skipped = {t.tid for t in graph.tasks if t.name in done_names}
        events: list[ResilienceEvent] = []
        if skipped:
            events.append(
                ResilienceEvent(
                    "resume",
                    detail=(
                        f"resumed from journal: skipping {len(skipped)}/{n} "
                        "completed tasks"
                    ),
                    value=float(len(skipped)),
                )
            )
            for tid in graph.topological_order():
                if tid in skipped:
                    for s in graph.succs[tid]:
                        indeg[s] -= 1
        for t, d in enumerate(indeg):
            if d == 0 and t not in skipped:
                ready.push(graph.tasks[t])

        free_cores = list(range(mach.cores - 1, -1, -1))  # pop() yields core 0 first
        running: list[_Running] = []
        ran_on: dict[int, int] = {}
        records: list[TaskRecord] = []
        clock = 0.0
        completed = len(skipped)
        sync_lat = mach.sync_latency_us * 1e-6
        plan = self.fault_plan

        def record_event(ev: ResilienceEvent) -> None:
            events.append(ev)

        def start_tasks() -> None:
            while ready and free_cores:
                core = free_cores.pop()
                task = ready.pop()
                remote = sum(
                    1 for p in graph.preds[task.tid] if ran_on.get(p, core) != core
                )
                setup = mach.task_overhead_s(task.cost) + (sync_lat if remote else 0.0)
                if remote:
                    add_sync(remote)
                    add_words(int(task.cost.words))
                failure = None
                corrupt = False
                if plan is not None:
                    delay, failure, corrupt = plan.virtual_faults(
                        task, retry=self.retry, record=record_event
                    )
                    setup += delay
                work, rate, demand = mach.work_and_demand(task.cost)
                running.append(
                    _Running(
                        task=task,
                        core=core,
                        start=clock,
                        setup_left=setup,
                        work_left=work,
                        max_rate=rate,
                        demand=demand,
                        failure=failure,
                        corrupt=corrupt,
                    )
                )

        def complete(r: _Running) -> None:
            nonlocal completed
            if r.failure is not None:
                failure = RuntimeFailure(
                    f"task {r.task.name!r} failed: {r.failure}",
                    task=r.task.name,
                    tid=r.task.tid,
                    failure_kind="injected",
                    trace=Trace(list(records), mach.cores, list(events)),
                )
                failure.__cause__ = r.failure
                raise failure
            ran_on[r.task.tid] = r.core
            records.append(
                TaskRecord(r.task.tid, r.task.name, r.task.kind, r.core, r.start, clock)
            )
            if self.execute and r.task.fn is not None:
                try:
                    r.task.fn()
                except RuntimeFailure:
                    raise
                except Exception as exc:
                    failure = RuntimeFailure(
                        f"task {r.task.name!r} failed: {exc}",
                        task=r.task.name,
                        tid=r.task.tid,
                        failure_kind="task_error",
                        trace=Trace(list(records), mach.cores, list(events)),
                    )
                    failure.__cause__ = exc
                    raise failure from exc
            if r.corrupt and plan is not None and self.execute:
                plan.apply_corruption(r.task, record=record_event)
            guard = (
                r.task.meta.get("health")
                if (self.execute and self.health_checks and r.task.meta)
                else None
            )
            if guard is not None:
                verdict = guard()
                if verdict is not None:
                    record_event(verdict)
                    if verdict.fatal:
                        raise RuntimeFailure(
                            f"health guard failed after task {r.task.name!r}: "
                            f"{verdict.detail}",
                            task=r.task.name,
                            tid=r.task.tid,
                            failure_kind="health",
                            trace=Trace(list(records), mach.cores, list(events)),
                        )
            if journal is not None:
                journal.record(r.task)
            for s in graph.succs[r.task.tid]:
                indeg[s] -= 1
                if indeg[s] == 0 and s not in skipped:
                    ready.push(graph.tasks[s])
            free_cores.append(r.core)
            completed += 1

        while completed < n:
            start_tasks()
            if not running:
                raise RuntimeError(
                    f"simulated deadlock: {completed}/{n} tasks done, none running"
                )
            # Recompute processor-sharing rates for tasks in the work phase.
            in_work = [r for r in running if r.setup_left <= _EPS and r.work_left > 0.0]
            if in_work:
                rates = mach.share_rates([(r.max_rate, r.demand) for r in in_work])
                for r, rate in zip(in_work, rates):
                    r.rate = rate
            # Time to the next event (a phase change or a completion).
            dt = float("inf")
            for r in running:
                if r.setup_left > _EPS:
                    dt = min(dt, r.setup_left)
                elif r.work_left > 0.0:
                    if r.rate > 0.0:
                        dt = min(dt, r.work_left / r.rate)
                else:
                    dt = 0.0
            if dt == float("inf"):
                raise RuntimeError("simulated stall: running tasks cannot progress")
            dt = max(dt, 0.0)
            clock += dt
            still: list[_Running] = []
            for r in running:
                if r.setup_left > _EPS:
                    r.setup_left -= dt
                    if r.setup_left <= _EPS:
                        r.setup_left = 0.0
                        if r.work_left <= 0.0:
                            complete(r)
                            continue
                    still.append(r)
                else:
                    r.work_left -= r.rate * dt
                    if r.work_left <= _EPS * max(1.0, r.rate):
                        complete(r)
                    else:
                        still.append(r)
            running = still

        return Trace(records, mach.cores, events)
