"""The unified execution engine behind every executor front-end.

Historically :class:`~repro.runtime.threaded.ThreadedExecutor`,
:class:`~repro.runtime.simulated.SimulatedExecutor` and
:class:`~repro.runtime.stealing.WorkStealingExecutor` each reimplemented
the task lifecycle — ready tracking, journal skip + resume events,
retry, fault injection, health guards, failure wrapping, tracing and the
watchdog — so every resilience feature landed three times or not at all.
:class:`ExecutionEngine` owns that lifecycle once, behind two pluggable
axes:

* **clock** — ``"real"`` runs tasks on worker threads (wall-clock);
  ``"virtual"`` replays the graph as a discrete-event simulation priced
  by a :class:`~repro.machine.model.MachineModel`.
* **frontier** — how ready tasks are distributed to workers on the real
  clock: :class:`CentralFrontier` (one shared priority queue, the
  paper's look-ahead scheduling) or :class:`StealingFrontier`
  (per-worker deques with deterministic stealing).

The engine consumes :class:`~repro.runtime.program.GraphProgram`
sources: windows of tasks are *registered* as the program emits them,
and the program is expanded on the fly so that while the lowest
incomplete window is ``W``, windows through ``W + lookahead`` exist.
Graph construction therefore stays off the critical path and the
scheduler's live set is bounded by the look-ahead window, not the total
DAG — eager :class:`~repro.runtime.graph.TaskGraph` inputs are wrapped
as single-window programs and behave exactly as before.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

# Module-style import: counters itself imports repro.runtime.sync, so a
# from-import here would fail when counters is the first module loaded.
from repro import counters as _counters
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import InjectedFault
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.program import GraphProgram, as_program
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.sync import make_condition, make_lock
from repro.runtime.task import Task
from repro.runtime.trace import TaskRecord, Trace

__all__ = ["ExecutionEngine", "CentralFrontier", "StealingFrontier"]

_EPS = 1e-12


class CentralFrontier:
    """One shared ready queue for all workers (the paper's scheduler).

    Placement of each task's predecessors is accounted (a sync and the
    task's input volume per remote predecessor), matching the
    historical :class:`ThreadedExecutor` communication counters.
    """

    counts_placement = True

    def __init__(self, policy: str = "priority") -> None:
        self._queue = ReadyQueue(policy)

    def seed_tasks(self, tasks: list[Task]) -> None:
        for t in tasks:
            self._queue.push(t)

    def push_released(self, tasks: list[Task], core: int) -> None:
        for t in tasks:
            self._queue.push(t)

    def pop(self, core: int) -> Task | None:
        return self._queue.pop() if self._queue else None

    def __bool__(self) -> bool:
        return bool(self._queue)


class StealingFrontier:
    """Per-worker deques with deterministic work stealing.

    Tasks released by a completion go to the completing worker's own
    deque (producer–consumer locality); idle workers scan victims in a
    seeded deterministic order and steal from the head (FIFO), counting
    one sync per steal.  Placement is not otherwise accounted.
    """

    counts_placement = False

    def __init__(self, n_workers: int, seed: int = 0) -> None:
        self.n_workers = n_workers
        self.seed = seed
        self._deques: list[deque[Task]] = [deque() for _ in range(n_workers)]

    def seed_tasks(self, tasks: list[Task]) -> None:
        # Distribute round-robin, highest priority first so every
        # worker starts near the critical path.
        roots = sorted(tasks, key=lambda t: -t.priority)
        for i, t in enumerate(roots):
            self._deques[i % self.n_workers].append(t)

    def push_released(self, tasks: list[Task], core: int) -> None:
        # Locality: released tasks go to my deque, highest priority
        # last so my LIFO pop sees it first.
        for t in sorted(tasks, key=lambda t: t.priority):
            self._deques[core].append(t)

    def pop(self, core: int) -> Task | None:
        """Own deque first (LIFO for locality), then steal (FIFO)."""
        own = self._deques[core]
        if own:
            return own.pop()
        for off in range(1, self.n_workers):
            victim = (core + self.seed + off) % self.n_workers
            if self._deques[victim]:
                _counters.add_sync()
                return self._deques[victim].popleft()
        return None

    def __bool__(self) -> bool:
        return any(self._deques)


class _Bookkeeping:
    """Frontier accounting over a growing graph (callers synchronize).

    Registers emitted windows, tracks in-degrees against completed
    tasks, marks journaled tasks done at registration, and expands the
    program so ``lookahead`` windows exist past the lowest incomplete
    one.  Both engine clocks share this logic.
    """

    def __init__(self, program: GraphProgram, done_names: set[str], depth: int) -> None:
        self.program = program
        self.graph = program.graph
        self.done_names = done_names
        self.depth = depth
        self.done: list[bool] = []
        self.indeg: list[int] = []
        self.skipped: set[int] = set()
        self.remaining = 0  # registered, not skipped, not completed
        self.n_skipped = 0
        self.peak_live = 0
        self.window_total: list[int] = []
        self.window_done: list[int] = []
        self.window_of: list[int] = []
        self._lowest = 0  # lowest window with incomplete tasks

    @property
    def registered(self) -> int:
        return len(self.done)

    @property
    def finished(self) -> bool:
        return self.remaining == 0 and self.program.exhausted

    def start(self) -> list[Task]:
        """Register pre-emitted windows, expand to the initial look-ahead
        target; returns the ready roots in tid order."""
        ready: list[Task] = []
        for w, (s, e) in enumerate(self.program.windows):
            ready.extend(self._register(w, self.graph.tasks[s:e]))
        ready.extend(self.expand())
        return ready

    def _register(self, window: int, tasks: list[Task]) -> list[Task]:
        while len(self.window_total) <= window:
            self.window_total.append(0)
            self.window_done.append(0)
        ready: list[Task] = []
        for task in tasks:
            tid = task.tid
            self.window_total[window] += 1
            self.window_of.append(window)
            if self.done_names and task.name in self.done_names:
                # Journaled: done before the run starts.  Its ancestors
                # are journaled too (the journal is write-ahead in
                # dependency order), so no release bookkeeping is owed.
                self.done.append(True)
                self.indeg.append(0)
                self.skipped.add(tid)
                self.n_skipped += 1
                self.window_done[window] += 1
                continue
            nd = sum(1 for p in self.graph.preds[tid] if not self.done[p])
            self.done.append(False)
            self.indeg.append(nd)
            self.remaining += 1
            if nd == 0:
                ready.append(task)
        self.peak_live = max(self.peak_live, self.remaining)
        return ready

    def complete(self, tid: int) -> list[Task]:
        """Mark *tid* done; returns newly ready tasks (released
        successors, then roots of any windows emitted by expansion)."""
        self.done[tid] = True
        released: list[Task] = []
        for s in self.graph.succs[tid]:
            if self.done[s]:
                continue
            self.indeg[s] -= 1
            if self.indeg[s] == 0:
                released.append(self.graph.tasks[s])
        self.remaining -= 1
        w = self.window_of[tid]
        self.window_done[w] += 1
        if self.window_done[w] == self.window_total[w]:
            released.extend(self.expand())
        return released

    def expand(self) -> list[Task]:
        """Emit windows until ``lowest_incomplete + depth`` exist."""
        ready: list[Task] = []
        program = self.program
        while not program.exhausted:
            while (
                self._lowest < len(self.window_total)
                and self.window_done[self._lowest] == self.window_total[self._lowest]
            ):
                self._lowest += 1
            target = min(program.n_windows, self._lowest + self.depth + 1)
            if program.emitted >= target:
                break
            window = program.emitted
            ready.extend(self._register(window, program.emit_next()))
        return ready

    def stats(self) -> dict:
        return {
            "n_tasks": len(self.graph.tasks),
            "peak_live_tasks": self.peak_live,
            "windows_emitted": self.program.emitted,
            "n_windows": self.program.n_windows,
            "emit_seconds": self.program.emit_seconds,
            "skipped": self.n_skipped,
        }


@dataclass
class _Running:
    task: Task
    core: int
    start: float
    setup_left: float  # seconds of fixed setup remaining
    work_left: float  # work units remaining (flops or bytes)
    max_rate: float  # work units / second cap
    demand: float  # bytes per work unit
    rate: float = 0.0
    failure: BaseException | None = None  # injected fault fired at completion
    corrupt: bool = False  # injected corruption applied at completion


class ExecutionEngine:
    """Owns the task lifecycle for every executor front-end.

    Parameters
    ----------
    n_workers:
        Worker threads on the real clock (ignored on the virtual one,
        where the :class:`MachineModel` supplies the core count).
    frontier:
        Real-clock ready-task distribution strategy; a fresh
        :class:`CentralFrontier` or :class:`StealingFrontier` per run.
    clock:
        ``"real"`` (threads) or ``"virtual"`` (discrete-event
        simulation on *machine*).
    machine / policy / execute:
        Virtual-clock configuration (see
        :class:`~repro.runtime.simulated.SimulatedExecutor`).
    retry / fault_plan / task_timeout / stall_timeout / health_checks /
    watchdog_poll_s:
        The resilience options shared by all front-ends (see
        :class:`~repro.runtime.threaded.ThreadedExecutor`).
    deadline:
        Optional absolute ``time.monotonic()`` timestamp: once passed,
        the watchdog aborts the run with a structured
        ``failure_kind="deadline"`` :class:`RuntimeFailure` even while
        individual tasks keep making progress.  This is how a service
        front-end maps a *per-request* deadline onto a run whose total
        task count exceeds any sensible per-task timeout (real clock
        only).
    thread_name:
        Prefix for worker thread names.
    """

    def __init__(
        self,
        *,
        n_workers: int = 4,
        frontier=None,
        clock: str = "real",
        machine=None,
        policy: str = "priority",
        execute: bool = False,
        retry=None,
        fault_plan=None,
        task_timeout: float | None = None,
        stall_timeout: float | None = None,
        deadline: float | None = None,
        health_checks: bool = True,
        watchdog_poll_s: float = 0.02,
        thread_name: str = "repro-worker",
        process_pool=None,
    ) -> None:
        if clock not in ("real", "virtual"):
            raise ValueError(f"unknown clock {clock!r}")
        if clock == "virtual" and machine is None:
            raise ValueError("virtual clock requires a machine model")
        self.n_workers = n_workers
        self.frontier = frontier
        self.clock = clock
        self.machine = machine
        self.policy = policy
        self.execute = execute
        self.retry = retry
        self.fault_plan = fault_plan
        self.task_timeout = task_timeout
        self.stall_timeout = stall_timeout
        self.deadline = deadline
        self.health_checks = health_checks
        self.watchdog_poll_s = watchdog_poll_s
        self.thread_name = thread_name
        self.process_pool = process_pool

    def _execute(self, task, core: int) -> None:
        """Run one task's work: in a pool worker if it carries an op
        descriptor, else its closure inline in this (proxy) thread.

        When a ``process_pool`` is configured and the task has a
        ``meta["op"]`` descriptor, the kernel runs in worker process
        *core* over the shared-memory arena and ``meta["op_sync"]``
        mirrors worker-side results into parent-side workspace objects;
        any worker-side exception (or a structured ``worker_death``
        failure) re-raises here, feeding the normal retry path.
        """
        pool = self.process_pool
        op = task.meta.get("op") if (pool is not None and task.meta) else None
        if op is not None:
            pool.run(core, op)
            sync = task.meta.get("op_sync")
            if sync is not None:
                sync()
        elif task.fn is not None:
            task.fn()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, source, journal=None) -> Trace:
        """Run a :class:`TaskGraph` or :class:`GraphProgram` to completion.

        With *journal*, tasks the journal already records as completed
        are skipped at registration (one ``resume`` event), and every
        completed task (post-guards) is journaled before its successors
        are released.
        """
        done_names: set[str] = set()
        if journal is not None:
            done_names = journal.bind(source)
        program = as_program(source)
        depth = program.lookahead
        if depth is None:
            from repro.core.priorities import lookahead_depth

            depth = lookahead_depth()
        if depth < 0:
            depth = program.n_windows  # infinite: emit everything up front
        bookkeeping = _Bookkeeping(program, done_names, depth)
        if self.clock == "virtual":
            return self._run_virtual(program, bookkeeping, journal)
        return self._run_threads(program, bookkeeping, journal)

    @staticmethod
    def _resume_event(bookkeeping: _Bookkeeping) -> ResilienceEvent:
        n_skip = bookkeeping.n_skipped
        n = len(bookkeeping.graph.tasks)
        return ResilienceEvent(
            "resume",
            detail=f"resumed from journal: skipping {n_skip}/{n} completed tasks",
            value=float(n_skip),
        )

    # ------------------------------------------------------------------
    # Real clock: worker threads
    # ------------------------------------------------------------------
    def _run_threads(self, program: GraphProgram, bk: _Bookkeeping, journal) -> Trace:
        graph = program.graph
        frontier = self.frontier if self.frontier is not None else CentralFrontier(self.policy)
        lock = make_lock("engine.state")
        work_available = make_condition("engine.state", lock)
        errors: list[BaseException] = []
        records: list[TaskRecord] = []
        events: list[ResilienceEvent] = []
        ran_on: dict[int, int] = {}
        running: dict[int, tuple] = {}  # core -> (task, monotonic start)
        progress = [time.monotonic()]  # last completion, for stall detection
        stop = threading.Event()  # watchdog fired: abandon stuck workers
        retry = self.retry
        plan = self.fault_plan
        t0 = time.perf_counter()

        initial = bk.start()
        if bk.n_skipped:
            events.append(self._resume_event(bk))
        frontier.seed_tasks(initial)

        def record_event(ev: ResilienceEvent) -> None:
            with lock:
                events.append(ev)

        def partial_trace() -> Trace:
            with lock:
                return Trace(list(records), self.n_workers, list(events))

        def worker(core: int) -> None:
            while True:
                with work_available:
                    while not frontier and not bk.finished and not errors:
                        # Timed wait + re-check: a missed notify (however
                        # unlikely) then costs one poll period, never a
                        # hung worker that only the watchdog could reap.
                        work_available.wait(0.1)
                    if bk.finished or errors:
                        work_available.notify_all()
                        return
                    task = frontier.pop(core)
                    if task is None:  # unreachable for a truthy frontier
                        work_available.notify_all()
                        return
                    if frontier.counts_placement:
                        # Snapshot predecessor placement under the lock:
                        # ran_on is written by completing workers, so an
                        # unlocked read would race (and miscount syncs).
                        placement = [ran_on.get(p, core) for p in graph.preds[task.tid]]
                    else:
                        placement = None
                    running[core] = (task, time.monotonic())
                if placement is not None:
                    # Account inter-worker synchronization: one sync (and
                    # the task's input volume) per remote predecessor.
                    remote = sum(1 for p in placement if p != core)
                    if remote:
                        _counters.add_sync(remote)
                        _counters.add_words(int(task.cost.words))
                attempt = 0
                while True:
                    start = time.perf_counter() - t0
                    try:
                        if plan is not None:
                            plan.pre_task(task, attempt, record=record_event)
                        self._execute(task, core)
                        if plan is not None:
                            plan.post_task(task, attempt, record=record_event)
                    except BaseException as exc:  # noqa: BLE001 - handled below
                        if retry is not None and not errors and retry.should_retry(task, exc, attempt):
                            record_event(
                                ResilienceEvent(
                                    "retry",
                                    task.name,
                                    task.tid,
                                    detail=(
                                        f"attempt {attempt + 1} after "
                                        f"{type(exc).__name__}: {exc}"
                                    ),
                                )
                            )
                            time.sleep(retry.delay(attempt, task.tid))
                            attempt += 1
                            continue
                        if not isinstance(exc, RuntimeFailure):
                            kind = "injected" if isinstance(exc, InjectedFault) else "task_error"
                            failure = RuntimeFailure(
                                f"task {task.name!r} failed after {attempt + 1} attempt(s): {exc}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind=kind,
                            )
                            failure.__cause__ = exc
                            exc = failure
                        with work_available:
                            running.pop(core, None)
                            errors.append(exc)
                            bk.remaining -= 1
                            work_available.notify_all()
                        return
                    break
                end = time.perf_counter() - t0
                # Numerical health guard, outside the lock (it reads
                # only blocks this task owns).
                fatal_event = None
                guard = task.meta.get("health") if (self.health_checks and task.meta) else None
                if guard is not None:
                    verdict = guard()
                    if verdict is not None:
                        record_event(verdict)
                        if verdict.fatal:
                            fatal_event = verdict
                # Write-ahead journal entry: only after the guards pass,
                # so a resumed run never skips a task whose output was
                # found corrupted.  Outside the lock (may hit disk).
                if fatal_event is None and journal is not None:
                    try:
                        journal.record(task)
                    except Exception as exc:
                        with work_available:
                            running.pop(core, None)
                            errors.append(
                                RuntimeFailure(
                                    f"journal write failed after task {task.name!r}: {exc}",
                                    task=task.name,
                                    tid=task.tid,
                                    failure_kind="task_error",
                                )
                            )
                            bk.remaining -= 1
                            work_available.notify_all()
                        return
                with work_available:
                    running.pop(core, None)
                    progress[0] = time.monotonic()
                    ran_on[task.tid] = core
                    records.append(TaskRecord(task.tid, task.name, task.kind, core, start, end))
                    if fatal_event is not None:
                        errors.append(
                            RuntimeFailure(
                                f"health guard failed after task {task.name!r}: "
                                f"{fatal_event.detail}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind="health",
                            )
                        )
                        bk.remaining -= 1
                        work_available.notify_all()
                        return
                    # complete() may expand the program: emitting the
                    # next window(s) happens here, under the lock, while
                    # other workers keep executing their current tasks.
                    frontier.push_released(bk.complete(task.tid), core)
                    work_available.notify_all()

        threads = [
            threading.Thread(
                target=worker, args=(c,), name=f"{self.thread_name}-{c}", daemon=True
            )
            for c in range(self.n_workers)
        ]

        watchdog_active = (
            self.task_timeout is not None
            or self.stall_timeout is not None
            or self.deadline is not None
        )

        def watchdog() -> None:
            deadlock_polls = 0
            while not stop.wait(self.watchdog_poll_s):
                with work_available:
                    if bk.remaining <= 0 or errors:
                        return
                    n = bk.registered
                    done_count = n - bk.remaining
                    now = time.monotonic()
                    if self.deadline is not None and now >= self.deadline:
                        # The run's absolute deadline passed.  Tasks may
                        # still be progressing — this is *lateness*, not
                        # a hang — so it is reported as its own kind.
                        events.append(
                            ResilienceEvent(
                                "deadline",
                                detail=(
                                    f"run deadline passed with {done_count}/{n} "
                                    "tasks done"
                                ),
                                value=now - self.deadline,
                                fatal=True,
                            )
                        )
                        errors.append(
                            RuntimeFailure(
                                f"run exceeded its deadline ({done_count}/{n} "
                                "tasks done)",
                                failure_kind="deadline",
                            )
                        )
                        stop.set()
                        work_available.notify_all()
                        return
                    if self.task_timeout is not None:
                        for core, (task, ts) in list(running.items()):
                            if now - ts > self.task_timeout:
                                events.append(
                                    ResilienceEvent(
                                        "timeout",
                                        task.name,
                                        task.tid,
                                        detail=(
                                            f"exceeded task_timeout={self.task_timeout:.3g}s "
                                            f"on worker {core}"
                                        ),
                                        value=now - ts,
                                        fatal=True,
                                    )
                                )
                                errors.append(
                                    RuntimeFailure(
                                        f"task {task.name!r} stalled: ran longer than "
                                        f"{self.task_timeout:.3g}s on worker {core}",
                                        task=task.name,
                                        tid=task.tid,
                                        failure_kind="timeout",
                                    )
                                )
                                stop.set()
                                work_available.notify_all()
                                return
                    if self.stall_timeout is not None and now - progress[0] > self.stall_timeout:
                        stalled = ", ".join(t.name for t, _ in running.values()) or "none"
                        events.append(
                            ResilienceEvent(
                                "stall",
                                detail=(
                                    f"no task completed for {self.stall_timeout:.3g}s "
                                    f"(running: {stalled})"
                                ),
                                fatal=True,
                            )
                        )
                        errors.append(
                            RuntimeFailure(
                                f"runtime stalled: no task completed for "
                                f"{self.stall_timeout:.3g}s ({done_count}/{n} done, "
                                f"running: {stalled})",
                                failure_kind="stall",
                            )
                        )
                        stop.set()
                        work_available.notify_all()
                        return
                    dead = [
                        c
                        for c, th in enumerate(threads)
                        if c in running and not th.is_alive()
                    ]
                    if dead:
                        task = running[dead[0]][0]
                        events.append(
                            ResilienceEvent(
                                "worker_death",
                                task.name,
                                task.tid,
                                detail=f"worker {dead[0]} died with task in flight",
                                fatal=True,
                            )
                        )
                        errors.append(
                            RuntimeFailure(
                                f"worker {dead[0]} died while running task {task.name!r}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind="worker_death",
                            )
                        )
                        stop.set()
                        work_available.notify_all()
                        return
                    # Deadlocked queue: tasks remain, nothing runs,
                    # nothing is ready.  Cannot happen for a valid DAG;
                    # confirmed over two polls to dodge races.
                    if bk.remaining > 0 and not running and not frontier:
                        deadlock_polls += 1
                        if deadlock_polls >= 2:
                            events.append(
                                ResilienceEvent(
                                    "deadlock",
                                    detail=(
                                        f"{done_count}/{n} tasks done, "
                                        "none ready or running"
                                    ),
                                    fatal=True,
                                )
                            )
                            errors.append(
                                RuntimeFailure(
                                    f"runtime deadlock: {done_count}/{n} tasks "
                                    "completed, none ready or running",
                                    failure_kind="deadlock",
                                )
                            )
                            stop.set()
                            work_available.notify_all()
                            return
                    else:
                        deadlock_polls = 0

        for th in threads:
            th.start()
        watchdog_thread = None
        if watchdog_active:
            watchdog_thread = threading.Thread(target=watchdog, name="repro-watchdog", daemon=True)
            watchdog_thread.start()
        for th in threads:
            if not watchdog_active:
                th.join()
            else:
                # A stuck worker cannot be killed; once the watchdog
                # fires we stop waiting and abandon the daemon thread.
                while th.is_alive() and not stop.is_set():
                    th.join(0.05)
        if watchdog_thread is not None:
            stop.set()
            watchdog_thread.join(1.0)
        if errors:
            exc = errors[0]
            if isinstance(exc, RuntimeFailure) and exc.trace is None:
                exc.trace = partial_trace()
            raise exc
        return Trace(records, self.n_workers, events, stats=bk.stats())

    # ------------------------------------------------------------------
    # Virtual clock: discrete-event simulation
    # ------------------------------------------------------------------
    def _run_virtual(self, program: GraphProgram, bk: _Bookkeeping, journal) -> Trace:
        mach = self.machine
        graph = program.graph
        ready = ReadyQueue(self.policy)
        events: list[ResilienceEvent] = []
        records: list[TaskRecord] = []
        ran_on: dict[int, int] = {}
        clock = 0.0
        sync_lat = mach.sync_latency_us * 1e-6
        plan = self.fault_plan

        initial = bk.start()
        if bk.n_skipped:
            events.append(self._resume_event(bk))
        for t in initial:
            ready.push(t)

        free_cores = list(range(mach.cores - 1, -1, -1))  # pop() yields core 0 first
        running: list[_Running] = []

        def record_event(ev: ResilienceEvent) -> None:
            events.append(ev)

        def start_tasks() -> None:
            while ready and free_cores:
                core = free_cores.pop()
                task = ready.pop()
                remote = sum(
                    1 for p in graph.preds[task.tid] if ran_on.get(p, core) != core
                )
                setup = mach.task_overhead_s(task.cost) + (sync_lat if remote else 0.0)
                if remote:
                    _counters.add_sync(remote)
                    _counters.add_words(int(task.cost.words))
                failure = None
                corrupt = False
                if plan is not None:
                    delay, failure, corrupt = plan.virtual_faults(
                        task, retry=self.retry, record=record_event
                    )
                    setup += delay
                work, rate, demand = mach.work_and_demand(task.cost)
                running.append(
                    _Running(
                        task=task,
                        core=core,
                        start=clock,
                        setup_left=setup,
                        work_left=work,
                        max_rate=rate,
                        demand=demand,
                        failure=failure,
                        corrupt=corrupt,
                    )
                )

        def complete(r: _Running) -> None:
            if r.failure is not None:
                failure = RuntimeFailure(
                    f"task {r.task.name!r} failed: {r.failure}",
                    task=r.task.name,
                    tid=r.task.tid,
                    failure_kind="injected",
                    trace=Trace(list(records), mach.cores, list(events)),
                )
                failure.__cause__ = r.failure
                raise failure
            ran_on[r.task.tid] = r.core
            records.append(
                TaskRecord(r.task.tid, r.task.name, r.task.kind, r.core, r.start, clock)
            )
            if self.execute and r.task.fn is not None:
                try:
                    r.task.fn()
                except RuntimeFailure:
                    raise
                except Exception as exc:
                    failure = RuntimeFailure(
                        f"task {r.task.name!r} failed: {exc}",
                        task=r.task.name,
                        tid=r.task.tid,
                        failure_kind="task_error",
                        trace=Trace(list(records), mach.cores, list(events)),
                    )
                    failure.__cause__ = exc
                    raise failure from exc
            if r.corrupt and plan is not None and self.execute:
                plan.apply_corruption(r.task, record=record_event)
            guard = (
                r.task.meta.get("health")
                if (self.execute and self.health_checks and r.task.meta)
                else None
            )
            if guard is not None:
                verdict = guard()
                if verdict is not None:
                    record_event(verdict)
                    if verdict.fatal:
                        raise RuntimeFailure(
                            f"health guard failed after task {r.task.name!r}: "
                            f"{verdict.detail}",
                            task=r.task.name,
                            tid=r.task.tid,
                            failure_kind="health",
                            trace=Trace(list(records), mach.cores, list(events)),
                        )
            if journal is not None:
                journal.record(r.task)
            for t in bk.complete(r.task.tid):
                ready.push(t)
            free_cores.append(r.core)

        while not bk.finished:
            start_tasks()
            if not running:
                raise RuntimeError(
                    f"simulated deadlock: {bk.registered - bk.remaining}/{bk.registered} "
                    "tasks done, none running"
                )
            # Recompute processor-sharing rates for tasks in the work phase.
            in_work = [r for r in running if r.setup_left <= _EPS and r.work_left > 0.0]
            if in_work:
                rates = mach.share_rates([(r.max_rate, r.demand) for r in in_work])
                for r, rate in zip(in_work, rates, strict=True):
                    r.rate = rate
            # Time to the next event (a phase change or a completion).
            dt = float("inf")
            for r in running:
                if r.setup_left > _EPS:
                    dt = min(dt, r.setup_left)
                elif r.work_left > 0.0:
                    if r.rate > 0.0:
                        dt = min(dt, r.work_left / r.rate)
                else:
                    dt = 0.0
            if dt == float("inf"):
                raise RuntimeError("simulated stall: running tasks cannot progress")
            dt = max(dt, 0.0)
            clock += dt
            still: list[_Running] = []
            for r in running:
                if r.setup_left > _EPS:
                    r.setup_left -= dt
                    if r.setup_left <= _EPS:
                        r.setup_left = 0.0
                        if r.work_left <= 0.0:
                            complete(r)
                            continue
                    still.append(r)
                else:
                    r.work_left -= r.rate * dt
                    if r.work_left <= _EPS * max(1.0, r.rate):
                        complete(r)
                    else:
                        still.append(r)
            running = still

        return Trace(records, mach.cores, events, stats=bk.stats())
