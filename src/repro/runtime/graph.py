"""Task dependency graphs and block-level dependency discovery.

The paper constructs its task dependency graph on the fly from the
blocks each task touches.  :class:`BlockTracker` reproduces that: every
task declares the ``b x b`` blocks it reads and writes, and the tracker
derives the read-after-write, write-after-read and write-after-write
edges automatically.  This keeps the builders in :mod:`repro.core` free
of hand-maintained dependency lists and guarantees the threaded
execution is race-free by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Sequence

from repro.runtime.task import Cost, Task, TaskKind

__all__ = ["TaskGraph", "BlockTracker"]


class TaskGraph:
    """A static DAG of :class:`~repro.runtime.task.Task` objects."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.tasks: list[Task] = []
        self.succs: list[list[int]] = []
        self.preds: list[list[int]] = []

    def __len__(self) -> int:
        return len(self.tasks)

    def add(
        self,
        name: str,
        kind: TaskKind,
        cost: Cost,
        fn: Callable[[], None] | None = None,
        deps: Iterable[int] = (),
        priority: float = 0.0,
        iteration: int = 0,
        idempotent: bool = False,
        **meta,
    ) -> int:
        """Append a task depending on task ids *deps*; returns its id."""
        tid = len(self.tasks)
        task = Task(
            tid=tid,
            name=name,
            kind=kind,
            cost=cost,
            fn=fn,
            priority=priority,
            iteration=iteration,
            idempotent=idempotent,
            meta=meta,
        )
        self.tasks.append(task)
        self.succs.append([])
        dep_list = sorted({d for d in deps if d is not None})
        for d in dep_list:
            if not 0 <= d < tid:
                raise ValueError(f"task {name!r}: dependency {d} out of range")
            self.succs[d].append(tid)
        self.preds.append(dep_list)
        return tid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def indegrees(self) -> list[int]:
        return [len(p) for p in self.preds]

    def topological_order(self) -> list[int]:
        """Kahn's algorithm; raises if the graph has a cycle."""
        indeg = self.indegrees()
        queue = deque(t for t, d in enumerate(indeg) if d == 0)
        order: list[int] = []
        while queue:
            t = queue.popleft()
            order.append(t)
            for s in self.succs[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        if len(order) != len(self.tasks):
            raise ValueError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Raise if the graph is not a DAG."""
        self.topological_order()

    def total_flops(self) -> float:
        return sum(t.cost.flops for t in self.tasks)

    def total_words(self) -> float:
        return sum(t.cost.words for t in self.tasks)

    def count_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.kind.value] = out.get(t.kind.value, 0) + 1
        return out

    def critical_path(self, time_of: Callable[[Task], float]) -> tuple[float, list[int]]:
        """Longest path through the DAG under the given per-task times.

        Returns ``(length_seconds, task_ids_on_path)``.  This is the
        lower bound on makespan with unlimited cores — the quantity the
        paper shrinks by taking the panel off the ``O(b)``-sync path.
        """
        order = self.topological_order()
        dist = [0.0] * len(self.tasks)
        best_pred = [-1] * len(self.tasks)
        for t in order:
            dist[t] += time_of(self.tasks[t])
            for s in self.succs[t]:
                if dist[t] > dist[s]:
                    dist[s] = dist[t]
                    best_pred[s] = t
        if not self.tasks:
            return 0.0, []
        end = max(range(len(self.tasks)), key=dist.__getitem__)
        path = [end]
        while best_pred[path[-1]] >= 0:
            path.append(best_pred[path[-1]])
        path.reverse()
        return dist[end], path

    def run_sequential(self) -> None:
        """Execute all numeric closures in a topological order (reference)."""
        for t in self.topological_order():
            fn = self.tasks[t].fn
            if fn is not None:
                fn()

    def to_dot(self, max_tasks: int = 400) -> str:
        """Graphviz source of the DAG (the paper's Figure 1 rendering).

        Nodes are colored by task kind following the paper's scheme
        (P red, L yellow, U blue, S green).  Raises if the graph is
        larger than *max_tasks* — render per-panel subsets instead.

        Names and the graph title are dot-escaped (quotes, backslashes)
        and nodes/edges are emitted in deterministic (tid-sorted) order
        so the output is a stable snapshot for tests and diffing.
        """
        if len(self.tasks) > max_tasks:
            raise ValueError(
                f"graph has {len(self.tasks)} tasks; raise max_tasks to render anyway"
            )

        def esc(s: str) -> str:
            return s.replace("\\", "\\\\").replace('"', '\\"')

        colors = {"P": "#e74c3c", "L": "#f1c40f", "U": "#5dade2", "S": "#58d68d", "X": "#bbbbbb"}
        lines = [
            f'digraph "{esc(self.name)}" {{',
            "  rankdir=TB;",
            '  node [style=filled, fontname="monospace"];',
        ]
        for t in self.tasks:
            color = colors.get(t.kind.value, "#dddddd")
            lines.append(f'  t{t.tid} [label="{esc(t.name)}", fillcolor="{color}"];')
        for t in range(len(self.tasks)):
            for s in sorted(self.succs[t]):
                lines.append(f"  t{t} -> t{s};")
        lines.append("}")
        return "\n".join(lines)

    def step_schedule(self, n_workers: int) -> list[list[int]]:
        """Greedy unit-time step schedule (the paper's Figure 2 view).

        Every task takes one step; at most *n_workers* run per step,
        chosen by priority among ready tasks.  Returns task ids per step.
        """
        import heapq

        indeg = self.indegrees()
        ready: list[tuple[float, int]] = []
        for t, d in enumerate(indeg):
            if d == 0:
                heapq.heappush(ready, (-self.tasks[t].priority, t))
        steps: list[list[int]] = []
        done = 0
        while done < len(self.tasks):
            if not ready:
                raise ValueError(f"graph {self.name!r} contains a cycle")
            step = [heapq.heappop(ready)[1] for _ in range(min(n_workers, len(ready)))]
            steps.append(step)
            done += len(step)
            for t in step:
                for s in self.succs[t]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        heapq.heappush(ready, (-self.tasks[s].priority, s))
        return steps


class BlockTracker:
    """Derives task dependencies from block read/write sets.

    Blocks are arbitrary hashable coordinates — the CALU/CAQR builders
    use ``(block_row, block_col)`` pairs on the matrix's ``b x b`` grid
    and symbolic keys for workspaces (TSLU candidate buffers, ``T``
    factors).  The tracker enforces:

    * a reader depends on the last writer of each block it reads;
    * a writer depends on the last writer *and* on every reader since
      (WAR + WAW), so in-place updates serialize correctly.

    The per-task access sets are *kept* after edge derivation:
    :meth:`footprint` returns the accumulated ``(reads, writes)`` of a
    task, and :meth:`add_task` mirrors them into ``Task.meta["reads"]``
    / ``Task.meta["writes"]`` so the :mod:`repro.verify` passes (static
    race detection, dynamic footprint sanitizing) and the builders
    share one source of truth about who touches what.
    """

    def __init__(self) -> None:
        self._last_writer: dict[Hashable, int] = {}
        self._readers: dict[Hashable, list[int]] = {}
        self._reads: dict[int, set[Hashable]] = {}
        self._writes: dict[int, set[Hashable]] = {}

    def deps_for(
        self,
        reads: Sequence[Hashable] = (),
        writes: Sequence[Hashable] = (),
    ) -> set[int]:
        """Dependency set for a task with the given access pattern."""
        deps: set[int] = set()
        lw = self._last_writer
        for blk in reads:
            w = lw.get(blk)
            if w is not None:
                deps.add(w)
        readers = self._readers
        for blk in writes:
            w = lw.get(blk)
            if w is not None:
                deps.add(w)
            rs = readers.get(blk)
            if rs:
                deps.update(rs)
        return deps

    def commit(
        self,
        tid: int,
        reads: Sequence[Hashable] = (),
        writes: Sequence[Hashable] = (),
    ) -> None:
        """Record that task *tid* performed the given accesses."""
        readers = self._readers
        self._reads.setdefault(tid, set()).update(reads)
        self._writes.setdefault(tid, set()).update(writes)
        for blk in reads:
            readers.setdefault(blk, []).append(tid)
        lw = self._last_writer
        for blk in writes:
            lw[blk] = tid
            if blk in readers:
                readers[blk] = []

    def footprint(self, tid: int) -> tuple[frozenset, frozenset]:
        """Accumulated ``(reads, writes)`` block sets of task *tid*.

        Raises ``KeyError`` for a task this tracker never committed.
        """
        if tid not in self._reads and tid not in self._writes:
            raise KeyError(f"task {tid} has no recorded footprint")
        return (
            frozenset(self._reads.get(tid, ())),
            frozenset(self._writes.get(tid, ())),
        )

    def known_tids(self) -> list[int]:
        """Task ids with a recorded footprint, ascending."""
        return sorted(self._reads.keys() | self._writes.keys())

    def add_task(
        self,
        graph: TaskGraph,
        name: str,
        kind: TaskKind,
        cost: Cost,
        fn: Callable[[], None] | None = None,
        reads: Sequence[Hashable] = (),
        writes: Sequence[Hashable] = (),
        extra_deps: Iterable[int] = (),
        priority: float = 0.0,
        iteration: int = 0,
        idempotent: bool = False,
        **meta,
    ) -> int:
        """Add a task to *graph* with dependencies derived from accesses.

        The access sets are also mirrored into ``Task.meta["reads"]`` /
        ``Task.meta["writes"]`` so the :mod:`repro.verify` passes see
        exactly the footprint the dependencies were derived from.
        """
        deps = self.deps_for(reads, writes)
        deps.update(extra_deps)
        tid = graph.add(
            name,
            kind,
            cost,
            fn=fn,
            deps=deps,
            priority=priority,
            iteration=iteration,
            idempotent=idempotent,
            **meta,
        )
        self.commit(tid, reads, writes)
        task = graph.tasks[tid]
        task.meta["reads"] = frozenset(reads)
        task.meta["writes"] = frozenset(writes)
        return tid


def col_blocks(rows: range, col: int) -> list[tuple[int, int]]:
    """Block coordinates for a contiguous block-row range in one block column."""
    return [(i, col) for i in rows]
