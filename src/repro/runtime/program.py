"""Streaming task-graph programs.

The paper's runtime schedules tasks "with a dependency graph built on
the fly": the tasks of panel ``K`` (and, per look-ahead, ``K+1``) are
created as their predecessors complete, so graph construction never
sits on the critical path and the scheduler's working set stays
``O(active window)`` instead of ``O(total tasks)``.

A :class:`GraphProgram` packages a builder as an ordered sequence of
*windows* (one per panel iteration, plus an optional epilogue).  Each
window is emitted by a single ``emit(window, graph, tracker)`` callable
appending that iteration's tasks to a shared, growing
:class:`~repro.runtime.graph.TaskGraph`.  Because dependencies are
derived from :class:`~repro.runtime.graph.BlockTracker` footprints —
which only ever reference already-emitted tasks — incremental emission
discovers exactly the edges the eager builder would have, and
:meth:`materialize` (emit every window up front) reproduces the old
eager graph task-for-task and edge-for-edge.  The
:class:`~repro.runtime.engine.ExecutionEngine` consumes programs
directly, expanding the emitted frontier as windows complete.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.task import Task

__all__ = ["GraphProgram", "as_program", "supports_streaming"]


class GraphProgram:
    """An incremental task-graph builder: ordered windows of tasks.

    Parameters
    ----------
    name:
        Name of the underlying :class:`TaskGraph`.
    n_windows:
        Total number of windows the program will emit (typically one
        per panel iteration plus an optional epilogue window).
    emit:
        ``emit(window, graph, tracker)`` appends window *window*'s
        tasks to *graph* (deriving edges through *tracker*).  Windows
        are always emitted in order ``0, 1, ..., n_windows - 1``.
    lookahead:
        Look-ahead depth of the program: the engine keeps windows
        ``0..W+lookahead`` emitted while the lowest incomplete window
        is ``W``.  ``None`` defers to the process-wide default
        (:func:`repro.core.priorities.lookahead_depth`); ``-1`` means
        infinite (everything is emitted up front, as in an eager run).
    """

    def __init__(
        self,
        name: str,
        n_windows: int,
        emit: Callable[[int, TaskGraph, BlockTracker], None] | None,
        *,
        lookahead: int | None = None,
    ) -> None:
        if n_windows < 0:
            raise ValueError(f"n_windows must be >= 0, got {n_windows}")
        self.graph = TaskGraph(name)
        self.tracker = BlockTracker()
        self.n_windows = n_windows
        self.lookahead = lookahead
        self._emit = emit
        #: Emitted windows as ``[start_tid, end_tid)`` ranges.
        self.windows: list[tuple[int, int]] = []
        #: Cumulative seconds spent inside ``emit`` calls (the cost the
        #: streaming engine moves off the critical path).
        self.emit_seconds = 0.0

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def emitted(self) -> int:
        """Number of windows emitted so far."""
        return len(self.windows)

    @property
    def exhausted(self) -> bool:
        return len(self.windows) >= self.n_windows

    def __len__(self) -> int:
        return len(self.graph.tasks)

    def emit_next(self) -> list[Task]:
        """Emit the next window; returns its (possibly empty) task list."""
        if self.exhausted:
            raise ValueError(f"program {self.name!r}: all {self.n_windows} windows emitted")
        w = len(self.windows)
        start = len(self.graph.tasks)
        t0 = time.perf_counter()
        assert self._emit is not None  # exhausted guard covers emit-less programs
        self._emit(w, self.graph, self.tracker)
        self.emit_seconds += time.perf_counter() - t0
        self.windows.append((start, len(self.graph.tasks)))
        return self.graph.tasks[start:]

    def emit_through(self, window: int) -> None:
        """Emit windows up to and including *window* (idempotent)."""
        while not self.exhausted and self.emitted <= window:
            self.emit_next()

    def materialize(self) -> TaskGraph:
        """Emit every remaining window; returns the complete graph.

        This is the eager path: the result matches what the pre-streaming
        builders produced task-for-task and edge-for-edge, and is what
        the verify/DOT/analysis tooling consumes.
        """
        while not self.exhausted:
            self.emit_next()
        return self.graph

    @classmethod
    def from_graph(cls, graph: TaskGraph) -> "GraphProgram":
        """Wrap an already-built eager graph as a single-window program."""
        program = cls.__new__(cls)
        program.graph = graph
        program.tracker = BlockTracker()
        program.n_windows = 1
        program.lookahead = -1
        program._emit = None
        program.windows = [(0, len(graph.tasks))]
        program.emit_seconds = 0.0
        return program


def as_program(source) -> GraphProgram:
    """Coerce *source* (a :class:`TaskGraph` or a program) to a program."""
    if isinstance(source, GraphProgram):
        return source
    if isinstance(source, TaskGraph):
        return GraphProgram.from_graph(source)
    raise TypeError(f"expected a TaskGraph or GraphProgram, got {type(source).__name__}")


def supports_streaming(executor) -> bool:
    """Whether *executor* is one of the engine-backed front-ends.

    The high-level drivers (:func:`repro.core.calu.calu`, ...) stream
    their graph programs through these executors; any other (duck-typed
    caller-supplied) executor receives a fully materialized
    :class:`TaskGraph` instead, preserving the historical contract.
    """
    from repro.runtime.process import ProcessExecutor
    from repro.runtime.simulated import SimulatedExecutor
    from repro.runtime.stealing import WorkStealingExecutor
    from repro.runtime.threaded import ThreadedExecutor

    return isinstance(
        executor,
        (ThreadedExecutor, SimulatedExecutor, WorkStealingExecutor, ProcessExecutor),
    )
