"""Shared-memory tile plane for the process execution backend.

The :class:`~repro.runtime.process.ProcessExecutor` runs kernels in
worker *processes*, so the matrix being factored — and every workspace
buffer the tasks exchange (tournament candidate rows, pivot sequences,
implicit-Q ``V``/``T`` factors) — must live in memory every process can
see.  :class:`SharedArena` is that plane: a growable set of
``multiprocessing.shared_memory`` segments carved up by a bump
allocator.  The parent *places* the matrix (one copy in), builders
*allocate* workspace buffers, and every buffer is described by a compact
:func:`spec` — ``(segment name, offset, shape, dtype)`` — that crosses
the process boundary inside a task descriptor instead of the data
itself.  Workers :func:`attach_array` the spec to a zero-copy NumPy view
of the same physical pages, so task dispatch moves O(coordinates) bytes
while the kernels move O(block) bytes through shared cache-coherent
memory, exactly the shared-address-space model the paper's Pthreads
runtime assumes.

Lifecycle: the driver that created the arena owns the segments and must
call :meth:`SharedArena.destroy` (close + unlink) when the run is over,
after copying any results out of the arena views.  Workers only ever
attach; their handles are cached per process and dropped when the
worker exits.
"""

from __future__ import annotations

import atexit
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena", "ShmBinding", "attach_array", "spec_nbytes"]

#: Every live arena, so interpreter exit can best-effort destroy them.
#: Weak references: a collected arena already ran ``__del__``'s destroy.
_LIVE_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def _atexit_destroy() -> None:
    """Best-effort unlink of every surviving arena at interpreter exit.

    ``__del__`` covers the common case but is not guaranteed to run for
    objects alive at shutdown (module teardown order, reference cycles);
    this backstop makes normal interpreter exit leak-free.  A ``kill
    -9`` skips atexit entirely — there the ``multiprocessing``
    resource tracker (a separate process that outlives the parent)
    unlinks the registered segments instead.
    """
    for arena in list(_LIVE_ARENAS):
        try:
            arena.destroy()
        except Exception:
            pass


atexit.register(_atexit_destroy)

_ALIGN = 64  # cache-line align every allocation
_DEFAULT_SEGMENT = 16 << 20  # 16 MiB per segment unless an alloc is larger


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def spec_nbytes(spec: tuple) -> int:
    """Payload bytes described by a buffer spec (for accounting/tests)."""
    _, _, shape, dtype = spec
    return int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))


class SharedArena:
    """Bump allocator over ``multiprocessing.shared_memory`` segments.

    Allocations are 64-byte aligned, zero-initialized, C-contiguous and
    never freed individually — panel workspaces are tiny next to the
    matrix, and the whole arena dies with :meth:`destroy`.
    """

    def __init__(self, segment_bytes: int = _DEFAULT_SEGMENT) -> None:
        self.segment_bytes = int(segment_bytes)
        self._segments: list[shared_memory.SharedMemory] = []
        self._used: list[int] = []  # bump offset per segment
        self._sizes: list[int] = []  # segment sizes (first-fit scan)
        self._bases: list[int] = []  # mapped base address per segment
        self._destroyed = False
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    # Parent-side allocation
    # ------------------------------------------------------------------
    def alloc(
        self, shape: tuple[int, ...] | int, dtype=np.float64, *, zero: bool = True
    ) -> np.ndarray:
        """Allocate a C-contiguous array in shared memory.

        The returned array is zero-filled (the workspace-buffer
        contract) unless ``zero=False``, the path :meth:`place` uses to
        avoid streaming freshly mapped pages through memory twice —
        once for the fill and again for the copy that immediately
        overwrites the same bytes.
        """
        if self._destroyed:
            raise ValueError("arena already destroyed")
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = max(1, int(dt.itemsize * int(np.prod(shape, dtype=np.int64))))
        seg_idx = None
        for i, size in enumerate(self._sizes):
            if self._used[i] + nbytes <= size:
                seg_idx = i
                break
        if seg_idx is None:
            size = max(self.segment_bytes, _aligned(nbytes))
            seg = shared_memory.SharedMemory(create=True, size=size)
            self._segments.append(seg)
            self._used.append(0)
            self._sizes.append(seg.size)
            # Cache the mapped base address once: the mapping is stable
            # for the segment's lifetime, and rebuilding a frombuffer
            # view per spec() call made spec/alloc O(#segments) rescans.
            self._bases.append(
                np.frombuffer(seg.buf, dtype=np.uint8).__array_interface__["data"][0]
            )
            seg_idx = len(self._segments) - 1
        seg = self._segments[seg_idx]
        offset = self._used[seg_idx]
        self._used[seg_idx] = _aligned(offset + nbytes)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf, offset=offset)
        if zero:
            arr.fill(0)
        return arr

    def place(self, array: np.ndarray) -> np.ndarray:
        """Copy *array* into the arena; returns the shared view.

        Uses the no-zero allocation path: the copy itself is the first
        (and only) touch of the freshly allocated bytes.
        """
        out = self.alloc(array.shape, array.dtype, zero=False)
        out[...] = array
        return out

    def spec(self, array: np.ndarray) -> tuple:
        """Compact cross-process descriptor of an arena-allocated array.

        Returns ``(segment_name, byte_offset, shape, dtype_str)``.  The
        array must be C-contiguous and live inside one of this arena's
        segments (anything :meth:`alloc`/:meth:`place` returned, or a
        contiguous leading view of it).
        """
        if not array.flags["C_CONTIGUOUS"]:
            raise ValueError("spec requires a C-contiguous arena array")
        addr = array.__array_interface__["data"][0]
        for seg, base, size in zip(self._segments, self._bases, self._sizes):
            if base <= addr < base + size:
                offset = addr - base
                if offset + array.nbytes > size:
                    break
                return (seg.name, int(offset), tuple(array.shape), array.dtype.str)
        raise ValueError("array does not live in this arena")

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(self._used)

    def destroy(self) -> None:
        """Unlink (and best-effort close) every segment (idempotent).

        Unlink comes first so no shared-memory file outlives the run.
        ``close`` can legitimately fail with :class:`BufferError` while
        NumPy views into a segment are still referenced (workspace pivot
        arrays, ``op_sync`` closures in a retained graph); the mapping
        then stays valid until those views are garbage collected and is
        released with them — copy any results you keep out first.
        """
        if self._destroyed:
            return
        self._destroyed = True
        for seg in self._segments:
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):  # already gone
                pass
            try:
                seg.close()
            except (BufferError, OSError):  # live views keep it mapped
                pass
        self._segments = []
        self._used = []
        self._sizes = []
        self._bases = []

    def __del__(self) -> None:  # best-effort backstop; drivers call destroy()
        try:
            self.destroy()
        except Exception:
            pass


class ShmBinding:
    """What a builder needs to emit process-dispatchable tasks.

    Bundles the arena, the shared matrix view and its spec; the
    CALU/CAQR/TSLU/TSQR builders allocate their per-panel workspace
    buffers through it and attach ``meta["op"]`` descriptors (kernel
    name + coordinates + buffer specs) next to the ordinary closures.
    """

    def __init__(self, arena: SharedArena, A: np.ndarray) -> None:
        self.arena = arena
        self.A = A
        self.a_spec = arena.spec(A)
        #: per-panel pivot buffer specs, stashed by the TSLU builder so
        #: the CALU builder can reference panel K's pivots in U-task
        #: descriptors: ``piv_specs[K] = (view, spec)``.
        self.piv_specs: dict[int, tuple] = {}

    def alloc(self, shape, dtype=np.float64) -> tuple[np.ndarray, tuple]:
        """Allocate a workspace buffer; returns ``(view, spec)``."""
        arr = self.arena.alloc(shape, dtype)
        return arr, self.arena.spec(arr)


# ---------------------------------------------------------------------------
# Worker-side attach
# ---------------------------------------------------------------------------

_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach_array(spec: tuple) -> np.ndarray:
    """Decode a :meth:`SharedArena.spec` into a zero-copy view.

    Safe in any process: segment handles are opened once per process and
    cached.  Attaching must not register the segment with the resource
    tracker — the parent (the arena owner) is the only unlinker.  With a
    forked worker the tracker is shared with the parent, so a second
    registration (or an unregister) unbalances the parent's bookkeeping;
    with a spawned worker the child's own tracker would unlink the
    segment when the worker exits, destroying it under everyone else.
    Python 3.13 grew ``track=False`` for exactly this; on 3.11 we
    suppress the registration call around the attach instead.
    """
    name, offset, shape, dtype = spec
    seg = _ATTACHED.get(name)
    if seg is None:
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            seg = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        _ATTACHED[name] = seg
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf, offset=offset)
