"""Named synchronization primitives with an opt-in lock witness.

Every lock and condition variable in the runtime, service and
resilience layers is created through this module's factories instead of
bare ``threading`` constructors::

    self._lock = make_lock("breaker")
    self._cond = make_condition("admission")

Two things fall out of that one convention:

* **Static analyzability.**  Each primitive carries a string *name*
  that is a literal at its creation site, so the lockcheck static pass
  (:mod:`repro.verify.lockcheck`) can discover every lock in the
  codebase from the AST alone and talk about them by stable names —
  ``"engine.state"``, ``"process.core"`` — in its lock-order graph and
  findings, instead of by ephemeral object ids.

* **Dynamic witnessing.**  By default the factories return plain
  ``threading`` primitives (zero overhead — the hot path is exactly the
  stdlib's).  Under *sanitize mode* — :func:`witnessing` as a context
  manager, or the ``REPRO_LOCK_SANITIZE=1`` environment variable — they
  return :class:`TrackedLock` / :class:`TrackedCondition` wrappers that
  record, into the active :class:`LockWitness`:

  - the **actual acquisition-order edges** (lock *A* held while *B* is
    acquired), cross-checked against the static lock-order graph by
    :func:`repro.verify.lockcheck.cross_check`;
  - per-lock **hold times** (max and total), so tests can assert no
    lock is held anywhere near a watchdog threshold;
  - locks held across **process-pool round-trips**
    (:func:`note_roundtrip`, called by the worker pool around its pipe
    send/receive cycle).

The witness's own bookkeeping uses a raw ``threading.Lock`` — it is
the one deliberate exception to the "everything through the factories"
rule, because tracking the tracker would recurse.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterator

__all__ = [
    "LockWitness",
    "TrackedCondition",
    "TrackedLock",
    "active_witness",
    "make_condition",
    "make_lock",
    "make_rlock",
    "note_roundtrip",
    "witnessing",
]


class LockWitness:
    """Recorder for actual lock behaviour during a sanitized run.

    Attributes
    ----------
    edges:
        ``{(held_name, acquired_name): count}`` — every ordered pair
        observed when a thread acquired one lock while holding another.
    acquired:
        ``{name: count}`` — total successful acquisitions per lock.
    hold_max_s, hold_total_s:
        Per-lock hold-time statistics (seconds).
    roundtrip_held:
        ``{name}`` — locks that were held by the calling thread at a
        process-pool round-trip marker (see :func:`note_roundtrip`).
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()  # raw on purpose: never tracked
        self._tls = threading.local()
        self.edges: dict[tuple[str, str], int] = {}
        self.acquired: dict[str, int] = {}
        self.hold_max_s: dict[str, float] = {}
        self.hold_total_s: dict[str, float] = {}
        self.roundtrip_held: set[str] = set()

    # -- per-thread held stack -----------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Locks the *calling thread* currently holds, in order."""
        return tuple(self._stack())

    # -- events reported by the tracked primitives ---------------------
    def on_acquired(self, name: str) -> None:
        stack = self._stack()
        with self._mu:
            self.acquired[name] = self.acquired.get(name, 0) + 1
            for held in stack:
                if held != name:  # re-entry (RLock) is not an ordering edge
                    key = (held, name)
                    self.edges[key] = self.edges.get(key, 0) + 1
        stack.append(name)

    def on_released(self, name: str, held_s: float) -> None:
        stack = self._stack()
        # Release order may not be LIFO (rare but legal): remove the
        # innermost matching entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break
        with self._mu:
            self.hold_max_s[name] = max(self.hold_max_s.get(name, 0.0), held_s)
            self.hold_total_s[name] = self.hold_total_s.get(name, 0.0) + held_s

    def on_roundtrip(self) -> None:
        stack = self._stack()
        if stack:
            with self._mu:
                self.roundtrip_held.update(stack)

    # -- summaries ------------------------------------------------------
    def edge_names(self) -> set[tuple[str, str]]:
        with self._mu:
            return set(self.edges)

    def snapshot(self) -> dict:
        with self._mu:
            return {
                "locks": sorted(self.acquired),
                "acquisitions": dict(self.acquired),
                "edges": {f"{a} -> {b}": n for (a, b), n in sorted(self.edges.items())},
                "hold_max_s": dict(self.hold_max_s),
                "roundtrip_held": sorted(self.roundtrip_held),
            }


class TrackedLock:
    """A ``threading.Lock`` (or RLock) that reports to a :class:`LockWitness`.

    Supports the full lock protocol (``acquire``/``release``, context
    manager, ``locked``) so it drops in anywhere the plain primitive
    was used, including as the underlying lock of a ``Condition``.
    """

    def __init__(self, name: str, witness: LockWitness, *, reentrant: bool = False) -> None:
        self.name = name
        self.witness = witness
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._tls = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self.witness.on_acquired(self.name)
            self._tls.t0 = time.monotonic()
        return ok

    def release(self) -> None:
        t0 = getattr(self._tls, "t0", None)
        held = 0.0 if t0 is None else time.monotonic() - t0
        self._inner.release()
        self.witness.on_released(self.name, held)

    def locked(self) -> bool:
        inner = self._inner
        if hasattr(inner, "locked"):
            return inner.locked()
        # RLock has no locked(); approximate via a non-blocking probe.
        if inner.acquire(blocking=False):
            inner.release()
            return False
        return True

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # Condition(lock=...) calls these when waiting: the mutex really is
    # released for the duration of the wait, so report it (ending the
    # current hold interval) and re-report the reacquisition.
    def _release_save(self):
        t0 = getattr(self._tls, "t0", None)
        held = 0.0 if t0 is None else time.monotonic() - t0
        inner = self._inner
        if hasattr(inner, "_release_save"):
            state = inner._release_save()
        else:
            inner.release()
            state = None
        self.witness.on_released(self.name, held)
        return state

    def _acquire_restore(self, state) -> None:
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(state)
        else:
            inner.acquire()
        self.witness.on_acquired(self.name)
        self._tls.t0 = time.monotonic()

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        return inner.locked()


class TrackedCondition(threading.Condition):
    """A ``threading.Condition`` over a :class:`TrackedLock`.

    The condition's wait/notify protocol is the stdlib's; only the
    underlying mutex is tracked, so acquisition edges and hold times
    attribute to the condition's lock name.  ``wait()`` correctly
    reports the lock released for the duration of the wait (via the
    tracked lock's ``_release_save``/``_acquire_restore`` hooks).
    """

    def __init__(self, name: str, witness: LockWitness, lock: TrackedLock | None = None) -> None:
        self.name = name
        if lock is None:
            lock = TrackedLock(name, witness)
        super().__init__(lock)


# ----------------------------------------------------------------------
# Sanitize-mode switch and factories
# ----------------------------------------------------------------------
_witness: LockWitness | None = None
_witness_mu = threading.Lock()  # raw on purpose: guards the switch itself


def active_witness() -> LockWitness | None:
    """The witness new primitives will report to, or ``None``."""
    return _witness


def _set_witness(w: LockWitness | None) -> None:
    global _witness
    with _witness_mu:
        _witness = w


class witnessing:
    """Context manager enabling sanitize mode for primitives created inside.

    >>> from repro.runtime import sync
    >>> with sync.witnessing() as w:
    ...     svc = build_service()   # every make_lock() is now tracked
    ...     run_load(svc)
    >>> sorted(w.edge_names())      # doctest: +SKIP

    Only primitives *created* while the context is active are tracked;
    objects built before it keep their plain stdlib locks.  Nesting is
    not supported (the inner context replaces the outer witness).
    """

    def __init__(self, witness: LockWitness | None = None) -> None:
        self.witness = witness if witness is not None else LockWitness()

    def __enter__(self) -> LockWitness:
        _set_witness(self.witness)
        return self.witness

    def __exit__(self, *exc: object) -> None:
        _set_witness(None)


def make_lock(name: str) -> threading.Lock:
    """A mutex named *name*: plain ``threading.Lock`` unless sanitizing."""
    w = _witness
    if w is not None:
        return TrackedLock(name, w)  # type: ignore[return-value]
    return threading.Lock()


def make_rlock(name: str) -> threading.RLock:
    """A reentrant mutex named *name* (tracked under sanitize mode)."""
    w = _witness
    if w is not None:
        return TrackedLock(name, w, reentrant=True)  # type: ignore[return-value]
    return threading.RLock()


def make_condition(name: str, lock: threading.Lock | None = None) -> threading.Condition:
    """A condition variable named *name* over *lock* (or a fresh mutex).

    Passing an existing lock aliases the condition to that lock's name
    for ordering purposes — the pattern used by the execution engine,
    where one mutex guards the state and the condition signals on it.
    """
    w = _witness
    if w is not None:
        if lock is not None and not isinstance(lock, TrackedLock):
            # A plain lock under sanitize mode would blind the witness
            # to every acquisition through the condition; wrap it only
            # if it was created outside the witnessing window.
            lock = TrackedLock(name, w)
        return TrackedCondition(name, w, lock)  # type: ignore[arg-type]
    return threading.Condition(lock)


def note_roundtrip() -> None:
    """Mark a process-pool round-trip (pipe send/receive cycle).

    Under sanitize mode, records which locks the calling thread holds
    at this point — a lock held across an IPC round-trip couples its
    critical section to another process's scheduling, which the
    lockcheck witness pass reports unless explicitly suppressed.
    """
    w = _witness
    if w is not None:
        w.on_roundtrip()


if os.environ.get("REPRO_LOCK_SANITIZE") == "1":  # pragma: no cover
    _set_witness(LockWitness())
