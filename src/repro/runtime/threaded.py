"""Real-thread execution of task graphs.

The executor mirrors the paper's runtime on actual ``threading``
threads: a shared ready queue (priority with look-ahead, see
:mod:`repro.runtime.scheduler`), workers that pop a ready task, run its
closure, then release successor tasks whose last dependency finished.

NumPy releases the GIL inside its array kernels, so coarse tasks do
overlap on real multicore hardware; on a 1-core CI box this executor
still fully validates the dependency and locking logic (races would
corrupt the factorization, which the test suite cross-checks against
the sequential execution and the simulated executor).

Resilience layer (see :mod:`repro.resilience`):

* ``retry=RetryPolicy(...)`` re-runs failed tasks with backoff when
  safe (idempotent tasks, pre-execution injected faults);
* ``task_timeout=`` / ``stall_timeout=`` arm a watchdog thread that
  detects stalled tasks, dead workers and deadlocked queues and raises
  a structured :class:`~repro.resilience.recovery.RuntimeFailure`
  carrying the partial :class:`~repro.runtime.trace.Trace`;
* ``fault_plan=FaultPlan(...)`` injects deterministic faults for
  testing and benchmarking;
* tasks carrying a ``meta["health"]`` guard are checked after they run
  (NaN/Inf and pivot-growth monitors attached by the CALU/CAQR
  builders); a fatal guard verdict aborts the run instead of letting a
  corrupted factorization escape;
* ``run(graph, journal=TaskJournal(...))`` arms the write-ahead task
  journal: completed tasks are logged (post-guards), and tasks the
  journal already holds are skipped — the resume half of the
  checkpoint/restart path (see :mod:`repro.resilience.checkpoint`).

Every task error is wrapped in a structured
:class:`~repro.resilience.recovery.RuntimeFailure` (with
``failure_kind="task_error"`` and the partial trace), whether or not
any resilience option is configured — callers always get one failure
type to handle.
"""

from __future__ import annotations

import threading
import time

from repro.counters import add_sync, add_words
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.trace import TaskRecord, Trace

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Execute a numeric task graph with a pool of worker threads.

    Parameters
    ----------
    n_workers:
        Number of worker threads (the paper's "available cores").
    policy:
        Ready-queue policy, ``"priority"`` (default, the paper's
        look-ahead scheduling via task priorities) or ``"fifo"``.
    retry:
        Optional :class:`~repro.resilience.recovery.RetryPolicy` for
        task-level recovery.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` injecting
        deterministic faults (tests and resilience benchmarks).
    task_timeout:
        Wall-clock seconds one task may run before the watchdog
        declares it stalled (None disables).
    stall_timeout:
        Wall-clock seconds without *any* task completing before the
        watchdog declares the run stalled (None disables).
    health_checks:
        Run ``meta["health"]`` guards attached to tasks (default True).
    """

    def __init__(
        self,
        n_workers: int = 4,
        policy: str = "priority",
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        task_timeout: float | None = None,
        stall_timeout: float | None = None,
        health_checks: bool = True,
        watchdog_poll_s: float = 0.02,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.policy = policy
        self.retry = retry
        self.fault_plan = fault_plan
        self.task_timeout = task_timeout
        self.stall_timeout = stall_timeout
        self.health_checks = health_checks
        self.watchdog_poll_s = watchdog_poll_s

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        """Run every task; returns the execution :class:`Trace`.

        Task failures are wrapped in a :class:`RuntimeFailure` carrying
        the partial trace; the watchdog (when armed) additionally
        converts hangs into structured timeout/stall/deadlock failures
        instead of blocking forever.

        With *journal* (a
        :class:`~repro.resilience.journal.TaskJournal`), tasks the
        journal already records as completed are skipped up front, and
        every task that completes (and passes its health guard) is
        journaled before its successors are released.
        """
        n = len(graph.tasks)
        indeg = graph.indegrees()
        ready = ReadyQueue(self.policy)
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        remaining = n
        errors: list[BaseException] = []
        records: list[TaskRecord] = []
        events: list[ResilienceEvent] = []
        ran_on: dict[int, int] = {}
        running: dict[int, tuple] = {}  # core -> (task, monotonic start)
        progress = [time.monotonic()]  # last completion, for stall detection
        stop = threading.Event()  # watchdog fired: abandon stuck workers
        retry = self.retry
        plan = self.fault_plan
        t0 = time.perf_counter()

        skipped: set[int] = set()
        if journal is not None:
            done_names = journal.bind(graph)
            if done_names:
                skipped = {t.tid for t in graph.tasks if t.name in done_names}
        if skipped:
            events.append(
                ResilienceEvent(
                    "resume",
                    detail=f"resumed from journal: skipping {len(skipped)}/{n} completed tasks",
                    value=float(len(skipped)),
                )
            )
            remaining = n - len(skipped)
            for tid in graph.topological_order():
                if tid in skipped:
                    for s in graph.succs[tid]:
                        indeg[s] -= 1

        for t, d in enumerate(indeg):
            if d == 0 and t not in skipped:
                ready.push(graph.tasks[t])

        def record_event(ev: ResilienceEvent) -> None:
            with lock:
                events.append(ev)

        def partial_trace() -> Trace:
            with lock:
                return Trace(list(records), self.n_workers, list(events))

        def worker(core: int) -> None:
            nonlocal remaining
            while True:
                with work_available:
                    while not ready and remaining > 0 and not errors:
                        work_available.wait()
                    if remaining == 0 or errors:
                        work_available.notify_all()
                        return
                    task = ready.pop()
                    # Snapshot predecessor placement under the lock:
                    # ran_on is written by completing workers, so an
                    # unlocked read would race (and miscount syncs).
                    placement = [ran_on.get(p, core) for p in graph.preds[task.tid]]
                    running[core] = (task, time.monotonic())
                # Account inter-worker synchronization: one sync (and the
                # task's input volume) per predecessor that ran elsewhere.
                remote = sum(1 for p in placement if p != core)
                if remote:
                    add_sync(remote)
                    add_words(int(task.cost.words))
                attempt = 0
                while True:
                    start = time.perf_counter() - t0
                    try:
                        if plan is not None:
                            plan.pre_task(task, attempt, record=record_event)
                        if task.fn is not None:
                            task.fn()
                        if plan is not None:
                            plan.post_task(task, attempt, record=record_event)
                    except BaseException as exc:  # noqa: BLE001 - handled below
                        if retry is not None and not errors and retry.should_retry(task, exc, attempt):
                            record_event(
                                ResilienceEvent(
                                    "retry",
                                    task.name,
                                    task.tid,
                                    detail=(
                                        f"attempt {attempt + 1} after "
                                        f"{type(exc).__name__}: {exc}"
                                    ),
                                )
                            )
                            time.sleep(retry.delay(attempt))
                            attempt += 1
                            continue
                        if not isinstance(exc, RuntimeFailure):
                            kind = "injected" if isinstance(exc, InjectedFault) else "task_error"
                            failure = RuntimeFailure(
                                f"task {task.name!r} failed after {attempt + 1} attempt(s): {exc}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind=kind,
                            )
                            failure.__cause__ = exc
                            exc = failure
                        with work_available:
                            running.pop(core, None)
                            errors.append(exc)
                            remaining -= 1
                            work_available.notify_all()
                        return
                    break
                end = time.perf_counter() - t0
                # Numerical health guard, outside the lock (it reads
                # only blocks this task owns).
                fatal_event = None
                guard = task.meta.get("health") if (self.health_checks and task.meta) else None
                if guard is not None:
                    verdict = guard()
                    if verdict is not None:
                        record_event(verdict)
                        if verdict.fatal:
                            fatal_event = verdict
                # Write-ahead journal entry: only after the guards pass,
                # so a resumed run never skips a task whose output was
                # found corrupted.  Outside the lock (may hit disk).
                if fatal_event is None and journal is not None:
                    try:
                        journal.record(task)
                    except Exception as exc:
                        with work_available:
                            running.pop(core, None)
                            errors.append(
                                RuntimeFailure(
                                    f"journal write failed after task {task.name!r}: {exc}",
                                    task=task.name,
                                    tid=task.tid,
                                    failure_kind="task_error",
                                )
                            )
                            remaining -= 1
                            work_available.notify_all()
                        return
                with work_available:
                    running.pop(core, None)
                    progress[0] = time.monotonic()
                    ran_on[task.tid] = core
                    records.append(TaskRecord(task.tid, task.name, task.kind, core, start, end))
                    if fatal_event is not None:
                        errors.append(
                            RuntimeFailure(
                                f"health guard failed after task {task.name!r}: "
                                f"{fatal_event.detail}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind="health",
                            )
                        )
                        remaining -= 1
                        work_available.notify_all()
                        return
                    for s in graph.succs[task.tid]:
                        indeg[s] -= 1
                        if indeg[s] == 0 and s not in skipped:
                            ready.push(graph.tasks[s])
                    remaining -= 1
                    work_available.notify_all()

        threads = [
            threading.Thread(target=worker, args=(c,), name=f"repro-worker-{c}", daemon=True)
            for c in range(self.n_workers)
        ]

        watchdog_active = self.task_timeout is not None or self.stall_timeout is not None

        def watchdog() -> None:
            deadlock_polls = 0
            while not stop.wait(self.watchdog_poll_s):
                with work_available:
                    if remaining <= 0 or errors:
                        return
                    now = time.monotonic()
                    if self.task_timeout is not None:
                        for core, (task, ts) in list(running.items()):
                            if now - ts > self.task_timeout:
                                events.append(
                                    ResilienceEvent(
                                        "timeout",
                                        task.name,
                                        task.tid,
                                        detail=(
                                            f"exceeded task_timeout={self.task_timeout:.3g}s "
                                            f"on worker {core}"
                                        ),
                                        value=now - ts,
                                        fatal=True,
                                    )
                                )
                                errors.append(
                                    RuntimeFailure(
                                        f"task {task.name!r} stalled: ran longer than "
                                        f"{self.task_timeout:.3g}s on worker {core}",
                                        task=task.name,
                                        tid=task.tid,
                                        failure_kind="timeout",
                                    )
                                )
                                stop.set()
                                work_available.notify_all()
                                return
                    if self.stall_timeout is not None and now - progress[0] > self.stall_timeout:
                        stalled = ", ".join(t.name for t, _ in running.values()) or "none"
                        events.append(
                            ResilienceEvent(
                                "stall",
                                detail=(
                                    f"no task completed for {self.stall_timeout:.3g}s "
                                    f"(running: {stalled})"
                                ),
                                fatal=True,
                            )
                        )
                        errors.append(
                            RuntimeFailure(
                                f"runtime stalled: no task completed for "
                                f"{self.stall_timeout:.3g}s ({n - remaining}/{n} done, "
                                f"running: {stalled})",
                                failure_kind="stall",
                            )
                        )
                        stop.set()
                        work_available.notify_all()
                        return
                    dead = [
                        c
                        for c, th in enumerate(threads)
                        if c in running and not th.is_alive()
                    ]
                    if dead:
                        task = running[dead[0]][0]
                        events.append(
                            ResilienceEvent(
                                "worker_death",
                                task.name,
                                task.tid,
                                detail=f"worker {dead[0]} died with task in flight",
                                fatal=True,
                            )
                        )
                        errors.append(
                            RuntimeFailure(
                                f"worker {dead[0]} died while running task {task.name!r}",
                                task=task.name,
                                tid=task.tid,
                                failure_kind="worker_death",
                            )
                        )
                        stop.set()
                        work_available.notify_all()
                        return
                    # Deadlocked queue: tasks remain, nothing runs,
                    # nothing is ready.  Cannot happen for a valid DAG;
                    # confirmed over two polls to dodge races.
                    if remaining > 0 and not running and not ready:
                        deadlock_polls += 1
                        if deadlock_polls >= 2:
                            events.append(
                                ResilienceEvent(
                                    "deadlock",
                                    detail=(
                                        f"{n - remaining}/{n} tasks done, "
                                        "none ready or running"
                                    ),
                                    fatal=True,
                                )
                            )
                            errors.append(
                                RuntimeFailure(
                                    f"runtime deadlock: {n - remaining}/{n} tasks "
                                    "completed, none ready or running",
                                    failure_kind="deadlock",
                                )
                            )
                            stop.set()
                            work_available.notify_all()
                            return
                    else:
                        deadlock_polls = 0

        for th in threads:
            th.start()
        watchdog_thread = None
        if watchdog_active:
            watchdog_thread = threading.Thread(target=watchdog, name="repro-watchdog", daemon=True)
            watchdog_thread.start()
        for th in threads:
            if not watchdog_active:
                th.join()
            else:
                # A stuck worker cannot be killed; once the watchdog
                # fires we stop waiting and abandon the daemon thread.
                while th.is_alive() and not stop.is_set():
                    th.join(0.05)
        if watchdog_thread is not None:
            stop.set()
            watchdog_thread.join(1.0)
        if errors:
            exc = errors[0]
            if isinstance(exc, RuntimeFailure) and exc.trace is None:
                exc.trace = partial_trace()
            raise exc
        return Trace(records, self.n_workers, events)
