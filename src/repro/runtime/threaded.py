"""Real-thread execution of task graphs.

The executor mirrors the paper's runtime on actual ``threading``
threads: a shared ready queue (priority with look-ahead, see
:mod:`repro.runtime.scheduler`), workers that pop a ready task, run its
closure, then release successor tasks whose last dependency finished.

NumPy releases the GIL inside its array kernels, so coarse tasks do
overlap on real multicore hardware; on a 1-core CI box this executor
still fully validates the dependency and locking logic (races would
corrupt the factorization, which the test suite cross-checks against
the sequential execution and the simulated executor).

Since the :class:`~repro.runtime.engine.ExecutionEngine` refactor this
class is a thin front-end: it owns only its configuration and delegates
the task lifecycle (frontier, journal skip + resume events, retry,
faults, health guards, tracing, watchdog) to the engine, sharing that
logic with :class:`~repro.runtime.simulated.SimulatedExecutor` and
:class:`~repro.runtime.stealing.WorkStealingExecutor`.  It accepts both
eager :class:`~repro.runtime.graph.TaskGraph` inputs and streaming
:class:`~repro.runtime.program.GraphProgram` sources.

Resilience layer (see :mod:`repro.resilience`):

* ``retry=RetryPolicy(...)`` re-runs failed tasks with backoff when
  safe (idempotent tasks, pre-execution injected faults);
* ``task_timeout=`` / ``stall_timeout=`` arm a watchdog thread that
  detects stalled tasks, dead workers and deadlocked queues and raises
  a structured :class:`~repro.resilience.recovery.RuntimeFailure`
  carrying the partial :class:`~repro.runtime.trace.Trace`;
* ``fault_plan=FaultPlan(...)`` injects deterministic faults for
  testing and benchmarking;
* tasks carrying a ``meta["health"]`` guard are checked after they run
  (NaN/Inf and pivot-growth monitors attached by the CALU/CAQR
  builders); a fatal guard verdict aborts the run instead of letting a
  corrupted factorization escape;
* ``run(graph, journal=TaskJournal(...))`` arms the write-ahead task
  journal: completed tasks are logged (post-guards), and tasks the
  journal already holds are skipped — the resume half of the
  checkpoint/restart path (see :mod:`repro.resilience.checkpoint`).

Every task error is wrapped in a structured
:class:`~repro.resilience.recovery.RuntimeFailure` (with
``failure_kind="task_error"`` and the partial trace), whether or not
any resilience option is configured — callers always get one failure
type to handle.
"""

from __future__ import annotations

from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.runtime.engine import CentralFrontier, ExecutionEngine
from repro.runtime.graph import TaskGraph
from repro.runtime.trace import Trace

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Execute a numeric task graph with a pool of worker threads.

    Parameters
    ----------
    n_workers:
        Number of worker threads (the paper's "available cores").
    policy:
        Ready-queue policy, ``"priority"`` (default, the paper's
        look-ahead scheduling via task priorities) or ``"fifo"``.
    retry:
        Optional :class:`~repro.resilience.recovery.RetryPolicy` for
        task-level recovery.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` injecting
        deterministic faults (tests and resilience benchmarks).
    task_timeout:
        Wall-clock seconds one task may run before the watchdog
        declares it stalled (None disables).
    stall_timeout:
        Wall-clock seconds without *any* task completing before the
        watchdog declares the run stalled (None disables).
    health_checks:
        Run ``meta["health"]`` guards attached to tasks (default True).
    """

    def __init__(
        self,
        n_workers: int = 4,
        policy: str = "priority",
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        task_timeout: float | None = None,
        stall_timeout: float | None = None,
        health_checks: bool = True,
        watchdog_poll_s: float = 0.02,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.policy = policy
        self.retry = retry
        self.fault_plan = fault_plan
        self.task_timeout = task_timeout
        self.stall_timeout = stall_timeout
        self.health_checks = health_checks
        self.watchdog_poll_s = watchdog_poll_s

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        """Run every task; returns the execution :class:`Trace`.

        *graph* may be an eager :class:`TaskGraph` or a streaming
        :class:`~repro.runtime.program.GraphProgram`; programs are
        expanded window by window as predecessors complete, keeping
        graph construction off the critical path.

        Task failures are wrapped in a :class:`RuntimeFailure` carrying
        the partial trace; the watchdog (when armed) additionally
        converts hangs into structured timeout/stall/deadlock failures
        instead of blocking forever.

        With *journal* (a
        :class:`~repro.resilience.journal.TaskJournal`), tasks the
        journal already records as completed are skipped up front, and
        every task that completes (and passes its health guard) is
        journaled before its successors are released.
        """
        engine = ExecutionEngine(
            n_workers=self.n_workers,
            frontier=CentralFrontier(self.policy),
            retry=self.retry,
            fault_plan=self.fault_plan,
            task_timeout=self.task_timeout,
            stall_timeout=self.stall_timeout,
            health_checks=self.health_checks,
            watchdog_poll_s=self.watchdog_poll_s,
            thread_name="repro-worker",
        )
        return engine.run(graph, journal=journal)
