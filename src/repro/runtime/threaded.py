"""Real-thread execution of task graphs.

The executor mirrors the paper's runtime on actual ``threading``
threads: a shared ready queue (priority with look-ahead, see
:mod:`repro.runtime.scheduler`), workers that pop a ready task, run its
closure, then release successor tasks whose last dependency finished.

NumPy releases the GIL inside its array kernels, so coarse tasks do
overlap on real multicore hardware; on a 1-core CI box this executor
still fully validates the dependency and locking logic (races would
corrupt the factorization, which the test suite cross-checks against
the sequential execution and the simulated executor).
"""

from __future__ import annotations

import threading
import time

from repro.counters import add_sync, add_words
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.trace import TaskRecord, Trace

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Execute a numeric task graph with a pool of worker threads.

    Parameters
    ----------
    n_workers:
        Number of worker threads (the paper's "available cores").
    policy:
        Ready-queue policy, ``"priority"`` (default, the paper's
        look-ahead scheduling via task priorities) or ``"fifo"``.
    """

    def __init__(self, n_workers: int = 4, policy: str = "priority") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.policy = policy

    def run(self, graph: TaskGraph) -> Trace:
        """Run every task; returns the execution :class:`Trace`.

        Raises the first exception any task raised, after all workers
        have stopped.
        """
        n = len(graph.tasks)
        indeg = graph.indegrees()
        ready = ReadyQueue(self.policy)
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        remaining = n
        errors: list[BaseException] = []
        records: list[TaskRecord] = []
        ran_on: dict[int, int] = {}
        t0 = time.perf_counter()

        for t, d in enumerate(indeg):
            if d == 0:
                ready.push(graph.tasks[t])

        def worker(core: int) -> None:
            nonlocal remaining
            while True:
                with work_available:
                    while not ready and remaining > 0 and not errors:
                        work_available.wait()
                    if remaining == 0 or errors:
                        work_available.notify_all()
                        return
                    task = ready.pop()
                # Account inter-worker synchronization: one sync (and the
                # task's input volume) per predecessor that ran elsewhere.
                remote = sum(1 for p in graph.preds[task.tid] if ran_on.get(p, core) != core)
                if remote:
                    add_sync(remote)
                    add_words(int(task.cost.words))
                start = time.perf_counter() - t0
                try:
                    if task.fn is not None:
                        task.fn()
                except BaseException as exc:  # noqa: BLE001 - propagate to caller
                    with work_available:
                        errors.append(exc)
                        remaining -= 1
                        work_available.notify_all()
                    return
                end = time.perf_counter() - t0
                with work_available:
                    ran_on[task.tid] = core
                    records.append(TaskRecord(task.tid, task.name, task.kind, core, start, end))
                    for s in graph.succs[task.tid]:
                        indeg[s] -= 1
                        if indeg[s] == 0:
                            ready.push(graph.tasks[s])
                    remaining -= 1
                    work_available.notify_all()

        threads = [
            threading.Thread(target=worker, args=(c,), name=f"repro-worker-{c}", daemon=True)
            for c in range(self.n_workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        return Trace(records, self.n_workers)
