"""Task fusion: decouple the unit of dispatch from the unit of semantics.

On the paper's tall-skinny regime a panel decomposes into many *tiny*
tasks — TSLU/TSQR leaves and merge ladders, thin ``trsm``/``gemm``
updates — each running for microseconds.  Per-task dispatch cost
(scheduler bookkeeping on the threaded backend, a pipe round-trip per
descriptor on the process backend) then dominates the kernels
themselves.  This module collapses such tasks into **super-tasks**
after the builders run, so the unit the executor schedules (and the
unit the worker pool receives per pipe write) is sized to the hardware
while the task graph the builders emit — and everything proved about
it — is unchanged in meaning:

* a super-task's closure runs its members' closures in original task
  order (a valid schedule: every intra-group dependency points from a
  lower to a higher tid);
* a super-task's descriptor is ``("fused", {"ops": [...]})`` — the
  members' descriptors, executed back-to-back by one worker over the
  shared arena with **one** pipe round-trip (see
  :func:`repro.runtime.ops.run_op`);
* its declared footprint is the union of the members' footprints and
  its dependencies are the members' out-of-group dependencies, so the
  static race proof, the DAG lint and the dynamic footprint sanitizer
  in :mod:`repro.verify` apply to the fused graph unmodified;
* ``op_sync`` mirrors and health guards chain in member order and run
  once per super-task; journal, retry, deadline and fault-injection
  semantics all act at super-task granularity.

**Which tasks fuse.**  Groups grow by contracting dependency edges of
the condensed graph, greedily and deterministically, up to *max_ops*
members.  An edge ``u -> v`` is contracted only when no *other* path
``u`` |rarr| ``v`` exists — the classic condition under which edge
contraction keeps a DAG acyclic.  That single rule subsumes chain
fusion (``trsm`` + its row of ``gemm`` updates), in-tree fusion (a
panel's merge ladder, then the leaves once all their consumers are in
the group) and column fusion (a ``U`` task plus its column of
updates).  Because contraction preserves acyclicity and every original
edge survives as a condensed edge, every conflicting pair of
super-tasks inherits a happens-before path from the original proof —
fused graphs stay race-free *by construction*, and ``repro.verify``
re-proves it from scratch.

Groups never mix dispatch modes (members must uniformly carry
``meta["op"]`` descriptors, and uniformly carry closures), never cross
window boundaries of a streaming :class:`GraphProgram` (fusion is a
per-window rewrite, so fused streamed and fused eager builds stay
task-for-task identical), and never include bookkeeping (``X``) tasks
— checkpoints and permutation epilogues keep their identity, names and
journal semantics.

Granularity is a tunable: ``max_ops=1`` is the identity, larger values
trade intra-panel parallelism for dispatch savings.  The autotuner in
:mod:`repro.machine.autotune` picks it per (shape, b, Tr) from the
calibrated machine model and the measured pipe round-trip cost.
"""

from __future__ import annotations

import heapq

from repro.runtime.graph import TaskGraph
from repro.runtime.program import GraphProgram, as_program
from repro.runtime.task import Cost, Task, TaskKind

__all__ = ["FUSED_KERNEL", "fuse_graph", "fuse_program", "fusable_task"]

#: Kernel name carried by super-task costs.  Unknown to the lint flop
#: tables on purpose: a fused cost is the member sum, not a closed form.
FUSED_KERNEL = "fused"


def fusable_task(task: Task) -> bool:
    """Whether *task* may join a super-task.

    Bookkeeping (``X``) tasks — checkpoint snapshots, permutation
    epilogues — and tasks without a declared footprint stay singletons:
    their names are resume keys and their side effects (disk, journal)
    must not ride inside a batched descriptor.
    """
    return task.kind is not TaskKind.X and task.has_footprint


def _chain_fns(fns):
    def fused_fn() -> None:
        for fn in fns:
            fn()

    return fused_fn


def _chain_syncs(syncs):
    def fused_sync() -> None:
        for sync in syncs:
            sync()

    return fused_sync


def _chain_guards(guards):
    """Run every member guard; a fatal verdict wins, else the first event."""

    def fused_guard():
        first = None
        for guard in guards:
            verdict = guard()
            if verdict is not None:
                if verdict.fatal:
                    return verdict
                if first is None:
                    first = verdict
        return first

    return fused_guard


class _Grouping:
    """Condensed view of one window: groups of task ids plus group edges.

    Group ids are the minimum member tid, so ids are stable under
    contraction and iteration in id order is deterministic.
    """

    def __init__(self, graph: TaskGraph, start: int, end: int) -> None:
        self.members: dict[int, list[int]] = {t: [t] for t in range(start, end)}
        self.gpreds: dict[int, set[int]] = {t: set() for t in range(start, end)}
        self.gsuccs: dict[int, set[int]] = {t: set() for t in range(start, end)}
        self.fusable: dict[int, bool] = {}
        self.has_op: dict[int, bool] = {}
        self.has_fn: dict[int, bool] = {}
        for t in range(start, end):
            task = graph.tasks[t]
            self.fusable[t] = fusable_task(task)
            self.has_op[t] = "op" in task.meta
            self.has_fn[t] = task.fn is not None
            for p in graph.preds[t]:
                if p >= start:
                    self.gpreds[t].add(p)
                    self.gsuccs[p].add(t)

    def _alternate_path(self, u: int, v: int) -> bool:
        """Is ``v`` reachable from ``u`` other than via the direct edge?"""
        stack = [s for s in self.gsuccs[u] if s != v]
        seen = set(stack)
        while stack:
            x = stack.pop()
            if x == v:
                return True
            for s in self.gsuccs[x]:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return False

    def _contract(self, u: int, v: int) -> int:
        """Merge groups *u* and *v* (an edge ``u -> v``); returns the id."""
        keep, drop = (u, v) if u < v else (v, u)
        self.members[keep].extend(self.members.pop(drop))
        for mapping in (self.fusable, self.has_op, self.has_fn):
            mapping.pop(drop)
        preds = (self.gpreds[keep] | self.gpreds.pop(drop)) - {keep, drop}
        succs = (self.gsuccs[keep] | self.gsuccs.pop(drop)) - {keep, drop}
        self.gpreds[keep] = preds
        self.gsuccs[keep] = succs
        for p in preds:
            self.gsuccs[p].discard(drop)
            self.gsuccs[p].add(keep)
        for s in succs:
            self.gpreds[s].discard(drop)
            self.gpreds[s].add(keep)
        return keep

    def fuse(self, max_ops: int) -> None:
        """Greedy deterministic edge contraction up to *max_ops* members."""
        worklist = sorted(self.members)
        for v in worklist:
            if v not in self.members:
                continue  # already merged into an earlier group
            merged = True
            while merged:
                merged = False
                if not self.fusable[v]:
                    break
                for u in sorted(self.gpreds[v]):
                    if not self.fusable[u]:
                        continue
                    if self.has_op[u] != self.has_op[v] or self.has_fn[u] != self.has_fn[v]:
                        continue
                    if len(self.members[u]) + len(self.members[v]) > max_ops:
                        continue
                    if self._alternate_path(u, v):
                        continue
                    v = self._contract(u, v)
                    merged = True
                    break

    def emission_order(self) -> list[int]:
        """Kahn order over groups, ties broken by group id (min tid)."""
        indeg = {g: len(ps) for g, ps in self.gpreds.items()}
        heap = [g for g, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        order: list[int] = []
        while heap:
            g = heapq.heappop(heap)
            order.append(g)
            for s in sorted(self.gsuccs[g]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(heap, s)
        if len(order) != len(self.members):
            raise ValueError("fusion produced a cyclic condensed graph (bug)")
        return order


def _append_group(
    source: TaskGraph, member_tids: list[int], target: TaskGraph, mapping: dict[int, int]
) -> int:
    """Append one group (in source-tid order) to *target*; update *mapping*."""
    member_tids = sorted(member_tids)
    group = set(member_tids)
    deps = sorted(
        {
            mapping[p]
            for t in member_tids
            for p in source.preds[t]
            if p not in group
        }
    )
    if len(member_tids) == 1:
        task = source.tasks[member_tids[0]]
        new_tid = target.add(
            task.name,
            task.kind,
            task.cost,
            fn=task.fn,
            deps=deps,
            priority=task.priority,
            iteration=task.iteration,
            idempotent=task.idempotent,
            **task.meta,
        )
        mapping[task.tid] = new_tid
        return new_tid

    tasks = [source.tasks[t] for t in member_tids]
    first = tasks[0]
    largest = max(tasks, key=lambda t: (t.cost.flops, t.cost.words))
    cost = Cost(
        FUSED_KERNEL,
        m=largest.cost.m,
        n=largest.cost.n,
        k=largest.cost.k,
        flops=sum(t.cost.flops for t in tasks),
        words=sum(t.cost.words for t in tasks),
        library=first.cost.library,
    )
    meta: dict = {
        "reads": frozenset().union(*(t.reads for t in tasks)),
        "writes": frozenset().union(*(t.writes for t in tasks)),
        # Member names, in execution order: what the trace/journal
        # tooling needs to relate a super-task back to the paper's DAG.
        "fused": tuple(t.name for t in tasks),
    }
    fn = None
    if all(t.fn is not None for t in tasks):
        fn = _chain_fns([t.fn for t in tasks])
    if all("op" in t.meta for t in tasks):
        meta["op"] = (FUSED_KERNEL, {"ops": [t.meta["op"] for t in tasks]})
    syncs = [t.meta["op_sync"] for t in tasks if "op_sync" in t.meta]
    if syncs:
        meta["op_sync"] = _chain_syncs(syncs)
    guards = [t.meta["health"] for t in tasks if "health" in t.meta]
    if guards:
        meta["health"] = _chain_guards(guards)
    corrupts = [t.meta["corrupt"] for t in tasks if "corrupt" in t.meta]
    if corrupts:
        meta["corrupt"] = _chain_fns(corrupts)
    name = "fused{" + "+".join(t.name for t in tasks) + "}"
    new_tid = target.add(
        name,
        first.kind,
        cost,
        fn=fn,
        deps=deps,
        priority=max(t.priority for t in tasks),
        iteration=first.iteration,
        idempotent=all(t.idempotent for t in tasks),
        **meta,
    )
    for t in member_tids:
        mapping[t] = new_tid
    return new_tid


def _fuse_range(
    source: TaskGraph,
    start: int,
    end: int,
    target: TaskGraph,
    mapping: dict[int, int],
    max_ops: int,
) -> None:
    grouping = _Grouping(source, start, end)
    grouping.fuse(max_ops)
    for gid in grouping.emission_order():
        _append_group(source, grouping.members[gid], target, mapping)


def fuse_program(source, *, max_ops: int = 8) -> GraphProgram:
    """Wrap *source* (a program or eager graph) in a fusing program.

    The returned :class:`GraphProgram` has the same name, window count
    and look-ahead as *source*; emitting window *w* first emits the
    source window, then appends its fused rewrite.  Cross-window
    dependencies are remapped through the accumulated member-to-super
    mapping, so they land on the right super-tasks.  ``max_ops <= 1``
    returns *source* unchanged (fusion disabled).
    """
    source = as_program(source)
    if max_ops <= 1:
        return source
    mapping: dict[int, int] = {}

    def emit(window, graph, tracker) -> None:
        if window < source.emitted:
            start, end = source.windows[window]
        else:
            start = len(source.graph.tasks)
            source.emit_next()
            end = len(source.graph.tasks)
        _fuse_range(source.graph, start, end, graph, mapping, max_ops)

    return GraphProgram(source.name, source.n_windows, emit, lookahead=source.lookahead)


def fuse_graph(graph: TaskGraph, *, max_ops: int = 8) -> TaskGraph:
    """Fused rewrite of an eager graph (one window spanning every task)."""
    return fuse_program(as_program(graph), max_ops=max_ops).materialize()
