"""Task and cost descriptors.

A :class:`Task` couples an optional numeric closure (``fn``) with a
:class:`Cost` descriptor.  Builders in :mod:`repro.core` and
:mod:`repro.baselines` emit the *same* graph in two modes:

* numeric — ``fn`` mutates shared NumPy buffers; the threaded executor
  runs it for real results;
* symbolic — ``fn is None``; only the cost metadata exists, which lets
  the simulated executor price paper-scale problems (``10^6 x 500``)
  without doing the arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TaskKind", "Cost", "Task"]


class TaskKind(enum.Enum):
    """Task classes of the paper's Algorithms 1 and 2.

    ``P``  panel/TSLU/TSQR reduction step (paper: red),
    ``L``  block column of L via ``dtrsm`` (paper: yellow),
    ``U``  permute + block row of U via ``dtrsm``,
    ``S``  trailing-matrix update via ``dgemm``/``dlarfb`` (paper: green),
    ``X``  bookkeeping (final left permutations, copies).
    """

    P = "P"
    L = "L"
    U = "U"
    S = "S"
    X = "X"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Cost:
    """What a task costs, independent of who executes it.

    Parameters
    ----------
    kernel:
        Kernel name used to look up a :class:`~repro.machine.model.KernelProfile`
        (``"gemm"``, ``"getf2"``, ``"rgetf2"``, ``"geqr3"``, ``"tpqrt_ts"``, ...).
    m, n, k:
        Kernel dimensions; their meaning follows the kernel's BLAS/LAPACK
        signature (``k`` is the inner/panel dimension for ``gemm``-like
        kernels and 0 when unused).
    flops:
        Floating-point operations the task performs.
    words:
        Words (8-byte elements) of memory traffic the task generates;
        drives the roofline/bandwidth model and the communication
        counters.  For zero-flop tasks (row swaps, candidate copies)
        this is the entire cost.
    library:
        Which "library personality" prices this task on the machine
        model: ``"repro"`` (our kernels), ``"mkl"``, ``"acml"``,
        ``"plasma"``.  Lets one machine model rank all the competitors
        the paper compares.
    """

    kernel: str
    m: int = 0
    n: int = 0
    k: int = 0
    flops: float = 0.0
    words: float = 0.0
    library: str = "repro"


@dataclass
class Task:
    """One schedulable unit of work.

    ``priority`` is a static hint: larger runs earlier among *ready*
    tasks (dependencies always dominate).  Builders encode the paper's
    look-ahead rule by boosting the panel tasks and the updates of
    block column ``K+1``.

    ``idempotent`` declares that re-running ``fn`` after a partial or
    failed attempt is safe (the task reads shared state and overwrites
    only its own output, e.g. a TSLU leaf copying candidate rows into
    its workspace slot).  The retry machinery in
    :mod:`repro.resilience.recovery` only re-runs idempotent tasks —
    or failures injected before the closure ran.

    ``meta`` carries optional resilience hooks: ``meta["health"]`` (a
    zero-argument guard returning ``None`` or a
    :class:`~repro.resilience.events.ResilienceEvent`) and
    ``meta["corrupt"]`` (a zero-argument fault-injection target).

    ``meta["reads"]`` / ``meta["writes"]`` are the task's *declared
    footprint*: frozensets of block keys recorded by
    :class:`~repro.runtime.graph.BlockTracker` (or set directly by a
    builder for tasks with hand-wired dependencies).  They are the
    input of the :mod:`repro.verify` passes — the static race detector
    proves every conflicting pair ordered, and the dynamic sanitizer
    cross-checks declared footprints against the array regions a
    closure actually mutates.  ``meta["col"]`` marks the target block
    column of U/S update tasks (used by the look-ahead lint rule).
    """

    tid: int
    name: str
    kind: TaskKind
    cost: Cost
    fn: Callable[[], None] | None = None
    priority: float = 0.0
    iteration: int = 0
    idempotent: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def reads(self) -> frozenset:
        """Declared read footprint (empty when never recorded)."""
        return self.meta.get("reads", frozenset())

    @property
    def writes(self) -> frozenset:
        """Declared write footprint (empty when never recorded)."""
        return self.meta.get("writes", frozenset())

    @property
    def has_footprint(self) -> bool:
        """True when a read/write footprint was declared for this task."""
        return "reads" in self.meta or "writes" in self.meta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.tid}, {self.name!r}, kind={self.kind.value}, prio={self.priority:g})"
