"""Task-graph runtime.

The paper's algorithms are expressed as *task graphs*: each matrix
operation (a TSLU tree node, a ``dtrsm`` on a block of L, a ``dgemm``
trailing update, ...) is a task; edges are data dependencies discovered
from the blocks each task reads and writes.  Graphs come in two forms —
an eager :class:`~repro.runtime.graph.TaskGraph` or a streaming
:class:`~repro.runtime.program.GraphProgram` emitting one panel window
at a time — and either can be

* executed by real threads (:class:`~repro.runtime.threaded.ThreadedExecutor`)
  for numerical results and concurrency validation, or
* replayed in virtual time on a modelled multicore machine
  (:class:`~repro.runtime.simulated.SimulatedExecutor`) to reproduce
  the paper's GFLOP/s measurements and execution diagrams at full
  paper-scale dimensions.

All executors are thin front-ends over one
:class:`~repro.runtime.engine.ExecutionEngine` that owns the task
lifecycle (frontier, journal skip, retry, fault injection, health
guards, tracing, watchdog).
"""

from repro.runtime.engine import CentralFrontier, ExecutionEngine, StealingFrontier
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.process import ProcessExecutor
from repro.runtime.program import GraphProgram
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.simulated import SimulatedExecutor
from repro.runtime.stealing import WorkStealingExecutor
from repro.runtime.task import Cost, Task, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from repro.runtime.trace import TaskRecord, Trace

__all__ = [
    "BlockTracker",
    "CentralFrontier",
    "Cost",
    "ExecutionEngine",
    "GraphProgram",
    "ProcessExecutor",
    "ReadyQueue",
    "SimulatedExecutor",
    "StealingFrontier",
    "Task",
    "TaskGraph",
    "TaskKind",
    "TaskRecord",
    "ThreadedExecutor",
    "Trace",
    "WorkStealingExecutor",
]
