"""Work-stealing execution of task graphs.

An alternative to the centralized ready queue of
:class:`~repro.runtime.threaded.ThreadedExecutor`: each worker owns a
deque; tasks released by a completion are pushed to the completing
worker's own deque (producer-consumer locality, the heuristic later
PLASMA/StarPU-era runtimes adopted), and idle workers steal from the
tail of a victim's deque.

The executor exists for the scheduling ablation: on task graphs with
wide fan-out the centralized queue's global priority order buys the
paper's look-ahead behaviour, while stealing trades that order for less
contention.  Numerical results are identical either way — dependencies
are always respected.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.counters import add_sync
from repro.resilience.events import ResilienceEvent
from repro.resilience.faults import InjectedFault
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task
from repro.runtime.trace import TaskRecord, Trace

__all__ = ["WorkStealingExecutor"]


class WorkStealingExecutor:
    """Execute a numeric task graph with per-worker deques and stealing.

    Parameters
    ----------
    n_workers:
        Number of worker threads.
    seed:
        Seed for the (deterministic) victim-selection sequence.
    """

    def __init__(self, n_workers: int = 4, seed: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.seed = seed

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        n = len(graph.tasks)
        indeg = graph.indegrees()
        deques: list[deque[Task]] = [deque() for _ in range(self.n_workers)]
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        remaining = n
        errors: list[BaseException] = []
        records: list[TaskRecord] = []
        events: list[ResilienceEvent] = []
        t0 = time.perf_counter()

        skipped: set[int] = set()
        if journal is not None:
            done_names = journal.bind(graph)
            if done_names:
                skipped = {t.tid for t in graph.tasks if t.name in done_names}
        if skipped:
            events.append(
                ResilienceEvent(
                    "resume",
                    detail=(
                        f"resumed from journal: skipping {len(skipped)}/{n} "
                        "completed tasks"
                    ),
                    value=float(len(skipped)),
                )
            )
            remaining = n - len(skipped)
            for tid in graph.topological_order():
                if tid in skipped:
                    for s in graph.succs[tid]:
                        indeg[s] -= 1

        # Seed: distribute the initial ready set round-robin, highest
        # priority first so every worker starts near the critical path.
        roots = sorted(
            (t for t, d in enumerate(indeg) if d == 0 and t not in skipped),
            key=lambda t: -graph.tasks[t].priority,
        )
        for i, t in enumerate(roots):
            deques[i % self.n_workers].append(graph.tasks[t])

        def try_pop(core: int) -> Task | None:
            """Own deque first (LIFO for locality), then steal (FIFO)."""
            own = deques[core]
            if own:
                return own.pop()
            # Deterministic victim scan starting from a seeded offset.
            for off in range(1, self.n_workers):
                victim = (core + self.seed + off) % self.n_workers
                if deques[victim]:
                    add_sync()
                    return deques[victim].popleft()
            return None

        def worker(core: int) -> None:
            nonlocal remaining
            while True:
                with work_available:
                    task = try_pop(core)
                    while task is None and remaining > 0 and not errors:
                        work_available.wait()
                        task = try_pop(core)
                    if task is None:
                        work_available.notify_all()
                        return
                start = time.perf_counter() - t0
                try:
                    if task.fn is not None:
                        task.fn()
                except BaseException as exc:  # noqa: BLE001 - propagate
                    if not isinstance(exc, RuntimeFailure):
                        kind = "injected" if isinstance(exc, InjectedFault) else "task_error"
                        with lock:
                            partial = Trace(list(records), self.n_workers, list(events))
                        wrapped = RuntimeFailure(
                            f"task {task.name!r} failed: {exc}",
                            task=task.name,
                            tid=task.tid,
                            failure_kind=kind,
                            trace=partial,
                        )
                        wrapped.__cause__ = exc
                        exc = wrapped
                    with work_available:
                        errors.append(exc)
                        remaining -= 1
                        work_available.notify_all()
                    return
                end = time.perf_counter() - t0
                if journal is not None:
                    try:
                        journal.record(task)
                    except Exception as exc:
                        with work_available:
                            errors.append(
                                RuntimeFailure(
                                    f"journal write failed after task {task.name!r}: {exc}",
                                    task=task.name,
                                    tid=task.tid,
                                    failure_kind="task_error",
                                )
                            )
                            remaining -= 1
                            work_available.notify_all()
                        return
                with work_available:
                    records.append(TaskRecord(task.tid, task.name, task.kind, core, start, end))
                    released = []
                    for s in graph.succs[task.tid]:
                        indeg[s] -= 1
                        if indeg[s] == 0 and s not in skipped:
                            released.append(graph.tasks[s])
                    # Locality: freshly released tasks go to my deque,
                    # highest priority last so my LIFO pop sees it first.
                    for t in sorted(released, key=lambda t: t.priority):
                        deques[core].append(t)
                    remaining -= 1
                    work_available.notify_all()

        threads = [
            threading.Thread(target=worker, args=(c,), name=f"repro-steal-{c}", daemon=True)
            for c in range(self.n_workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        return Trace(records, self.n_workers, events)
