"""Work-stealing execution of task graphs.

An alternative to the centralized ready queue of
:class:`~repro.runtime.threaded.ThreadedExecutor`: each worker owns a
deque; tasks released by a completion are pushed to the completing
worker's own deque (producer-consumer locality, the heuristic later
PLASMA/StarPU-era runtimes adopted), and idle workers steal from the
tail of a victim's deque.

The executor exists for the scheduling ablation: on task graphs with
wide fan-out the centralized queue's global priority order buys the
paper's look-ahead behaviour, while stealing trades that order for less
contention.  Numerical results are identical either way — dependencies
are always respected.

Since the :class:`~repro.runtime.engine.ExecutionEngine` refactor the
stealing policy lives in
:class:`~repro.runtime.engine.StealingFrontier` and this class is a
thin front-end — which buys it full option parity with the other
executors: ``retry=`` / ``fault_plan=`` / ``health_checks=`` /
watchdog timeouts, journal skip with the same ``resume`` event, and
streaming :class:`~repro.runtime.program.GraphProgram` sources.
"""

from __future__ import annotations

from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.runtime.engine import ExecutionEngine, StealingFrontier
from repro.runtime.graph import TaskGraph
from repro.runtime.trace import Trace

__all__ = ["WorkStealingExecutor"]


class WorkStealingExecutor:
    """Execute a numeric task graph with per-worker deques and stealing.

    Parameters
    ----------
    n_workers:
        Number of worker threads.
    seed:
        Seed for the (deterministic) victim-selection sequence.
    retry / fault_plan / task_timeout / stall_timeout / health_checks:
        The same resilience options as
        :class:`~repro.runtime.threaded.ThreadedExecutor` — provided by
        the shared engine.
    """

    def __init__(
        self,
        n_workers: int = 4,
        seed: int = 0,
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        task_timeout: float | None = None,
        stall_timeout: float | None = None,
        health_checks: bool = True,
        watchdog_poll_s: float = 0.02,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.seed = seed
        self.retry = retry
        self.fault_plan = fault_plan
        self.task_timeout = task_timeout
        self.stall_timeout = stall_timeout
        self.health_checks = health_checks
        self.watchdog_poll_s = watchdog_poll_s

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        """Run every task; returns the execution :class:`Trace`.

        Accepts an eager :class:`TaskGraph` or a streaming
        :class:`~repro.runtime.program.GraphProgram`.  Journal, retry,
        fault-injection and health-guard semantics match
        :class:`~repro.runtime.threaded.ThreadedExecutor` exactly
        (shared engine); only the ready-task distribution differs.
        """
        engine = ExecutionEngine(
            n_workers=self.n_workers,
            frontier=StealingFrontier(self.n_workers, self.seed),
            retry=self.retry,
            fault_plan=self.fault_plan,
            task_timeout=self.task_timeout,
            stall_timeout=self.stall_timeout,
            health_checks=self.health_checks,
            watchdog_poll_s=self.watchdog_poll_s,
            thread_name="repro-steal",
        )
        return engine.run(graph, journal=journal)
