"""True-multicore execution: a persistent process pool over shared memory.

Python threads serialize kernel *dispatch* on the GIL even though NumPy
releases it inside array kernels; on many small tiles the dispatch path
dominates and the threaded backend cannot scale with physical cores.
:class:`ProcessExecutor` runs kernels in worker **processes** instead:

* the matrix and all panel workspace buffers live in a shared-memory
  arena (:mod:`repro.runtime.shm`) that every worker maps zero-copy;
* tasks cross the process boundary as compact *descriptors* — kernel
  name plus block coordinates and buffer specs (``meta["op"]``, built by
  the CALU/CAQR/TSLU/TSQR builders; see :mod:`repro.runtime.ops`) —
  never as pickled closures or matrix blocks;
* scheduling stays in the parent: the executor reuses the unified
  :class:`~repro.runtime.engine.ExecutionEngine` with one lightweight
  *proxy thread* per worker process.  A proxy pops a ready task from the
  frontier exactly like a threaded worker, ships the descriptor down its
  worker's pipe, blocks until the completion message comes back, then
  runs the task's ``meta["op_sync"]`` hook to mirror worker-side results
  (pivots, degradation flags, Q factors) into parent-side workspace
  objects.  Journal, retry, fault injection, health guards, streaming
  ``GraphProgram`` windows and the watchdog therefore behave identically
  across the threaded and process backends.

Tasks without a descriptor (checkpoint snapshots, ABFT checksum hooks,
row-swap epilogues, arbitrary test graphs) run their ordinary closure
inline in the proxy thread — correct, just not parallel across
processes.  Worker death is detected by the pipe/liveness poll, the
worker is respawned, and the failure surfaces as a structured
:class:`~repro.resilience.recovery.RuntimeFailure` with
``failure_kind="worker_death"`` so an idempotent task is retried by the
usual :class:`~repro.resilience.recovery.RetryPolicy` machinery.
"""

from __future__ import annotations

import multiprocessing
import os

# Module-style import: counters itself imports repro.runtime.sync, so a
# from-import here would fail when counters is the first module loaded.
from repro import counters as _counters
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.engine import CentralFrontier, ExecutionEngine
from repro.runtime.graph import TaskGraph
from repro.runtime.sync import make_lock, note_roundtrip
from repro.runtime.trace import Trace

__all__ = ["ProcessExecutor", "resolve_executor"]

_POLL_S = 0.05  # liveness poll interval while awaiting a completion


def _worker_main(conn) -> None:
    """Worker process loop: receive descriptors, run kernels, ack.

    Each op runs under a fresh per-worker :class:`~repro.counters.Counters`
    whose snapshot ships back with the ack, so kernel flops and
    tile-store traffic performed *in the worker* still land in the
    parent's active accumulator (merged by :meth:`_WorkerPool.run`) —
    counting stays backend-agnostic.
    """
    from repro.runtime.ops import run_op

    tallies = _counters.Counters()
    while True:
        try:
            op = conn.recv()
        except (EOFError, OSError):
            break
        if op is None:
            break
        try:
            with _counters.counting(tallies):
                run_op(op)
        except BaseException as exc:  # ship the failure to the parent
            try:
                conn.send((False, exc, tallies.snapshot()))
            except Exception:
                conn.send(
                    (False, RuntimeError(f"{type(exc).__name__}: {exc!r}"), tallies.snapshot())
                )
        else:
            conn.send((True, None, tallies.snapshot()))
        tallies.reset()
    conn.close()


class _WorkerPool:
    """Persistent worker processes, one duplex pipe each.

    Workers start lazily on first use (so constructing an executor is
    free) and persist across ``run()`` calls — process spawn cost is
    paid once, matching the paper's persistent Pthreads pool.

    The pool is **thread-safe at worker granularity**: every
    send/receive cycle on worker *core* holds that core's lock, so
    several :class:`~repro.runtime.engine.ExecutionEngine` runs (a
    service multiplexing concurrent requests) can share one pool — two
    proxies targeting the same worker simply interleave whole ops
    instead of corrupting the pipe protocol.

    *respawn_governor* (optional; see
    :class:`~repro.service.supervisor.RespawnGovernor`) rate-limits
    worker respawns: a crash-looping workload cannot livelock the pool
    by burning every cycle on process spawns.  When the governor denies
    a respawn the worker stays down and the failure says so — the next
    ``run()`` on that core re-asks the governor, so the denial is
    temporary by construction.
    """

    def __init__(
        self,
        n_workers: int,
        start_method: str | None = None,
        respawn_governor=None,
    ) -> None:
        self.n_workers = n_workers
        if start_method is None:
            # fork shares the parent's module state (no re-import per
            # worker) and is the fast path on Linux; fall back to the
            # platform default elsewhere.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: list = [None] * n_workers
        self._conns: list = [None] * n_workers
        self._locks = [make_lock("process.core") for _ in range(n_workers)]
        self._closed = False
        self.respawn_governor = respawn_governor
        self.respawns = 0  # lifetime respawn count (post-death restarts)
        self.deaths = 0  # lifetime worker deaths observed

    def _ensure(self, core: int) -> None:
        proc = self._procs[core]
        if proc is not None and proc.is_alive():
            return
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-proc-{core}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[core] = proc
        self._conns[core] = parent_conn

    def _admit(self, core: int) -> None:
        """Make worker *core* runnable, honouring the respawn throttle.

        A worker left dead by a throttled respawn must not be silently
        revived by the next request — that would reduce the crash-loop
        guard to a one-request delay.  Spawned-but-dead workers re-ask
        the governor; denial fails fast with the same structured
        ``worker_death`` the original death raised.
        """
        proc = self._procs[core]
        if proc is not None and not proc.is_alive():
            governor = self.respawn_governor
            if governor is not None and not governor.allow_respawn(core):
                raise RuntimeFailure(
                    f"worker process {core} is down and its respawn throttled"
                    " (crash-loop guard)",
                    failure_kind="worker_death",
                )
            self._reap(core)
            self._ensure(core)
            self.respawns += 1
            return
        self._ensure(core)

    def run(self, core: int, op: tuple) -> None:
        """Execute one descriptor on worker *core*; raises its error."""
        if self._closed:
            raise ValueError("worker pool is closed")
        with self._locks[core]:
            self._admit(core)
            conn = self._conns[core]
            try:
                # The per-core lock is deliberately held across this
                # pipe round-trip: it *is* the worker's serialization.
                # One send/recv cycle per descriptor batch — a fused
                # super-task ships its whole op list in this one write.
                note_roundtrip()
                _counters.add_roundtrip()
                conn.send(op)
                while not conn.poll(_POLL_S):
                    if not self._procs[core].is_alive():
                        raise EOFError
                ok, err, tallies = conn.recv()
                active = _counters.current_counters()
                if active is not None and tallies:
                    active.merge(tallies)
            except (EOFError, OSError, BrokenPipeError) as exc:
                # The worker died mid-task (OOM kill, segfault, kill -9).
                # Respawn it so the pool stays whole — unless the
                # governor says the pool is crash-looping — then surface
                # a structured failure the RetryPolicy can act on.
                exitcode = getattr(self._procs[core], "exitcode", None)
                self._reap(core)
                self.deaths += 1
                governor = self.respawn_governor
                throttled = governor is not None and not governor.allow_respawn(core)
                if not throttled:
                    self._ensure(core)
                    self.respawns += 1
                failure = RuntimeFailure(
                    f"worker process {core} died running op {op[0]!r}"
                    f" (exitcode={exitcode})"
                    + ("; respawn throttled (crash-loop guard)" if throttled else ""),
                    failure_kind="worker_death",
                )
                failure.__cause__ = exc
                raise failure from exc
        if not ok:
            raise err

    # ------------------------------------------------------------------
    # Supervision surface (heartbeats)
    # ------------------------------------------------------------------
    def worker_alive(self, core: int) -> bool | None:
        """Liveness of worker *core*: ``None`` = never spawned (lazy)."""
        proc = self._procs[core]
        return None if proc is None else proc.is_alive()

    def liveness(self) -> list:
        """Per-core liveness snapshot (see :meth:`worker_alive`)."""
        return [self.worker_alive(c) for c in range(self.n_workers)]

    def ensure_alive(self, core: int) -> bool:
        """Respawn a *spawned-but-dead* worker off the request path.

        Called by the supervisor's heartbeat so a worker killed while
        idle is back before the next task targets it.  Respects the
        respawn governor; returns True when a respawn happened.  Never
        spawns a worker that was not yet started (lazy spawn stays
        lazy), and never touches a core mid-request (the core lock is
        only taken when free).
        """
        if self._closed:
            return False
        if not self._locks[core].acquire(blocking=False):
            return False  # a request holds the core; its run() recovers
        try:
            proc = self._procs[core]
            if proc is None or proc.is_alive():
                return False
            self.deaths += 1
            governor = self.respawn_governor
            if governor is not None and not governor.allow_respawn(core):
                return False
            self._reap(core)
            self._ensure(core)
            self.respawns += 1
            return True
        finally:
            self._locks[core].release()

    def _reap(self, core: int) -> None:
        conn = self._conns[core]
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
        proc = self._procs[core]
        if proc is not None:
            try:
                proc.terminate()
                proc.join(timeout=1.0)
            except Exception:
                pass
        self._procs[core] = None
        self._conns[core] = None

    @property
    def started(self) -> bool:
        return any(p is not None for p in self._procs)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for core, conn in enumerate(self._conns):
            proc = self._procs[core]
            if conn is not None and proc is not None and proc.is_alive():
                try:
                    conn.send(None)
                except Exception:
                    pass
        for core in range(self.n_workers):
            proc = self._procs[core]
            if proc is not None:
                proc.join(timeout=2.0)
            self._reap(core)


class ProcessExecutor:
    """Execute a task graph on a pool of worker *processes*.

    Drop-in alongside :class:`~repro.runtime.threaded.ThreadedExecutor`
    (same constructor surface, same ``run(graph, journal=)``, same
    structured-failure semantics) but with kernels dispatched to real
    OS processes over a shared-memory tile plane, so the factorization
    scales with physical cores instead of GIL time slices.

    Tasks carrying ``meta["op"]`` descriptors run in workers; tasks
    without one run inline in the parent-side proxy thread.  The pool is
    persistent across runs; call :meth:`close` (or use the executor as a
    context manager) when done.

    Parameters mirror :class:`ThreadedExecutor`, plus:

    start_method:
        ``multiprocessing`` start method (default: ``"fork"`` where
        available, else the platform default).
    respawn_governor:
        Optional rate limiter (an object with ``allow_respawn(core)``)
        consulted before respawning a dead worker, so a crash-looping
        workload cannot livelock the pool; see
        :class:`~repro.service.supervisor.RespawnGovernor`.
    """

    def __init__(
        self,
        n_workers: int = 4,
        policy: str = "priority",
        *,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        task_timeout: float | None = None,
        stall_timeout: float | None = None,
        health_checks: bool = True,
        watchdog_poll_s: float = 0.02,
        start_method: str | None = None,
        respawn_governor=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.policy = policy
        self.retry = retry
        self.fault_plan = fault_plan
        self.task_timeout = task_timeout
        self.stall_timeout = stall_timeout
        self.health_checks = health_checks
        self.watchdog_poll_s = watchdog_poll_s
        self.start_method = start_method
        self.respawn_governor = respawn_governor
        self._pool: _WorkerPool | None = None

    @property
    def pool(self) -> _WorkerPool:
        if self._pool is None or self._pool._closed:
            self._pool = _WorkerPool(
                self.n_workers, self.start_method, respawn_governor=self.respawn_governor
            )
        return self._pool

    def run(self, graph: TaskGraph, journal=None) -> Trace:
        """Run every task; returns the execution :class:`Trace`.

        Accepts eager :class:`TaskGraph` and streaming
        :class:`~repro.runtime.program.GraphProgram` sources, with the
        same journal/retry/fault/health/watchdog semantics as the
        threaded backend (see :class:`ThreadedExecutor.run`); kernel
        work for descriptor-carrying tasks happens in worker processes.
        """
        engine = ExecutionEngine(
            n_workers=self.n_workers,
            frontier=CentralFrontier(self.policy),
            retry=self.retry,
            fault_plan=self.fault_plan,
            task_timeout=self.task_timeout,
            stall_timeout=self.stall_timeout,
            health_checks=self.health_checks,
            watchdog_poll_s=self.watchdog_poll_s,
            thread_name="repro-proc-proxy",
            process_pool=self.pool,
        )
        return engine.run(graph, journal=journal)

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> ProcessExecutor:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def default_process_workers() -> int:
    """Worker count for ``executor="process"``: the machine's cores, capped."""
    return max(1, min(os.cpu_count() or 1, 8))


def resolve_executor(executor, n_workers: int | None = None, *, hints: dict | None = None):
    """Resolve an ``executor=`` argument to ``(instance, owned)``.

    Accepts the strings ``"threaded"``, ``"stealing"``, ``"process"``
    and ``"auto"`` (returning a fresh instance the caller owns and
    should close) or any executor object (returned as-is,
    ``owned=False``).  Drivers use this so ``calu(A,
    executor="process")`` works without the caller managing pool
    lifetime.

    ``"auto"`` asks the machine-model autotuner
    (:func:`repro.machine.autotune.autotune`) to pick the backend;
    *hints* (``kind``/``m``/``n``/``b``/``tr``) sharpen the decision,
    and the chosen :class:`~repro.machine.autotune.DispatchDecision` is
    attached to the returned instance as ``autotune_decision`` so
    callers can audit (and fuse to) the choice.
    """
    if not isinstance(executor, str):
        return executor, False
    if n_workers is None:
        n_workers = 4
    if executor == "auto":
        from repro.machine.autotune import autotune

        decision = autotune(**(hints or {}))
        instance, owned = resolve_executor(decision.backend, n_workers)
        instance.autotune_decision = decision
        return instance, owned
    if executor == "threaded":
        from repro.runtime.threaded import ThreadedExecutor

        return ThreadedExecutor(n_workers), True
    if executor == "stealing":
        from repro.runtime.stealing import WorkStealingExecutor

        return WorkStealingExecutor(n_workers), True
    if executor == "process":
        return ProcessExecutor(n_workers), True
    raise ValueError(
        f"unknown executor {executor!r}; expected 'threaded', 'stealing', "
        "'process' or 'auto'"
    )
