"""Ready-task selection policies.

Both executors keep a single ready queue; the policy decides which
ready task a free core takes next.  The paper uses dynamic scheduling
with a *look-ahead of 1* — the builders encode that rule in the static
``priority`` field of each task (panel tasks and the updates of block
column ``K+1`` outrank the rest), so the queue itself only needs to be
a stable max-priority heap.  A FIFO policy is kept for the scheduling
ablation benchmarks.
"""

from __future__ import annotations

import heapq

from repro.runtime.task import Task

__all__ = ["ReadyQueue"]


class ReadyQueue:
    """Stable priority queue of ready tasks.

    ``policy="priority"`` pops the highest-priority task (insertion
    order breaks ties); ``policy="fifo"`` ignores priorities entirely.
    """

    def __init__(self, policy: str = "priority") -> None:
        if policy not in ("priority", "fifo"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self._heap: list[tuple[float, int, Task]] = []
        self._seq = 0

    def push(self, task: Task) -> None:
        key = -task.priority if self.policy == "priority" else 0.0
        heapq.heappush(self._heap, (key, self._seq, task))
        self._seq += 1

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
