"""Tile stores: pluggable slow-memory planes behind one spec protocol.

The paper's sequential claim — flat-tree TSLU/TSQR move the optimal
number of words between *fast* and *slow* memory — only means something
once the runtime can actually put the matrix in a slow memory bigger
than RAM.  A :class:`TileStore` is that plane.  Two backends share one
``(segment, byte_offset, shape, dtype)`` spec protocol:

* :class:`ArenaTileStore` — the existing
  :class:`~repro.runtime.shm.SharedArena` (segments are
  ``multiprocessing.shared_memory`` names), the fast plane the process
  backend factors on in place;
* :class:`MmapTileStore` — ``numpy.memmap`` regions of spill files in a
  scratch directory (segments are absolute file paths), the out-of-core
  plane TSLU/TSQR stream million-row panels through.

Because specs stay 4-tuples and the segment name says which kind it is
(file paths are absolute), :func:`attach_array` resolves either kind —
so the descriptor-dispatched ops in :mod:`repro.runtime.ops` and their
worker processes are oblivious to where a buffer actually lives.

Explicit transfers, measured traffic
------------------------------------
Out-of-core drivers move data with :meth:`TileStore.load` (slow ->
fast: returns a private in-RAM copy) and :meth:`TileStore.store` (fast
-> slow: writes a block back), never by holding the whole plane mapped.
Both count bytes — per store in :attr:`TileStore.io` and globally in
:mod:`repro.counters` (``store_read_bytes``/``store_write_bytes``) — so
measured traffic can be checked against the closed forms in
:mod:`repro.analysis.io_model` (``benchmarks/bench_outofcore.py`` gates
the comparison).  :meth:`TileStore.sub` row-slices a 2-D spec, which is
how a driver addresses one leaf block of a panel without mapping the
rest.

Lifecycle mirrors :class:`SharedArena`: the creating driver owns the
store and calls :meth:`destroy` (idempotent; also hooked to garbage
collection and interpreter exit) when the results have been copied —
or streamed — out.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro import counters as _counters
from repro.runtime.shm import SharedArena
from repro.runtime.shm import attach_array as _attach_shm

__all__ = [
    "StoreIO",
    "TileStore",
    "ArenaTileStore",
    "MmapTileStore",
    "open_store",
    "attach_array",
    "spec_nbytes",
]

_ALIGN = 64  # keep tile offsets cache-line aligned, like the arena


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def spec_nbytes(spec: tuple) -> int:
    """Payload bytes described by a buffer spec."""
    _, _, shape, dtype = spec
    return int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))


@dataclass
class StoreIO:
    """Byte-level transfer accounting for one store."""

    read_bytes: int = 0
    write_bytes: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def snapshot(self) -> dict[str, int]:
        return {
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "reads": self.reads,
            "writes": self.writes,
        }


class TileStore:
    """Common surface of the tile-plane backends.

    Concrete stores implement :meth:`alloc`, :meth:`spec`,
    :meth:`_read_into` / :meth:`_write_from` and :meth:`destroy`; the
    base class provides placement, row-windowing and the instrumented
    load/store transfers.
    """

    #: Backend tag ("shm" or "mmap").
    kind: str = "abstract"

    def __init__(self) -> None:
        self.io = StoreIO()

    # -- allocation ----------------------------------------------------
    def alloc(self, shape, dtype=np.float64, *, zero: bool = True) -> np.ndarray:
        raise NotImplementedError

    def spec(self, array: np.ndarray) -> tuple:
        raise NotImplementedError

    def reserve(self, shape, dtype=np.float64) -> tuple:
        """Allocate a region and return only its spec (no live view).

        This is the out-of-core allocation path: the caller addresses
        the region through :meth:`sub`/:meth:`load`/:meth:`store`
        windows and never holds the whole region mapped or resident.
        """
        return self.spec(self.alloc(shape, dtype, zero=False))

    def place(self, array: np.ndarray) -> np.ndarray:
        """Copy *array* into the store; returns a live view of it."""
        out = self.alloc(array.shape, array.dtype, zero=False)
        out[...] = array
        return out

    # -- windowing -----------------------------------------------------
    @staticmethod
    def sub(spec: tuple, r0: int, r1: int) -> tuple:
        """Spec of rows ``[r0, r1)`` of a C-contiguous 2-D (or 1-D) spec."""
        name, offset, shape, dtype = spec
        if not 0 <= r0 <= r1 <= shape[0]:
            raise ValueError(f"row window [{r0}, {r1}) outside shape {shape}")
        row_bytes = int(np.dtype(dtype).itemsize * int(np.prod(shape[1:], dtype=np.int64)))
        return (name, offset + r0 * row_bytes, (r1 - r0, *shape[1:]), dtype)

    # -- instrumented transfers ---------------------------------------
    def load(self, spec: tuple, out: np.ndarray | None = None) -> np.ndarray:
        """Copy the region *spec* into fast memory; counts read bytes.

        *out* recycles a caller-provided buffer of the right shape.
        """
        name, offset, shape, dtype = spec
        if out is None:
            out = np.empty(shape, dtype=np.dtype(dtype))
        elif out.shape != tuple(shape):
            raise ValueError(f"out buffer {out.shape} does not match spec {shape}")
        self._read_into(spec, out)
        nbytes = out.nbytes
        self.io.read_bytes += nbytes
        self.io.reads += 1
        _counters.add_store_read(nbytes)
        return out

    def store(self, spec: tuple, values: np.ndarray) -> None:
        """Write *values* to the region *spec*; counts written bytes."""
        _, _, shape, dtype = spec
        values = np.ascontiguousarray(values, dtype=np.dtype(dtype))
        if values.shape != tuple(shape):
            raise ValueError(f"values {values.shape} do not match spec {shape}")
        self._write_from(spec, values)
        nbytes = values.nbytes
        self.io.write_bytes += nbytes
        self.io.writes += 1
        _counters.add_store_write(nbytes)

    # -- backend hooks -------------------------------------------------
    def _read_into(self, spec: tuple, out: np.ndarray) -> None:
        raise NotImplementedError

    def _write_from(self, spec: tuple, values: np.ndarray) -> None:
        raise NotImplementedError

    def destroy(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "TileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


class ArenaTileStore(TileStore):
    """The shared-memory arena as a tile store.

    Used when a driver wants the store API (placement, windows,
    measured transfers) over the in-RAM plane — e.g. to run the
    out-of-core code path at in-memory sizes for parity testing, or to
    share one allocation surface between resident and spilled runs.
    """

    kind = "shm"

    def __init__(self, arena: SharedArena | None = None, segment_bytes: int | None = None):
        super().__init__()
        if arena is None:
            arena = SharedArena(**({"segment_bytes": segment_bytes} if segment_bytes else {}))
            self._owned = True
        else:
            self._owned = False
        self.arena = arena

    def alloc(self, shape, dtype=np.float64, *, zero: bool = True) -> np.ndarray:
        return self.arena.alloc(shape, dtype, zero=zero)

    def spec(self, array: np.ndarray) -> tuple:
        return self.arena.spec(array)

    def _view(self, spec: tuple) -> np.ndarray:
        """Zero-copy view of *spec*; resolves owned segments directly."""
        name, offset, shape, dtype = spec
        for seg in self.arena._segments:
            if seg.name == name:
                return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf, offset=offset)
        return _attach_shm(spec)

    def _read_into(self, spec: tuple, out: np.ndarray) -> None:
        out[...] = self._view(spec)

    def _write_from(self, spec: tuple, values: np.ndarray) -> None:
        self._view(spec)[...] = values

    def destroy(self) -> None:
        if self._owned:
            self.arena.destroy()


#: Live mmap stores, destroyed best-effort at interpreter exit (the
#: shm module's atexit hook plays the same role for arenas).
_LIVE_MMAP_STORES: "weakref.WeakSet[MmapTileStore]" = weakref.WeakSet()


class MmapTileStore(TileStore):
    """A spill-directory tile store over ``numpy.memmap`` regions.

    Segments are plain files in a private scratch directory (under
    *spill_dir*, default the system temp dir), carved up by the same
    64-byte-aligned bump allocator as the arena.  A spec's segment name
    is the file's absolute path, so :func:`attach_array` — and hence
    every descriptor-dispatched op and worker process — resolves mmap
    specs exactly like shared-memory ones.

    Allocation extends the file with :func:`os.truncate` (sparse: no
    page is touched, so a million-row reservation costs no RAM and no
    disk until written).  :meth:`load`/:meth:`store` map only the
    addressed window and drop the mapping immediately, which keeps both
    resident set *and address space* bounded by the window size — the
    property the memory-capped CI run (``resource.setrlimit``) checks.

    ``segment_bytes`` bounds workspace segments; a larger single
    allocation gets a segment of its own, exactly like the arena.
    """

    kind = "mmap"

    def __init__(
        self,
        spill_dir: str | os.PathLike | None = None,
        segment_bytes: int = 64 << 20,
    ) -> None:
        super().__init__()
        self.segment_bytes = int(segment_bytes)
        self.root = tempfile.mkdtemp(prefix="repro-tiles-", dir=spill_dir)
        self._paths: list[str] = []
        self._used: list[int] = []
        self._sizes: list[int] = []
        self._destroyed = False
        self._finalizer = weakref.finalize(self, MmapTileStore._cleanup, self.root)
        _LIVE_MMAP_STORES.add(self)

    # -- allocation ----------------------------------------------------
    def _new_segment(self, min_bytes: int) -> int:
        size = max(self.segment_bytes, _aligned(min_bytes))
        path = os.path.join(self.root, f"seg{len(self._paths)}.bin")
        with open(path, "wb") as fh:
            fh.truncate(size)
        self._paths.append(path)
        self._used.append(0)
        self._sizes.append(size)
        return len(self._paths) - 1

    def _carve(self, shape, dtype) -> tuple:
        if self._destroyed:
            raise ValueError("tile store already destroyed")
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = max(1, int(dt.itemsize * int(np.prod(shape, dtype=np.int64))))
        seg_idx = None
        for i, size in enumerate(self._sizes):
            if self._used[i] + nbytes <= size:
                seg_idx = i
                break
        if seg_idx is None:
            seg_idx = self._new_segment(nbytes)
        offset = self._used[seg_idx]
        self._used[seg_idx] = _aligned(offset + nbytes)
        return (self._paths[seg_idx], offset, tuple(shape), dt.str)

    def reserve(self, shape, dtype=np.float64) -> tuple:
        """Allocate a file region; returns its spec without mapping it.

        The region reads as zeros until written (sparse file), matching
        the arena's zeroed-allocation contract at zero cost.
        """
        return self._carve(shape, dtype)

    def alloc(self, shape, dtype=np.float64, *, zero: bool = True) -> np.ndarray:
        """Allocate and return a *persistent* mapped view.

        For workspace-sized buffers (the ``ShmBinding`` protocol);
        bulk panel data should use :meth:`reserve` + windowed
        :meth:`load`/:meth:`store` instead, which never hold a mapping.
        A fresh file region already reads as zeros, so ``zero`` only
        matters for recycled segments — the bump allocator never
        recycles, making both paths equivalent here.
        """
        spec = self._carve(shape, dtype)
        return self._window(spec, mode="r+")

    def spec(self, array: np.ndarray) -> tuple:
        """Spec of a view returned by :meth:`alloc`/:meth:`place` (or a
        contiguous leading sub-view of one)."""
        if not array.flags["C_CONTIGUOUS"]:
            raise ValueError("spec requires a C-contiguous store array")
        # Walk to the root mapping: a sliced memmap inherits the parent's
        # ``offset``/``filename`` attributes unadjusted, so only the root
        # (whose buffer is the raw mmap) anchors file offsets correctly.
        base = array
        while isinstance(base.base, np.ndarray):
            base = base.base
        if not isinstance(base, np.memmap) or getattr(base, "filename", None) is None:
            raise ValueError("array does not live in this tile store")
        path = str(base.filename)
        if path not in self._paths:
            raise ValueError("array does not live in this tile store")
        base_addr = base.__array_interface__["data"][0]
        addr = array.__array_interface__["data"][0]
        offset = int(base.offset) + (addr - base_addr)
        return (path, offset, tuple(array.shape), array.dtype.str)

    # -- transfers -----------------------------------------------------
    def _window(self, spec: tuple, mode: str = "r+") -> np.memmap:
        path, offset, shape, dtype = spec
        shape = tuple(shape) if shape else (1,)
        if int(np.prod(shape, dtype=np.int64)) == 0:
            # numpy.memmap rejects empty maps; synthesize an empty view.
            return np.empty(shape, dtype=np.dtype(dtype))  # type: ignore[return-value]
        return np.memmap(path, dtype=np.dtype(dtype), mode=mode, offset=offset, shape=shape)

    def _read_into(self, spec: tuple, out: np.ndarray) -> None:
        mm = self._window(spec, mode="r")
        try:
            out[...] = mm
        finally:
            del mm  # drop the mapping with the last reference

    def _write_from(self, spec: tuple, values: np.ndarray) -> None:
        mm = self._window(spec, mode="r+")
        try:
            mm[...] = values
        finally:
            del mm

    # -- teardown ------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(self._used)

    @staticmethod
    def _cleanup(root: str) -> None:
        shutil.rmtree(root, ignore_errors=True)

    def destroy(self) -> None:
        """Remove the spill directory (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        self._finalizer()

    def __del__(self) -> None:
        try:
            self.destroy()
        except Exception:
            pass


def open_store(store, **kwargs) -> tuple[TileStore, bool]:
    """Resolve a ``store=`` driver argument to ``(instance, owned)``.

    Accepts ``"shm"``/``"mmap"`` (fresh store, caller owns and destroys
    it), a :class:`TileStore` (as-is, not owned), or a
    :class:`SharedArena` (wrapped, not owned).
    """
    if isinstance(store, TileStore):
        return store, False
    if isinstance(store, SharedArena):
        return ArenaTileStore(store), False
    if store == "shm":
        return ArenaTileStore(), True
    if store == "mmap":
        return MmapTileStore(**kwargs), True
    raise ValueError(f"unknown tile store {store!r}; expected 'shm', 'mmap' or a TileStore")


# ---------------------------------------------------------------------------
# Worker-side attach (both backends)
# ---------------------------------------------------------------------------

#: Whole-file maps cached per process, keyed by path; remapped when the
#: file has grown past a cached mapping.
_MMAP_ATTACHED: dict[str, np.memmap] = {}


def attach_array(spec: tuple) -> np.ndarray:
    """Decode a spec from *either* backend into a zero-copy view.

    Shared-memory segment names resolve through
    :func:`repro.runtime.shm.attach_array`; absolute-path names map the
    spill file (``numpy.memmap``, shared mapping, so cross-process
    writes are coherent through the page cache).  Whole-file mappings
    are cached per process like shm handles.
    """
    name, offset, shape, dtype = spec
    if not os.path.isabs(name):
        return _attach_shm(spec)
    dt = np.dtype(dtype)
    nbytes = int(dt.itemsize * int(np.prod(shape, dtype=np.int64)))
    mm = _MMAP_ATTACHED.get(name)
    if mm is None or offset + nbytes > mm.nbytes:
        mm = np.memmap(name, dtype=np.uint8, mode="r+", shape=(os.path.getsize(name),))
        _MMAP_ATTACHED[name] = mm
    return np.ndarray(tuple(shape), dtype=dt, buffer=mm, offset=offset)
