"""Descriptor-dispatched kernel operations for the process backend.

A task crossing the process boundary is not a closure — closures capture
parent-process arrays and workspace objects that do not exist in a
worker.  Instead, builders attach ``meta["op"] = (opname, payload)`` to
each task: the kernel name plus block coordinates and tile-plane buffer
specs (see :mod:`repro.runtime.shm` and
:mod:`repro.runtime.tilestore`).  A worker receives the descriptor,
attaches the referenced buffers as zero-copy views and runs
:func:`run_op`, which performs *exactly* the sequence of kernel calls
the task's in-process closure would have — same slices, same kernels,
same order — so threaded and process executions of the same graph
produce bitwise-identical factors (enforced by ``repro.verify`` and
``tests/runtime/test_process_backend.py``).

Specs resolve through the tile-store dispatcher, so a buffer may live
in a ``multiprocessing.shared_memory`` segment *or* an mmap-backed
spill file (:class:`~repro.runtime.tilestore.MmapTileStore`) — the ops
are oblivious to which plane backs them.

Workspace state that lives in Python objects on the threaded path
(tournament candidate slots, pivot sequences, implicit-Q factors) is
carried in arena buffers here, with small conventions:

* a candidate slot is a ``(rows, gidx, count)`` buffer triple; only the
  first ``count[0]`` rows are valid;
* a pivot buffer stores ``[length, swap_0, swap_1, ...]``;
* a panel's ``flags`` buffer is ``[degraded, recomputed]``.

Core-layer imports happen inside the op bodies: this module is imported
by the runtime package (and by bare worker processes), and the core
builders import the runtime — lazy imports keep that acyclic.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.runtime.tilestore import attach_array

__all__ = ["run_op", "OPS"]


# ---------------------------------------------------------------------------
# TSLU: tournament pivoting
# ---------------------------------------------------------------------------


def _op_tslu_leaf(p: dict) -> None:
    from repro.core.tslu import _select_pivots

    A = attach_array(p["a"])
    rows = attach_array(p["rows"])
    gidx = attach_array(p["gidx"])
    count = attach_array(p["count"])
    block = A[p["r0"] : p["r1"], p["c0"] : p["c1"]]
    sel = _select_pivots(block, p["leaf_kernel"])
    n = len(sel)
    rows[:n] = block[sel]
    gidx[:n] = (p["r0"] - p["k0"]) + sel
    count[0] = n


def _op_tslu_merge(p: dict) -> None:
    from repro.core.tslu import _select_pivots

    stacked = []
    gidxs = []
    for rspec, gspec, cspec in p["srcs"]:
        c = int(attach_array(cspec)[0])
        stacked.append(attach_array(rspec)[:c].copy())
        gidxs.append(attach_array(gspec)[:c].copy())
    rows = np.vstack(stacked)
    gidx = np.concatenate(gidxs)
    drows = attach_array(p["dst"][0])
    dgidx = attach_array(p["dst"][1])
    dcount = attach_array(p["dst"][2])
    bk = p["bk"]
    if not np.isfinite(rows).all():
        # Corrupted candidates: degrade the panel, stop the poison —
        # the same verdict _merge_fn reaches on the threaded path.
        attach_array(p["flags"])[0] = 1
        n = min(len(rows), bk)
        drows[:n] = rows[:n]
        dgidx[:n] = gidx[:n]
        dcount[0] = n
        return
    sel = _select_pivots(rows, p["leaf_kernel"])
    n = len(sel)
    drows[:n] = rows[sel]
    dgidx[:n] = gidx[sel]
    dcount[0] = n


def _op_tslu_finalize(p: dict) -> None:
    from repro.core.trees import TreeKind
    from repro.core.tslu import _recompute_tournament
    from repro.kernels.blas import laswp
    from repro.kernels.lu import getf2, getf2_nopiv, perm_from_piv_rows

    A = attach_array(p["a"])
    k0, m, c0, c1 = p["k0"], p["m"], p["c0"], p["c1"]
    nc = int(attach_array(p["root"][2])[0])
    cand = attach_array(p["root"][0])[:nc]
    gidx = attach_array(p["root"][1])[:nc]
    flags = attach_array(p["flags"])
    degraded = bool(flags[0]) or nc == 0 or not np.isfinite(cand).all()
    if degraded and p["allow_recompute"] and p["chunks"]:
        chunks = [SimpleNamespace(index=i, r0=r0, r1=r1) for i, r0, r1 in p["chunks"]]
        replayed = _recompute_tournament(
            A, k0, c0, c1, chunks, TreeKind(p["tree"]), p["arity"], p["leaf_kernel"]
        )
        if replayed is not None:
            gidx = replayed
            degraded = False
            flags[0] = 0
            flags[1] = 1
    if degraded:
        flags[0] = 1
        work = A[k0:m, c0:c1].copy()
        piv = getf2(work)
    else:
        piv = perm_from_piv_rows(gidx, m - k0)
    piv_buf = attach_array(p["piv"])
    piv_buf[0] = len(piv)
    piv_buf[1 : 1 + len(piv)] = piv
    laswp(A[k0:m, c0:c1], piv)
    r = min(c1 - c0, m - k0)
    getf2_nopiv(A[k0 : k0 + r, c0:c1])


# ---------------------------------------------------------------------------
# CALU: L / U / S updates
# ---------------------------------------------------------------------------


def _op_calu_l(p: dict) -> None:
    from repro.kernels.blas import trsm_runn

    A = attach_array(p["a"])
    k0, c0, c1 = p["k0"], p["c0"], p["c1"]
    trsm_runn(A[k0 : k0 + (c1 - c0), c0:c1], A[p["r0"] : p["r1"], c0:c1])


def _op_calu_u(p: dict) -> None:
    from repro.kernels.blas import laswp, trsm_llnu

    A = attach_array(p["a"])
    piv_buf = attach_array(p["piv"])
    piv = piv_buf[1 : 1 + int(piv_buf[0])]
    m, k0, bk = p["m"], p["k0"], p["bk"]
    j0, j1 = p["j0"], p["j1"]
    laswp(A[k0:m, j0:j1], piv)
    trsm_llnu(A[k0 : k0 + bk, p["c0"] : p["c1"]], A[k0 : k0 + bk, j0:j1])


def _op_calu_s(p: dict) -> None:
    from repro.kernels.blas import gemm

    A = attach_array(p["a"])
    k0, bk = p["k0"], p["bk"]
    gemm(
        A[p["r0"] : p["r1"], p["j0"] : p["j1"]],
        A[p["r0"] : p["r1"], p["c0"] : p["c1"]],
        A[k0 : k0 + bk, p["j0"] : p["j1"]],
    )


# ---------------------------------------------------------------------------
# TSQR / CAQR: panel trees and trailing updates
# ---------------------------------------------------------------------------


def _op_tsqr_leaf(p: dict) -> None:
    from repro.kernels.qr import extract_v, geqr2, geqr3, larft

    A = attach_array(p["a"])
    block = A[p["r0"] : p["r1"], p["c0"] : p["c1"]]
    if p["kernel"] == "geqr3":
        T = geqr3(block)
    else:
        tau = geqr2(block)
        T = larft(extract_v(block), tau)
    attach_array(p["v"])[...] = extract_v(block)
    attach_array(p["t"])[...] = T


def _op_tsqr_merge(p: dict) -> None:
    from repro.kernels.structured import tpqrt

    A = attach_array(p["a"])
    c0, c1, bk = p["c0"], p["c1"], p["bk"]
    for d0, s0, vb_spec, t_spec in p["pairs"]:
        Rtop = A[d0 : d0 + bk, c0:c1]
        Bsrc = A[s0 : s0 + bk, c0:c1]
        T = tpqrt(Rtop, Bsrc, bottom_triangular=True)
        attach_array(vb_spec)[...] = np.triu(Bsrc)
        attach_array(t_spec)[...] = T


def _op_caqr_leaf_update(p: dict) -> None:
    from repro.kernels.qr import larfb_left_t

    A = attach_array(p["a"])
    larfb_left_t(
        attach_array(p["v"]), attach_array(p["t"]), A[p["r0"] : p["r1"], p["j0"] : p["j1"]]
    )


def _op_caqr_merge_update(p: dict) -> None:
    from repro.kernels.structured import tpmqrt_left_t

    A = attach_array(p["a"])
    j0, j1 = p["j0"], p["j1"]
    for top0, bot0, r, vb_spec, t_spec in p["pairs"]:
        tpmqrt_left_t(
            attach_array(vb_spec),
            attach_array(t_spec),
            A[top0 : top0 + r, j0:j1],
            A[bot0 : bot0 + r, j0:j1],
        )


# ---------------------------------------------------------------------------
# Batched dispatch
# ---------------------------------------------------------------------------


def _op_fused(p: dict) -> None:
    """Run a super-task's member descriptors back-to-back.

    The whole list crosses the pipe in one write (see
    :mod:`repro.runtime.fuse`); the worker executes the members in
    fusion order over the shared arena with no intermediate round-trip,
    acking once at the end.  Member order is the members' original task
    order, which every intra-group dependency respects.
    """
    for op in p["ops"]:
        run_op(op)


def _op_noop(p: dict) -> None:
    """Do nothing: the round-trip calibration probe.

    :func:`repro.machine.autotune.measure_roundtrip` times a stream of
    these through a live worker pipe to price one descriptor dispatch —
    the latency term the autotuner weighs against kernel work when
    picking backend and fusion granularity.
    """


OPS = {
    "tslu_leaf": _op_tslu_leaf,
    "tslu_merge": _op_tslu_merge,
    "tslu_finalize": _op_tslu_finalize,
    "calu_l": _op_calu_l,
    "calu_u": _op_calu_u,
    "calu_s": _op_calu_s,
    "tsqr_leaf": _op_tsqr_leaf,
    "tsqr_merge": _op_tsqr_merge,
    "caqr_leaf_update": _op_caqr_leaf_update,
    "caqr_merge_update": _op_caqr_merge_update,
    "fused": _op_fused,
    "noop": _op_noop,
}


def run_op(op: tuple[str, dict]) -> None:
    """Execute one ``(opname, payload)`` descriptor in this process."""
    name, payload = op
    try:
        fn = OPS[name]
    except KeyError:
        raise ValueError(f"unknown op {name!r}") from None
    fn(payload)
