"""Execution traces and schedule diagnostics.

Both executors record one :class:`TaskRecord` per task.  The resulting
:class:`Trace` answers the questions the paper's Figures 3-4 pose —
how much idle time does the panel factorization create, and does
raising ``Tr`` remove it — and renders ASCII Gantt charts equivalent to
those figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.runtime.task import TaskKind

__all__ = ["TaskRecord", "Trace"]

# Gantt glyph per task kind, mirroring the paper's colour code:
# red bar = panel (P), yellow = L, green = trailing update (S).
_GLYPH = {"P": "#", "L": "o", "U": "u", "S": "-", "X": "x"}


@dataclass(frozen=True)
class TaskRecord:
    """Where and when one task ran."""

    tid: int
    name: str
    kind: TaskKind
    core: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An executed schedule: records plus aggregate statistics.

    ``events`` is the structured resilience log — every retry, injected
    fault, degradation, health violation or watchdog finding the run
    produced, as :class:`~repro.resilience.events.ResilienceEvent`
    entries.  Fault-free runs have an empty log.

    ``stats`` carries scheduler-side counters from the
    :class:`~repro.runtime.engine.ExecutionEngine` (peak live tasks,
    windows emitted, seconds spent emitting) — empty for traces built
    by hand or deserialized from old JSON.
    """

    def __init__(
        self,
        records: Iterable[TaskRecord],
        n_cores: int,
        events: Iterable = (),
        stats: dict | None = None,
    ) -> None:
        self.records = sorted(records, key=lambda r: (r.start, r.core))
        self.n_cores = n_cores
        self.events = list(events)
        self.stats = dict(stats) if stats else {}

    @property
    def makespan(self) -> float:
        if not self.records:
            return 0.0
        t0 = min(r.start for r in self.records)
        t1 = max(r.end for r in self.records)
        return t1 - t0

    def busy_time(self, core: int | None = None) -> float:
        """Total busy seconds, over one core or all of them."""
        recs = self.records if core is None else [r for r in self.records if r.core == core]
        return sum(r.duration for r in recs)

    def idle_fraction(self) -> float:
        """Fraction of core-seconds spent idle over the makespan window."""
        span = self.makespan
        if span == 0.0:
            return 0.0
        return 1.0 - self.busy_time() / (span * self.n_cores)

    def resilience_summary(self) -> dict[str, int]:
        """Event counts by kind (``{"retry": 2, "degraded": 1, ...}``)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def retries(self) -> int:
        """Total task attempts beyond the first."""
        return self.resilience_summary().get("retry", 0)

    def degradations(self) -> list:
        """The ``degraded`` events (e.g. panels that fell back to GEPP)."""
        return [ev for ev in self.events if ev.kind == "degraded"]

    def busy_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.records:
            out[r.kind.value] = out.get(r.kind.value, 0.0) + r.duration
        return out

    def gflops(self, flops: float) -> float:
        """Rate in GFLOP/s for an algorithm performing *flops* operations."""
        span = self.makespan
        return flops / span / 1e9 if span > 0 else 0.0

    def validate_schedule(self, graph) -> None:
        """Check core exclusivity and dependency ordering; raise on violation.

        *graph* is the :class:`~repro.runtime.graph.TaskGraph` that was
        executed.  Used heavily in tests: a simulated schedule must
        never overlap two tasks on one core nor start a task before all
        its predecessors finished.
        """
        eps = 1e-12
        per_core: dict[int, list[TaskRecord]] = {}
        for r in self.records:
            per_core.setdefault(r.core, []).append(r)
        for core, recs in per_core.items():
            recs = sorted(recs, key=lambda r: r.start)
            for a, b in zip(recs, recs[1:], strict=False):
                if b.start < a.end - eps:
                    raise AssertionError(
                        f"core {core}: tasks {a.name!r} and {b.name!r} overlap "
                        f"({a.start:.3g}-{a.end:.3g} vs {b.start:.3g}-{b.end:.3g})"
                    )
        end_of = {r.tid: r.end for r in self.records}
        start_of = {r.tid: r.start for r in self.records}
        for t in range(len(graph.tasks)):
            for p in graph.preds[t]:
                # Tasks skipped on a journal resume have no record; the
                # ordering constraint only applies when both ran.
                if t not in start_of or p not in end_of:
                    continue
                if start_of[t] < end_of[p] - eps:
                    raise AssertionError(
                        f"task {graph.tasks[t].name!r} started before "
                        f"predecessor {graph.tasks[p].name!r} finished"
                    )

    # ------------------------------------------------------------------
    # Rendering (paper Figures 3 and 4)
    # ------------------------------------------------------------------
    def gantt(self, width: int = 100) -> str:
        """ASCII Gantt chart: one row per core, time left to right.

        Glyphs: ``#`` panel (P, the paper's red bar), ``o`` compute-L
        (yellow), ``u`` compute-U, ``-`` trailing update (green),
        ``x`` bookkeeping, space = idle.
        """
        span = self.makespan
        if span == 0.0 or not self.records:
            return "(empty trace)"
        t0 = min(r.start for r in self.records)
        rows = []
        for core in range(self.n_cores):
            row = [" "] * width
            for r in self.records:
                if r.core != core or r.duration <= 0:
                    continue
                c0 = int((r.start - t0) / span * width)
                c1 = max(c0 + 1, int((r.end - t0) / span * width))
                glyph = _GLYPH.get(r.kind.value, "?")
                for c in range(c0, min(c1, width)):
                    row[c] = glyph
            rows.append(f"core {core:2d} |{''.join(row)}|")
        legend = "legend: #=panel(P)  o=L  u=U  -=update(S)  x=other  ' '=idle"
        return "\n".join(rows + [legend])

    def summary(self) -> str:
        by_kind = self.busy_by_kind()
        kinds = ", ".join(f"{k}: {v:.3g}s" for k, v in sorted(by_kind.items()))
        line = (
            f"makespan {self.makespan:.4g}s on {self.n_cores} cores, "
            f"idle {100 * self.idle_fraction():.1f}%  ({kinds})"
        )
        res = self.resilience_summary()
        if res:
            line += "  [" + ", ".join(f"{k}: {v}" for k, v in sorted(res.items())) + "]"
        return line

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the trace (metadata + one record per task) to JSON."""
        import json

        return json.dumps(
            {
                "n_cores": self.n_cores,
                "makespan": self.makespan,
                "idle_fraction": self.idle_fraction(),
                "stats": self.stats,
                "events": [ev.to_dict() for ev in self.events],
                "records": [
                    {
                        "tid": r.tid,
                        "name": r.name,
                        "kind": r.kind.value,
                        "core": r.core,
                        "start": r.start,
                        "end": r.end,
                    }
                    for r in self.records
                ],
            }
        )

    @classmethod
    def from_json(cls, data: str) -> "Trace":
        """Inverse of :meth:`to_json`.

        Rebuilds records (with :class:`~repro.runtime.task.TaskKind`
        members) and resilience events, so diagnostics like
        :meth:`resilience_summary` and :meth:`validate_schedule` work
        on a deserialized trace exactly as on the original.
        """
        import json

        from repro.resilience.events import ResilienceEvent

        d = json.loads(data)
        records = [
            TaskRecord(
                tid=int(r["tid"]),
                name=r["name"],
                kind=TaskKind(r["kind"]),
                core=int(r["core"]),
                start=float(r["start"]),
                end=float(r["end"]),
            )
            for r in d.get("records", ())
        ]
        events = [ResilienceEvent.from_dict(ev) for ev in d.get("events", ())]
        return cls(records, int(d["n_cores"]), events, stats=d.get("stats"))

    def to_chrome_tracing(self, time_unit: float = 1e6) -> str:
        """Serialize to the Chrome tracing JSON format.

        Load the output in ``chrome://tracing`` / Perfetto: one row per
        core, one complete event ("ph": "X") per task, durations in
        microseconds (``time_unit`` converts seconds to the display
        unit).
        """
        import json

        events = [
            {
                "name": r.name,
                "cat": r.kind.value,
                "ph": "X",
                "ts": r.start * time_unit,
                "dur": r.duration * time_unit,
                "pid": 0,
                "tid": r.core,
                "args": {"task_id": r.tid},
            }
            for r in self.records
        ]
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
            for core in range(self.n_cores)
        ]
        return json.dumps({"traceEvents": meta + events, "displayTimeUnit": "ms"})

    def to_svg(self, width: int = 960, row_height: int = 22) -> str:
        """Render the schedule as an SVG Gantt chart.

        Colours follow the paper's Figures 3-4: red = panel (P),
        yellow/gold = L, green = trailing update (S); U is blue and
        bookkeeping grey.  Returns the SVG document as a string.
        """
        colors = {"P": "#c0392b", "L": "#e2b007", "U": "#3069a8", "S": "#3d8b4f", "X": "#888888"}
        span = self.makespan
        height = self.n_cores * row_height + 40
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        if span > 0 and self.records:
            t0 = min(r.start for r in self.records)
            label_w = 56
            plot_w = width - label_w - 8
            for core in range(self.n_cores):
                y = 20 + core * row_height
                parts.append(
                    f'<text x="4" y="{y + row_height * 0.7:.1f}" font-size="11" '
                    f'font-family="monospace">core {core}</text>'
                )
                parts.append(
                    f'<rect x="{label_w}" y="{y}" width="{plot_w}" '
                    f'height="{row_height - 3}" fill="#f2f2f2"/>'
                )
            for r in self.records:
                if r.duration <= 0:
                    continue
                x = label_w + (r.start - t0) / span * plot_w
                w = max(0.5, r.duration / span * plot_w)
                y = 20 + r.core * row_height
                color = colors.get(r.kind.value, "#555555")
                parts.append(
                    f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_height - 3}" '
                    f'fill="{color}"><title>{r.name} [{r.kind.value}] '
                    f'{r.start:.4g}-{r.end:.4g}s</title></rect>'
                )
            legend_y = 20 + self.n_cores * row_height + 12
            x = label_w
            for kind, label in (("P", "panel"), ("L", "L"), ("U", "U"), ("S", "update"), ("X", "other")):
                parts.append(f'<rect x="{x}" y="{legend_y - 9}" width="10" height="10" fill="{colors[kind]}"/>')
                parts.append(
                    f'<text x="{x + 14}" y="{legend_y}" font-size="11" font-family="monospace">{label}</text>'
                )
                x += 14 + 8 * len(label) + 16
        parts.append("</svg>")
        return "\n".join(parts)
