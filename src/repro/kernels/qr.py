"""Sequential Householder QR kernels (compact-WY form).

The routines mirror LAPACK's so the correspondence with the paper's
Algorithm 2 is direct:

``larfg``
    Generate one elementary reflector.
``geqr2``
    Unblocked BLAS2 QR — the ``MKL_dgeqr2`` baseline of the paper.
``larft`` / ``larfb_left_t``
    Accumulate the triangular ``T`` factor and apply a block reflector
    ``Q^T = (I - V T V^T)^T`` from the left — the ``dlarfb`` trailing
    update of Algorithm 2 (task S).
``geqr3``
    Recursive QR (Elmroth & Gustavson 1998) — the paper's preferred
    sequential kernel inside TSQR tasks (``dgeqr3``); returns ``T``
    directly so tree nodes can apply the block reflector immediately.
``geqrf``
    Blocked QR — the structure of vendor ``dgeqrf``.

Factored matrices store ``R`` on and above the diagonal and the
Householder vectors ``V`` below it (unit diagonal implicit).
"""

from __future__ import annotations

import math

import numpy as np

from repro.counters import add_call, add_flops

__all__ = [
    "larfg",
    "geqr2",
    "larft",
    "larfb_left_t",
    "geqr3",
    "geqrf",
    "extract_v",
    "extract_r",
    "apply_wy_qt",
    "apply_wy_q",
]


def larfg(x: np.ndarray) -> float:
    """Generate an elementary Householder reflector, in place.

    On entry ``x`` is the column to annihilate.  On exit ``x[0]`` holds
    ``beta`` (the new diagonal entry of ``R``) and ``x[1:]`` holds the
    reflector tail ``v[1:]`` (``v[0] = 1`` implicit).  Returns ``tau``
    such that ``(I - tau v v^T) x_in = beta e_1``.
    """
    m = x.shape[0]
    add_flops(2 * m)
    if m <= 1:
        return 0.0
    alpha = float(x[0])
    xnorm = float(np.linalg.norm(x[1:]))
    if xnorm == 0.0:
        return 0.0
    beta = -math.copysign(math.hypot(alpha, xnorm), alpha)
    tau = (beta - alpha) / beta
    x[1:] /= alpha - beta
    x[0] = beta
    return tau


def geqr2(A: np.ndarray) -> np.ndarray:
    """Unblocked Householder QR, in place. Returns ``tau`` (length ``min(m, n)``).

    BLAS2: each reflector is applied to the trailing columns with one
    matrix-vector product and one rank-1 update, ``2·n²·m`` flops total
    for a tall matrix — memory-bound, the paper's ``dgeqr2`` baseline.
    """
    m, n = A.shape
    r = min(m, n)
    add_call("geqr2")
    tau = np.zeros(r)
    for j in range(r):
        tau[j] = larfg(A[j:, j])
        if tau[j] != 0.0 and j + 1 < n:
            beta = A[j, j]
            A[j, j] = 1.0
            v = A[j:, j]
            w = v @ A[j:, j + 1 :]
            add_flops(4 * (m - j) * (n - j - 1))
            A[j:, j + 1 :] -= tau[j] * np.outer(v, w)
            A[j, j] = beta
    return tau


def larft(V: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Form the upper-triangular ``T`` of the compact-WY representation.

    ``V`` is ``m x k`` unit-lower-trapezoidal (explicit ones on the
    diagonal, zeros above — see :func:`extract_v`).  Returns ``T`` such
    that ``Q = H_1 H_2 ... H_k = I - V T V^T``.
    """
    m, k = V.shape
    add_call("larft")
    T = np.zeros((k, k))
    for j in range(k):
        T[j, j] = tau[j]
        if j > 0 and tau[j] != 0.0:
            # w = V[:, :j]^T v_j ; v_j is zero above row j so restrict rows.
            w = V[j:, :j].T @ V[j:, j]
            add_flops(2 * (m - j) * j + j * j)
            T[:j, j] = -tau[j] * (T[:j, :j] @ w)
    return T


def larfb_left_t(V: np.ndarray, T: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Apply ``Q^T = (I - V T V^T)^T`` to ``C`` from the left, in place.

    This is the ``dlarfb`` call in Algorithm 2's task S: the trailing
    update after a panel (or tree-node) QR.  ``4·m·n·k`` flops to
    leading order — all BLAS3.
    """
    m, k = V.shape
    n = C.shape[1]
    if C.shape[0] != m or T.shape != (k, k):
        raise ValueError(f"larfb shape mismatch: V{V.shape}, T{T.shape}, C{C.shape}")
    add_call("larfb")
    add_flops(4 * m * n * k + k * k * n)
    W = V.T @ C  # k x n
    W = T.T @ W
    C -= V @ W
    return C


def geqr3(A: np.ndarray, threshold: int = 8) -> np.ndarray:
    """Recursive QR (Elmroth-Gustavson), in place. Returns the ``n x n`` ``T``.

    Splits the columns in half, factors the left half recursively,
    applies its block reflector to the right half, factors the trailing
    part, and merges the two ``T`` factors:
    ``T_12 = -T_1 (V_1^T V_2) T_2``.  Almost all flops become BLAS3,
    which is why the paper picks it ("the best results are obtained by
    using recursive ... QR [10]").
    """
    m, n = A.shape
    if m < n:
        raise ValueError(f"geqr3 requires m >= n, got {A.shape}")
    add_call("geqr3")
    if n <= threshold:
        tau = geqr2(A)
        return larft(extract_v(A), tau)
    n1 = n // 2
    T1 = geqr3(A[:, :n1], threshold)
    V1 = extract_v(A[:, :n1])
    larfb_left_t(V1, T1, A[:, n1:])
    T2 = geqr3(A[n1:, n1:], threshold)
    V2 = extract_v(A[n1:, n1:])
    n2 = n - n1
    # T12 = -T1 (V1^T V2) T2, using only the rows where V2 is nonzero.
    add_flops(2 * (m - n1) * n1 * n2 + 2 * n1 * n1 * n2 + 2 * n1 * n2 * n2)
    T12 = -T1 @ (V1[n1:].T @ V2) @ T2
    T = np.zeros((n, n))
    T[:n1, :n1] = T1
    T[:n1, n1:] = T12
    T[n1:, n1:] = T2
    return T


def geqrf(A: np.ndarray, b: int = 64, panel: str = "geqr2") -> list[np.ndarray]:
    """Blocked Householder QR, in place. Returns the per-panel ``T`` factors.

    The reference structure of vendor ``dgeqrf``: factor a ``b``-wide
    panel, accumulate ``T``, apply the block reflector to the trailing
    columns with BLAS3 ``larfb``.
    """
    m, n = A.shape
    r = min(m, n)
    add_call("geqrf")
    Ts: list[np.ndarray] = []
    for k in range(0, r, b):
        bk = min(b, r - k)
        panel_view = A[k:, k : k + bk]
        if panel == "geqr2":
            tau = geqr2(panel_view)
            T = larft(extract_v(panel_view), tau)
        elif panel == "geqr3":
            T = geqr3(panel_view)
        else:
            raise ValueError(f"unknown panel kernel {panel!r}")
        Ts.append(T)
        if k + bk < n:
            larfb_left_t(extract_v(panel_view), T, A[k:, k + bk :])
    return Ts


def extract_v(panel: np.ndarray) -> np.ndarray:
    """Copy the unit-lower-trapezoidal ``V`` out of a factored panel."""
    m, n = panel.shape
    V = np.tril(panel[:, : min(m, n)], -1)
    np.fill_diagonal(V, 1.0)
    return V


def extract_r(panel: np.ndarray) -> np.ndarray:
    """Copy the upper-triangular/trapezoidal ``R`` out of a factored panel."""
    n = panel.shape[1]
    return np.triu(panel[:n, :])


def apply_wy_qt(panel: np.ndarray, T: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Apply ``Q^T`` of a factored panel to ``C`` in place (convenience)."""
    return larfb_left_t(extract_v(panel), T, C)


def apply_wy_q(panel: np.ndarray, T: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Apply ``Q`` (not transposed) of a factored panel to ``C`` in place.

    ``Q = I - V T V^T`` so ``Q C = C - V (T (V^T C))``.
    """
    V = extract_v(panel)
    m, k = V.shape
    n = C.shape[1]
    add_call("larfb_q")
    add_flops(4 * m * n * k + k * k * n)
    W = V.T @ C
    W = T @ W
    C -= V @ W
    return C
