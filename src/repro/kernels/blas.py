"""BLAS-like primitives with flop accounting.

The heavy lifting is delegated to NumPy's vectorized operations (the
HPC-Python idiom: never loop over matrix elements in Python when a
single array expression does the job), but the *algorithms* built on
top of these primitives are entirely our own.

Flop conventions (LAPACK working-note style, real double precision):

===============================  =======================
``gemm``   C ± A·B               ``2·m·n·k``
``trsm``   triangular solve      ``m·n·k`` -> ``n²·m`` (see functions)
``ger``    rank-1 update         ``2·m·n``
``laswp``  row interchanges      0 flops, ``2·n`` words per swap
===============================  =======================
"""

from __future__ import annotations

import numpy as np

from repro.counters import add_call, add_flops, add_words

__all__ = ["gemm", "trsm_llnu", "trsm_runn", "ger", "laswp", "scal_axpy_col"]


def gemm(C: np.ndarray, A: np.ndarray, B: np.ndarray, alpha: float = -1.0, beta: float = 1.0) -> np.ndarray:
    """General matrix multiply-accumulate: ``C <- beta*C + alpha*A@B`` in place.

    This is the trailing-matrix ``task S`` kernel of the paper's
    Algorithm 1 (``dgemm``).

    Parameters
    ----------
    C : (m, n) array, updated in place.
    A : (m, k) array.
    B : (k, n) array.
    alpha, beta : scalars; the common LU-update call is
        ``gemm(C, L, U)`` i.e. ``C -= L@U``.
    """
    m, k = A.shape
    k2, n = B.shape
    if k != k2 or C.shape != (m, n):
        raise ValueError(f"gemm shape mismatch: C{C.shape}, A{A.shape}, B{B.shape}")
    add_call("gemm")
    add_flops(2 * m * n * k)
    if beta == 1.0:
        if alpha == 1.0:
            C += A @ B
        elif alpha == -1.0:
            C -= A @ B
        else:
            C += alpha * (A @ B)
    elif beta == 0.0:
        # LAPACK beta=0 semantics: C's previous contents are ignored,
        # not multiplied — 0 * NaN would poison the product otherwise.
        C[...] = alpha * (A @ B)
    else:
        C *= beta
        C += alpha * (A @ B)
    return C


def trsm_llnu(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` in place in ``B`` — Left, Lower, No-transpose, Unit diagonal.

    Used for computing a block row of U (``task U``):
    ``U_{K,J} = L_{KK}^{-1} A_{K,J}``.

    Implemented by forward substitution over rows, each step a
    vectorized rank-update of the remaining rows.
    """
    k = L.shape[0]
    if L.shape != (k, k) or B.shape[0] != k:
        raise ValueError(f"trsm_llnu shape mismatch: L{L.shape}, B{B.shape}")
    n = B.shape[1]
    add_call("trsm_llnu")
    add_flops(k * (k - 1) * n)  # k-1 axpy rows of length n, twice per flop pair
    for i in range(1, k):
        # B[i] -= L[i, :i] @ B[:i]  (unit diagonal, no division)
        B[i] -= L[i, :i] @ B[:i]
    return B


def trsm_runn(U: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``X U = B`` in place in ``B`` — Right, Upper, No-transpose, Non-unit.

    Used for computing a block column of L (``task L``):
    ``L_{I,K} = A_{I,K} U_{KK}^{-1}``.
    """
    k = U.shape[0]
    if U.shape != (k, k) or B.shape[1] != k:
        raise ValueError(f"trsm_runn shape mismatch: U{U.shape}, B{B.shape}")
    m = B.shape[0]
    add_call("trsm_runn")
    add_flops(m * k * k)  # m·k divisions + m·k·(k-1) mul-adds
    for j in range(k):
        if j:
            B[:, j] -= B[:, :j] @ U[:j, j]
        B[:, j] /= U[j, j]
    return B


def ger(A: np.ndarray, x: np.ndarray, y: np.ndarray, alpha: float = -1.0) -> np.ndarray:
    """Rank-1 update ``A <- A + alpha * outer(x, y)`` in place.

    The inner kernel of unblocked (BLAS2) LU: one call per eliminated
    column.  The paper's claim that each column elimination is a rank-1
    update of the trailing matrix (important for stability) corresponds
    to this kernel.
    """
    m, n = A.shape
    if x.shape != (m,) or y.shape != (n,):
        raise ValueError(f"ger shape mismatch: A{A.shape}, x{x.shape}, y{y.shape}")
    add_call("ger")
    add_flops(2 * m * n)
    if alpha == -1.0:
        A -= np.outer(x, y)
    else:
        A += alpha * np.outer(x, y)
    return A


def scal_axpy_col(A: np.ndarray, j: int) -> None:
    """Eliminate column *j* of the active submatrix of ``A`` in place.

    Scales ``A[j+1:, j]`` by ``1/A[j, j]`` and applies the rank-1
    update to ``A[j+1:, j+1:]``.  This is the body of the classical
    ``getf2`` loop, factored out so that both the pivoted and the
    no-pivoting eliminations share it.
    """
    m, n = A.shape
    piv = A[j, j]
    if piv == 0.0:
        raise ZeroDivisionError(f"zero pivot at position {j}")
    add_flops(m - j - 1)
    A[j + 1 :, j] /= piv
    if j + 1 < n:
        ger(A[j + 1 :, j + 1 :], A[j + 1 :, j], A[j, j + 1 :])


def laswp(A: np.ndarray, piv: np.ndarray, forward: bool = True) -> np.ndarray:
    """Apply a sequence of row interchanges to ``A`` in place (``dlaswp``).

    Parameters
    ----------
    A : (m, n) array.
    piv : int array; ``piv[i] = p`` means "swap row ``i`` with row ``p``"
        applied in increasing ``i`` for ``forward=True`` (factor-time
        order) and decreasing ``i`` otherwise (undo order).

    Raises
    ------
    ValueError
        If any swap target lies outside ``[0, m)`` — a corrupted pivot
        array must fail loudly here (where the resilience guards can
        catch it) instead of silently wrapping via negative indexing.
    """
    m, n = A.shape
    add_call("laswp")
    order = range(len(piv)) if forward else range(len(piv) - 1, -1, -1)
    for i in order:
        p = int(piv[i])
        if not 0 <= p < m:
            raise ValueError(
                f"laswp: corrupted pivot piv[{i}] = {p} out of range for {m} rows"
            )
        if p != i:
            add_words(2 * n)
            A[[i, p]] = A[[p, i]]
    return A
