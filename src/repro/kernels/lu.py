"""Sequential LU factorization kernels.

Three variants, mirroring the routines the paper names:

``getf2``
    Unblocked BLAS2 Gaussian elimination with partial pivoting — the
    LAPACK panel kernel whose poor multicore performance (``MKL_dgetf2``
    in the paper's Figures 5-6) motivates TSLU.
``rgetf2``
    Recursive LU with partial pivoting (Toledo 1997; Gustavson 1997) —
    the paper's preferred *sequential* kernel inside TSLU tasks
    ("the best results are obtained by using recursive LU").
``getrf``
    Blocked right-looking LU — the structure of the vendor ``dgetrf``
    the paper compares against.

All variants factor in place: on return ``A`` holds ``L`` strictly
below the diagonal (unit diagonal implicit) and ``U`` on and above it.
They return the pivot vector in LAPACK ``ipiv`` convention
(``piv[i] = p`` means rows ``i`` and ``p`` were swapped at step ``i``).
"""

from __future__ import annotations

import numpy as np

from repro.counters import add_call, add_comparisons, add_flops
from repro.kernels.blas import gemm, ger, laswp, trsm_llnu

__all__ = ["getf2", "getf2_nopiv", "rgetf2", "getrf", "piv_to_perm", "perm_from_piv_rows"]


def getf2(A: np.ndarray) -> np.ndarray:
    """Unblocked LU with partial pivoting, in place. Returns ``piv``.

    For an ``m x n`` matrix with ``m >= n`` this performs
    ``n²·m − n³/3`` flops (leading order), all of it in BLAS2 ``ger``
    updates — memory-bound, which is exactly why the paper's TSLU
    replaces it on the critical path.
    """
    m, n = A.shape
    r = min(m, n)
    add_call("getf2")
    piv = np.arange(r, dtype=np.int64)
    for j in range(r):
        p = j + int(np.argmax(np.abs(A[j:, j])))
        add_comparisons(m - j - 1)
        piv[j] = p
        if p != j:
            A[[j, p]] = A[[p, j]]
        if A[j, j] == 0.0:
            # Singular column: nothing to eliminate, matching LAPACK's
            # behaviour of leaving an exact zero pivot in place.
            continue
        add_flops(m - j - 1)
        A[j + 1 :, j] /= A[j, j]
        if j + 1 < n:
            ger(A[j + 1 :, j + 1 :], A[j + 1 :, j], A[j, j + 1 :])
    return piv


def getf2_nopiv(A: np.ndarray) -> None:
    """Unblocked LU *without* pivoting, in place.

    Used on a panel whose tournament-selected pivot rows have already
    been swapped to the top: CALU's second TSLU step.
    """
    m, n = A.shape
    add_call("getf2_nopiv")
    for j in range(min(m, n)):
        if A[j, j] == 0.0:
            raise ZeroDivisionError(f"zero pivot at {j} in no-pivoting LU")
        add_flops(m - j - 1)
        A[j + 1 :, j] /= A[j, j]
        if j + 1 < n:
            ger(A[j + 1 :, j + 1 :], A[j + 1 :, j], A[j, j + 1 :])


def rgetf2(A: np.ndarray, threshold: int = 16) -> np.ndarray:
    """Recursive LU with partial pivoting (Toledo), in place. Returns ``piv``.

    Splits the columns in half, factors the left half recursively,
    applies pivots and a triangular solve to the right half, updates,
    and factors the trailing part recursively.  Recursion turns almost
    all the work into ``gemm`` calls, giving BLAS3 cache behaviour
    without an explicit block size — the property the paper exploits to
    make each TSLU leaf task fast.

    Parameters
    ----------
    A : (m, n) array with ``m >= n``.
    threshold : column count below which to fall back to ``getf2``.
    """
    m, n = A.shape
    if m < n:
        raise ValueError(f"rgetf2 requires m >= n, got {A.shape}")
    add_call("rgetf2")
    if n <= threshold:
        return getf2(A)
    n1 = n // 2
    left, right = A[:, :n1], A[:, n1:]
    piv1 = rgetf2(left, threshold)
    laswp(right, piv1)
    trsm_llnu(_unit_lower(left[:n1]), right[:n1])
    gemm(right[n1:], left[n1:], right[:n1])
    piv2 = rgetf2(right[n1:], threshold)
    laswp(left[n1:], piv2)
    return np.concatenate([piv1, piv2 + n1])


def getrf(A: np.ndarray, b: int = 64, panel: str = "getf2") -> np.ndarray:
    """Blocked right-looking LU with partial pivoting, in place.

    The reference structure of vendor ``dgetrf``: factor a ``b``-wide
    panel with the BLAS2 (or recursive) kernel, apply the pivots across
    the full width, solve for the block row of ``U`` and update the
    trailing matrix with ``gemm``.

    Parameters
    ----------
    A : (m, n) array.
    b : panel width.
    panel : ``"getf2"`` or ``"rgetf2"`` — which sequential kernel
        factors each panel.
    """
    m, n = A.shape
    r = min(m, n)
    add_call("getrf")
    panel_fn = {"getf2": getf2, "rgetf2": rgetf2}[panel]
    piv = np.arange(r, dtype=np.int64)
    for k in range(0, r, b):
        bk = min(b, r - k)
        pk = panel_fn(A[k:, k : k + bk])
        piv[k : k + bk] = pk + k
        # Apply the panel's pivots to the left and right of the panel.
        laswp(A[k:, :k], pk)
        laswp(A[k:, k + bk :], pk)
        if k + bk < n:
            trsm_llnu(_unit_lower(A[k : k + bk, k : k + bk]), A[k : k + bk, k + bk :])
            if k + bk < m:
                gemm(A[k + bk :, k + bk :], A[k + bk :, k : k + bk], A[k : k + bk, k + bk :])
    return piv


def piv_to_perm(piv: np.ndarray, m: int) -> np.ndarray:
    """Convert a LAPACK-style swap sequence into a permutation vector.

    Returns ``perm`` such that ``A[perm]`` equals the matrix obtained by
    applying the swaps ``(i, piv[i])`` in increasing ``i`` to ``A``.
    """
    perm = np.arange(m, dtype=np.int64)
    for i in range(len(piv)):
        p = int(piv[i])
        if p != i:
            perm[[i, p]] = perm[[p, i]]
    return perm


def perm_from_piv_rows(rows: np.ndarray, m: int) -> np.ndarray:
    """Swap sequence bringing global ``rows`` to the leading positions.

    Given the ``b`` tournament-selected pivot rows (global indices into
    an ``m``-row panel), produce a LAPACK-style swap sequence ``piv`` of
    length ``b`` such that applying swaps ``(i, piv[i])`` in order moves
    row ``rows[i]`` into position ``i``.
    """
    pos = np.arange(m, dtype=np.int64)  # pos[r] = current location of original row r
    loc = np.arange(m, dtype=np.int64)  # loc[i] = original row currently at slot i
    piv = np.empty(len(rows), dtype=np.int64)
    for i, r in enumerate(rows):
        p = int(pos[r])
        piv[i] = p
        if p != i:
            ri, rp = loc[i], loc[p]
            loc[i], loc[p] = rp, ri
            pos[ri], pos[rp] = p, i
    return piv


def _unit_lower(B: np.ndarray) -> np.ndarray:
    """View-with-copy of the unit lower-triangular factor stored in ``B``."""
    L = np.tril(B, -1)
    np.fill_diagonal(L, 1.0)
    return L
