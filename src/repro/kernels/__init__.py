"""Flop-counted dense linear-algebra substrate.

This subpackage plays the role MKL/ACML/LAPACK play in the paper: it is
the sequential kernel layer every algorithm (communication-avoiding or
baseline) is built from.  Everything is implemented from scratch on top
of NumPy array primitives; each kernel reports its flop count to
:mod:`repro.counters`.

Naming follows LAPACK so the correspondence with the paper's Algorithm
listings is direct: ``getf2`` (BLAS2 LU), ``rgetf2`` (recursive LU, the
paper's panel kernel), ``geqr2`` (BLAS2 QR), ``geqr3`` (recursive QR),
``larfg/larft/larfb`` (compact-WY Householder), ``tpqrt/tpmqrt``
(structured triangular-pentagonal QR, the TSQR tree kernel) and
``tstrf/ssssm`` (PLASMA's incremental-pivoting LU kernels).
"""

from repro.kernels.blas import gemm, ger, laswp, scal_axpy_col, trsm_llnu, trsm_runn
from repro.kernels.lu import getf2, getf2_nopiv, getrf, rgetf2
from repro.kernels.qr import (
    apply_wy_q,
    apply_wy_qt,
    extract_r,
    extract_v,
    geqr2,
    geqr3,
    geqrf,
    larfb_left_t,
    larfg,
    larft,
)
from repro.kernels.structured import TstrfOps, ssssm_apply, tpmqrt_left_t, tpqrt, tstrf

__all__ = [
    "TstrfOps",
    "apply_wy_q",
    "apply_wy_qt",
    "extract_r",
    "extract_v",
    "gemm",
    "geqr2",
    "geqr3",
    "geqrf",
    "ger",
    "getf2",
    "getf2_nopiv",
    "getrf",
    "larfb_left_t",
    "larfg",
    "larft",
    "laswp",
    "rgetf2",
    "scal_axpy_col",
    "ssssm_apply",
    "tpmqrt_left_t",
    "tpqrt",
    "trsm_llnu",
    "trsm_runn",
    "tstrf",
]
