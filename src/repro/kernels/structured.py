"""Structured kernels for reduction trees and tiled algorithms.

Two families:

Triangular-pentagonal QR (``tpqrt`` / ``tpmqrt_left_t``)
    QR of a ``b x b`` upper-triangular tile stacked on top of an
    ``m x b`` block, exploiting the identity structure of the top part
    of the Householder vectors (``V = [I; V_b]``).  With a dense bottom
    block this is PLASMA's ``DTSQRT``; with a triangular bottom block
    (``bottom_triangular=True``) it is the ``[R_i; R_j]`` merge kernel
    of the TSQR reduction tree (PLASMA's ``DTTQRT``).

Incremental-pivoting LU (``tstrf`` / ``ssssm_apply``)
    LU of a ``b x b`` upper-triangular tile stacked on an ``m x b``
    block with row pivoting *across the two tiles* — PLASMA's
    ``DTSTRF``; the recorded elimination is replayed on right-hand-side
    tile pairs by ``ssssm_apply`` (PLASMA's ``DSSSSM``).  This is the
    pivoting scheme whose weaker stability (growth factor grows with
    the number of tiles) the paper contrasts with CALU's ca-pivoting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.counters import add_call, add_comparisons, add_flops

__all__ = ["tpqrt", "tpmqrt_left_t", "tstrf", "ssssm_apply", "TstrfOps"]


def tpqrt(R: np.ndarray, B: np.ndarray, bottom_triangular: bool = False) -> np.ndarray:
    """QR of ``[R; B]`` with ``R`` upper triangular, in place. Returns ``T``.

    On exit ``R`` holds the new ``R`` factor and ``B`` holds the bottom
    parts ``V_b`` of the Householder vectors (the top parts form the
    identity and are implicit).  ``Q = I - [I; V_b] T [I; V_b]^T``.

    Parameters
    ----------
    R : (b, b) upper triangular, overwritten with the merged ``R``.
    B : (m, b); dense (``DTSQRT``) or upper triangular
        (``bottom_triangular=True``, the TSQR tree-node ``DTTQRT``
        case, where column ``j`` of ``B`` only has rows ``0..j``).
    """
    b = R.shape[0]
    m = B.shape[0]
    if R.shape != (b, b) or B.shape[1] != b:
        raise ValueError(f"tpqrt shape mismatch: R{R.shape}, B{B.shape}")
    add_call("tpqrt_tt" if bottom_triangular else "tpqrt_ts")
    tau = np.zeros(b)
    T = np.zeros((b, b))
    for j in range(b):
        nr = min(j + 1, m) if bottom_triangular else m
        alpha = float(R[j, j])
        u = B[:nr, j]
        xnorm = float(np.linalg.norm(u))
        add_flops(2 * nr)
        if xnorm == 0.0:
            T[j, j] = 0.0
            continue
        beta = -math.copysign(math.hypot(alpha, xnorm), alpha)
        tau[j] = (beta - alpha) / beta
        u /= alpha - beta
        R[j, j] = beta
        if j + 1 < b:
            # w = R[j, j+1:] + u^T B[:nr, j+1:]; reflect row j of R and B.
            w = R[j, j + 1 :] + u @ B[:nr, j + 1 :]
            add_flops(4 * nr * (b - j - 1))
            R[j, j + 1 :] -= tau[j] * w
            B[:nr, j + 1 :] -= tau[j] * np.outer(u, w)
        # Accumulate column j of T: T[:j, j] = -tau_j T[:j, :j] (V_b[:, :j]^T v_j)
        if j > 0 and tau[j] != 0.0:
            prev = B[:nr, :j]
            if bottom_triangular:
                # Reflector i has a tail of length i+1; entries of the
                # storage below that (strictly lower triangular) are not
                # part of V_b and may hold unrelated data when operating
                # on in-place views — mask them out.
                prev = np.triu(prev)
            w = prev.T @ u
            add_flops(2 * nr * j + j * j)
            T[:j, j] = -tau[j] * (T[:j, :j] @ w)
        T[j, j] = tau[j]
    return T


def tpmqrt_left_t(
    Vb: np.ndarray,
    T: np.ndarray,
    Ctop: np.ndarray,
    Cbot: np.ndarray,
    transpose: bool = True,
) -> None:
    """Apply ``Q^T`` (or ``Q`` with ``transpose=False``) of a :func:`tpqrt`
    factorization to ``[Ctop; Cbot]`` in place.

    With ``V = [I; V_b]``: ``W = T^T (Ctop + V_b^T Cbot)`` (or ``T W``
    for ``Q``), then ``Ctop -= W`` and ``Cbot -= V_b W``.  This is the
    task-S kernel of the TSQR tree levels in Algorithm 2 and PLASMA's
    ``DTSMQR``.
    """
    m, b = Vb.shape
    n = Ctop.shape[1]
    if Ctop.shape != (b, n) or Cbot.shape != (m, n) or T.shape != (b, b):
        raise ValueError(
            f"tpmqrt shape mismatch: Vb{Vb.shape}, T{T.shape}, Ctop{Ctop.shape}, Cbot{Cbot.shape}"
        )
    add_call("tpmqrt")
    add_flops(4 * m * n * b + b * b * n + b * n)
    W = Ctop + Vb.T @ Cbot
    W = (T.T @ W) if transpose else (T @ W)
    Ctop -= W
    Cbot -= Vb @ W


@dataclass
class TstrfOps:
    """Recorded elimination of one :func:`tstrf` call.

    ``swaps[j]`` is the row of the bottom tile swapped with row ``j`` of
    the top tile before step ``j`` (or ``-1`` for no swap); ``L[:, j]``
    is the multiplier column applied at step ``j``, captured at the time
    of the step so replay on right-hand sides is exact.
    """

    swaps: np.ndarray
    L: np.ndarray
    pivot_rows: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def width(self) -> int:
        return len(self.swaps)


def tstrf(U: np.ndarray, A: np.ndarray) -> TstrfOps:
    """Incremental-pivoting LU of ``[U; A]`` with ``U`` upper triangular, in place.

    At step ``j`` the pivot is chosen among ``U[j, j]`` and column ``j``
    of ``A`` (rows of ``U`` below the diagonal are structurally zero in
    column ``j`` and never participate).  If the winner lives in ``A``,
    the full rows are swapped across the two tiles.  On exit the
    *upper triangle* of ``U`` holds the updated factor (below the
    diagonal, rows swapped in from ``A`` carry stale multiplier values,
    so only ``triu(U)`` is meaningful) and ``A`` holds the multiplier
    columns; the returned :class:`TstrfOps` replays the elimination on
    right-hand sides via :func:`ssssm_apply`.
    """
    b = U.shape[0]
    m = A.shape[0]
    if U.shape != (b, b) or A.shape[1] != b:
        raise ValueError(f"tstrf shape mismatch: U{U.shape}, A{A.shape}")
    add_call("tstrf")
    swaps = np.full(b, -1, dtype=np.int64)
    L = np.zeros((m, b))
    for j in range(b):
        add_comparisons(m)
        col = A[:, j]
        i = int(np.argmax(np.abs(col))) if m else 0
        if m and abs(col[i]) > abs(U[j, j]):
            swaps[j] = i
            tmp = U[j].copy()
            U[j] = A[i]
            A[i] = tmp
        piv = U[j, j]
        if piv == 0.0:
            if np.any(A[:, j] != 0.0):
                raise ZeroDivisionError(f"tstrf: zero pivot at step {j}")
            continue
        add_flops(m + 2 * m * (b - j - 1))
        A[:, j] /= piv
        L[:, j] = A[:, j]
        if j + 1 < b:
            A[:, j + 1 :] -= np.outer(A[:, j], U[j, j + 1 :])
    return TstrfOps(swaps=swaps, L=L)


def ssssm_apply(ops: TstrfOps, Ctop: np.ndarray, Cbot: np.ndarray) -> None:
    """Replay a :func:`tstrf` elimination on the tile pair ``[Ctop; Cbot]``.

    PLASMA's ``DSSSSM``: interleaved row swaps (across the two tiles)
    and rank-1 Schur updates.  In place.
    """
    b = ops.width
    m, n = Cbot.shape
    if Ctop.shape[0] != b or Ctop.shape[1] != n:
        raise ValueError(f"ssssm shape mismatch: ops width {b}, Ctop{Ctop.shape}, Cbot{Cbot.shape}")
    add_call("ssssm")
    add_flops(2 * m * n * b)
    for j in range(b):
        i = int(ops.swaps[j])
        if i >= 0:
            tmp = Ctop[j].copy()
            Ctop[j] = Cbot[i]
            Cbot[i] = tmp
        Cbot -= np.outer(ops.L[:, j], Ctop[j])
