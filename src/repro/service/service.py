"""The factorization service: one pool, many requests, bounded failure.

:class:`FactorizationService` is the front-end the ROADMAP's north star
calls for: a long-lived, thread-safe object accepting concurrent
``factor``/``solve``/``lstsq`` requests and multiplexing them onto one
shared worker-process pool and shared-memory arena.  Compiled
:class:`~repro.runtime.program.GraphProgram` plans are cached per
``(op, shape, b, tr, tree, backend)`` so repeat shapes skip graph
construction entirely — the request loads its matrix into the plan's
buffer, runs the pre-built graph, and extracts the factors.

Every request leaves through exactly one of four doors:

* a correct result (bitwise-identical to a direct ``calu``/``caqr``
  call with the same parameters and backend);
* :class:`~repro.service.admission.AdmissionRejected` — shed before
  running (queue full, or the service is shutting down);
* :class:`~repro.service.admission.DeadlineExceeded` — the per-request
  deadline passed (while queued, waiting for a plan, or mid-run via the
  engine watchdog);
* :class:`~repro.resilience.recovery.RuntimeFailure` — the run failed
  structurally after bounded retries.

Never a hang, and never a silently wrong answer.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.calu import CALUFactorization, calu_program
from repro.core.caqr import CAQRFactorization, caqr_program
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind
from repro.resilience.health import (
    NumericalHealthWarning,
    validate_matrix,
    validate_rhs,
)
from repro.resilience.recovery import RetryPolicy, RuntimeFailure
from repro.runtime.engine import CentralFrontier, ExecutionEngine
from repro.runtime.sync import make_condition, make_lock
from repro.service.admission import AdmissionQueue, AdmissionRejected, DeadlineExceeded
from repro.service.breaker import CircuitBreaker
from repro.service.supervisor import PoolSupervisor, RespawnGovernor

__all__ = ["FactorizationService", "ServiceConfig"]

#: Failure kinds worth a bounded request-level retry: transient
#: infrastructure trouble or injected/corruption faults.  A
#: ``task_error`` is assumed deterministic (the same matrix will fail
#: the same way), and ``deadline``/``admission`` are final by nature.
_RETRYABLE_KINDS = frozenset(
    {"worker_death", "timeout", "stall", "deadlock", "injected", "health", "comm"}
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`FactorizationService`.

    Parameters
    ----------
    cores:
        Worker count: pool processes (process backend) and engine
        threads per request.
    backend:
        ``"process"`` (worker pool + shared arena), ``"threaded"``
        (in-process engine only), or ``"auto"`` (process where ``fork``
        is available, else threaded).
    fuse:
        Task-fusion granularity applied when compiling plans
        (:func:`repro.runtime.fuse.fuse_graph`): ``"auto"`` (default)
        lets the machine-model autotuner pick ``max_ops`` per
        (shape, b, Tr) — with the worker-spawn term dropped, since the
        service's pool is persistent; an ``int`` fixes it; ``None`` or
        ``1`` disables fusion.  The resolved granularity is part of the
        plan-cache key, and the autotuner's decision is appended to
        every request's trace as an ``autotune`` event.
    max_active, max_queue:
        Admission bounds: requests running concurrently, and requests
        queued behind them before load shedding kicks in.
    default_deadline_s:
        Deadline applied to requests that pass none (None = unbounded).
    task_timeout_s, stall_timeout_s:
        Per-task and no-progress watchdog timeouts forwarded to every
        request's engine (None = disabled).
    max_attempts:
        Total request-level attempts (1 = no retry).  Retries re-load
        the plan buffer and re-run the whole graph, so they are safe
        regardless of which tasks completed in the failed attempt.
    retry_backoff_s, retry_jitter, seed:
        Exponential-backoff base, jitter fraction and seed for the
        request-level retry schedule (and, with ``task_retries``, the
        engine's task-level :class:`RetryPolicy`).
    task_retries:
        Task-level retries inside each engine run.
    breaker_threshold, breaker_window_s, breaker_open_s, breaker_probes:
        Circuit-breaker tuning (see
        :class:`~repro.service.breaker.CircuitBreaker`).
    max_plans, plans_per_key:
        Plan-cache bounds: total compiled plans cached, and identical
        plans per key (>1 lets several same-shape requests run
        concurrently).  Overflow requests build ephemeral plans.
    heartbeat_s:
        Pool-supervisor heartbeat period (0 disables supervision).
    max_respawns, respawn_window_s:
        Worker respawn-rate throttle (see
        :class:`~repro.service.supervisor.RespawnGovernor`).
    reaper_poll_s:
        Deadline-reaper poll period.
    start_method:
        ``multiprocessing`` start method for the pool (None = default).
    fault_plan_factory:
        Testing hook: a zero-argument callable returning a
        :class:`~repro.resilience.faults.FaultPlan` (or None) for each
        engine run, letting chaos tests inject faults mid-request.
    """

    cores: int = 4
    backend: str = "auto"
    fuse: "int | str | None" = "auto"
    max_active: int = 2
    max_queue: int = 8
    default_deadline_s: float | None = None
    task_timeout_s: float | None = None
    stall_timeout_s: float | None = None
    max_attempts: int = 2
    retry_backoff_s: float = 0.005
    retry_jitter: float = 0.5
    seed: int = 0
    task_retries: int = 2
    breaker_threshold: int = 3
    breaker_window_s: float = 30.0
    breaker_open_s: float = 1.0
    breaker_probes: int = 1
    max_plans: int = 8
    plans_per_key: int = 2
    heartbeat_s: float = 0.2
    max_respawns: int = 8
    respawn_window_s: float = 1.0
    reaper_poll_s: float = 0.05
    start_method: str | None = None
    fault_plan_factory: "Callable[[], object] | None" = None

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "process", "threaded"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not (
            self.fuse is None
            or self.fuse == "auto"
            or (isinstance(self.fuse, int) and self.fuse >= 1)
        ):
            raise ValueError(f"fuse must be 'auto', None or an int >= 1, got {self.fuse!r}")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_plans < 1 or self.plans_per_key < 1:
            raise ValueError("max_plans and plans_per_key must be >= 1")


class _CompiledPlan:
    """One cached, re-runnable factorization graph and its buffer.

    The graph's closures (and shared-memory op descriptors, when built
    for the process backend) are bound to ``A_buf``; :meth:`load`
    copies a request's matrix in and resets the per-run workspace state
    so the graph replays cleanly.  A plan serves one request at a time
    (the cache enforces exclusivity).
    """

    def __init__(
        self, key, graph, A_buf, *, workspaces=None, stores=None, arena=None, decision=None
    ):
        self.key = key
        self.graph = graph
        self.A_buf = A_buf
        self.workspaces = workspaces  # CALU: per-panel PanelWorkspace
        self.stores = stores  # CAQR: per-panel PanelQRStore
        self.arena = arena  # process backend only
        self.decision = decision  # autotuner DispatchDecision (fuse="auto")
        self.runs = 0

    def load(self, A: np.ndarray) -> None:
        self.A_buf[...] = A
        if self.workspaces is not None:
            for ws in self.workspaces:
                # The closures reassign piv/candidates wholesale, but
                # the degradation flags are only ever *set* — stale
                # True values would leak into this run's report.
                ws.degraded = False
                ws.recomputed = False
        self.runs += 1

    def destroy(self) -> None:
        if self.arena is not None:
            self.arena.destroy()


class _Request:
    """Reaper-visible in-flight request state."""

    __slots__ = ("rid", "deadline", "deadline_s", "expired")

    def __init__(self, rid: int, deadline: float | None, deadline_s: float) -> None:
        self.rid = rid
        self.deadline = deadline
        self.deadline_s = deadline_s
        self.expired = threading.Event()


class FactorizationService:
    """Thread-safe factorization front-end over one shared worker pool.

    See the module docstring for the request contract and
    :class:`ServiceConfig` for the knobs.  Use as a context manager, or
    call :meth:`close` to drain: in-flight requests finish, queued ones
    are rejected, workers terminate and arena segments are unlinked.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = cfg = config if config is not None else ServiceConfig()
        backend = cfg.backend
        if backend == "auto":
            backend = (
                "process"
                if "fork" in multiprocessing.get_all_start_methods()
                else "threaded"
            )
        self.backend = backend
        self._admission = AdmissionQueue(cfg.max_active, cfg.max_queue)
        self._breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_threshold,
            window_s=cfg.breaker_window_s,
            open_s=cfg.breaker_open_s,
            probe_successes=cfg.breaker_probes,
        )
        self._governor = RespawnGovernor(cfg.max_respawns, cfg.respawn_window_s)
        self._executor = None
        self._supervisor = None
        if backend == "process":
            from repro.runtime.process import ProcessExecutor

            self._executor = ProcessExecutor(
                n_workers=cfg.cores,
                start_method=cfg.start_method,
                respawn_governor=self._governor,
            )
            if cfg.heartbeat_s > 0.0:
                self._supervisor = PoolSupervisor(
                    self._executor.pool, heartbeat_s=cfg.heartbeat_s
                )
                self._supervisor.start()
        # Task-level retries (inside one engine run) and request-level
        # retries (whole-graph re-run) share the backoff machinery.
        self._task_retry = RetryPolicy(
            max_retries=cfg.task_retries,
            jitter=cfg.retry_jitter,
            seed=cfg.seed,
        )
        self._request_retry = RetryPolicy(
            max_retries=max(cfg.max_attempts - 1, 0),
            backoff_s=cfg.retry_backoff_s,
            jitter=cfg.retry_jitter,
            seed=cfg.seed + 1,
            retry_all=True,
        )
        # Plan cache: key -> list of _CompiledPlan | None ("building"
        # placeholder); exclusivity via _busy.  One condition covers
        # checkouts, check-ins and the reaper's deadline kicks.
        self._plan_cond = make_condition("service.plan")
        self._plans: dict[tuple, list] = {}
        self._busy: set[int] = set()  # id(plan) of checked-out plans
        self.plan_hits = 0
        self.plan_builds = 0
        self.plan_ephemeral = 0
        self._inflight: dict[int, _Request] = {}
        self._inflight_lock = make_lock("service.inflight")
        self._rid = itertools.count()
        self._closed = False
        self._reaper_stop = threading.Event()
        self._reaper = threading.Thread(
            target=self._reap_loop, name="repro-svc-reaper", daemon=True
        )
        self._reaper.start()

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def factor(
        self,
        A: np.ndarray,
        *,
        b: int | None = None,
        tr: int | None = None,
        tree: TreeKind | None = None,
        deadline_s: float | None = None,
    ) -> CALUFactorization:
        """CALU-factor *A*; returns a detached :class:`CALUFactorization`."""
        A = np.asarray(validate_matrix(A, "A"), dtype=float)
        params = self._resolve(A.shape, b, tr, tree, kind="lu")

        def extract(plan, trace):
            self._guard_finite(plan, "CALU")
            lu = np.array(plan.A_buf)
            piv, degraded, recovered = self._assemble_piv(plan, params)
            return CALUFactorization(
                lu=lu,
                piv=piv,
                b=params[0],
                tr=params[1],
                tree=params[2],
                trace=trace,
                degraded_panels=degraded,
                recovered_panels=recovered,
            )

        return self._request("lu", A, params, deadline_s, extract)

    def solve(
        self,
        A: np.ndarray,
        rhs: np.ndarray,
        *,
        b: int | None = None,
        tr: int | None = None,
        tree: TreeKind | None = None,
        auto_refine: bool = True,
        rtol: float | None = None,
        report: bool = False,
        deadline_s: float | None = None,
    ):
        """Solve ``A x = rhs``; mirrors :func:`repro.linalg.solve`.

        Residual monitoring and auto-escalation to iterative refinement
        behave exactly as in the direct entry point; with
        ``report=True`` returns ``(x, SolveReport)``.
        """
        A = np.asarray(validate_matrix(A, "A"), dtype=float)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"solve requires a square matrix, got shape {A.shape}")
        rhs = np.asarray(validate_rhs(rhs, A.shape[0], "rhs"), dtype=float)
        params = self._resolve(A.shape, b, tr, tree, kind="lu")

        def extract(plan, trace):
            self._guard_finite(plan, "CALU")
            piv, degraded, recovered = self._assemble_piv(plan, params)
            # The factorization views the plan's buffer directly — all
            # solves/refinement happen while the plan is held, and only
            # the solution leaves.
            f = CALUFactorization(
                lu=plan.A_buf,
                piv=piv,
                b=params[0],
                tr=params[1],
                tree=params[2],
                degraded_panels=degraded,
                recovered_panels=recovered,
            )
            return self._finish_solve(A, f, rhs, auto_refine, rtol, report)

        return self._request("lu", A, params, deadline_s, extract)

    def lstsq(
        self,
        A: np.ndarray,
        rhs: np.ndarray,
        *,
        b: int | None = None,
        tr: int | None = None,
        tree: TreeKind | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Least squares ``min ||A x - rhs||_2`` via CAQR (``m >= n``)."""
        A = np.asarray(validate_matrix(A, "A"), dtype=float)
        if A.shape[0] < A.shape[1]:
            raise ValueError(f"lstsq requires m >= n, got shape {A.shape}")
        rhs = np.asarray(validate_rhs(rhs, A.shape[0], "rhs"), dtype=float)
        params = self._resolve(A.shape, b, tr, tree, kind="qr")

        def extract(plan, trace):
            self._guard_finite(plan, "CAQR")
            f = CAQRFactorization(
                packed=plan.A_buf,
                panels=plan.stores,
                b=params[0],
                tr=params[1],
                tree=params[2],
            )
            return f.solve_ls(rhs)

        return self._request("qr", A, params, deadline_s, extract)

    # ------------------------------------------------------------------
    # Request machinery
    # ------------------------------------------------------------------
    def _resolve(self, shape, b, tr, tree, kind: str):
        from repro.core.autotune import recommend_params

        m, n = shape
        rec = recommend_params(m, n, cores=self.config.cores, kind=kind)
        return (
            int(b if b is not None else rec.b),
            int(tr if tr is not None else rec.tr),
            tree if tree is not None else rec.tree,
        )

    def _request(self, op, A, params, deadline_s, extract):
        cfg = self.config
        t0 = time.monotonic()
        if deadline_s is None:
            deadline_s = cfg.default_deadline_s
        deadline = None if deadline_s is None else t0 + float(deadline_s)
        self._admission.try_acquire(deadline, deadline_s or 0.0)
        req = _Request(next(self._rid), deadline, deadline_s or 0.0)
        with self._inflight_lock:
            self._inflight[req.rid] = req
        try:
            return self._attempt_loop(op, A, params, req, extract)
        finally:
            with self._inflight_lock:
                self._inflight.pop(req.rid, None)
            self._admission.release(time.monotonic() - t0)

    def _attempt_loop(self, op, A, params, req, extract):
        cfg = self.config
        attempt = 0
        while True:
            self._check_deadline(req, "run")
            mode = self._breaker.acquire() if self._executor is not None else None
            use_process = self._executor is not None and mode in ("primary", "probe")
            try:
                result = self._run_once(op, A, params, req, use_process, extract)
            except RuntimeFailure as exc:
                kind = exc.failure_kind
                if mode is not None:
                    self._breaker.record(mode, ok=False, kind=kind)
                if kind == "deadline" and not isinstance(exc, DeadlineExceeded):
                    raise DeadlineExceeded(
                        f"deadline ({req.deadline_s:.3g}s) passed mid-run: {exc}",
                        deadline_s=req.deadline_s,
                        stage="run",
                    ) from exc
                attempt += 1
                if (
                    kind not in _RETRYABLE_KINDS
                    or attempt >= cfg.max_attempts
                    or self._closed
                ):
                    raise
                delay = self._request_retry.delay(attempt - 1, tid=req.rid)
                if req.deadline is not None and time.monotonic() + delay >= req.deadline:
                    raise  # no deadline budget left for another attempt
                time.sleep(delay)
                continue
            if mode is not None:
                self._breaker.record(mode, ok=True)
            # Strict deadline semantics: a result that arrives after the
            # deadline is a deadline miss, not a success — callers that
            # set deadlines want the bound, and the watchdog only polls
            # every ~20 ms, so fast runs can finish past a short one.
            self._check_deadline(req, "post-run")
            return result

    def _run_once(self, op, A, params, req, use_process, extract):
        cfg = self.config
        plan, cached = self._checkout_plan(op, A.shape, params, use_process, req)
        try:
            plan.load(A)
            fault_plan = (
                cfg.fault_plan_factory() if cfg.fault_plan_factory is not None else None
            )
            engine = ExecutionEngine(
                n_workers=cfg.cores,
                frontier=CentralFrontier("priority"),
                retry=self._task_retry,
                fault_plan=fault_plan,
                task_timeout=cfg.task_timeout_s,
                stall_timeout=cfg.stall_timeout_s,
                deadline=req.deadline,
                health_checks=True,
                thread_name=f"repro-svc-{req.rid}",
                process_pool=self._executor.pool if use_process else None,
            )
            trace = engine.run(plan.graph)
            if plan.decision is not None:
                trace.events.append(plan.decision.event())
            return extract(plan, trace)
        finally:
            self._checkin_plan(plan, cached)

    def _check_deadline(self, req: _Request, stage: str) -> None:
        if req.deadline is None:
            return
        if req.expired.is_set() or time.monotonic() >= req.deadline:
            raise DeadlineExceeded(
                f"deadline ({req.deadline_s:.3g}s) passed before the {stage} stage",
                deadline_s=req.deadline_s,
                stage=stage,
            )

    @staticmethod
    def _guard_finite(plan: _CompiledPlan, algo: str) -> None:
        if not np.isfinite(plan.A_buf).all():
            raise RuntimeFailure(
                f"{algo} produced non-finite factors (undetected corruption)",
                failure_kind="health",
            )

    @staticmethod
    def _assemble_piv(plan: _CompiledPlan, params):
        b = params[0]
        m, n = plan.A_buf.shape
        layout = BlockLayout(m, n, b)
        r = min(m, n)
        piv = np.arange(r, dtype=np.int64)
        for K, ws in enumerate(plan.workspaces):
            k0 = K * b
            bk = layout.panel_width(K)
            piv[k0 : k0 + bk] = ws.piv[:bk] + k0
        degraded = tuple(K for K, ws in enumerate(plan.workspaces) if ws.degraded)
        recovered = tuple(K for K, ws in enumerate(plan.workspaces) if ws.recomputed)
        return piv, degraded, recovered

    def _finish_solve(self, A, f, rhs, auto_refine, rtol, report):
        """Solve + residual monitoring, mirroring :func:`repro.linalg.solve`."""
        from repro.linalg import SolveReport, _scaled_residual, iterative_refinement

        x = f.solve(rhs)
        rep = SolveReport(degraded_panels=f.degraded_panels)
        if auto_refine or report:
            n = A.shape[0]
            tol = rtol if rtol is not None else float(np.sqrt(n) * 100 * np.finfo(A.dtype).eps)
            rep.tol = tol
            rep.residual = _scaled_residual(A, x, rhs)
            if auto_refine and rep.residual > tol:
                scale = float(
                    np.linalg.norm(A, ord=np.inf) * np.linalg.norm(x) + np.linalg.norm(rhs)
                )
                x, hist = iterative_refinement(A, f, rhs, max_iters=5, tol=tol * scale, x0=x)
                rep.refine_steps += len(hist) - 1
                rep.history.extend(hist)
                rep.residual = _scaled_residual(A, x, rhs)
            rep.converged = bool(rep.residual <= tol)
            if not rep.converged and auto_refine:
                warnings.warn(
                    f"solve: residual {rep.residual:.3g} did not reach tolerance "
                    f"{rep.tol:.3g} after {rep.refine_steps} refinement steps "
                    "(ill-conditioned system?)",
                    NumericalHealthWarning,
                    stacklevel=4,
                )
        return (x, rep) if report else x

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def _plan_key(self, op, shape, params) -> tuple:
        b, tr, tree = params
        max_ops, _ = self._fusion_for(op, shape, params)
        return (op, shape[0], shape[1], b, tr, tree.value, self.backend, max_ops)

    def _fusion_for(self, op, shape, params):
        """Resolve the configured fusion knob to ``(max_ops, decision)``.

        ``decision`` is the autotuner's :class:`DispatchDecision` under
        ``fuse="auto"`` (memoized per shape inside the autotuner), else
        ``None``.  Only the granularity is taken from the decision — the
        service's backend is fixed at construction because the worker
        pool is shared and persistent.
        """
        fuse = self.config.fuse
        if fuse == "auto":
            from repro.machine.autotune import autotune

            b, tr, tree = params
            decision = autotune(
                op, shape[0], shape[1], b=b, tr=tr, tree=tree, persistent_pool=True
            )
            return decision.max_ops, decision
        return (fuse if isinstance(fuse, int) else 1), None

    def _total_plans(self) -> int:
        return sum(len(v) for v in self._plans.values())

    def _checkout_plan(self, op, shape, params, use_process, req):
        """Return ``(plan, cached)`` with the plan exclusively held.

        Cached plans are reused per key (up to ``plans_per_key``
        concurrently-usable copies); beyond ``max_plans`` total an idle
        plan is evicted, else the request gets an *ephemeral* plan that
        dies with it.  Waits are bounded by the request's deadline.
        """
        cfg = self.config
        key = self._plan_key(op, shape, params)
        with self._plan_cond:
            while True:
                slots = self._plans.setdefault(key, [])
                for plan in slots:
                    if plan is not None and id(plan) not in self._busy:
                        self._busy.add(id(plan))
                        self.plan_hits += 1
                        return plan, True
                if len(slots) < cfg.plans_per_key:
                    if self._total_plans() >= cfg.max_plans and not self._evict_idle(key):
                        break  # cache full of busy plans: go ephemeral
                    slots.append(None)  # placeholder: building
                    break
                # Per-key cap reached and all copies busy: wait for one.
                timeout = 0.1
                if req.deadline is not None:
                    remaining = req.deadline - time.monotonic()
                    if remaining <= 0.0 or req.expired.is_set():
                        raise DeadlineExceeded(
                            f"deadline ({req.deadline_s:.3g}s) passed waiting "
                            "for a compiled plan",
                            deadline_s=req.deadline_s,
                            stage="plan",
                        )
                    timeout = min(timeout, remaining)
                self._plan_cond.wait(timeout)
        # Build outside the lock: graph construction is the expensive
        # part the cache exists to amortize.
        try:
            plan = self._build_plan(key, op, shape, params)
        except BaseException:
            with self._plan_cond:
                slots = self._plans.get(key, [])
                if None in slots:
                    slots.remove(None)
                self._plan_cond.notify_all()
            raise
        with self._plan_cond:
            slots = self._plans.get(key, [])
            if None in slots:
                slots[slots.index(None)] = plan
                self._busy.add(id(plan))
                self.plan_builds += 1
                return plan, True
        self.plan_ephemeral += 1
        return plan, False

    def _evict_idle(self, keep_key) -> bool:
        """Drop one idle plan from another key; True on success.

        Called under ``_plan_cond``.
        """
        for key, slots in self._plans.items():
            if key == keep_key:
                continue
            for i, plan in enumerate(slots):
                if plan is not None and id(plan) not in self._busy:
                    del slots[i]
                    plan.destroy()
                    return True
        return False

    def _checkin_plan(self, plan: _CompiledPlan, cached: bool) -> None:
        if not cached:
            plan.destroy()
            return
        with self._plan_cond:
            self._busy.discard(id(plan))
            self._plan_cond.notify_all()

    def _build_plan(self, key, op, shape, params) -> _CompiledPlan:
        b, tr, tree = params
        m, n = shape
        layout = BlockLayout(m, n, b)
        max_ops, decision = self._fusion_for(op, shape, params)
        arena = shm = None
        if self.backend == "process":
            from repro.runtime.shm import SharedArena, ShmBinding

            arena = SharedArena()
            A_buf = arena.alloc((m, n))
            shm = ShmBinding(arena, A_buf)
        else:
            A_buf = np.zeros((m, n))
        # Note: the pivot-growth monitor keys off the buffer's build-time
        # magnitude (zero here), so cached plans run without it; the
        # fatal finiteness guards — and the final _guard_finite sweep —
        # remain fully armed.  See docs/SERVICE.md.
        def compile_graph(program):
            graph = program.materialize()
            if max_ops > 1:
                from repro.runtime.fuse import fuse_graph

                graph = fuse_graph(graph, max_ops=max_ops)
            return graph

        if op == "lu":
            program, workspaces = calu_program(layout, tr, tree, A=A_buf, shm=shm)
            return _CompiledPlan(
                key,
                compile_graph(program),
                A_buf,
                workspaces=workspaces,
                arena=arena,
                decision=decision,
            )
        program, stores = caqr_program(layout, tr, tree, A=A_buf, shm=shm)
        return _CompiledPlan(
            key, compile_graph(program), A_buf, stores=stores, arena=arena, decision=decision
        )

    # ------------------------------------------------------------------
    # Deadline reaper
    # ------------------------------------------------------------------
    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(self.config.reaper_poll_s):
            now = time.monotonic()
            expired_any = False
            with self._inflight_lock:
                for req in self._inflight.values():
                    if (
                        req.deadline is not None
                        and now >= req.deadline
                        and not req.expired.is_set()
                    ):
                        req.expired.set()
                        expired_any = True
            if expired_any:
                # Wake anything blocked on admission or plan checkout so
                # the expired requests surface DeadlineExceeded promptly
                # (the engine watchdog handles mid-run expiry itself).
                self._admission.kick()
                with self._plan_cond:
                    self._plan_cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    @property
    def breaker(self) -> CircuitBreaker:
        """The service's circuit breaker (read it; the service drives it)."""
        return self._breaker

    def stats(self) -> dict:
        """One snapshot of every subsystem's counters."""
        out = {
            "backend": self.backend,
            "fuse": self.config.fuse,
            "admission": self._admission.snapshot(),
            "breaker": self._breaker.snapshot(),
            "respawn": self._governor.snapshot(),
            "plans": {
                "cached": self._total_plans(),
                "hits": self.plan_hits,
                "builds": self.plan_builds,
                "ephemeral": self.plan_ephemeral,
            },
        }
        if self._supervisor is not None:
            out["supervisor"] = {
                "heartbeats": self._supervisor.heartbeats,
                "healed": self._supervisor.healed,
            }
        if self._executor is not None and self._executor._pool is not None:
            pool = self._executor._pool
            out["pool"] = {
                "liveness": pool.liveness(),
                "deaths": pool.deaths,
                "respawns": pool.respawns,
            }
        return out

    def close(self, timeout: float = 30.0) -> None:
        """Graceful drain (idempotent): finish in-flight, reject queued,
        stop supervision, terminate workers, unlink arena segments."""
        if self._closed:
            return
        self._closed = True
        self._admission.close()
        self._admission.wait_idle(timeout)
        self._reaper_stop.set()
        self._reaper.join(timeout=2.0)
        if self._supervisor is not None:
            self._supervisor.stop()
        if self._executor is not None:
            self._executor.close()
        with self._plan_cond:
            plans = [p for slots in self._plans.values() for p in slots if p is not None]
            self._plans.clear()
            self._busy.clear()
            self._plan_cond.notify_all()
        for plan in plans:
            plan.destroy()

    def __enter__(self) -> "FactorizationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
