"""Circuit breaker: stop feeding a failing worker pool.

When the process backend starts failing *as infrastructure* — workers
dying, watchdog timeouts, stalls — retrying every request against it
multiplies the damage: each attempt burns a respawn, holds an admission
slot for a full timeout, and delays the verdict the caller could have
had immediately.  The :class:`CircuitBreaker` watches for such storms
and, once tripped, routes requests to the *degraded* path (the threaded
backend, which shares no worker processes) while periodically letting a
single probe request test the primary again.

States (the classic three):

* **closed** — healthy; every request uses the primary backend.
* **open** — tripped; requests degrade.  After ``open_s`` of cool-down
  the next request is let through as a probe.
* **half-open** — one probe in flight; everyone else still degrades.
  A successful probe (``probe_successes`` of them) re-closes the
  breaker; a failed probe re-opens it and restarts the cool-down.

Only *infrastructure* failure kinds trip the breaker
(:data:`TRIP_KINDS`).  A ``task_error`` or ``health`` failure is the
request's own problem — a singular matrix does not mean the pool is
sick — and neither do failures observed on the degraded path (the
primary was not involved).
"""

from __future__ import annotations

import time
from collections import deque

from repro.runtime.sync import make_lock

__all__ = ["CircuitBreaker", "TRIP_KINDS"]

#: Failure kinds that indicate sick infrastructure rather than a bad
#: request: these (and only these) count toward tripping the breaker.
TRIP_KINDS = frozenset({"worker_death", "timeout", "stall", "deadlock", "deadline"})


class CircuitBreaker:
    """Sliding-window circuit breaker with an injectable clock.

    Parameters
    ----------
    failure_threshold:
        Infra failures within *window_s* that trip the breaker.
    window_s:
        Length of the sliding failure window.
    open_s:
        Cool-down after tripping before a probe is allowed.
    probe_successes:
        Consecutive successful probes required to re-close.
    clock:
        Monotonic time source (injectable so tests need not sleep).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        window_s: float = 30.0,
        open_s: float = 1.0,
        probe_successes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.window_s = float(window_s)
        self.open_s = float(open_s)
        self.probe_successes = probe_successes
        self._clock = clock
        self._lock = make_lock("service.breaker")
        self._state = "closed"
        self._failures: deque[float] = deque()  # infra-failure timestamps
        self._opened_at = 0.0
        self._probe_inflight = False
        self._probe_ok = 0
        #: ``(time, from_state, to_state, reason)`` history, for tests
        #: and post-mortems.
        self.transitions: list[tuple[float, str, str, str]] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, to: str, reason: str) -> None:
        self.transitions.append((self._clock(), self._state, to, reason))
        self._state = to

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window_s:
            self._failures.popleft()

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def acquire(self) -> str:
        """Route one request: ``"primary"``, ``"degraded"`` or ``"probe"``.

        Every acquire **must** be paired with a :meth:`record` call with
        the same mode (the half-open probe slot is reserved until its
        verdict arrives).
        """
        with self._lock:
            now = self._clock()
            if self._state == "closed":
                return "primary"
            if self._state == "open" and now - self._opened_at >= self.open_s:
                self._transition("half_open", "cool-down elapsed, probing")
                self._probe_inflight = False
                self._probe_ok = 0
            if self._state == "half_open" and not self._probe_inflight:
                self._probe_inflight = True
                return "probe"
            return "degraded"

    def record(self, mode: str, ok: bool, kind: str | None = None) -> None:
        """Report the outcome of a request routed by :meth:`acquire`.

        *kind* is the :class:`~repro.resilience.recovery.RuntimeFailure`
        failure kind when ``ok`` is False; only :data:`TRIP_KINDS`
        influence the breaker.
        """
        with self._lock:
            now = self._clock()
            if mode == "degraded":
                return  # the primary was not exercised; no signal
            infra_failure = (not ok) and kind in TRIP_KINDS
            if mode == "probe":
                self._probe_inflight = False
                if self._state != "half_open":
                    return  # stale probe verdict after another transition
                if infra_failure:
                    self._transition("open", f"probe failed ({kind})")
                    self._opened_at = now
                    self._probe_ok = 0
                elif ok:
                    self._probe_ok += 1
                    if self._probe_ok >= self.probe_successes:
                        self._transition("closed", "probe(s) succeeded")
                        self._failures.clear()
                # A probe failing with a *request-level* error (bad
                # matrix) says nothing about the pool: stay half-open
                # and let the next request probe again.
                return
            # mode == "primary"
            if not infra_failure:
                return
            self._failures.append(now)
            self._prune(now)
            if self._state == "closed" and len(self._failures) >= self.failure_threshold:
                self._transition(
                    "open",
                    f"{len(self._failures)} infra failures within {self.window_s:.3g}s",
                )
                self._opened_at = now

    def snapshot(self) -> dict:
        with self._lock:
            now = self._clock()
            self._prune(now)
            return {
                "state": self._state,
                "recent_failures": len(self._failures),
                "transitions": len(self.transitions),
            }
