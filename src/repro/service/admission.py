"""Bounded admission control with fast-fail load shedding.

A service that queues without bound converts overload into unbounded
latency — every request eventually "succeeds" long after its caller
stopped caring, and the backlog itself starves the requests that could
still meet their deadlines.  :class:`AdmissionQueue` bounds both the
number of *active* requests (engine runs actually executing) and the
number *queued* behind them; anything beyond that is shed immediately
with a structured :class:`AdmissionRejected` carrying the observed
depth and a retry-after hint derived from recent service times, so a
well-behaved client can back off intelligently instead of hammering.

Queued requests never outwait their deadline: the wait is bounded by
the request's deadline and by queue shutdown, surfacing as
:class:`DeadlineExceeded` / :class:`AdmissionRejected` — never a hang.
"""

from __future__ import annotations

import time

from repro.resilience.recovery import RuntimeFailure
from repro.runtime.sync import make_condition

__all__ = ["AdmissionQueue", "AdmissionRejected", "DeadlineExceeded"]


class AdmissionRejected(RuntimeFailure):
    """The service shed this request before running it.

    Attributes
    ----------
    queue_depth, active:
        Queue occupancy at rejection time.
    retry_after_s:
        Suggested client back-off (seconds): an estimate of when a slot
        should free up, derived from the recent mean service time.  0.0
        when the service is shutting down (retrying is pointless).
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int = 0,
        active: int = 0,
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message, failure_kind="admission")
        self.queue_depth = queue_depth
        self.active = active
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeFailure):
    """The request's deadline passed before it could complete.

    Raised whether the deadline expired while queued for admission,
    waiting for a compiled plan, or mid-run (the engine watchdog aborts
    the run with a ``deadline`` failure the service converts).

    Attributes
    ----------
    deadline_s:
        The request's deadline budget in seconds.
    stage:
        Where the deadline hit: ``"queued"``, ``"plan"`` or ``"run"``.
    """

    def __init__(self, message: str, *, deadline_s: float = 0.0, stage: str = "run") -> None:
        super().__init__(message, failure_kind="deadline")
        self.deadline_s = deadline_s
        self.stage = stage


class AdmissionQueue:
    """Bounded two-stage admission: ``max_active`` running, ``max_queue`` waiting.

    ``try_acquire`` either grants a slot, parks the caller in the
    bounded queue (woken FIFO-fairly as slots free), or sheds the
    request immediately when the queue is full.  All waits are bounded
    by the caller's deadline; :meth:`close` wakes every waiter with a
    rejection and :meth:`wait_idle` lets a drain block until in-flight
    work finishes.

    The retry-after hint is ``ema_service_s * (waiters + 1) / max_active``
    — the expected time until the head of the line would reach a slot,
    scaled to this caller's position.
    """

    def __init__(self, max_active: int = 2, max_queue: int = 8) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_active = max_active
        self.max_queue = max_queue
        self._cond = make_condition("service.admission")
        self._active = 0
        self._waiting = 0
        self._closed = False
        self._ema_service_s = 0.0  # exponential moving average, alpha=0.2
        # Counters (monotonic, read under the lock via snapshot()).
        self.admitted = 0
        self.shed = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _retry_after(self) -> float:
        base = self._ema_service_s if self._ema_service_s > 0.0 else 0.01
        return base * (self._waiting + 1) / self.max_active

    def try_acquire(self, deadline: float | None = None, deadline_s: float = 0.0) -> None:
        """Take an active slot, queueing (bounded) if none is free.

        *deadline* is an absolute ``time.monotonic()`` instant; a queued
        wait never outlives it.  Raises :class:`AdmissionRejected` (shed
        or shutting down) or :class:`DeadlineExceeded` (expired while
        queued); returns normally once a slot is held.
        """
        with self._cond:
            if self._closed:
                self.shed += 1
                raise AdmissionRejected(
                    "service is shutting down",
                    queue_depth=self._waiting,
                    active=self._active,
                )
            if self._active < self.max_active and self._waiting == 0:
                self._active += 1
                self.admitted += 1
                return
            if self._waiting >= self.max_queue:
                self.shed += 1
                raise AdmissionRejected(
                    f"admission queue full ({self._waiting} queued, "
                    f"{self._active} active); retry after "
                    f"{self._retry_after():.3g}s",
                    queue_depth=self._waiting,
                    active=self._active,
                    retry_after_s=self._retry_after(),
                )
            self._waiting += 1
            try:
                while True:
                    if self._closed:
                        self.shed += 1
                        raise AdmissionRejected(
                            "service shut down while request was queued",
                            queue_depth=self._waiting - 1,
                            active=self._active,
                        )
                    if self._active < self.max_active:
                        self._active += 1
                        self.admitted += 1
                        return
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - time.monotonic()
                        if timeout <= 0.0:
                            self.shed += 1
                            raise DeadlineExceeded(
                                f"deadline ({deadline_s:.3g}s) passed while "
                                "queued for admission",
                                deadline_s=deadline_s,
                                stage="queued",
                            )
                    self._cond.wait(timeout)
            finally:
                self._waiting -= 1

    def release(self, service_s: float | None = None) -> None:
        """Return an active slot; *service_s* feeds the retry-after EMA."""
        with self._cond:
            self._active -= 1
            self.completed += 1
            if service_s is not None:
                if self._ema_service_s == 0.0:
                    self._ema_service_s = float(service_s)
                else:
                    self._ema_service_s += 0.2 * (float(service_s) - self._ema_service_s)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; every queued waiter wakes with a rejection."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake every waiter to re-check deadlines (the reaper's lever)."""
        with self._cond:
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is active; True if idle was reached."""
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._active > 0:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0.0:
                    return False
                self._cond.wait(remaining)
            return True

    def snapshot(self) -> dict:
        """Occupancy and lifetime counters (for stats and tests)."""
        with self._cond:
            return {
                "active": self._active,
                "queued": self._waiting,
                "admitted": self.admitted,
                "shed": self.shed,
                "completed": self.completed,
                "closed": self._closed,
                "ema_service_s": self._ema_service_s,
            }
