"""Overload-safe factorization service.

The paper's runtime factors one matrix at a time; the service layer
turns it into a long-lived front-end that accepts concurrent
``factor``/``solve``/``lstsq`` requests and keeps the system correct
and responsive when many requests, worker deaths and deadline misses
arrive at once:

* :class:`~repro.service.admission.AdmissionQueue` — bounded admission
  with fast-fail load shedding (:class:`AdmissionRejected` carries the
  queue depth and a retry-after hint);
* per-request deadlines mapped onto the execution engine's watchdog
  plus a request-level deadline reaper (:class:`DeadlineExceeded`);
* :class:`~repro.service.breaker.CircuitBreaker` — trips on
  worker-death/timeout storms and degrades to the threaded backend
  until probes succeed;
* :class:`~repro.service.supervisor.PoolSupervisor` /
  :class:`~repro.service.supervisor.RespawnGovernor` — heartbeats and
  respawn-rate throttling for the worker-process pool;
* :class:`~repro.service.service.FactorizationService` — the façade
  multiplexing requests onto one shared worker pool + shared-memory
  arena, with compiled graph programs cached per shape.

See ``docs/SERVICE.md`` for the architecture and failure taxonomy.
"""

from repro.service.admission import AdmissionQueue, AdmissionRejected, DeadlineExceeded
from repro.service.breaker import CircuitBreaker
from repro.service.service import FactorizationService, ServiceConfig
from repro.service.supervisor import PoolSupervisor, RespawnGovernor

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FactorizationService",
    "PoolSupervisor",
    "RespawnGovernor",
    "ServiceConfig",
]
