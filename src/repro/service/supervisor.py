"""Worker-pool supervision: respawn throttling and heartbeats.

Two cooperating guards around the process backend's worker pool:

* :class:`RespawnGovernor` — a sliding-window rate limit the pool
  consults before respawning a dead worker.  A crash-looping workload
  (e.g. a kernel that segfaults on every dispatch) would otherwise
  convert the pool into a fork bomb: every task kills a worker, every
  death spawns a replacement, and the machine spends its cycles in
  ``fork``/``exec`` instead of factorizations.  With the governor, the
  pool takes at most ``max_respawns`` respawns per ``window_s``; beyond
  that workers stay down and requests fail fast with a structured
  ``worker_death`` (noting the throttle), which also feeds the circuit
  breaker exactly the storm signal it is designed to catch.

* :class:`PoolSupervisor` — a heartbeat thread that periodically scans
  the pool's liveness and respawns workers that died *while idle* (a
  worker killed between requests would otherwise only be discovered by
  the next request that lands on it, which then pays the spawn latency
  on its critical path).  Respawns go through the same governor.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.runtime.sync import make_lock

__all__ = ["PoolSupervisor", "RespawnGovernor"]


class RespawnGovernor:
    """Sliding-window respawn rate limit (thread-safe, injectable clock)."""

    def __init__(
        self,
        max_respawns: int = 8,
        window_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if max_respawns < 1:
            raise ValueError("max_respawns must be >= 1")
        self.max_respawns = max_respawns
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = make_lock("service.respawn")
        self._grants: deque[float] = deque()
        self.granted = 0
        self.denied = 0

    def allow_respawn(self, core: int) -> bool:
        """Whether worker *core* may be respawned right now.

        Consumes one grant when allowed; denials are free (the caller
        retries on its next failure, by which time the window may have
        slid past older grants).
        """
        with self._lock:
            now = self._clock()
            while self._grants and now - self._grants[0] > self.window_s:
                self._grants.popleft()
            if len(self._grants) >= self.max_respawns:
                self.denied += 1
                return False
            self._grants.append(now)
            self.granted += 1
            return True

    def snapshot(self) -> dict:
        with self._lock:
            now = self._clock()
            while self._grants and now - self._grants[0] > self.window_s:
                self._grants.popleft()
            return {
                "window_grants": len(self._grants),
                "granted": self.granted,
                "denied": self.denied,
            }


class PoolSupervisor:
    """Heartbeat thread healing idle-dead workers off the request path.

    *pool* is a :class:`~repro.runtime.process._WorkerPool` (anything
    with ``liveness()`` and ``ensure_alive(core)``).  The supervisor
    never spawns a worker that was not yet started — lazy spawn stays
    lazy — and never touches a core that is mid-request (the pool's
    per-core lock is only taken opportunistically).
    """

    def __init__(self, pool, heartbeat_s: float = 0.2) -> None:
        if heartbeat_s <= 0.0:
            raise ValueError("heartbeat_s must be > 0")
        self.pool = pool
        self.heartbeat_s = float(heartbeat_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.heartbeats = 0
        self.healed = 0
        self.last_liveness: list = []

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            self.beat()

    def beat(self) -> None:
        """One heartbeat: scan liveness, heal spawned-but-dead workers.

        Public so tests (and a drain path) can drive it synchronously.
        """
        try:
            liveness = self.pool.liveness()
        except Exception:
            return  # pool closed mid-scan
        self.last_liveness = liveness
        self.heartbeats += 1
        for core, alive in enumerate(liveness):
            if alive is False:  # None = never spawned: leave it lazy
                try:
                    if self.pool.ensure_alive(core):
                        self.healed += 1
                except Exception:
                    pass  # closed or racing a request; next beat retries

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
