"""Machine-model dispatch autotuning: backend + fusion granularity.

The calibrated :class:`~repro.machine.model.MachineModel` prices every
task's kernel time and per-task overhead, and the process backend's
dispatch cost is one pipe round-trip per descriptor batch — measurable
(:func:`calibrate_pipe` times ``noop`` descriptors through a live
worker pipe).  This module closes the loop the paper frames as sizing
the unit of work to the hardware: given ``(kind, shape, b, Tr)`` it
predicts the threaded and process makespans over the *symbolic* task
graph (no arithmetic executed) and picks

* the **backend** — process pays spawn plus one round-trip per
  super-task but scales with physical cores; threaded pays only
  scheduler overhead but serializes kernel dispatch on the GIL;
* the **fusion granularity** ``max_ops`` — how many ops
  :func:`repro.runtime.fuse.fuse_program` may batch into one
  super-task, chosen so a batch's kernel work dominates its dispatch
  cost without flattening intra-panel parallelism.

Exposed as ``executor="auto"`` on the drivers (``calu``/``caqr``/
``tsqr``), through :func:`repro.runtime.process.resolve_executor`, and
as the ``FactorizationService`` backend; every decision is a
:class:`DispatchDecision` recorded into the run's trace (an
``"autotune"`` resilience event) so benchmarks can audit the choice.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from repro.resilience.events import ResilienceEvent

__all__ = [
    "DispatchDecision",
    "PipeCalibration",
    "autotune",
    "calibrate_pipe",
    "measure_roundtrip",
    "clear_cache",
]

#: Fallback dispatch prices when worker processes cannot be spawned in
#: this environment (sandboxes without fork): conservative figures that
#: steer the decision toward the threaded backend.
_FALLBACK_ROUNDTRIP_S = 2e-4
_FALLBACK_SPAWN_S = 5e-2

#: Hard cap on the fusion granularity the tuner will request.
_MAX_OPS_CAP = 16

#: A super-task's kernel work should dominate its round-trip by this
#: factor before we stop growing the batch.
_BATCH_WORK_FACTOR = 8.0


@dataclass(frozen=True)
class PipeCalibration:
    """Measured dispatch prices of the process backend.

    ``roundtrip_s`` is one descriptor send + ack through a live worker
    pipe; ``spawn_s`` is the cost of bringing one worker up (process
    start through first ack).  ``measured`` is False when spawning
    failed and the conservative fallback figures are in use.
    """

    roundtrip_s: float
    spawn_s: float
    measured: bool = True


@dataclass(frozen=True)
class DispatchDecision:
    """One autotuning verdict, with the inputs needed to audit it."""

    backend: str  # "threaded" | "process"
    max_ops: int  # fusion granularity (1 = no fusion)
    n_workers: int
    kind: str
    shape: Optional[tuple]
    b: Optional[int]
    tr: Optional[int]
    predicted_s: dict  # backend -> predicted makespan (seconds)
    roundtrip_s: float
    reason: str

    def event(self) -> ResilienceEvent:
        """The trace record benchmarks and tests audit."""
        shape = f"{self.shape[0]}x{self.shape[1]}" if self.shape else "?"
        return ResilienceEvent(
            "autotune",
            detail=(
                f"backend={self.backend} max_ops={self.max_ops} "
                f"kind={self.kind} shape={shape} b={self.b} tr={self.tr} "
                f"roundtrip={self.roundtrip_s * 1e6:.1f}us "
                + " ".join(f"{k}={v:.3g}s" for k, v in sorted(self.predicted_s.items()))
                + f"; {self.reason}"
            ),
        )

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "max_ops": self.max_ops,
            "n_workers": self.n_workers,
            "kind": self.kind,
            "shape": list(self.shape) if self.shape else None,
            "b": self.b,
            "tr": self.tr,
            "predicted_s": dict(self.predicted_s),
            "roundtrip_s": self.roundtrip_s,
            "reason": self.reason,
        }


_pipe_cal: PipeCalibration | None = None
_decisions: dict = {}


def clear_cache() -> None:
    """Drop memoized calibrations and decisions (tests, re-calibration)."""
    global _pipe_cal
    _pipe_cal = None
    _decisions.clear()


def calibrate_pipe(samples: int = 64, *, refresh: bool = False) -> PipeCalibration:
    """Measure worker spawn and per-descriptor round-trip cost (cached).

    Spins up one real worker process and streams ``noop`` descriptors
    through its pipe — the exact path
    :meth:`~repro.runtime.process._WorkerPool.run` takes per super-task.
    Falls back to conservative constants when processes cannot start.
    """
    global _pipe_cal
    if _pipe_cal is not None and not refresh:
        return _pipe_cal
    from repro.runtime.process import _WorkerPool

    pool = None
    try:
        t0 = time.perf_counter()
        pool = _WorkerPool(1)
        pool.run(0, ("noop", {}))  # spawn + first ack
        spawn_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(samples):
            pool.run(0, ("noop", {}))
        roundtrip_s = (time.perf_counter() - t0) / samples
        cal = PipeCalibration(roundtrip_s=roundtrip_s, spawn_s=spawn_s)
    except Exception:
        cal = PipeCalibration(
            roundtrip_s=_FALLBACK_ROUNDTRIP_S, spawn_s=_FALLBACK_SPAWN_S, measured=False
        )
    finally:
        if pool is not None:
            try:
                pool.close()
            except Exception:
                pass
    _pipe_cal = cal
    return cal


def measure_roundtrip(samples: int = 64, *, refresh: bool = False) -> float:
    """One descriptor dispatch through a live worker pipe, in seconds."""
    return calibrate_pipe(samples, refresh=refresh).roundtrip_s


def _symbolic_graph(kind: str, m: int, n: int, b: int, tr: int, tree):
    from repro.core.layout import BlockLayout

    layout = BlockLayout(m, n, b)
    if kind == "lu":
        from repro.core.calu import build_calu_graph

        return build_calu_graph(layout, tr, tree)[0]
    if kind == "qr":
        from repro.core.caqr import build_caqr_graph

        return build_caqr_graph(layout, tr, tree)[0]
    raise ValueError(f"unknown factorization kind {kind!r}; expected 'lu' or 'qr'")


def _pick_max_ops(mean_task_s: float, dispatch_s: float) -> int:
    """Smallest power-of-two batch whose work dominates its dispatch."""
    g = 1
    while g < _MAX_OPS_CAP and mean_task_s * g < _BATCH_WORK_FACTOR * dispatch_s:
        g *= 2
    return g


def autotune(
    kind: str = "lu",
    m: int | None = None,
    n: int | None = None,
    b: int | None = None,
    tr: int | None = None,
    tree=None,
    *,
    model=None,
    cores: int | None = None,
    pipe: PipeCalibration | None = None,
    persistent_pool: bool = False,
) -> DispatchDecision:
    """Pick backend and fusion granularity for one problem instance.

    With no shape the decision degrades to a safe default (threaded,
    modest fusion).  *model* defaults to the ``generic`` preset sized to
    this host's cores — pass a :func:`~repro.machine.calibrate.calibrate_host`
    result for measured kernel rates.  *persistent_pool* drops the
    worker-spawn term (a service reusing one pool amortizes it away).
    Decisions are memoized per (kind, shape, b, tr, tree, pool mode)
    when model and pipe are defaulted.
    """
    from repro.core.trees import TreeKind
    from repro.runtime.process import default_process_workers

    if tree is None:
        tree = TreeKind.FLAT
    cacheable = model is None and pipe is None and cores is None
    key = (kind, m, n, b, tr, getattr(tree, "value", tree), persistent_pool)
    if cacheable and key in _decisions:
        return _decisions[key]

    if cores is None:
        cores = default_process_workers()
    if pipe is None:
        pipe = calibrate_pipe()
    if model is None:
        from repro.machine.presets import generic

        model = generic(cores)

    if m is None or n is None:
        decision = DispatchDecision(
            backend="threaded",
            max_ops=4,
            n_workers=min(cores, 4),
            kind=kind,
            shape=None,
            b=b,
            tr=tr,
            predicted_s={},
            roundtrip_s=pipe.roundtrip_s,
            reason="no shape hints; defaulting to threaded with light fusion",
        )
        if cacheable:
            _decisions[key] = decision
        return decision

    if b is None:
        b = min(100, n)
    if tr is None:
        tr = 4
    graph = _symbolic_graph(kind, m, n, b, tr, tree)
    times = [model.seq_time(t.cost) for t in graph.tasks]
    work = sum(times)
    span = graph.critical_path(lambda t: model.seq_time(t.cost))[0]
    n_tasks = len(times)
    mean_task_s = work / max(1, n_tasks)

    max_ops = _pick_max_ops(mean_task_s, pipe.roundtrip_s)
    n_batches = math.ceil(n_tasks / max_ops)
    spawn_s = 0.0 if persistent_pool else pipe.spawn_s * cores
    threads = max(1, min(cores, tr, 4))
    predicted = {
        "threaded": max(span, work / threads),
        "process": max(span, work / cores) + n_batches * pipe.roundtrip_s + spawn_s,
    }
    backend = min(predicted, key=predicted.__getitem__)
    if backend == "threaded":
        # Fusion still trims scheduler bookkeeping on tiny tasks, but
        # round-trips are off the table — keep batches shallow so the
        # frontier stays wide.
        max_ops = min(max_ops, 4)
        reason = (
            f"threaded wins: {n_tasks} tasks, mean {mean_task_s * 1e6:.0f}us/task; "
            f"process would pay {n_batches} round-trips + {spawn_s:.3g}s spawn"
        )
    else:
        reason = (
            f"process wins: work {work:.3g}s over {cores} cores beats "
            f"{threads}-thread dispatch; {n_batches} batches of <= {max_ops} ops"
        )
    decision = DispatchDecision(
        backend=backend,
        max_ops=max_ops,
        n_workers=cores if backend == "process" else threads,
        kind=kind,
        shape=(m, n),
        b=b,
        tr=tr,
        predicted_s=predicted,
        roundtrip_s=pipe.roundtrip_s,
        reason=reason,
    )
    if cacheable:
        _decisions[key] = decision
    return decision
