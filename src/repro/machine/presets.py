"""Machine presets for the paper's two test platforms.

The absolute constants are calibrated so that the *shapes* of the
paper's results hold (who wins, approximate factors, where crossovers
fall); see EXPERIMENTS.md for the calibration record.

``intel8_mkl``
    Two-socket, quad-core Intel Xeon EMT64 @ 2.50 GHz (paper Section
    IV).  4 DP flops/cycle/core -> 10 GFLOP/s core peak, 80 GFLOP/s
    machine peak; MKL ``dgetrf`` measures 61.4 GFLOP/s at ``n = 10^4``
    (77 % of peak), which the gemm profile reproduces.
    Front-side-bus memory system: modest aggregate bandwidth, making
    tall BLAS2 panels the bottleneck the paper exploits.

``amd16_acml``
    Four-socket, quad-core AMD Opteron @ 2.194 GHz.  The paper's
    numbers plateau near 40 GFLOP/s (~28 % of nominal peak) for every
    library, with ACML notably weak at scale — modelled by a lower
    asymptotic gemm efficiency and an ACML library factor < 1.

``generic``
    A small neutral machine for tests and examples.
"""

from __future__ import annotations

from repro.machine.model import KernelProfile, MachineModel

__all__ = ["intel8_mkl", "amd16_acml", "generic"]


def _common_profiles(gemm_eff: float, gemm_half: float = 18.0) -> dict[str, KernelProfile]:
    """Kernel profiles shared by the presets, scaled by the gemm ceiling ``e``."""
    e = gemm_eff
    return {
        # BLAS3 update kernels (explicit task-graph parallelism).
        "gemm": KernelProfile(eff=e, half_dim=gemm_half),
        "trsm_llnu": KernelProfile(eff=0.90 * e, half_dim=24.0),
        "trsm_runn": KernelProfile(eff=0.90 * e, half_dim=24.0),
        "larfb": KernelProfile(eff=0.95 * e, half_dim=24.0),
        # Recursive panel kernels (paper: rgetf2 / dgeqr3) — mostly BLAS3
        # but they stream the tall panel once, hence mildly memory-bound.
        "rgetf2": KernelProfile(
            eff=0.80 * e, half_dim=30.0, membound=True, bpf_stream=0.25, bpf_inv_dim=48.0, bpf_cached=0.2
        ),
        "geqr3": KernelProfile(
            eff=0.80 * e, half_dim=30.0, membound=True, bpf_stream=0.25, bpf_inv_dim=48.0, bpf_cached=0.2
        ),
        # Raw BLAS2 panel kernels — memory-bound streaming.
        "getf2": KernelProfile(
            eff=0.45, half_dim=4.0, membound=True, bpf_stream=3.0, bpf_inv_dim=40.0, bpf_cached=1.0
        ),
        "getf2_nopiv": KernelProfile(
            eff=0.45, half_dim=4.0, membound=True, bpf_stream=3.0, bpf_inv_dim=40.0, bpf_cached=1.0
        ),
        "geqr2": KernelProfile(
            eff=0.45, half_dim=4.0, membound=True, bpf_stream=4.0, bpf_inv_dim=40.0, bpf_cached=1.0
        ),
        # Vendor dgetrf/dgeqrf internal panels: blocked and internally
        # multithreaded ("parallelized, but not very efficiently"), so
        # fast when cache-resident but bandwidth-bound on tall panels.
        "getrf_panel": KernelProfile(
            eff=0.50 * e, half_dim=12.0, membound=True, bpf_stream=2.0, bpf_inv_dim=30.0, bpf_cached=0.5, intra_parallel=4.0
        ),
        "geqrf_panel": KernelProfile(
            eff=0.40 * e, half_dim=12.0, membound=True, bpf_stream=2.5, bpf_inv_dim=40.0, bpf_cached=0.2, intra_parallel=8.0
        ),
        # Tournament merge (GEPP on stacked b x b candidates).
        "gepp_merge": KernelProfile(eff=0.70 * e, half_dim=30.0),
        # Structured tree / tile kernels.
        "tpqrt_ts": KernelProfile(eff=0.85 * e, half_dim=30.0),
        "tpqrt_tt": KernelProfile(eff=0.55 * e, half_dim=30.0),
        # Tree-node updates touch two b-row slices of a tall matrix —
        # strided access with little reuse, hence mildly memory-bound.
        "tpmqrt": KernelProfile(
            eff=0.85 * e, half_dim=30.0, membound=True, bpf_stream=0.3, bpf_inv_dim=24.0, bpf_cached=0.3
        ),
        "geqrt_tile": KernelProfile(eff=0.70 * e, half_dim=30.0),
        # PLASMA's tsmqr works on contiguous square tiles: compute-bound.
        "tsmqr_tile": KernelProfile(eff=0.92 * e, half_dim=30.0),
        "getrf_tile": KernelProfile(eff=0.70 * e, half_dim=30.0),
        "tstrf": KernelProfile(
            eff=0.55 * e, half_dim=30.0, membound=True, bpf_stream=1.0, bpf_inv_dim=24.0, bpf_cached=0.8
        ),
        "gessm": KernelProfile(eff=0.85 * e, half_dim=30.0),
        "ssssm": KernelProfile(eff=0.85 * e, half_dim=30.0),
        # Pure data movement (priced by words, profile unused for rate).
        "laswp": KernelProfile(eff=1.0),
        "copy": KernelProfile(eff=1.0),
    }


def intel8_mkl(**overrides) -> MachineModel:
    """The paper's 8-core Intel Xeon EMT64 machine (2.50 GHz/core)."""
    params = dict(
        name="intel8",
        cores=8,
        peak_core_gflops=10.0,
        mem_bw_gbs=11.0,
        core_bw_gbs=4.5,
        cache_mb=8.0,
        task_overhead_us=20.0,
        sync_latency_us=5.0,
        profiles=_common_profiles(gemm_eff=0.88, gemm_half=12.0),
        library_factor={"repro": 1.0, "repro_qr": 0.82, "mkl": 1.0, "plasma": 0.95, "acml": 0.85},
        overhead_factor={"repro": 1.0, "repro_qr": 1.0, "mkl": 0.2, "acml": 0.2, "plasma": 0.4},
    )
    params.update(overrides)
    return MachineModel(**params)


def amd16_acml(**overrides) -> MachineModel:
    """The paper's 16-core AMD Opteron machine (2.194 GHz/core).

    Every library plateaus near 40 GFLOP/s on this machine in the
    paper; ACML additionally scales poorly past a few cores, and its
    panel barely multithreads (hence the explicit profile overrides).
    """
    profiles = _common_profiles(gemm_eff=0.33, gemm_half=14.0)
    profiles["getrf_panel"] = KernelProfile(
        eff=0.25, half_dim=12.0, membound=True, bpf_stream=3.5, bpf_inv_dim=30.0, bpf_cached=0.5, intra_parallel=3.0
    )
    profiles["geqrf_panel"] = KernelProfile(
        eff=0.22, half_dim=12.0, membound=True, bpf_stream=4.0, bpf_inv_dim=40.0, bpf_cached=0.5, intra_parallel=3.0
    )
    params = dict(
        name="amd16",
        cores=16,
        peak_core_gflops=8.8,
        mem_bw_gbs=18.0,
        core_bw_gbs=3.0,
        cache_mb=2.0,
        task_overhead_us=25.0,
        sync_latency_us=25.0,
        profiles=profiles,
        library_factor={"repro": 0.95, "repro_qr": 0.78, "acml": 1.0, "plasma": 0.90, "mkl": 1.0},
        overhead_factor={"repro": 1.0, "repro_qr": 1.0, "mkl": 0.1, "acml": 0.1, "plasma": 0.4},
    )
    params.update(overrides)
    return MachineModel(**params)


def generic(cores: int = 4, **overrides) -> MachineModel:
    """A small neutral machine for unit tests and examples."""
    params = dict(
        name=f"generic{cores}",
        cores=cores,
        peak_core_gflops=4.0,
        mem_bw_gbs=8.0,
        core_bw_gbs=3.0,
        cache_mb=4.0,
        task_overhead_us=2.0,
        sync_latency_us=1.0,
        profiles=_common_profiles(gemm_eff=0.85),
        library_factor={"repro": 1.0, "repro_qr": 1.0, "mkl": 1.0, "acml": 1.0, "plasma": 1.0},
    )
    params.update(overrides)
    return MachineModel(**params)
