"""Analytic multicore machine models.

The paper measures wall-clock GFLOP/s on two real machines (a
dual-socket quad-core Intel Xeon and a quad-socket quad-core AMD
Opteron).  We substitute an analytic model with the four ingredients
that produce every effect in the paper's evaluation:

1. per-kernel efficiency curves (BLAS3 ``gemm`` saturates with the
   inner dimension; BLAS2 ``getf2``/``geqr2`` are memory-bound),
2. a shared memory-bandwidth roofline (bus contention between
   memory-bound tasks),
3. per-task scheduling overhead (the paper's "time spent in the
   scheduling itself can lead to a loss of performance"),
4. synchronization latency on task-graph edges that cross cores
   (reduction trees pay ``O(log2 Tr)`` of these per panel).
"""

from repro.machine.calibrate import calibrate_host
from repro.machine.model import KernelProfile, MachineModel
from repro.machine.presets import amd16_acml, generic, intel8_mkl

__all__ = ["KernelProfile", "MachineModel", "amd16_acml", "calibrate_host", "generic", "intel8_mkl"]
