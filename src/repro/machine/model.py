"""The multicore performance model.

Every task carries a :class:`~repro.runtime.task.Cost`; the machine
prices it.  A task's *compute* rate is

``rate = peak_core * library_factor * eff * d / (d + half_dim) * intra_parallel``

where ``d`` is the kernel's saturation dimension (the inner dimension
for ``gemm``-like kernels — small blocks run BLAS3 inefficiently, the
granularity trade-off of the paper's Section III) and
``intra_parallel`` credits kernels a vendor library multithreads
internally (the "parallelized, but not very efficiently" panel of
classic factorizations).

Memory is a roofline: each kernel has a bytes-per-flop demand.  BLAS3
kernels stream ``~16/d`` bytes per flop (blocked reuse); BLAS2 kernels
(``membound=True``) pay their streaming demand whenever the working set
exceeds the cache, which is what makes tall panels bandwidth-bound and
small cache-resident panels compute-bound.  Concurrently running tasks
share the aggregate bandwidth max-min fairly (bus contention), each
capped by the per-core bandwidth times its internal parallelism.

Pure data-movement tasks (row swaps, candidate copies) have
``flops == 0`` and are priced purely by their ``words``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.task import Cost

__all__ = ["KernelProfile", "MachineModel"]


@dataclass(frozen=True)
class KernelProfile:
    """How one kernel class behaves on this machine.

    Parameters
    ----------
    eff:
        Asymptotic fraction of per-core peak for large saturation
        dimension.
    half_dim:
        Saturation dimension at which the kernel reaches half of
        ``eff`` (``d / (d + half_dim)``); 0 disables saturation.
    membound:
        True for BLAS2-class kernels whose traffic scales with the
        flops (no blocking reuse).
    bpf_stream:
        Bytes of memory traffic per flop when the working set does not
        fit in cache (used when ``membound``).
    bpf_inv_dim:
        Width-dependent extra traffic ``bpf_inv_dim / d`` added to the
        streaming demand — narrow panels re-stream the whole panel with
        little reuse (``d`` is the saturation dimension), so BLAS2-ish
        kernels get hungrier as the panel gets skinnier.
    bpf_cached:
        Bytes per flop when the working set is cache-resident.
    intra_parallel:
        Effective number of cores the kernel exploits internally
        (vendor fork-join BLAS); rates and per-core bandwidth caps are
        multiplied by it.  Task-graph algorithms use 1.0 — their
        parallelism is explicit in the graph.
    """

    eff: float
    half_dim: float = 0.0
    membound: bool = False
    bpf_stream: float = 8.0
    bpf_inv_dim: float = 0.0
    bpf_cached: float = 1.0
    intra_parallel: float = 1.0


# Fallback for kernels without an explicit profile.
_DEFAULT_PROFILE = KernelProfile(eff=0.5, half_dim=32.0)


@dataclass(frozen=True)
class MachineModel:
    """An analytic multicore machine.

    Parameters
    ----------
    name: human-readable identifier (used in reports).
    cores: number of cores.
    peak_core_gflops: per-core double-precision peak (GFLOP/s).
    mem_bw_gbs: aggregate memory bandwidth (GB/s) shared by all cores.
    core_bw_gbs: bandwidth one core can draw by itself (GB/s).
    cache_mb: effective cache per task (decides membound kernels'
        cached vs streaming traffic).
    task_overhead_us: dynamic-scheduling cost charged to every task.
    sync_latency_us: latency charged when a task consumes data produced
        on a different core (one charge per task with remote inputs).
    profiles: kernel name -> :class:`KernelProfile`.
    library_factor: efficiency multiplier per library personality
        (``"repro"``, ``"mkl"``, ``"acml"``, ``"plasma"``).
    overhead_factor: per-library multiplier on the task overhead — a
        vendor library's internal fork-join has almost no per-task
        cost, PLASMA's static pipeline is cheap, and the paper's
        hand-rolled dynamic scheduler pays the full price ("the time
        spent in the scheduling itself can lead to a loss of
        performance").
    """

    name: str
    cores: int
    peak_core_gflops: float
    mem_bw_gbs: float
    core_bw_gbs: float
    cache_mb: float = 6.0
    task_overhead_us: float = 2.0
    sync_latency_us: float = 1.0
    profiles: dict[str, KernelProfile] = field(default_factory=dict)
    library_factor: dict[str, float] = field(default_factory=dict)
    overhead_factor: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Per-task pricing
    # ------------------------------------------------------------------
    def profile(self, kernel: str) -> KernelProfile:
        return self.profiles.get(kernel, _DEFAULT_PROFILE)

    def task_overhead_s(self, cost: Cost) -> float:
        """Scheduling overhead charged to this task, in seconds."""
        return self.task_overhead_us * 1e-6 * self.overhead_factor.get(cost.library, 1.0)

    @staticmethod
    def saturation_dim(cost: Cost) -> float:
        """The dimension that drives kernel efficiency.

        The inner dimension ``k`` when present (gemm/trsm block width),
        otherwise the smaller matrix dimension.
        """
        dims = [d for d in (cost.m, cost.n, cost.k) if d > 0]
        if not dims:
            return 1.0
        if cost.k > 0:
            return float(min(cost.k, max(cost.m, 1)))
        return float(min(dims))

    def efficiency(self, cost: Cost) -> float:
        """Fraction of a single core's peak this task's kernel attains."""
        prof = self.profile(cost.kernel)
        lib = self.library_factor.get(cost.library, 1.0)
        d = self.saturation_dim(cost)
        sat = 1.0 if prof.half_dim <= 0 else d / (d + prof.half_dim)
        return min(1.0, prof.eff * lib * sat)

    def compute_rate(self, cost: Cost) -> float:
        """Maximum compute rate for the task, in flop/s."""
        prof = self.profile(cost.kernel)
        return self.peak_core_gflops * 1e9 * self.efficiency(cost) * prof.intra_parallel

    def bytes_per_flop(self, cost: Cost) -> float:
        """Memory-traffic intensity of the task, bytes per flop."""
        prof = self.profile(cost.kernel)
        d = self.saturation_dim(cost)
        if prof.membound:
            stream = prof.bpf_stream + prof.bpf_inv_dim / max(d, 1.0)
            # Smooth cached-to-streaming transition with working-set size
            # (avoids an unphysical performance cliff at the cache size).
            footprint = 8.0 * max(cost.m, 1) * max(cost.n, 1)
            w = footprint / (footprint + self.cache_mb * 1e6)
            return prof.bpf_cached * (1.0 - w) + stream * w
        # BLAS3: blocked reuse leaves ~16/d bytes per flop of streaming.
        return min(4.0, 16.0 / max(d, 1.0))

    def bandwidth_cap(self, cost: Cost) -> float:
        """Bandwidth (bytes/s) this one task may draw at most."""
        prof = self.profile(cost.kernel)
        return min(prof.intra_parallel * self.core_bw_gbs, self.mem_bw_gbs) * 1e9

    def work_and_demand(self, cost: Cost) -> tuple[float, float, float]:
        """Normalize a task for the simulator.

        Returns ``(work, max_rate, bytes_per_work_unit)``: for compute
        tasks work is flops; for pure-memory tasks work is bytes moved
        at a rate capped by the per-core bandwidth.
        """
        if cost.flops > 0:
            rate = self.compute_rate(cost)
            bpf = self.bytes_per_flop(cost)
            if bpf > 0:
                rate = min(rate, self.bandwidth_cap(cost) / bpf)
            return float(cost.flops), rate, bpf
        if cost.words > 0:
            return float(cost.words) * 8.0, self.core_bw_gbs * 1e9, 1.0
        return 0.0, 1.0, 0.0

    def seq_time(self, cost: Cost) -> float:
        """Time for the task running alone (no contention), seconds."""
        work, rate, _ = self.work_and_demand(cost)
        return self.task_overhead_s(cost) + (work / rate if work > 0 else 0.0)

    # ------------------------------------------------------------------
    # Contention: max-min fair bandwidth sharing
    # ------------------------------------------------------------------
    def share_rates(self, demands: list[tuple[float, float]]) -> list[float]:
        """Rates for concurrently running tasks under the bandwidth roofline.

        *demands* is a list of ``(max_rate, bytes_per_work_unit)``.
        Tasks whose full-speed draw fits their fair share run at full
        speed; the rest water-fill the aggregate bandwidth max-min
        fairly.
        """
        n = len(demands)
        rates = [0.0] * n
        pending = []
        for i, (r, b) in enumerate(demands):
            if b <= 0.0:
                rates[i] = r
            else:
                pending.append(i)
        bw_rem = self.mem_bw_gbs * 1e9
        while pending:
            share = bw_rem / len(pending)
            saturated = [i for i in pending if demands[i][0] * demands[i][1] <= share + 1e-9]
            if saturated:
                for i in saturated:
                    rates[i] = demands[i][0]
                    bw_rem -= demands[i][0] * demands[i][1]
                sat = set(saturated)
                pending = [i for i in pending if i not in sat]
            else:
                for i in pending:
                    rates[i] = share / demands[i][1]
                pending = []
        return rates
