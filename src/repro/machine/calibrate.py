"""Calibrate a machine model against the host's measured kernel rates.

The presets in :mod:`repro.machine.presets` model the paper's 2009
machines.  For users who want the simulator to reflect *their* machine,
this module measures the actual numeric kernels (``gemm``-class BLAS3,
``getf2``-class BLAS2, the recursive panels) at a few sizes, fits the
saturating-efficiency model ``rate(d) = R_inf * d / (d + d_half)`` per
kernel, and returns a :class:`~repro.machine.model.MachineModel` whose
single-core rates match the host.

This keeps the model honest in both roles: the paper presets reproduce
published shapes; a calibrated model predicts the host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.kernels.blas import gemm
from repro.kernels.lu import getf2, rgetf2
from repro.kernels.qr import geqr2, geqr3
from repro.machine.model import KernelProfile, MachineModel

__all__ = ["KernelSample", "measure_kernel_rates", "fit_profile", "calibrate_host"]


@dataclass(frozen=True)
class KernelSample:
    """One measurement: saturation dimension, achieved flop rate."""

    dim: int
    gflops: float


def _time_once(fn, flops: float, min_time: float = 0.02, setup=None) -> float:
    """Run *fn* repeatedly until *min_time* of kernel time accumulates;
    return GFLOP/s.

    *setup* (e.g. ``P.copy`` for an in-place kernel) runs before each
    repetition, **outside** the timed region, and its result is passed
    to *fn* — so allocation/copy cost never pollutes the measured rate,
    which would skew the calibration for small panels.
    """
    reps = 0
    timed = 0.0
    while True:
        arg = setup() if setup is not None else None
        t0 = time.perf_counter()
        fn(arg) if setup is not None else fn()
        timed += time.perf_counter() - t0
        reps += 1
        if timed >= min_time:
            return flops * reps / timed / 1e9


def measure_kernel_rates(dims=(16, 32, 64, 128), rows: int = 2048, seed: int = 0):
    """Measure host GFLOP/s for the core kernel classes at several widths.

    Returns ``{kernel_name: [KernelSample, ...]}`` for ``gemm``,
    ``getf2``, ``rgetf2``, ``geqr2`` and ``geqr3``.
    """
    rng = np.random.default_rng(seed)
    out: dict[str, list[KernelSample]] = {k: [] for k in ("gemm", "getf2", "rgetf2", "geqr2", "geqr3")}
    for d in dims:
        C = rng.standard_normal((rows, d))
        A = rng.standard_normal((rows, d))
        B = rng.standard_normal((d, d))
        out["gemm"].append(
            KernelSample(d, _time_once(lambda: gemm(C, A, B), 2.0 * rows * d * d))
        )
        P = rng.standard_normal((rows, d))
        lu_flops = rows * d * d - d**3 / 3.0
        # The in-place panel kernels need a fresh copy per repetition;
        # the copy runs as untimed setup so only kernel time is counted.
        out["getf2"].append(KernelSample(d, _time_once(getf2, lu_flops, setup=P.copy)))
        out["rgetf2"].append(KernelSample(d, _time_once(rgetf2, lu_flops, setup=P.copy)))
        qr_flops = 2.0 * rows * d * d - 2.0 * d**3 / 3.0
        out["geqr2"].append(KernelSample(d, _time_once(geqr2, qr_flops, setup=P.copy)))
        out["geqr3"].append(KernelSample(d, _time_once(geqr3, qr_flops, setup=P.copy)))
    return out


def fit_profile(samples: list[KernelSample], peak_gflops: float) -> KernelProfile:
    """Fit ``rate(d) = R_inf * d / (d + d_half)`` to the measurements.

    Linearized least squares on ``1/rate = 1/R_inf + (d_half/R_inf)/d``
    (a Lineweaver-Burk fit), clamped to sane ranges.
    """
    if not samples:
        raise ValueError("no samples to fit")
    if len(samples) == 1:
        s = samples[0]
        return KernelProfile(eff=min(1.0, s.gflops / peak_gflops), half_dim=0.0)
    x = np.array([1.0 / s.dim for s in samples])
    y = np.array([1.0 / max(s.gflops, 1e-9) for s in samples])
    slope, intercept = np.polyfit(x, y, 1)
    intercept = max(intercept, 1e-12)
    r_inf = 1.0 / intercept
    d_half = max(0.0, slope / intercept)
    return KernelProfile(eff=min(1.0, r_inf / peak_gflops), half_dim=float(d_half))


def calibrate_host(
    cores: int | None = None,
    dims=(16, 32, 64, 128),
    rows: int = 2048,
    mem_bw_gbs: float = 20.0,
    name: str = "host",
) -> MachineModel:
    """Build a :class:`MachineModel` fitted to this host's kernel rates.

    The per-core peak is taken as 1.15x the best measured ``gemm`` rate
    (leaving headroom so fitted efficiencies stay < 1); BLAS2 kernels
    keep their memory-bound character with the fitted ceilings.
    """
    import os

    measured = measure_kernel_rates(dims=dims, rows=rows)
    peak = 1.15 * max(s.gflops for s in measured["gemm"])
    profiles: dict[str, KernelProfile] = {}
    for kernel, samples in measured.items():
        prof = fit_profile(samples, peak)
        if kernel in ("getf2", "geqr2"):
            profiles[kernel] = KernelProfile(
                eff=prof.eff,
                half_dim=prof.half_dim,
                membound=True,
                bpf_stream=4.0,
                bpf_inv_dim=20.0,
                bpf_cached=1.0,
            )
        else:
            profiles[kernel] = prof
    profiles["getf2_nopiv"] = profiles["getf2"]
    # Derived kernels inherit the gemm ceiling.
    g = profiles["gemm"]
    for k, scale in (("trsm_llnu", 0.9), ("trsm_runn", 0.9), ("larfb", 0.95), ("gepp_merge", 0.7),
                     ("tpqrt_ts", 0.8), ("tpqrt_tt", 0.55), ("tpmqrt", 0.85), ("gessm", 0.85),
                     ("ssssm", 0.85), ("geqrt_tile", 0.7), ("getrf_tile", 0.7), ("tsmqr_tile", 0.9)):
        profiles[k] = KernelProfile(eff=g.eff * scale, half_dim=g.half_dim)
    n_cores = cores or os.cpu_count() or 1
    return MachineModel(
        name=name,
        cores=n_cores,
        peak_core_gflops=peak,
        mem_bw_gbs=mem_bw_gbs,
        core_bw_gbs=mem_bw_gbs / max(1, n_cores // 2),
        cache_mb=8.0,
        task_overhead_us=5.0,
        sync_latency_us=1.0,
        profiles=profiles,
        library_factor={"repro": 1.0, "repro_qr": 1.0, "mkl": 1.0, "acml": 1.0, "plasma": 1.0},
    )
