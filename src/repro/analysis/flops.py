"""Closed-form floating-point operation counts.

Used in three roles:

* builders attach these to task :class:`~repro.runtime.task.Cost`
  descriptors so the simulated machine can price paper-scale problems;
* the benchmark harness converts simulated makespans into GFLOP/s with
  the *standard* algorithm counts (``2/3 n³`` for LU, ``2mn² - 2n³/3``
  for QR), matching how the paper normalizes its plots — the extra
  flops communication-avoiding algorithms perform are charged as time
  but not credited as useful work;
* tests cross-check the kernels' runtime flop counters against them.

All counts are leading-order LAPACK conventions for real double
precision (a multiply-add pair is two flops).
"""

from __future__ import annotations

__all__ = [
    "gemm_flops",
    "trsm_left_flops",
    "trsm_right_flops",
    "lu_panel_flops",
    "lu_flops",
    "qr_panel_flops",
    "qr_flops",
    "larfb_flops",
    "tpqrt_ts_flops",
    "tpqrt_tt_flops",
    "tpmqrt_flops",
    "tstrf_flops",
    "ssssm_flops",
    "tslu_extra_flops",
    "tsqr_tree_flops",
]


def gemm_flops(m: int, n: int, k: int) -> float:
    """``C (m x n) -= A (m x k) @ B (k x n)``."""
    return 2.0 * m * n * k


def trsm_left_flops(k: int, n: int) -> float:
    """Unit-lower left solve of ``k x k`` against ``k x n`` (task U)."""
    return float(k) * (k - 1) * n


def trsm_right_flops(m: int, k: int) -> float:
    """Upper right solve of ``m x k`` against ``k x k`` (task L)."""
    return float(m) * k * k


def lu_panel_flops(m: int, n: int) -> float:
    """GEPP of an ``m x n`` panel (``m >= n``): ``m n² - n³/3``."""
    return float(m) * n * n - n**3 / 3.0


def lu_flops(m: int, n: int) -> float:
    """Standard LU count for an ``m x n`` matrix (``n³·2/3`` when square).

    ``m n² - n³/3`` for ``m >= n`` — the normalization the paper's
    GFLOP/s plots use for ``dgetrf``-class routines.
    """
    if m >= n:
        return float(m) * n * n - n**3 / 3.0
    return float(n) * m * m - m**3 / 3.0


def qr_panel_flops(m: int, n: int) -> float:
    """Householder QR of an ``m x n`` panel (``m >= n``): ``2mn² - 2n³/3``."""
    return 2.0 * m * n * n - 2.0 * n**3 / 3.0


def qr_flops(m: int, n: int) -> float:
    """Standard Householder QR count (factor only): ``2mn² - 2n³/3``."""
    if m >= n:
        return 2.0 * m * n * n - 2.0 * n**3 / 3.0
    return 2.0 * n * m * m - 2.0 * m**3 / 3.0


def larfb_flops(m: int, n: int, k: int) -> float:
    """Apply a ``k``-reflector block to ``m x n``: ``4mnk`` (+ ``k²n``)."""
    return 4.0 * m * n * k + float(k) * k * n


def tpqrt_ts_flops(m: int, b: int) -> float:
    """Triangular-on-top QR with a dense ``m x b`` bottom: ``~3mb²``.

    ``2mb²`` for the reflections plus ``mb²`` for accumulating ``T``.
    """
    return 3.0 * m * b * b


def tpqrt_tt_flops(b: int) -> float:
    """Triangular-triangular merge (TSQR tree node): ``~(5/3) b³``.

    ``2b³/3`` for the structured reflections plus ``b³`` for
    accumulating ``T`` (``2b³/3`` for the ``V^T v`` products and
    ``b³/3`` for the triangular multiplies).
    """
    return 5.0 * float(b) ** 3 / 3.0


def tpmqrt_flops(m: int, n: int, b: int) -> float:
    """Apply a tpqrt block reflector to ``[b x n; m x n]``: ``4mnb + b²n``."""
    return 4.0 * m * n * b + float(b) * b * n


def tstrf_flops(m: int, b: int) -> float:
    """Incremental-pivoting LU of ``[b x b tri; m x b]``: ``~mb²``."""
    return float(m) * b * b


def ssssm_flops(m: int, n: int, b: int) -> float:
    """Replay a tstrf elimination on ``[b x n; m x n]``: ``2mnb``."""
    return 2.0 * m * n * b


def tslu_extra_flops(m: int, b: int, tr: int, binary: bool = True) -> float:
    """Extra flops TSLU performs over plain GEPP of an ``m x b`` panel.

    The preprocessing GEPP at the leaves (``m b² - b³/3`` total) plus
    the tree merges (``tr - 1`` GEPPs of ``2b x b`` stacks for any tree
    shape, ``~5b³/3`` each) — the redundant work the paper trades for
    fewer synchronizations.  The top ``b x b`` block is then factored
    again (``2b³/3``).
    """
    leaves = float(m) * b * b - b**3 / 3.0
    merges = (tr - 1) * (2.0 * b * b * b - b**3 / 3.0)
    refactor = 2.0 * b**3 / 3.0
    return leaves + merges + refactor


def tsqr_tree_flops(b: int, tr: int) -> float:
    """Flops in the merge levels of a TSQR reduction over ``tr`` leaves."""
    return (tr - 1) * tpqrt_tt_flops(b)
