"""Sequential memory-hierarchy traffic (the paper's other §II claim).

"With a flat reduction tree, the algorithms are optimal in the amount
of communication they perform in sequential, that is the amount of
data transferred between different levels of memory."  This module
gives closed-form slow-memory traffic (words moved between a fast
memory of ``W`` words and slow memory) for the panel strategies:

* classic partial pivoting re-touches the trailing panel on every
  column — ``~m b² / 2`` words once the panel exceeds the fast memory;
* TSLU/TSQR with a flat tree streams the panel once per phase
  (tournament + factor) plus ``O(b²)`` per merge — ``~2 m b`` words.

The ``b/4``-fold separation mirrors the parallel ``O(b)`` message
separation of :mod:`repro.analysis.communication`.
"""

from __future__ import annotations

import math

__all__ = [
    "panel_io_classic",
    "panel_io_ca_flat",
    "panel_io_direct_tsqr",
    "predicted_panel_io",
    "lu_io_lower_bound",
    "blocked_lu_io",
    "panel_io_reduction_factor",
]


def panel_io_classic(m: int, b: int, fast_words: int) -> float:
    """Slow-memory words for a partial-pivoting panel of size ``m x b``.

    If the panel fits in fast memory it is read and written once.
    Otherwise every column's pivot search + rank-1 update streams the
    remaining panel: ``sum_j (m - j)(b - j) ~ m b² / 2`` reads plus the
    writes.
    """
    if m * b <= fast_words:
        return 2.0 * m * b
    reads = sum((m - j) * (b - j) for j in range(b))
    return float(reads) + m * b  # one final write-back of the factors


def panel_io_ca_flat(m: int, b: int, fast_words: int) -> float:
    """Slow-memory words for a flat-tree TSLU/TSQR panel of size ``m x b``.

    Leaf blocks are sized to fit fast memory, so the tournament streams
    the panel once (each block read once, candidates ``b x b`` written
    per leaf), the winner block is factored in cache, and the final
    panel factorization streams the panel once more.
    """
    if m * b <= fast_words:
        return 2.0 * m * b
    block_rows = max(b, fast_words // (2 * b))
    n_leaves = math.ceil(m / block_rows)
    tournament = m * b + n_leaves * b * b  # read blocks, write candidates
    factor = 2.0 * m * b  # read + write the panel against the pivot block
    return tournament + factor


def panel_io_direct_tsqr(m: int, b: int, fast_words: int, want_q: bool = False) -> float:
    """Slow-memory words for a single-pass Direct TSQR panel.

    The R-only regime reads the panel exactly once — each leaf block is
    QR-factored as it arrives and only its ``b x b`` ``R`` factor is
    kept, so nothing is ever written back; this is the read-once floor
    for any algorithm that must look at every entry.  With *want_q* the
    per-block explicit ``Q_1`` factors are written out (``m b`` words)
    and re-read + rewritten by the second-stage multiply (``2 m b``).
    """
    if m * b <= fast_words:
        return 2.0 * m * b
    read_once = float(m) * b
    return read_once + (3.0 * m * b if want_q else 0.0)


def predicted_panel_io(kind: str, m: int, b: int, fast_words: int) -> float:
    """Dispatch a panel-traffic prediction by strategy name.

    ``kind`` is ``"classic"``, ``"ca_flat"`` (streaming flat-tree
    TSLU/TSQR), ``"direct_tsqr"`` or ``"direct_tsqr_q"``.  This is the
    lookup the out-of-core benchmark uses to pair each measured
    byte count with its closed form.
    """
    table = {
        "classic": lambda: panel_io_classic(m, b, fast_words),
        "ca_flat": lambda: panel_io_ca_flat(m, b, fast_words),
        "direct_tsqr": lambda: panel_io_direct_tsqr(m, b, fast_words),
        "direct_tsqr_q": lambda: panel_io_direct_tsqr(m, b, fast_words, want_q=True),
    }
    try:
        return table[kind]()
    except KeyError:
        raise ValueError(f"unknown panel I/O strategy {kind!r}") from None


def blocked_lu_io(m: int, n: int, b: int, fast_words: int, ca_panel: bool) -> float:
    """Total slow-memory traffic of a right-looking blocked LU.

    Panels via :func:`panel_io_classic` or :func:`panel_io_ca_flat`;
    each trailing update streams the trailing matrix once per iteration
    (reads + writes) plus the panel/row reads.
    """
    total = 0.0
    r = min(m, n)
    for k0 in range(0, r, b):
        bk = min(b, r - k0)
        mr = m - k0
        nr = n - k0 - bk
        panel = panel_io_ca_flat(mr, bk, fast_words) if ca_panel else panel_io_classic(mr, bk, fast_words)
        update = 2.0 * mr * nr + mr * bk + bk * nr if nr > 0 else 0.0
        total += panel + update
    return total


def lu_io_lower_bound(m: int, n: int, fast_words: int) -> float:
    """Hong-Kung-style lower bound on LU traffic: ``~ m n² / sqrt(8 W)``.

    (Irony-Toledo-Tiskin form, constants dropped to the standard
    ``1/sqrt(8W)``.)  Any correct LU moves at least this many words.
    """
    return float(m) * n * n / math.sqrt(8.0 * fast_words)


def panel_io_reduction_factor(m: int, b: int, fast_words: int) -> float:
    """Traffic ratio classic/CA for one panel (``~ b/4`` when streaming)."""
    ca = panel_io_ca_flat(m, b, fast_words)
    return panel_io_classic(m, b, fast_words) / ca if ca else float("inf")
