"""Closed-form communication analysis (the paper's Section II claims).

The communication-avoiding argument in numbers: factoring one
``m x b`` panel with ``Tr`` participants costs

* classic partial pivoting — one max-reduction per column:
  ``b * ceil(log2 Tr)`` messages;
* TSLU/TSQR with a binary tree — one exchange per level:
  ``ceil(log2 Tr)`` messages (optimal in parallel);
* TSLU/TSQR with a flat tree — one gather: ``Tr - 1`` messages into a
  single synchronization step (optimal sequentially; on shared memory
  "an efficient alternative").

These functions give message/word counts for panels and for whole
factorizations, used by the analysis tests to validate the simulator's
counted synchronizations and by users sizing reduction trees.
"""

from __future__ import annotations

import math

from repro.core.trees import TreeKind, tree_height

__all__ = [
    "panel_messages_classic",
    "panel_messages_ca",
    "panel_words_ca",
    "factorization_messages_classic",
    "factorization_messages_ca",
    "sync_reduction_factor",
]


def panel_messages_classic(b: int, tr: int) -> int:
    """Synchronizations for a partial-pivoting panel: one per column.

    Each of the ``b`` columns needs a max-reduction over the ``Tr``
    participants (``ceil(log2 Tr)`` exchanges) before the rank-1 update.
    """
    if tr <= 1:
        return 0
    return b * math.ceil(math.log2(tr))


def panel_messages_ca(tr: int, tree: TreeKind = TreeKind.BINARY, arity: int = 4) -> int:
    """Synchronization steps for a TSLU/TSQR panel: the tree height."""
    return tree_height(tr, tree, arity)


def panel_words_ca(b: int, tr: int, tree: TreeKind = TreeKind.BINARY, arity: int = 4) -> int:
    """Words exchanged by a TSLU/TSQR panel reduction.

    Each merge moves one ``b x b`` candidate set (LU) or ``R`` factor
    (QR); any tree shape performs exactly ``Tr - 1`` merges.
    """
    if tr <= 1:
        return 0
    return (tr - 1) * b * b


def factorization_messages_classic(n: int, b: int, tr: int) -> int:
    """Panel synchronizations over a full classic factorization."""
    return (n // b) * panel_messages_classic(b, tr)


def factorization_messages_ca(
    n: int, b: int, tr: int, tree: TreeKind = TreeKind.BINARY, arity: int = 4
) -> int:
    """Panel synchronizations over a full CALU/CAQR factorization."""
    return (n // b) * panel_messages_ca(tr, tree, arity)


def sync_reduction_factor(b: int, tr: int, tree: TreeKind = TreeKind.BINARY) -> float:
    """How many fewer panel synchronizations CA needs vs classic.

    ``b`` for a binary tree (the paper's headline: ``O(log2 Tr)``
    instead of ``O(b log2 Tr)``), larger still for a flat tree.
    """
    classic = panel_messages_classic(b, tr)
    ca = panel_messages_ca(tr, tree)
    if ca == 0:
        return float("inf") if classic > 0 else 1.0
    return classic / ca
