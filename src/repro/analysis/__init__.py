"""Numerical-quality metrics, closed-form operation/communication counts
and schedule statistics."""

from repro.analysis.communication import (
    factorization_messages_ca,
    factorization_messages_classic,
    panel_messages_ca,
    panel_messages_classic,
    panel_words_ca,
    sync_reduction_factor,
)
from repro.analysis.errors import (
    growth_factor,
    lu_backward_error,
    orthogonality_error,
    qr_backward_error,
)
from repro.analysis.flops import (
    gemm_flops,
    larfb_flops,
    lu_flops,
    lu_panel_flops,
    qr_flops,
    qr_panel_flops,
    trsm_left_flops,
    trsm_right_flops,
)
from repro.analysis.schedule import ScheduleStats, schedule_stats

__all__ = [
    "ScheduleStats",
    "factorization_messages_ca",
    "factorization_messages_classic",
    "panel_messages_ca",
    "panel_messages_classic",
    "panel_words_ca",
    "sync_reduction_factor",
    "gemm_flops",
    "growth_factor",
    "larfb_flops",
    "lu_backward_error",
    "lu_flops",
    "lu_panel_flops",
    "orthogonality_error",
    "qr_backward_error",
    "qr_flops",
    "qr_panel_flops",
    "schedule_stats",
    "trsm_left_flops",
    "trsm_right_flops",
]
