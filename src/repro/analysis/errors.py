"""Numerical-quality metrics.

The paper's central stability claim — CALU's ca-pivoting is in practice
as stable as partial pivoting, while PLASMA-style incremental pivoting
is weaker — is validated with these metrics in the test suite and the
stability ablation benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lu_backward_error",
    "qr_backward_error",
    "orthogonality_error",
    "growth_factor",
    "residual_norm",
]


def lu_backward_error(A: np.ndarray, perm: np.ndarray, L: np.ndarray, U: np.ndarray) -> float:
    """Normwise relative backward error ``||A[perm] - L U|| / ||A||``."""
    num = np.linalg.norm(A[perm] - L @ U)
    den = np.linalg.norm(A)
    return float(num / den) if den else float(num)


def qr_backward_error(A: np.ndarray, Q: np.ndarray, R: np.ndarray) -> float:
    """Normwise relative backward error ``||A - Q R|| / ||A||``."""
    num = np.linalg.norm(A - Q @ R)
    den = np.linalg.norm(A)
    return float(num / den) if den else float(num)


def orthogonality_error(Q: np.ndarray) -> float:
    """Deviation from orthogonality ``||Q^T Q - I||_2``."""
    k = Q.shape[1]
    return float(np.linalg.norm(Q.T @ Q - np.eye(k), 2))


def growth_factor(A: np.ndarray, U: np.ndarray) -> float:
    """Element growth ``max|U| / max|A|`` of an elimination.

    For GEPP this is bounded by ``2^(n-1)`` and is small in practice
    (Trefethen & Schreiber); CALU's bound is ``2^(n(H+1))`` with tree
    height ``H`` but behaves like GEPP in practice — the claim the
    stability benchmarks check against incremental pivoting.
    """
    denom = np.abs(A).max()
    if denom == 0.0:
        return 0.0
    return float(np.abs(U).max() / denom)


def residual_norm(A: np.ndarray, x: np.ndarray, rhs: np.ndarray) -> float:
    """Relative residual ``||A x - rhs|| / (||A|| ||x||)`` of a solve."""
    den = np.linalg.norm(A) * np.linalg.norm(x)
    num = np.linalg.norm(A @ x - rhs)
    return float(num / den) if den else float(num)
