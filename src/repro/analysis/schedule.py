"""Schedule statistics derived from execution traces.

Quantifies the paper's Figures 3-4 story: how much idle time the panel
factorization creates on the critical path, and how raising ``Tr``
removes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.graph import TaskGraph
from repro.runtime.trace import Trace

__all__ = ["ScheduleStats", "schedule_stats"]


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate schedule quality numbers.

    ``panel_fraction`` is the share of busy core-seconds spent in panel
    (P) tasks; ``critical_path`` is the dependency-limited lower bound
    on the makespan; ``efficiency`` is busy / (makespan * cores).
    """

    makespan: float
    idle_fraction: float
    busy_by_kind: dict[str, float]
    critical_path: float
    n_tasks: int
    n_cores: int

    @property
    def efficiency(self) -> float:
        return 1.0 - self.idle_fraction

    @property
    def panel_fraction(self) -> float:
        busy = sum(self.busy_by_kind.values())
        return self.busy_by_kind.get("P", 0.0) / busy if busy else 0.0

    @property
    def critical_path_slack(self) -> float:
        """Makespan / critical path: 1.0 means the schedule is path-bound."""
        return self.makespan / self.critical_path if self.critical_path else float("inf")


def schedule_stats(trace: Trace, graph: TaskGraph, machine=None) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for an executed graph.

    If *machine* is given, the critical path is measured in modelled
    seconds; otherwise in observed per-task durations.
    """
    if machine is not None:
        cp, _ = graph.critical_path(lambda t: machine.seq_time(t.cost))
    else:
        durations = {r.tid: r.duration for r in trace.records}
        cp, _ = graph.critical_path(lambda t: durations.get(t.tid, 0.0))
    return ScheduleStats(
        makespan=trace.makespan,
        idle_fraction=trace.idle_fraction(),
        busy_by_kind=trace.busy_by_kind(),
        critical_path=cp,
        n_tasks=len(graph.tasks),
        n_cores=trace.n_cores,
    )
