"""Out-of-core tall-skinny factorizations over a tile store.

The paper's *sequential* claim for CALU/CAQR panels — a flat reduction
tree moves the I/O-optimal number of words between fast and slow memory
— is exercised here for real: the panel lives in a
:class:`~repro.runtime.tilestore.TileStore` (typically the mmap-backed
spill plane, bigger than RAM), and the drivers stream it through fast
memory one leaf block at a time.

Three entry points:

:func:`tsqr_ooc`
    Flat-tree TSQR with implicit ``Q``.  Each leaf block is loaded,
    QR-factored (``dgeqr3``) and written back; the running ``R`` stays
    resident and absorbs each leaf's ``R`` through a structured
    ``[R; R_i]`` merge (``tpqrt``), exactly the kernel sequence of the
    in-memory flat tree — so on sizes both paths can run, the factored
    panels are bitwise identical (``tests/core/test_outofcore.py``).
    Traffic: read ``m·b`` + write ``m·b`` words, once each.

:func:`tslu_ooc`
    Tournament-pivoting TSLU.  Pass 1 streams the blocks read-only to
    elect candidate rows (the tournament's leaves; candidates are tiny
    and stay in RAM through the reduction).  The finalize swaps the
    winners to the top with windowed row transfers replicating
    ``laswp``'s exact swap sequence, factors the pivot block, and a
    final streaming pass applies the ``L`` triangular solves.
    Traffic: ``≈ 3·m·b`` words — the :func:`repro.analysis.io_model.
    panel_io_ca_flat` prediction the out-of-core benchmark gates on.

:func:`direct_tsqr`
    The single-pass "Direct TSQR" variant (Benson, Gleich & Demmel):
    per-block QR, one small second-stage QR of the stacked ``R``
    factors, optional explicit ``Q`` reconstruction.  With ``want_q=
    False`` the panel is consumed *once* from its source and nothing is
    written back — the read-once regime for when only ``R`` (or a
    least-squares solve) is needed.

Sources are an in-RAM array or a ``(shape, fill)`` generator pair
(``fill(r0, r1)`` returns rows ``[r0, r1)``), so panels larger than RAM
never exist as one array.  All streaming transfers go through
:meth:`TileStore.load`/:meth:`TileStore.store`, so measured traffic
lands in the global ``store_read_bytes``/``store_write_bytes`` counters
that ``benchmarks/bench_outofcore.py`` compares against the I/O model.

Degradation ladder: the in-memory TSLU can repair or degrade a
corrupted tournament by re-reading the whole panel; out of core that
re-read is the dominant cost, so a corrupted tournament raises instead
(:class:`RuntimeError`) — rerun the panel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.flops import (
    lu_flops,
    lu_panel_flops,
    qr_flops,
    tpqrt_tt_flops,
    trsm_right_flops,
)
from repro.core.layout import BlockLayout, Chunk
from repro.core.trees import TreeKind, reduction_schedule
from repro.core.tslu import PanelWorkspace, _merge_fn, _select_pivots
from repro.kernels.blas import trsm_runn
from repro.kernels.lu import getf2_nopiv, perm_from_piv_rows
from repro.kernels.qr import extract_v, geqr2, geqr3, larfb_left_t, larft
from repro.kernels.structured import tpmqrt_left_t, tpqrt
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from repro.runtime.tilestore import TileStore, open_store

__all__ = [
    "MatrixSource",
    "as_source",
    "plan_chunks",
    "tsqr_ooc",
    "tslu_ooc",
    "direct_tsqr",
    "OOCTSQRFactorization",
    "OOCPanelLU",
    "DirectTSQRFactorization",
    "DEFAULT_MEMORY_BUDGET",
]

#: Fast-memory budget assumed when neither ``tr`` nor ``memory_budget``
#: is given: conservative enough to matter, big enough not to crawl.
DEFAULT_MEMORY_BUDGET = 256 << 20


# ---------------------------------------------------------------------------
# Sources and planning
# ---------------------------------------------------------------------------


@dataclass
class MatrixSource:
    """A panel deliverable in row windows: ``fill(r0, r1)`` -> rows."""

    shape: tuple[int, int]
    fill: Callable[[int, int], np.ndarray]


def as_source(source) -> MatrixSource:
    """Coerce an ndarray, ``(shape, fill)`` pair or source to a source."""
    if isinstance(source, MatrixSource):
        return source
    if (
        isinstance(source, tuple)
        and len(source) == 2
        and not isinstance(source[0], np.ndarray)
        and callable(source[1])
    ):
        shape, fill = source
        m, n = (int(s) for s in shape)
        return MatrixSource(shape=(m, n), fill=fill)
    A = np.asarray(source, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"panel source must be 2-D, got shape {A.shape}")
    return MatrixSource(shape=A.shape, fill=lambda r0, r1: A[r0:r1])


def plan_chunks(
    m: int,
    n: int,
    *,
    tr: int | None = None,
    memory_budget: int | None = None,
    n_workers: int = 1,
    merge_tail: bool = True,
) -> list[Chunk]:
    """Row-chunk a panel so streaming fits a fast-memory budget.

    With *tr* the chunking is exactly the in-memory drivers' (this is
    how the parity tests pin both paths to identical blocks).  With
    *memory_budget* (bytes) the chunk height is chosen so the resident
    set — one loaded block per worker, the resident root/top block and
    one staging buffer — stays under budget.  ``merge_tail`` applies
    the tail-merge policy TSQR shares with CALU
    (:func:`repro.core.calu.merged_chunks`); TSLU uses the plain
    partition, matching :meth:`BlockLayout.panel_chunks`.
    """
    from repro.core.calu import merged_chunks  # shared chunk policy

    layout = BlockLayout(m, n, b=n)
    if tr is None:
        budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else int(memory_budget)
        resident = n_workers + 2
        block_row_bytes = n * n * np.dtype(np.float64).itemsize
        per = max(1, budget // (resident * block_row_bytes))  # block-rows per chunk
        tr = max(1, math.ceil(layout.M / per))
    chunks = merged_chunks(layout, 0, tr) if merge_tail else layout.panel_chunks(0, tr)
    return chunks


def _stage_panel(
    store: TileStore, src: MatrixSource, chunks: list[Chunk], check_finite: bool
) -> tuple:
    """Reserve a store region for the panel and stream the source in."""
    m, n = src.shape
    a_spec = store.reserve((m, n))
    for chunk in chunks:
        block = np.ascontiguousarray(src.fill(chunk.r0, chunk.r1), dtype=np.float64)
        if block.shape != (chunk.rows, n):
            raise ValueError(
                f"source fill({chunk.r0}, {chunk.r1}) returned {block.shape}, "
                f"expected {(chunk.rows, n)}"
            )
        if check_finite and not np.isfinite(block).all():
            raise ValueError(
                f"panel rows [{chunk.r0}, {chunk.r1}) contain non-finite entries"
            )
        store.store(TileStore.sub(a_spec, chunk.r0, chunk.r1), block)
    return a_spec


def _resolve_store(store, spill_dir):
    """Driver-side ``store=`` resolution (spill_dir only for mmap)."""
    kwargs = {"spill_dir": spill_dir} if store == "mmap" and spill_dir is not None else {}
    return open_store(store, **kwargs)


# ---------------------------------------------------------------------------
# Out-of-core TSQR (flat tree, implicit Q)
# ---------------------------------------------------------------------------


class _OOCQRState:
    """Resident state of one streaming TSQR run."""

    def __init__(self) -> None:
        self.Rtop: np.ndarray | None = None  # running n x n R factor
        self.leaf_T: dict[int, np.ndarray] = {}
        self.merge_T: list[np.ndarray] = []


def tsqr_ooc_program(
    store: TileStore,
    a_spec: tuple,
    chunks: list[Chunk],
    *,
    leaf_kernel: str = "geqr3",
) -> tuple[GraphProgram, _OOCQRState]:
    """Streaming program for one out-of-core flat-tree TSQR panel.

    Window *i* holds leaf *i* (load block, QR, write back) and, for
    ``i >= 1``, the merge folding its ``R`` into the resident root; a
    final epilogue window writes the root ``R`` back.  With the
    program's look-ahead of 1 at most three leaf blocks are in flight,
    so fast memory stays bounded by the planner's resident-set model.
    The merges replay the in-memory flat tree's ``tpqrt`` calls in the
    same order on the same values, which is what makes the two paths
    bitwise identical.
    """
    _, _, (m, n), _ = a_spec
    bk = n
    state = _OOCQRState()
    sub = TileStore.sub

    def _leaf_fn(chunk: Chunk):
        def fn() -> None:
            spec = sub(a_spec, chunk.r0, chunk.r1)
            W = store.load(spec)
            if leaf_kernel == "geqr3":
                T = geqr3(W)
            else:
                tau = geqr2(W)
                T = larft(extract_v(W), tau)
            state.leaf_T[chunk.index] = T
            store.store(spec, W)

        return fn

    def _merge_fn_qr(src: Chunk):
        def fn() -> None:
            if state.Rtop is None:
                state.Rtop = store.load(sub(a_spec, chunks[0].r0, chunks[0].r0 + bk))
            spec = sub(a_spec, src.r0, src.r0 + bk)
            B = store.load(spec)
            T = tpqrt(state.Rtop, B, bottom_triangular=True)
            state.merge_T.append(T)
            store.store(spec, B)

        return fn

    def _flush_fn():
        def fn() -> None:
            if state.Rtop is None:  # single chunk: no merges ran
                state.Rtop = store.load(sub(a_spec, chunks[0].r0, chunks[0].r0 + bk))
            else:
                store.store(sub(a_spec, chunks[0].r0, chunks[0].r0 + bk), state.Rtop)

        return fn

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        if window == len(chunks):
            tracker.add_task(
                graph,
                "flushR",
                TaskKind.P,
                Cost("store_flush", m=bk, n=bk, flops=0, words=1.0 * bk * bk),
                fn=_flush_fn(),
                reads=[("oocroot",)],
                writes=[("oocroot",), ("oocblk", chunks[0].index)],
            )
            return
        chunk = chunks[window]
        tracker.add_task(
            graph,
            f"P[0]leaf{chunk.index}",
            TaskKind.P,
            Cost(
                leaf_kernel,
                m=chunk.rows,
                n=bk,
                flops=qr_flops(chunk.rows, bk),
                words=2.0 * chunk.rows * bk,
            ),
            fn=_leaf_fn(chunk),
            reads=[("oocblk", chunk.index)],
            writes=[("oocblk", chunk.index)],
        )
        if window >= 1:
            # RAW on both touched blocks, WAW on the root chains the
            # merges in leaf order — the in-memory flat merge's loop
            # order, load-bearing for bitwise parity.
            tracker.add_task(
                graph,
                f"P[0]merge0<{chunk.index}",
                TaskKind.P,
                Cost(
                    "tpqrt_tt",
                    m=2 * bk,
                    n=bk,
                    k=bk,
                    flops=tpqrt_tt_flops(bk),
                    words=3.0 * bk * bk,
                ),
                fn=_merge_fn_qr(chunk),
                reads=[("oocblk", chunks[0].index), ("oocblk", chunk.index)],
                writes=[("oocroot",), ("oocblk", chunk.index)],
            )

    program = GraphProgram(f"tsqr_ooc{m}x{n}", len(chunks) + 1, emit, lookahead=1)
    return program, state


@dataclass
class OOCTSQRFactorization:
    """Result of :func:`tsqr_ooc`: ``A = Q R`` with ``Q`` implicit *in
    the store* (the factored panel holds the leaf reflectors; merge
    ``V_b`` factors are the written-back block tops).

    Duck-compatible with :class:`~repro.core.tsqr.TSQRFactorization`
    (``R``, ``apply_qt``, ``apply_q``, ``q_explicit``, ``solve_ls``) —
    the applies stream the reflector blocks back in on demand, so the
    vectors being transformed are the only full-height arrays in RAM.
    """

    m: int
    n: int
    store: TileStore
    a_spec: tuple
    chunks: list[Chunk]
    leaf_T: dict[int, np.ndarray]
    merge_T: list[np.ndarray]
    R: np.ndarray
    tr: int
    tree: TreeKind = TreeKind.FLAT
    owns_store: bool = True

    def _leaf_V(self, chunk: Chunk) -> np.ndarray:
        return extract_v(self.store.load(TileStore.sub(self.a_spec, chunk.r0, chunk.r1)))

    def _merge_Vb(self, src: Chunk) -> np.ndarray:
        return np.triu(self.store.load(TileStore.sub(self.a_spec, src.r0, src.r0 + self.n)))

    def apply_qt(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q^T C`` (``C`` is ``(m, p)`` or ``(m,)``)."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        for chunk in self.chunks:
            larfb_left_t(self._leaf_V(chunk), self.leaf_T[chunk.index], W[chunk.r0 : chunk.r1])
        top0, bk = self.chunks[0].r0, self.n
        for src, T in zip(self.chunks[1:], self.merge_T, strict=True):
            tpmqrt_left_t(
                self._merge_Vb(src), T, W[top0 : top0 + bk], W[src.r0 : src.r0 + bk]
            )
        return W[:, 0] if squeeze else W

    def apply_q(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q C`` (``C`` is ``(m, p)`` or ``(m,)``)."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        top0, bk = self.chunks[0].r0, self.n
        for src, T in zip(
            reversed(self.chunks[1:]), reversed(self.merge_T), strict=True
        ):
            tpmqrt_left_t(
                self._merge_Vb(src),
                T,
                W[top0 : top0 + bk],
                W[src.r0 : src.r0 + bk],
                transpose=False,
            )
        for chunk in self.chunks:
            V, T = self._leaf_V(chunk), self.leaf_T[chunk.index]
            Cv = W[chunk.r0 : chunk.r1]
            Wk = T @ (V.T @ Cv)
            Cv -= V @ Wk
        return W[:, 0] if squeeze else W

    def q_explicit(self) -> np.ndarray:
        """The thin ``Q`` (``m x n``) — materializes in RAM; small panels only."""
        E = np.zeros((self.m, self.n))
        np.fill_diagonal(E, 1.0)
        return self.apply_q(E)

    def solve_ls(self, rhs: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min ||A x - rhs||`` via ``Q R``."""
        import scipy.linalg

        y = self.apply_qt(rhs)
        return scipy.linalg.solve_triangular(self.R, y[: self.n])

    def panel(self) -> np.ndarray:
        """The factored panel, materialized in RAM (tests; small panels)."""
        return self.store.load(self.a_spec)

    def destroy(self) -> None:
        """Tear down the store if this factorization owns it."""
        if self.owns_store:
            self.store.destroy()

    def __enter__(self) -> "OOCTSQRFactorization":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


def tsqr_ooc(
    source,
    *,
    tr: int | None = None,
    memory_budget: int | None = None,
    store="mmap",
    spill_dir=None,
    n_workers: int = 2,
    leaf_kernel: str = "geqr3",
    check_finite: bool = True,
) -> OOCTSQRFactorization:
    """QR-factor a tall-skinny panel streamed through a tile store.

    *source* is an ndarray, a ``(shape, fill)`` pair or a
    :class:`MatrixSource`; it is staged into *store* window by window,
    then factored with the flat reduction tree without the panel ever
    being resident.  *tr* pins the chunking (parity with the in-memory
    driver); otherwise the chunk height comes from *memory_budget*.
    The caller owns the returned factorization and should ``destroy()``
    it (or use it as a context manager) once done with ``Q``.
    """
    src = as_source(source)
    m, n = src.shape
    if m < n:
        raise ValueError(f"tsqr requires a tall panel (m >= n), got {src.shape}")
    chunks = plan_chunks(
        m, n, tr=tr, memory_budget=memory_budget, n_workers=n_workers, merge_tail=True
    )
    store_obj, owned = _resolve_store(store, spill_dir)
    try:
        a_spec = _stage_panel(store_obj, src, chunks, check_finite)
        program, state = tsqr_ooc_program(
            store_obj, a_spec, chunks, leaf_kernel=leaf_kernel
        )
        executor = ThreadedExecutor(max(1, n_workers))
        executor.run(program)
        assert state.Rtop is not None
        R = np.triu(state.Rtop)
    except BaseException:
        if owned:
            store_obj.destroy()
        raise
    return OOCTSQRFactorization(
        m=m,
        n=n,
        store=store_obj,
        a_spec=a_spec,
        chunks=chunks,
        leaf_T=state.leaf_T,
        merge_T=state.merge_T,
        R=R,
        tr=len(chunks),
        owns_store=owned,
    )


# ---------------------------------------------------------------------------
# Out-of-core TSLU (tournament pivoting)
# ---------------------------------------------------------------------------


@dataclass
class OOCPanelLU:
    """Result of :func:`tslu_ooc`: the packed ``LU`` lives in the store.

    ``piv`` is the LAPACK-style swap sequence, exactly as :func:`~
    repro.core.tslu.tslu` returns it.  ``lu()`` materializes the packed
    factors in RAM (tests / small panels); ``lu_rows`` streams a row
    window for consumers that stay out of core.
    """

    m: int
    n: int
    store: TileStore
    a_spec: tuple
    chunks: list[Chunk]
    piv: np.ndarray
    degraded: bool = False
    owns_store: bool = True

    def lu(self) -> np.ndarray:
        return self.store.load(self.a_spec)

    def lu_rows(self, r0: int, r1: int) -> np.ndarray:
        return self.store.load(TileStore.sub(self.a_spec, r0, r1))

    def destroy(self) -> None:
        if self.owns_store:
            self.store.destroy()

    def __enter__(self) -> "OOCPanelLU":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


class _OOCLUState:
    """Resident state of one streaming TSLU run."""

    def __init__(self) -> None:
        self.U: np.ndarray | None = None  # factored top block (rows 0..r)
        self.piv: np.ndarray | None = None


def tslu_ooc_program(
    store: TileStore,
    a_spec: tuple,
    chunks: list[Chunk],
    tree: TreeKind = TreeKind.FLAT,
    *,
    leaf_kernel: str = "rgetf2",
    arity: int = 4,
) -> tuple[GraphProgram, PanelWorkspace, _OOCLUState]:
    """Streaming program for one out-of-core TSLU panel.

    Windows ``0..len(chunks)-1`` each stream one leaf block in
    (read-only) and elect its candidate pivot rows; window
    ``len(chunks)`` runs the in-RAM candidate reduction plus the
    finalize (windowed row swaps replicating ``laswp``'s sequence, then
    the pivot-block factorization); the last window streams the ``L``
    triangular solves block by block.  The candidate sets are ``Tr ·
    b`` rows — they stay in RAM whatever the panel height, which is the
    property that makes tournament pivoting out-of-core friendly.
    """
    _, _, (m, n), _ = a_spec
    bk = n
    r = min(bk, m)
    ws = PanelWorkspace()
    state = _OOCLUState()
    sub = TileStore.sub
    slots = [c.index for c in chunks]
    root = slots[0]

    def _leaf_ooc(chunk: Chunk):
        def fn() -> None:
            W = store.load(sub(a_spec, chunk.r0, chunk.r1))
            sel = _select_pivots(W, leaf_kernel)
            ws.cand_rows[chunk.index] = W[sel].copy()
            ws.cand_gidx[chunk.index] = chunk.r0 + sel

        return fn

    def _finalize_ooc():
        def fn() -> None:
            gidx = ws.cand_gidx.get(root)
            cand = ws.cand_rows.get(root)
            if ws.degraded or gidx is None or cand is None or not np.isfinite(cand).all():
                # No out-of-core degradation ladder: repair or fallback
                # would re-stream the whole panel, so fail loudly.
                raise RuntimeError(
                    "tslu_ooc: tournament candidates corrupted; "
                    "out-of-core panels have no partial-pivoting fallback"
                )
            piv = perm_from_piv_rows(gidx, m)
            ws.piv = state.piv = piv
            # laswp(A, piv), replayed with windowed row transfers: the
            # top r rows are hot (every swap touches one) and stay
            # resident; the partner row makes one round trip.  Same
            # sequence, same values as the in-memory swap.
            top = store.load(sub(a_spec, 0, r))
            for i in range(len(piv)):
                p = int(piv[i])
                if p == i:
                    continue
                if p < r:
                    tmp = top[i].copy()
                    top[i] = top[p]
                    top[p] = tmp
                else:
                    pspec = sub(a_spec, p, p + 1)
                    partner = store.load(pspec)
                    tmp = top[i].copy()
                    top[i] = partner[0]
                    partner[0] = tmp
                    store.store(pspec, partner)
            getf2_nopiv(top)
            state.U = top
            store.store(sub(a_spec, 0, r), top)

        return fn

    def _l_ooc(r0: int, r1: int):
        def fn() -> None:
            spec = sub(a_spec, r0, r1)
            W = store.load(spec)
            trsm_runn(state.U, W)
            store.store(spec, W)

        return fn

    def cand(slot: int) -> tuple:
        return ("cand", slot)

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        if window < len(chunks):
            chunk = chunks[window]
            tracker.add_task(
                graph,
                f"P[0]leaf{chunk.index}",
                TaskKind.P,
                Cost(
                    leaf_kernel if chunk.rows >= bk else "getf2",
                    m=chunk.rows,
                    n=bk,
                    flops=lu_flops(chunk.rows, bk),
                    words=2.0 * chunk.rows * bk,
                ),
                fn=_leaf_ooc(chunk),
                reads=[("oocblk", chunk.index)],
                writes=[cand(chunk.index)],
            )
            return
        if window == len(chunks):
            cand_rows = {c.index: min(c.rows, bk) for c in chunks}
            for level in reduction_schedule(len(slots), tree, arity):
                for dst_pos, src_pos in level:
                    dst = slots[dst_pos]
                    srcs = [slots[p] for p in src_pos]
                    stacked = sum(cand_rows[s] for s in srcs)
                    tracker.add_task(
                        graph,
                        f"P[0]merge{dst}<{','.join(map(str, srcs))}",
                        TaskKind.P,
                        Cost(
                            "gepp_merge",
                            m=stacked,
                            n=bk,
                            flops=lu_panel_flops(stacked, min(stacked, bk)),
                            words=2.0 * stacked * bk,
                        ),
                        fn=_merge_fn(ws, dst, srcs, bk, leaf_kernel),
                        reads=[cand(s) for s in srcs],
                        writes=[cand(dst)],
                    )
                    cand_rows[dst] = min(stacked, bk)
            tracker.add_task(
                graph,
                "F[0]",
                TaskKind.P,
                Cost(
                    "getf2_nopiv",
                    m=r,
                    n=bk,
                    flops=lu_panel_flops(r, r),
                    words=4.0 * bk * bk,
                ),
                fn=_finalize_ooc(),
                reads=[cand(root)] + [("oocblk", c.index) for c in chunks],
                writes=[("u",)] + [("oocblk", c.index) for c in chunks],
            )
            return
        for chunk in chunks:
            r0 = max(chunk.r0, n)
            if r0 >= chunk.r1:
                continue
            tracker.add_task(
                graph,
                f"L[0]{chunk.index}",
                TaskKind.L,
                Cost(
                    "trsm_runn",
                    m=chunk.r1 - r0,
                    k=n,
                    flops=trsm_right_flops(chunk.r1 - r0, n),
                    words=2.0 * (chunk.r1 - r0) * n,
                ),
                fn=_l_ooc(r0, chunk.r1),
                reads=[("u",), ("oocblk", chunk.index)],
                writes=[("oocblk", chunk.index)],
            )

    program = GraphProgram(f"tslu_ooc{m}x{n}", len(chunks) + 2, emit, lookahead=1)
    return program, ws, state


def tslu_ooc(
    source,
    *,
    tr: int | None = None,
    memory_budget: int | None = None,
    store="mmap",
    spill_dir=None,
    n_workers: int = 2,
    tree: TreeKind = TreeKind.FLAT,
    leaf_kernel: str = "rgetf2",
    check_finite: bool = True,
) -> OOCPanelLU:
    """LU-factor a tall-skinny panel streamed through a tile store.

    Same source/staging/ownership contract as :func:`tsqr_ooc`; the
    default tree is flat (the I/O-optimal sequential schedule — the
    candidate reduction happens in RAM either way, but flat matches the
    in-memory driver call for call when pinned to the same *tr*).
    Returns an :class:`OOCPanelLU`; ``lu()``/``piv`` reproduce
    :func:`repro.core.tslu.tslu`'s ``(lu, piv)`` bitwise on sizes both
    paths can run.
    """
    src = as_source(source)
    m, n = src.shape
    if m < n:
        raise ValueError(f"tslu requires a tall panel (m >= n), got {src.shape}")
    chunks = plan_chunks(
        m, n, tr=tr, memory_budget=memory_budget, n_workers=n_workers, merge_tail=False
    )
    store_obj, owned = _resolve_store(store, spill_dir)
    try:
        a_spec = _stage_panel(store_obj, src, chunks, check_finite)
        program, ws, state = tslu_ooc_program(
            store_obj, a_spec, chunks, tree, leaf_kernel=leaf_kernel
        )
        executor = ThreadedExecutor(max(1, n_workers))
        executor.run(program)
        assert state.piv is not None
    except BaseException:
        if owned:
            store_obj.destroy()
        raise
    return OOCPanelLU(
        m=m,
        n=n,
        store=store_obj,
        a_spec=a_spec,
        chunks=chunks,
        piv=state.piv,
        degraded=ws.degraded,
        owns_store=owned,
    )


# ---------------------------------------------------------------------------
# Direct TSQR (single pass, read-once)
# ---------------------------------------------------------------------------


@dataclass
class DirectTSQRFactorization:
    """Result of :func:`direct_tsqr`.

    ``R`` is always resident.  With ``want_q`` the explicit thin ``Q``
    lives in the store (``q_rows`` streams row windows; ``q_explicit``
    materializes it for tests); without it no store region is ever
    written — the single read of the source is the only traffic.
    """

    m: int
    n: int
    R: np.ndarray
    chunks: list[Chunk]
    store: TileStore | None = None
    q_spec: tuple | None = None
    owns_store: bool = True

    def q_rows(self, r0: int, r1: int) -> np.ndarray:
        if self.q_spec is None:
            raise ValueError("direct_tsqr ran without want_q; no explicit Q stored")
        return self.store.load(TileStore.sub(self.q_spec, r0, r1))

    def q_explicit(self) -> np.ndarray:
        return self.q_rows(0, self.m)

    def destroy(self) -> None:
        if self.store is not None and self.owns_store:
            self.store.destroy()

    def __enter__(self) -> "DirectTSQRFactorization":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()


def direct_tsqr(
    source,
    *,
    tr: int | None = None,
    memory_budget: int | None = None,
    want_q: bool = False,
    store="mmap",
    spill_dir=None,
    check_finite: bool = True,
) -> DirectTSQRFactorization:
    """Single-pass Direct TSQR of a tall-skinny panel.

    Pass 1 consumes the source one block at a time: each block is
    QR-factored and only its small ``R`` factor kept (plus, with
    *want_q*, the block's explicit ``Q_1`` written to the store).  A
    second-stage QR of the stacked ``R`` factors yields the final
    ``R``; with *want_q* one more streamed pass multiplies each
    ``Q_1`` block by its ``Q_2`` tile.  Without *want_q* nothing is
    ever staged — the panel is read exactly once, the optimal traffic
    for the R-only (e.g. least-squares/Gram-avoiding) regime, at the
    price of ``Q`` applies.
    """
    src = as_source(source)
    m, n = src.shape
    if m < n:
        raise ValueError(f"direct_tsqr requires a tall panel (m >= n), got {src.shape}")
    chunks = plan_chunks(
        m, n, tr=tr, memory_budget=memory_budget, n_workers=1, merge_tail=True
    )
    store_obj = q_spec = None
    owned = False
    try:
        if want_q:
            store_obj, owned = _resolve_store(store, spill_dir)
            q_spec = store_obj.reserve((m, n))
        r_stack: list[np.ndarray] = []
        for chunk in chunks:
            # Copy: the block is factored in place, and an ndarray
            # source's fill returns a view of the caller's matrix.
            W = np.array(src.fill(chunk.r0, chunk.r1), dtype=np.float64, order="C")
            if check_finite and not np.isfinite(W).all():
                raise ValueError(
                    f"panel rows [{chunk.r0}, {chunk.r1}) contain non-finite entries"
                )
            T1 = geqr3(W)
            r_stack.append(np.triu(W[:n]))
            if want_q:
                V = extract_v(W)
                E = np.zeros((chunk.rows, n))
                np.fill_diagonal(E, 1.0)
                Wk = T1 @ (V.T @ E)
                E -= V @ Wk
                store_obj.store(TileStore.sub(q_spec, chunk.r0, chunk.r1), E)
        S = np.vstack(r_stack)
        T2 = geqr3(S)
        R = np.triu(S[:n]).copy()
        if want_q:
            V2 = extract_v(S)
            E2 = np.zeros((S.shape[0], n))
            np.fill_diagonal(E2, 1.0)
            Wk = T2 @ (V2.T @ E2)
            E2 -= V2 @ Wk  # Q2: one n x n tile per block, stacked
            for i, chunk in enumerate(chunks):
                spec = TileStore.sub(q_spec, chunk.r0, chunk.r1)
                Q1 = store_obj.load(spec)
                store_obj.store(spec, Q1 @ E2[i * n : (i + 1) * n])
    except BaseException:
        if owned:
            store_obj.destroy()
        raise
    return DirectTSQRFactorization(
        m=m,
        n=n,
        R=R,
        chunks=chunks,
        store=store_obj,
        q_spec=q_spec,
        owns_store=owned,
    )
