"""Block layout arithmetic for the multithreaded algorithms.

Implements the index formulas of Algorithms 1 and 2: the matrix lives
on an ``M x N`` grid of ``b x b`` blocks, and at iteration ``K`` the
active rows are partitioned into (at most) ``Tr`` contiguous chunks of
whole block-rows,

``I1 = (K-1) + (I-1) * ceil((M-K+1)/Tr)``,
``I2 = min(M, K-1 + I * ceil((M-K+1)/Tr))``,

generalized here to matrices whose dimensions are not multiples of
``b`` (the paper assumes divisibility "without loss of generality").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BlockLayout", "Chunk"]


@dataclass(frozen=True)
class Chunk:
    """A contiguous row range ``[r0, r1)`` covering block-rows ``[b0, b1)``."""

    index: int
    r0: int
    r1: int
    b0: int
    b1: int

    @property
    def rows(self) -> int:
        return self.r1 - self.r0

    def blocks(self, col: int) -> list[tuple[int, int]]:
        """Block coordinates of this chunk restricted to one block column."""
        return [(i, col) for i in range(self.b0, self.b1)]


@dataclass(frozen=True)
class BlockLayout:
    """An ``m x n`` matrix partitioned into ``b x b`` blocks."""

    m: int
    n: int
    b: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError(f"matrix dimensions must be positive, got {self.m}x{self.n}")
        if self.b < 1:
            raise ValueError(f"block size must be positive, got {self.b}")

    @property
    def M(self) -> int:
        """Number of block rows."""
        return -(-self.m // self.b)

    @property
    def N(self) -> int:
        """Number of block columns."""
        return -(-self.n // self.b)

    @property
    def n_panels(self) -> int:
        """Number of panel iterations: block columns of ``min(m, n)``."""
        return -(-min(self.m, self.n) // self.b)

    def col_range(self, K: int) -> tuple[int, int]:
        """Column range ``[c0, c1)`` of block column ``K``."""
        return K * self.b, min((K + 1) * self.b, self.n)

    def row_range(self, i: int) -> tuple[int, int]:
        """Row range ``[r0, r1)`` of block row ``i``."""
        return i * self.b, min((i + 1) * self.b, self.m)

    def panel_width(self, K: int) -> int:
        c0, c1 = self.col_range(K)
        return min(c1, min(self.m, self.n)) - c0

    def panel_chunks(self, K: int, tr: int) -> list[Chunk]:
        """Partition the active rows of iteration ``K`` into ``<= Tr`` chunks.

        Active rows are ``[K*b, m)``; the chunking follows the paper's
        ceil formula in block units, dropping empty chunks (when fewer
        active block-rows than ``Tr`` remain).
        """
        if tr < 1:
            raise ValueError(f"Tr must be >= 1, got {tr}")
        first = K
        blocks_left = self.M - K
        if blocks_left <= 0:
            return []
        per = math.ceil(blocks_left / tr)
        chunks: list[Chunk] = []
        for i in range(tr):
            b0 = first + i * per
            b1 = min(self.M, first + (i + 1) * per)
            if b0 >= b1:
                break
            r0 = b0 * self.b
            r1 = min(b1 * self.b, self.m)
            chunks.append(Chunk(index=i, r0=r0, r1=r1, b0=b0, b1=b1))
        return chunks

    def active_blocks(self, K: int, col: int) -> list[tuple[int, int]]:
        """All active block coordinates of block column *col* at iteration K."""
        return [(i, col) for i in range(K, self.M)]
