"""Multithreaded CAQR — Algorithm 2 of the paper.

Block QR factorization ``A = Q R`` whose panel factorization is TSQR
(:mod:`repro.core.tsqr`).  Unlike CALU the panel is factored only
once, and the reduction tree that produced ``R`` also drives the
trailing-matrix update:

* task **P** — leaf QR of one row chunk of the panel (``dgeqr3``) and
  the ``[R_i; R_j]`` tree merges (structured ``tpqrt``);
* task **S** (leaf) — apply a leaf's block reflector to one trailing
  block column (``dlarfb``);
* task **S** (node) — apply a merge's ``[I; V_b]`` reflector to the two
  ``b``-row slices of a trailing block column (``tpmqrt``).

``Q`` stays implicit (per-panel :class:`~repro.core.tsqr.PanelQRStore`),
so ``apply_q``/``apply_qt``/``solve_ls`` replay the trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.flops import larfb_flops, tpmqrt_flops
from repro.core.calu import merged_chunks
from repro.core.layout import BlockLayout
from repro.core.priorities import lookahead_depth, task_priority
from repro.core.trees import TreeKind
from repro.core.tsqr import PanelQRStore, add_tsqr_tasks
from repro.kernels.qr import larfb_left_t
from repro.kernels.structured import tpmqrt_left_t
from repro.resilience.checkpoint import restore_matrix
from repro.resilience.events import ResilienceEvent
from repro.resilience.health import finite_block_guard, validate_matrix
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram, supports_streaming
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from repro.runtime.trace import Trace

__all__ = ["CAQRFactorization", "build_caqr_graph", "caqr", "caqr_program"]


def _leaf_update_fn(A: np.ndarray, store: PanelQRStore, slot: int, j0: int, j1: int):
    def fn() -> None:
        leaf = store.leaves[slot]
        larfb_left_t(leaf.V, leaf.T, A[leaf.r0 : leaf.r1, j0:j1])

    return fn


def _merge_update_fn(A: np.ndarray, store: PanelQRStore, pair_indices: list[int], j0: int, j1: int):
    def fn() -> None:
        for idx in pair_indices:
            mf = store.merges[idx]
            assert mf is not None
            tpmqrt_left_t(
                mf.Vb,
                mf.T,
                A[mf.top0 : mf.top0 + mf.r, j0:j1],
                A[mf.bot0 : mf.bot0 + mf.r, j0:j1],
            )

    return fn


def _ckpt_fn(A: np.ndarray, layout: BlockLayout, ckpt, K: int, stores: list[PanelQRStore]):
    """Snapshot closure for the boundary-*K* CAQR checkpoint task.

    Besides the matrix regions (packed ``V``/``R`` columns, final
    ``R`` block rows, live trailing matrix) the covered panels'
    implicit-Q stores are flattened into the payload — a resumed run
    needs them for ``apply_q``/``apply_qt``.
    """

    def fn() -> None:
        m, n, b = layout.m, layout.n, layout.b
        prevK = ckpt.prev_boundary(K)
        prev_c1 = prevK * b + layout.panel_width(prevK) if prevK >= 0 else 0
        c1 = K * b + layout.panel_width(K)
        extra: dict = {}
        for P in range(max(prevK + 1, 0), K + 1):
            for key, val in stores[P].to_arrays().items():
                extra[f"q{P}_{key}"] = val
        ckpt.save_snapshot(
            K,
            cols=A[:, prev_c1:c1],
            urows=A[prev_c1:c1, c1:n],
            trailing=A[c1:m, c1:n],
            extra=extra,
        )

    return fn


def _ckpt_guard(K: int, name: str):
    def guard() -> ResilienceEvent:
        return ResilienceEvent(
            "checkpoint", task=name, detail=f"panel boundary {K} snapshot saved"
        )

    return guard


def caqr_program(
    layout: BlockLayout,
    tr: int,
    tree: TreeKind = TreeKind.FLAT,
    *,
    A: np.ndarray | None = None,
    lookahead: int | None = None,
    library: str = "repro_qr",
    leaf_kernel: str = "geqr3",
    arity: int = 4,
    guards: bool = True,
    checkpoint=None,
    shm=None,
) -> tuple[GraphProgram, list[PanelQRStore]]:
    """Build the CAQR task graph as a streaming :class:`GraphProgram`.

    One window per panel iteration (TSQR tree, leaf/node trailing
    updates, optional ``C[K]`` checkpoint task); symbolic when ``A`` is
    None.  ``materialize()`` reproduces the old eager graph exactly —
    see :func:`repro.core.calu.calu_program` for the streaming
    semantics.

    Returns ``(program, per-panel implicit-Q stores)``; the store list
    fills as panel windows are emitted.  With *guards* (numeric runs
    only) the panel tasks and trailing updates carry finiteness health
    guards: QR has no partial-pivoting fallback, so a corrupted panel
    surfaces as a fatal structured failure rather than silently wrong
    factors.  *checkpoint* adds per-boundary ``C[K]`` snapshot tasks
    exactly as in :func:`repro.core.calu.build_calu_graph`.

    *shm* (a :class:`~repro.runtime.shm.ShmBinding` whose matrix view
    **is** *A*; numeric runs only) attaches ``meta["op"]`` descriptors
    to the P and S tasks for
    :class:`~repro.runtime.process.ProcessExecutor` dispatch; the WY
    factors then live in shared-memory buffers referenced by spec.
    """
    numeric = A is not None
    guards = guards and numeric
    if lookahead is None:
        lookahead = lookahead_depth()
    N = layout.N
    stores: list[PanelQRStore] = []
    # Per-panel symbolic footprint keys of the implicit-Q factors the
    # TSQR tasks deposit in the PanelQRStore (read back by the trailing
    # updates and the checkpoint snapshots).  Accumulates across
    # windows: a later C[K] task reads every covered panel's keys.
    panel_q_keys: list[list[tuple]] = []

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        K = window
        bk = layout.panel_width(K)
        chunks = merged_chunks(layout, K, tr)
        store = PanelQRStore() if numeric else None
        if numeric:
            stores.append(store)

        handles = add_tsqr_tasks(
            graph,
            tracker,
            layout,
            K,
            chunks,
            tree,
            A=A,
            store=store,
            lookahead=lookahead,
            library=library,
            leaf_kernel=leaf_kernel,
            arity=arity,
            shm=shm,
        )
        panel_q_keys.append(
            [("qleaf", K, slot) for slot in sorted(handles.leaf_tids)]
            + [("qmerge", K, step.ordinal) for step in handles.merge_steps]
        )
        if guards:
            # QR panel guards attach post-hoc on the TSQR handles: the
            # leaf/merge factors must stay finite for the implicit Q to
            # be usable at all.
            p0 = K * layout.b
            for slot, tid in handles.leaf_tids.items():
                chunk = handles.leaf_chunks[slot]
                graph.tasks[tid].meta["health"] = finite_block_guard(
                    A, chunk.r0, chunk.r1, p0, p0 + bk, graph.tasks[tid].name
                )
            for step in handles.merge_steps:
                graph.tasks[step.tid].meta["health"] = finite_block_guard(
                    A, step.dst.r0, step.dst.r0 + bk, p0, p0 + bk, graph.tasks[step.tid].name
                )

        # Trailing column segments: full block columns J > K plus, for a
        # panel narrower than its block column (last panel of a wide
        # matrix), the leftover columns of block column K itself.
        c1 = K * layout.b + bk
        kb_end = min((K + 1) * layout.b, layout.n)
        segments: list[tuple[int, int, int]] = []
        if c1 < kb_end:
            segments.append((K, c1, kb_end))
        segments.extend((J, *layout.col_range(J)) for J in range(K + 1, N))
        for J, j0, j1 in segments:
            nc = j1 - j0
            # Leaf updates: one dlarfb per (chunk, J).
            for slot, chunk in handles.leaf_chunks.items():
                cost = Cost(
                    "larfb",
                    m=chunk.rows,
                    n=nc,
                    k=bk,
                    flops=larfb_flops(chunk.rows, nc, bk),
                    words=2.0 * chunk.rows * nc + chunk.rows * bk,
                    library=library,
                )
                s_name = f"S[{K}]leaf{slot},{J}"
                s_meta = (
                    {"health": finite_block_guard(A, chunk.r0, chunk.r1, j0, j1, s_name)}
                    if guards
                    else {}
                )
                if shm is not None and numeric:
                    v_spec, t_spec = handles.leaf_bufs[slot]
                    s_meta["op"] = (
                        "caqr_leaf_update",
                        {
                            "a": shm.a_spec,
                            "r0": chunk.r0,
                            "r1": chunk.r1,
                            "j0": j0,
                            "j1": j1,
                            "v": v_spec,
                            "t": t_spec,
                        },
                    )
                tracker.add_task(
                    graph,
                    s_name,
                    TaskKind.S,
                    cost,
                    fn=_leaf_update_fn(A, store, slot, j0, j1) if numeric else None,
                    # The applied reflector comes out of the store, not
                    # the matrix: ("qleaf", K, slot) carries that edge.
                    reads=chunk.blocks(K) + [("qleaf", K, slot)],
                    writes=chunk.blocks(J),
                    extra_deps=[handles.leaf_tids[slot]],
                    priority=task_priority("S", K, J, lookahead=lookahead, n_cols=N),
                    iteration=K,
                    col=J,
                    **s_meta,
                )
            # Tree-node updates: tpmqrt on the two R slices per merge.
            for step in handles.merge_steps:
                npairs = len(step.srcs)
                cost = Cost(
                    "tpmqrt",
                    m=bk,
                    n=nc,
                    k=bk,
                    flops=tpmqrt_flops(bk, nc, bk) * npairs,
                    words=(4.0 * bk * nc + bk * bk) * npairs,
                    library=library,
                )
                blocks = [(step.dst.b0, J)] + [(s.b0, J) for s in step.srcs]
                s_name = f"S[{K}]node{step.dst.index}l{step.level},{J}"
                s_meta = (
                    {
                        "health": finite_block_guard(
                            A, step.dst.r0, step.dst.r0 + bk, j0, j1, s_name
                        )
                    }
                    if guards
                    else {}
                )
                if shm is not None and numeric:
                    s_meta["op"] = (
                        "caqr_merge_update",
                        {
                            "a": shm.a_spec,
                            "j0": j0,
                            "j1": j1,
                            "pairs": [
                                (top0, bot0, bk, vb_spec, t_spec)
                                for top0, bot0, vb_spec, t_spec in handles.merge_bufs[
                                    step.ordinal
                                ]
                            ],
                        },
                    )
                tracker.add_task(
                    graph,
                    s_name,
                    TaskKind.S,
                    cost,
                    fn=_merge_update_fn(A, store, step.pair_indices, j0, j1)
                    if numeric
                    else None,
                    reads=blocks + [("qmerge", K, step.ordinal)],
                    writes=blocks,
                    extra_deps=[step.tid],
                    priority=task_priority("S", K, J, lookahead=lookahead, n_cols=N),
                    iteration=K,
                    col=J,
                    **s_meta,
                )

        # Task C: the boundary-K checkpoint (see build_calu_graph).
        if numeric and checkpoint is not None and checkpoint.should_snapshot(K):
            m, n, b = layout.m, layout.n, layout.b
            prevK = checkpoint.prev_boundary(K)
            prev_c1 = prevK * b + layout.panel_width(prevK) if prevK >= 0 else 0
            ck_words = 2.0 * (
                m * (c1 - prev_c1)
                + (c1 - prev_c1) * max(n - c1, 0)
                + max(m - c1, 0) * max(n - c1, 0)
            )
            ck_name = f"C[{K}]"
            ck_reads = [
                (i, J)
                for J in range(max(prevK + 1, 0), N)
                for i in range(layout.M)
                if J <= K or i > prevK
            ]
            # The snapshot flattens the covered panels' implicit-Q
            # stores into its payload.
            for P in range(max(prevK + 1, 0), K + 1):
                ck_reads += panel_q_keys[P]
            tracker.add_task(
                graph,
                ck_name,
                TaskKind.X,
                Cost("laswp", words=ck_words, library=library),
                fn=_ckpt_fn(A, layout, checkpoint, K, stores),
                reads=ck_reads,
                priority=task_priority("X", K, lookahead=lookahead, n_cols=N) + 1.0,
                iteration=K,
                health=_ckpt_guard(K, ck_name),
            )

    program = GraphProgram(
        f"caqr{layout.m}x{layout.n}b{layout.b}tr{tr}",
        layout.n_panels,
        emit,
        lookahead=lookahead,
    )
    return program, stores


def build_caqr_graph(
    layout: BlockLayout,
    tr: int,
    tree: TreeKind = TreeKind.FLAT,
    *,
    A: np.ndarray | None = None,
    lookahead: int | None = None,
    library: str = "repro_qr",
    leaf_kernel: str = "geqr3",
    arity: int = 4,
    guards: bool = True,
    checkpoint=None,
) -> tuple[TaskGraph, list[PanelQRStore]]:
    """Build the complete (eager) CAQR task graph for *layout*.

    Materializes :func:`caqr_program` up front — the historical
    interface, still what the verify/DOT/analysis tooling consumes.
    See :func:`caqr_program` for the parameters.
    """
    program, stores = caqr_program(
        layout,
        tr,
        tree,
        A=A,
        lookahead=lookahead,
        library=library,
        leaf_kernel=leaf_kernel,
        arity=arity,
        guards=guards,
        checkpoint=checkpoint,
    )
    return program.materialize(), stores


@dataclass
class CAQRFactorization:
    """Result of :func:`caqr`: ``A = Q R`` with implicit per-panel ``Q``.

    ``packed`` holds the Householder storage (``R`` in the upper
    triangle); ``panels`` the per-panel tree factors.
    """

    packed: np.ndarray
    panels: list[PanelQRStore]
    b: int
    tr: int
    tree: TreeKind
    trace: Trace | None = None

    @property
    def m(self) -> int:
        return self.packed.shape[0]

    @property
    def n(self) -> int:
        return self.packed.shape[1]

    @property
    def R(self) -> np.ndarray:
        """The ``min(m,n) x n`` upper-triangular/trapezoidal factor."""
        r = min(self.packed.shape)
        return np.triu(self.packed[:r, :])

    def apply_qt(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q^T C`` for ``C`` of shape ``(m,)`` or ``(m, p)``."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        for store in self.panels:
            store.apply_qt(W)
        return W[:, 0] if squeeze else W

    def apply_q(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q C`` for ``C`` of shape ``(m,)`` or ``(m, p)``."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        for store in reversed(self.panels):
            store.apply_q(W)
        return W[:, 0] if squeeze else W

    def q_explicit(self) -> np.ndarray:
        """The thin ``Q`` (``m x min(m, n)``)."""
        r = min(self.packed.shape)
        E = np.zeros((self.m, r))
        np.fill_diagonal(E, 1.0)
        return self.apply_q(E)

    def reconstruct(self) -> np.ndarray:
        """Recompute ``A = Q R`` (for verification)."""
        r = min(self.packed.shape)
        RR = np.zeros((self.m, self.n))
        RR[:r] = self.R
        return self.apply_q(RR)

    def solve_ls(self, rhs: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min ||A x - rhs||_2`` (``m >= n``)."""
        import scipy.linalg

        if self.m < self.n:
            raise ValueError("solve_ls requires m >= n")
        y = self.apply_qt(rhs)
        return scipy.linalg.solve_triangular(self.R, y[: self.n])


def caqr(
    A: np.ndarray,
    b: int | None = None,
    tr: int = 4,
    tree: TreeKind = TreeKind.FLAT,
    executor=None,
    lookahead: int | None = None,
    leaf_kernel: str = "geqr3",
    overwrite: bool = False,
    check_finite: bool = True,
    guards: bool = True,
    checkpoint=None,
    fuse: int | None = None,
) -> CAQRFactorization:
    """Factor ``A`` with multithreaded CAQR (Algorithm 2).

    Parameters mirror :func:`repro.core.calu.calu`; the default tree is
    the height-1 (flat) reduction the paper uses for its CAQR results.
    *checkpoint* arms the checkpoint/restart path: snapshots also carry
    the implicit-Q tree factors, so a resumed run returns a fully
    usable factorization with **bitwise-identical** ``R`` and ``Q``.
    ``executor="auto"`` and *fuse* behave as in :func:`~repro.core.calu.calu`:
    the autotuner picks backend and fusion granularity, and fused
    super-tasks dispatch with one scheduler slot / pipe round-trip each.
    """
    A = validate_matrix(A, "A", require_finite=check_finite)
    dtype = A.dtype if A.dtype in (np.float32, np.float64) else np.float64
    A = np.array(A, dtype=dtype, order="C", copy=not overwrite, subok=False)
    guards = guards and check_finite
    m, n = A.shape
    if b is None:
        b = min(100, n)
    layout = BlockLayout(m, n, b)
    from repro.runtime.process import ProcessExecutor, resolve_executor

    autotune_decision = None
    if isinstance(executor, str) and executor == "auto":
        from repro.machine.autotune import autotune

        autotune_decision = autotune("qr", m, n, b=b, tr=tr, tree=tree)
        executor = autotune_decision.backend
        if fuse is None:
            fuse = autotune_decision.max_ops
    if executor is None:
        executor = ThreadedExecutor(min(tr, 4))
    executor, owned_executor = resolve_executor(executor, min(tr, 4))
    use_shm = isinstance(executor, ProcessExecutor)
    arena = shm = None
    if use_shm:
        # Process backend: matrix and WY factors live on the shared-
        # memory tile plane; results are copied back out below.
        from repro.runtime.shm import SharedArena, ShmBinding

        arena = SharedArena()
        A = arena.place(A)
        shm = ShmBinding(arena, A)
    program, stores = caqr_program(
        layout,
        tr,
        tree,
        A=A,
        lookahead=lookahead,
        leaf_kernel=leaf_kernel,
        guards=guards,
        checkpoint=checkpoint,
        shm=shm,
    )
    if fuse is not None and fuse > 1:
        from repro.runtime.fuse import fuse_program

        # Per-window rewrite; checkpoint (X) tasks keep their identity.
        program = fuse_program(program, max_ops=fuse)
    # Stream through engine-backed executors; materialize for
    # caller-made (duck-typed) ones — the historical contract.
    source = program if supports_streaming(executor) else program.materialize()
    journal = None
    if checkpoint is not None:
        import zlib

        signature = {
            "algo": "caqr",
            "m": m,
            "n": n,
            "b": int(b),
            "tr": int(tr),
            "tree": tree.value,
            "leaf_kernel": leaf_kernel,
            "a_digest": zlib.crc32(A.tobytes()),
        }
        usable = checkpoint.prepare(signature)
        resumed_from, snaps = (
            restore_matrix(A, layout, checkpoint) if usable else (-1, {})
        )
        journal = checkpoint.journal()
        journal.reset()
        journal.bind(source)
        if resumed_from >= 0:
            # Emit the resumed prefix so its tasks are enumerable
            # (no-op on the eager path).
            program.emit_through(resumed_from)
            # Rebuild the covered panels' implicit-Q stores in place
            # (the task closures and the returned factorization share
            # the store objects).
            for snap in snaps.values():
                per_panel: dict[int, dict] = {}
                for key, val in snap.items():
                    if not key.startswith("q"):
                        continue
                    head, _, rest = key.partition("_")
                    try:
                        P = int(head[1:])
                    except ValueError:
                        continue
                    per_panel.setdefault(P, {})[rest] = val
                for P, arrays in per_panel.items():
                    restored = PanelQRStore.from_arrays(arrays)
                    stores[P].leaves.clear()
                    stores[P].leaves.update(restored.leaves)
                    stores[P].merges[:] = restored.merges
            journal.mark_completed(
                t.name for t in program.graph.tasks if t.iteration <= resumed_from
            )
    plan = getattr(executor, "fault_plan", None)
    if plan is not None and plan.target is None:
        plan.target = A
    try:
        trace = (
            executor.run(source, journal=journal) if journal is not None else executor.run(source)
        )
        if autotune_decision is not None:
            trace.events.append(autotune_decision.event())
        if guards and not np.isfinite(A).all():
            raise RuntimeFailure(
                "CAQR produced non-finite factors (undetected corruption)",
                failure_kind="health",
                trace=trace,
            )
        if checkpoint is not None:
            # Drain the async snapshot writer so a completed run leaves
            # its full chain on disk (and any write error surfaces here).
            checkpoint.flush()
        if use_shm:
            # Copy the packed factors and implicit-Q stores off the
            # arena before teardown.
            A = np.array(A)
            stores = [
                PanelQRStore.from_arrays({k: np.array(v) for k, v in s.to_arrays().items()})
                for s in stores
            ]
    finally:
        if arena is not None:
            arena.destroy()
        if owned_executor and use_shm:
            executor.close()
    return CAQRFactorization(packed=A, panels=stores, b=b, tr=tr, tree=tree, trace=trace)
