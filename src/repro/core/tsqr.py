"""TSQR — tall-skinny QR via a reduction tree.

The panel is split into ``Tr`` row chunks; each chunk is QR-factored
independently (task P at the leaves, using the recursive ``dgeqr3``
kernel the paper prefers); the resulting ``R`` factors are merged
pairwise (binary tree), all at once (flat tree, the paper's best
performer in Section IV) or in groups (hybrid), each merge being a
structured ``[R_i; R_j]`` QR (:func:`repro.kernels.structured.tpqrt`).

``Q`` is kept implicit — the list of leaf WY factors and merge
reflectors — exactly like LAPACK keeps Householder vectors.  This is
what makes TSQR useful for the paper's motivating application
(orthogonalization in block iterative methods): ``apply_q`` /
``apply_qt`` replay the tree in ``O(mn)`` per vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.flops import qr_flops, tpqrt_tt_flops
from repro.core.layout import BlockLayout, Chunk
from repro.core.priorities import task_priority
from repro.core.trees import TreeKind, reduction_schedule
from repro.kernels.qr import extract_v, geqr2, geqr3, larfb_left_t, larft
from repro.kernels.structured import tpqrt, tpmqrt_left_t
from repro.resilience.health import validate_matrix
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram, supports_streaming
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor

__all__ = [
    "LeafFactor",
    "MergeFactor",
    "PanelQRStore",
    "TSQRTasks",
    "add_tsqr_tasks",
    "TSQRFactorization",
    "tsqr",
    "tsqr_program",
]


@dataclass
class LeafFactor:
    """WY factor of one leaf QR: rows ``[r0, r1)``, ``Q = I - V T V^T``."""

    slot: int
    r0: int
    r1: int
    V: np.ndarray
    T: np.ndarray


@dataclass
class MergeFactor:
    """One ``[R_top; R_bot]`` merge: ``V = [I; Vb]`` with ``Vb`` upper triangular."""

    top0: int
    bot0: int
    r: int
    Vb: np.ndarray
    T: np.ndarray


@dataclass
class PanelQRStore:
    """Implicit-Q storage for one panel: leaves plus ordered merges."""

    leaves: dict[int, LeafFactor] = field(default_factory=dict)
    merges: list[MergeFactor | None] = field(default_factory=list)

    def apply_qt(self, C: np.ndarray) -> None:
        """Apply this panel's ``Q^T`` to (the full-height) ``C`` in place."""
        for leaf in self.leaves.values():
            larfb_left_t(leaf.V, leaf.T, C[leaf.r0 : leaf.r1])
        for mf in self.merges:
            assert mf is not None
            tpmqrt_left_t(mf.Vb, mf.T, C[mf.top0 : mf.top0 + mf.r], C[mf.bot0 : mf.bot0 + mf.r])

    def apply_q(self, C: np.ndarray) -> None:
        """Apply this panel's ``Q`` to ``C`` in place (reverse replay)."""
        for mf in reversed(self.merges):
            assert mf is not None
            tpmqrt_left_t(
                mf.Vb,
                mf.T,
                C[mf.top0 : mf.top0 + mf.r],
                C[mf.bot0 : mf.bot0 + mf.r],
                transpose=False,
            )
        for leaf in self.leaves.values():
            V, T = leaf.V, leaf.T
            Cv = C[leaf.r0 : leaf.r1]
            W = T @ (V.T @ Cv)
            Cv -= V @ W

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Flatten the store to named arrays (checkpoint payloads)."""
        out: dict = {"n_merges": np.int64(len(self.merges))}
        for slot, leaf in self.leaves.items():
            out[f"leaf{slot}_idx"] = np.array([leaf.slot, leaf.r0, leaf.r1], dtype=np.int64)
            out[f"leaf{slot}_V"] = leaf.V
            out[f"leaf{slot}_T"] = leaf.T
        for i, mf in enumerate(self.merges):
            if mf is None:
                continue
            out[f"merge{i}_idx"] = np.array([mf.top0, mf.bot0, mf.r], dtype=np.int64)
            out[f"merge{i}_Vb"] = mf.Vb
            out[f"merge{i}_T"] = mf.T
        return out

    @classmethod
    def from_arrays(cls, arrays: dict) -> "PanelQRStore":
        """Inverse of :meth:`to_arrays`."""
        store = cls()
        store.merges = [None] * int(arrays.get("n_merges", 0))
        for key, val in arrays.items():
            if not key.endswith("_idx"):
                continue
            if key.startswith("leaf"):
                slot = int(key[4:-4])
                store.leaves[slot] = LeafFactor(
                    slot=int(val[0]),
                    r0=int(val[1]),
                    r1=int(val[2]),
                    V=np.asarray(arrays[f"leaf{slot}_V"]),
                    T=np.asarray(arrays[f"leaf{slot}_T"]),
                )
            elif key.startswith("merge"):
                i = int(key[5:-4])
                store.merges[i] = MergeFactor(
                    top0=int(val[0]),
                    bot0=int(val[1]),
                    r=int(val[2]),
                    Vb=np.asarray(arrays[f"merge{i}_Vb"]),
                    T=np.asarray(arrays[f"merge{i}_T"]),
                )
        return store


@dataclass
class MergeStep:
    """Build-time record of one merge task: which pairs it performs."""

    tid: int
    level: int
    dst: Chunk
    srcs: list[Chunk]
    pair_indices: list[int]  # indices into PanelQRStore.merges
    #: Ordinal of this step within its panel; keys the step's implicit-Q
    #: output in task footprints as ``("qmerge", K, ordinal)``.
    ordinal: int = 0


@dataclass
class TSQRTasks:
    """Handles returned by :func:`add_tsqr_tasks` for the CAQR builder."""

    leaf_tids: dict[int, int]
    leaf_chunks: dict[int, Chunk]
    merge_steps: list[MergeStep]
    #: Shared-memory buffer specs for descriptor dispatch (populated
    #: only when built with ``shm=``): per leaf slot ``(V, T)`` specs,
    #: and per merge step (aligned with ``merge_steps``) a list of
    #: ``(top0, bot0, Vb_spec, T_spec)`` — what the CAQR trailing-update
    #: descriptors reference.
    leaf_bufs: dict[int, tuple] = field(default_factory=dict)
    merge_bufs: list[list[tuple]] = field(default_factory=list)


def _leaf_sync(store: PanelQRStore, chunk: Chunk, v_view, t_view):
    """op_sync hook: publish a worker-computed leaf WY factor into the
    parent store as live shared-memory views."""

    def sync() -> None:
        store.leaves[chunk.index] = LeafFactor(
            slot=chunk.index, r0=chunk.r0, r1=chunk.r1, V=v_view, T=t_view
        )

    return sync


def _merge_sync(store: PanelQRStore, bk: int, entries: list):
    """op_sync hook: publish worker-computed merge reflectors; *entries*
    is ``[(idx, top0, bot0, vb_view, t_view), ...]``."""

    def sync() -> None:
        for idx, top0, bot0, vb_view, t_view in entries:
            store.merges[idx] = MergeFactor(top0=top0, bot0=bot0, r=bk, Vb=vb_view, T=t_view)

    return sync


def _leaf_fn(A: np.ndarray, chunk: Chunk, c0: int, c1: int, store: PanelQRStore, kernel: str):
    def fn() -> None:
        block = A[chunk.r0 : chunk.r1, c0:c1]
        if kernel == "geqr3":
            T = geqr3(block)
        else:
            tau = geqr2(block)
            T = larft(extract_v(block), tau)
        store.leaves[chunk.index] = LeafFactor(
            slot=chunk.index, r0=chunk.r0, r1=chunk.r1, V=extract_v(block), T=T
        )

    return fn


def _merge_fn(
    A: np.ndarray,
    dst: Chunk,
    srcs: list[Chunk],
    c0: int,
    c1: int,
    store: PanelQRStore,
    pair_indices: list[int],
):
    bk = c1 - c0

    def fn() -> None:
        d0 = dst.r0
        for src, idx in zip(srcs, pair_indices, strict=True):
            s0 = src.r0
            Rtop = A[d0 : d0 + bk, c0:c1]
            Bsrc = A[s0 : s0 + bk, c0:c1]
            T = tpqrt(Rtop, Bsrc, bottom_triangular=True)
            store.merges[idx] = MergeFactor(
                top0=d0, bot0=s0, r=bk, Vb=np.triu(Bsrc).copy(), T=T
            )

    return fn


def add_tsqr_tasks(
    graph: TaskGraph,
    tracker: BlockTracker,
    layout: BlockLayout,
    K: int,
    chunks: list[Chunk],
    tree: TreeKind = TreeKind.BINARY,
    *,
    A: np.ndarray | None = None,
    store: PanelQRStore | None = None,
    lookahead: int = 1,
    library: str = "repro_qr",
    leaf_kernel: str = "geqr3",
    arity: int = 4,
    shm=None,
) -> TSQRTasks:
    """Emit the TSQR panel tasks (leaf QRs + tree merges) for panel *K*.

    Returns the task handles CAQR uses to attach trailing updates.
    With ``A=None`` the tasks are symbolic.  With *shm* (a
    :class:`~repro.runtime.shm.ShmBinding`; numeric runs only) the WY
    factors live in shared-memory buffers, each task carries a
    ``meta["op"]`` descriptor for process dispatch, and the returned
    handles include the buffer specs the CAQR trailing updates need.
    """
    c0 = K * layout.b
    c1 = c0 + layout.panel_width(K)
    bk = c1 - c0
    numeric = A is not None
    use_shm = shm is not None and numeric
    prio_p = task_priority("P", K, lookahead=lookahead, n_cols=layout.N)

    leaf_tids: dict[int, int] = {}
    leaf_chunks: dict[int, Chunk] = {}
    leaf_bufs: dict[int, tuple] = {}
    merge_bufs: list[list[tuple]] = []
    by_slot = {c.index: c for c in chunks}
    for chunk in chunks:
        cost = Cost(
            leaf_kernel,
            m=chunk.rows,
            n=bk,
            flops=qr_flops(chunk.rows, bk),
            words=2.0 * chunk.rows * bk,
            library=library,
        )
        fn = _leaf_fn(A, chunk, c0, c1, store, leaf_kernel) if numeric else None
        meta = {}
        if use_shm:
            k = min(chunk.rows, bk)  # reflector count of this leaf
            v_view, v_spec = shm.alloc((chunk.rows, k))
            t_view, t_spec = shm.alloc((k, k))
            leaf_bufs[chunk.index] = (v_spec, t_spec)
            meta["op"] = (
                "tsqr_leaf",
                {
                    "a": shm.a_spec,
                    "r0": chunk.r0,
                    "r1": chunk.r1,
                    "c0": c0,
                    "c1": c1,
                    "kernel": leaf_kernel,
                    "v": v_spec,
                    "t": t_spec,
                },
            )
            meta["op_sync"] = _leaf_sync(store, chunk, v_view, t_view)
        # ("qleaf", K, slot) keys the WY factor this task deposits in
        # the panel's PanelQRStore — read later by the trailing updates
        # that apply the leaf reflector.
        tid = tracker.add_task(
            graph,
            f"P[{K}]leaf{chunk.index}",
            TaskKind.P,
            cost,
            fn=fn,
            reads=chunk.blocks(K),
            writes=chunk.blocks(K) + [("qleaf", K, chunk.index)],
            priority=prio_p,
            iteration=K,
            **meta,
        )
        leaf_tids[chunk.index] = tid
        leaf_chunks[chunk.index] = chunk

    merge_steps: list[MergeStep] = []
    slots = [c.index for c in chunks]
    n_pairs = 0
    for lvl, level in enumerate(reduction_schedule(len(slots), tree, arity), start=1):
        for dst_pos, src_pos in level:
            dst = by_slot[slots[dst_pos]]
            srcs = [by_slot[slots[p]] for p in src_pos if slots[p] != slots[dst_pos]]
            pair_indices = list(range(n_pairs, n_pairs + len(srcs)))
            n_pairs += len(srcs)
            if store is not None:
                store.merges.extend([None] * len(srcs))
            cost = Cost(
                "tpqrt_tt",
                m=2 * bk,
                n=bk,
                k=bk,
                flops=tpqrt_tt_flops(bk) * len(srcs),
                words=3.0 * bk * bk * len(srcs),
                library=library,
            )
            fn = (
                _merge_fn(A, dst, srcs, c0, c1, store, pair_indices) if numeric else None
            )
            ordinal = len(merge_steps)
            rblocks = [(dst.b0, K)] + [(s.b0, K) for s in srcs]
            meta = {}
            if use_shm:
                pairs = []
                sync_entries = []
                step_bufs = []
                for src, idx in zip(srcs, pair_indices, strict=True):
                    vb_view, vb_spec = shm.alloc((bk, bk))
                    t_view, t_spec = shm.alloc((bk, bk))
                    pairs.append((dst.r0, src.r0, vb_spec, t_spec))
                    sync_entries.append((idx, dst.r0, src.r0, vb_view, t_view))
                    step_bufs.append((dst.r0, src.r0, vb_spec, t_spec))
                merge_bufs.append(step_bufs)
                meta["op"] = (
                    "tsqr_merge",
                    {"a": shm.a_spec, "c0": c0, "c1": c1, "bk": bk, "pairs": pairs},
                )
                meta["op_sync"] = _merge_sync(store, bk, sync_entries)
            tid = tracker.add_task(
                graph,
                f"P[{K}]merge{dst.index}<{','.join(str(s.index) for s in srcs)}",
                TaskKind.P,
                cost,
                fn=fn,
                reads=rblocks,
                writes=rblocks + [("qmerge", K, ordinal)],
                priority=prio_p,
                iteration=K,
                **meta,
            )
            merge_steps.append(
                MergeStep(
                    tid=tid,
                    level=lvl,
                    dst=dst,
                    srcs=srcs,
                    pair_indices=pair_indices,
                    ordinal=ordinal,
                )
            )
    return TSQRTasks(
        leaf_tids=leaf_tids,
        leaf_chunks=leaf_chunks,
        merge_steps=merge_steps,
        leaf_bufs=leaf_bufs,
        merge_bufs=merge_bufs,
    )


@dataclass
class TSQRFactorization:
    """Result of :func:`tsqr`: ``A = Q R`` with implicit ``Q``."""

    m: int
    n: int
    store: PanelQRStore
    R: np.ndarray
    tr: int
    tree: TreeKind

    def apply_qt(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q^T C`` (``C`` is ``(m, p)`` or ``(m,)``)."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        self.store.apply_qt(W)
        return W[:, 0] if squeeze else W

    def apply_q(self, C: np.ndarray) -> np.ndarray:
        """Return ``Q C`` (``C`` is ``(m, p)`` or ``(m,)``)."""
        C = np.array(C, dtype=float, copy=True)
        squeeze = C.ndim == 1
        W = C.reshape(self.m, -1)
        self.store.apply_q(W)
        return W[:, 0] if squeeze else W

    def q_explicit(self) -> np.ndarray:
        """The thin ``Q`` (``m x n``), formed by applying ``Q`` to ``[I; 0]``."""
        E = np.zeros((self.m, self.n))
        np.fill_diagonal(E, 1.0)
        return self.apply_q(E)

    def solve_ls(self, rhs: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min ||A x - rhs||`` via ``Q R``."""
        import scipy.linalg

        y = self.apply_qt(rhs)
        if y.ndim == 1:
            return scipy.linalg.solve_triangular(self.R, y[: self.n])
        return scipy.linalg.solve_triangular(self.R, y[: self.n])


def tsqr_program(
    A: np.ndarray,
    tr: int = 4,
    tree: TreeKind = TreeKind.FLAT,
    *,
    leaf_kernel: str = "geqr3",
    shm=None,
) -> tuple[GraphProgram, PanelQRStore]:
    """Streaming program for one standalone TSQR panel (one window
    holding the leaf factorizations and the reduction-tree merges).

    *A* must already be a float C-ordered tall array (``m >= n``); it
    is factored in place.  Returns ``(program, implicit-Q store)``.
    """
    m, n = A.shape
    layout = BlockLayout(m, n, b=n)
    from repro.core.calu import merged_chunks  # shared chunk policy

    chunks = merged_chunks(layout, 0, tr)
    store = PanelQRStore()

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        add_tsqr_tasks(
            graph,
            tracker,
            layout,
            0,
            chunks,
            tree,
            A=A,
            store=store,
            leaf_kernel=leaf_kernel,
            shm=shm,
        )

    return GraphProgram(f"tsqr{m}x{n}", 1, emit), store


def tsqr(
    A: np.ndarray,
    tr: int = 4,
    tree: TreeKind = TreeKind.FLAT,
    executor=None,
    leaf_kernel: str = "geqr3",
    overwrite: bool = False,
    check_finite: bool = True,
    fuse: int | None = None,
    store=None,
    memory_budget: int | None = None,
    spill_dir=None,
):
    """QR-factor one tall-skinny panel with a reduction tree.

    The paper's standalone TSQR (Figure 8): up to 5.3x faster than
    ``MKL_dgeqrf`` on ``10^5 x 200``.  Default tree is the height-1
    (flat) tree the paper found best on shared memory.
    ``executor="auto"`` and *fuse* behave as in
    :func:`~repro.core.calu.calu` (a standalone panel autotunes as a
    one-panel QR).

    With *store* (``"mmap"``, ``"shm"`` or a
    :class:`~repro.runtime.tilestore.TileStore`) or *memory_budget*
    (bytes of fast memory) the panel is factored *out of core*: staged
    into the tile store and streamed block by block (*A* may then also
    be a ``(shape, fill)`` source; see :func:`repro.core.outofcore.
    tsqr_ooc`, to which all other arguments forward).  The result is an
    :class:`~repro.core.outofcore.OOCTSQRFactorization` — duck-
    compatible with :class:`TSQRFactorization`, but the caller must
    ``destroy()`` it to release the spill files.

    Copy semantics: ``overwrite=True`` factors *A* in place only on the
    threaded (shared-address-space) path.  The process backend always
    stages the panel into a shared-memory arena — there ``overwrite``
    merely skips nothing, since the single staging copy doubles as the
    working copy and results are copied back off the arena.
    """
    if store is not None or memory_budget is not None:
        if executor is not None:
            raise ValueError(
                "tsqr: out-of-core runs (store=/memory_budget=) manage their own executor"
            )
        if tree != TreeKind.FLAT:
            raise ValueError("tsqr: out-of-core streaming requires tree=TreeKind.FLAT")
        from repro.core.outofcore import tsqr_ooc

        return tsqr_ooc(
            A,
            tr=None if memory_budget is not None else tr,
            memory_budget=memory_budget,
            store="mmap" if store is None else store,
            spill_dir=spill_dir,
            leaf_kernel=leaf_kernel,
            check_finite=check_finite,
        )
    A = validate_matrix(A, "A", require_finite=check_finite)
    dtype = A.dtype if A.dtype in (np.float32, np.float64) else np.float64
    m, n = A.shape
    if m < n:
        raise ValueError(f"tsqr requires a tall panel (m >= n), got {A.shape}")
    from repro.runtime.process import ProcessExecutor, resolve_executor

    if isinstance(executor, str) and executor == "auto":
        from repro.machine.autotune import autotune

        decision = autotune("qr", m, n, b=n, tr=tr, tree=tree)
        executor = decision.backend
        if fuse is None:
            fuse = decision.max_ops
    if executor is None:
        executor = ThreadedExecutor(min(tr, 4))
    executor, owned = resolve_executor(executor, min(tr, 4))
    use_shm = isinstance(executor, ProcessExecutor)
    arena = shm = None
    if use_shm:
        # Process backend: panel and WY factors live on the shared-
        # memory plane; results are copied off before teardown.  Stage
        # straight onto the arena — one copy (converting dtype/layout
        # on the way) instead of a parent-side copy that the place
        # would immediately duplicate.
        from repro.runtime.shm import SharedArena, ShmBinding

        arena = SharedArena()
        shared = arena.alloc(A.shape, dtype, zero=False)
        np.copyto(shared, A)
        A = shared
        shm = ShmBinding(arena, A)
    else:
        A = np.array(A, dtype=dtype, order="C", copy=not overwrite, subok=False)
    try:
        program, store_q = tsqr_program(A, tr, tree, leaf_kernel=leaf_kernel, shm=shm)
        if fuse is not None and fuse > 1:
            from repro.runtime.fuse import fuse_program

            program = fuse_program(program, max_ops=fuse)
        source = program if supports_streaming(executor) else program.materialize()
        executor.run(source)
        R = np.triu(A[:n, :])  # np.triu already allocates a fresh array
        if use_shm:
            # Deep-copy the WY factors off the arena before teardown.
            store_q = PanelQRStore.from_arrays(
                {k: np.array(v) for k, v in store_q.to_arrays().items()}
            )
    finally:
        if arena is not None:
            arena.destroy()
        if owned and use_shm:
            executor.close()
    return TSQRFactorization(m=m, n=n, store=store_q, R=R, tr=tr, tree=tree)
