"""Parameter heuristics distilled from the paper's evaluation.

The paper's Section IV findings, as defaults a user can call:

* block size ``b = min(100, n)`` worked best on the 8-core machine;
* for tall-skinny matrices, ``Tr = cores`` ("the panel factorization is
  executed as fast as possible using all the available cores");
* for large square matrices, small ``Tr`` wins (Table I: Tr=2 best at
  ``n = 10^4`` — fewer redundant tournament flops, enough parallelism
  from the updates);
* the flat reduction tree is the shared-memory default for QR (the
  paper's CAQR results use the height-1 tree), binary for LU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trees import TreeKind

__all__ = ["TuneResult", "recommend_params"]


@dataclass(frozen=True)
class TuneResult:
    """Recommended CALU/CAQR parameters for a problem shape."""

    b: int
    tr: int
    tree: TreeKind
    rationale: str


def recommend_params(m: int, n: int, cores: int = 8, kind: str = "lu") -> TuneResult:
    """Recommend ``(b, Tr, tree)`` for an ``m x n`` factorization.

    *kind* is ``"lu"`` or ``"qr"``.  The rules encode the paper's
    measured optima; they are starting points, not guarantees.
    """
    if m < 1 or n < 1 or cores < 1:
        raise ValueError("m, n and cores must be positive")
    if kind not in ("lu", "qr"):
        raise ValueError(f"kind must be 'lu' or 'qr', got {kind!r}")
    b = min(100, n)
    aspect = m / n
    if aspect >= 8.0:
        # Tall and skinny: the panel dominates; throw every core at it.
        tr = cores
        rationale = (
            "tall-skinny: panel on the critical path, Tr = cores removes "
            "its idle time (paper Figures 3-4)"
        )
    elif max(m, n) >= 8000:
        # Large square-ish: updates dominate; small Tr avoids redundant
        # tournament work (paper Table I: Tr=2 best at 10^4).
        tr = min(2, cores)
        rationale = "large square: updates dominate, small Tr avoids redundant panel flops (Table I)"
    else:
        tr = max(1, min(cores, cores // 2 or 1))
        rationale = "moderate size: balance panel parallelism against task count (Tables I-III)"
    # Don't use more tournament leaves than full-height panel chunks exist.
    tr = max(1, min(tr, m // max(b, 1) or 1))
    tree = TreeKind.FLAT if kind == "qr" else TreeKind.BINARY
    return TuneResult(b=b, tr=tr, tree=tree, rationale=rationale)
