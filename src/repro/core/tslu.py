"""TSLU — tall-skinny LU panel factorization with tournament pivoting.

The panel is split into ``Tr`` row chunks.  Each chunk elects ``b``
candidate pivot rows by Gaussian elimination with partial pivoting
(GEPP, task P at the tree leaves); candidate sets are merged by further
GEPP sweeps up a reduction tree (task P at inner nodes).  The winning
``b`` rows are swapped to the top of the panel and the pivot block is
factored without further pivoting (the *finalize* step); the remaining
panel rows become ``L`` via triangular solves (task L, emitted by the
caller — CALU — or by :func:`tslu` for a standalone panel).

This module provides both the task-graph builder used by CALU and a
standalone :func:`tslu` driver for factoring a single tall-skinny
panel, the operation the paper benchmarks against ``MKL_dgetf2``.

Resilience: leaf tasks are *idempotent* (they read the matrix and
overwrite only their own candidate slot), so the runtime may retry
them.  Health guards watch the tournament's candidate buffers; if a
fault corrupts them, the panel *degrades gracefully* — the finalize
task abandons the tournament and selects its pivots by classic GEPP
partial pivoting on the panel, which costs one extra panel sweep but
keeps the factorization correct (recorded as a ``degraded`` event).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.flops import lu_flops, lu_panel_flops, trsm_right_flops
from repro.core.layout import BlockLayout, Chunk
from repro.core.priorities import task_priority
from repro.core.trees import TreeKind, reduction_schedule
from repro.kernels.blas import laswp
from repro.kernels.lu import getf2, getf2_nopiv, perm_from_piv_rows, piv_to_perm, rgetf2
from repro.resilience.events import ResilienceEvent
from repro.resilience.health import DEFAULT_GROWTH_LIMIT, validate_matrix
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram, supports_streaming
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor

__all__ = ["PanelWorkspace", "add_tslu_tasks", "tslu", "tslu_program"]


@dataclass
class PanelWorkspace:
    """Shared state of one panel's tournament.

    ``cand_rows[slot]`` / ``cand_gidx[slot]`` hold the candidate pivot
    rows (values, copied out of the matrix) and their row indices local
    to the panel; ``piv`` is the final LAPACK-style swap sequence set
    by the finalize task.  ``degraded`` is set when the tournament's
    candidates were found corrupted and the finalize task fell back to
    partial pivoting for this panel.
    """

    cand_rows: dict[int, np.ndarray] = field(default_factory=dict)
    cand_gidx: dict[int, np.ndarray] = field(default_factory=dict)
    piv: np.ndarray | None = None
    degraded: bool = False
    #: Set when the finalize task repaired a corrupted tournament by
    #: replaying the whole reduction from the (untouched) panel data —
    #: the first rung of the recovery ladder, yielding pivots identical
    #: to a fault-free run.
    recomputed: bool = False
    #: Permission for that replay; disabled, the finalize task degrades
    #: straight to partial pivoting (the historical behaviour).
    allow_recompute: bool = True


def _select_pivots(block: np.ndarray, leaf_kernel: str) -> np.ndarray:
    """GEPP a *copy* of *block*; return the selected pivot positions in order.

    The input is never modified — callers forward the original rows up
    the reduction tree, so the factored values must not leak into the
    candidate sets.
    """
    rows, cols = block.shape
    work = block.copy()
    if leaf_kernel == "rgetf2" and rows >= cols:
        piv = rgetf2(work)
    else:
        piv = getf2(work)
    perm = piv_to_perm(piv, rows)
    return perm[: min(rows, cols)]


def _leaf_fn(A: np.ndarray, chunk: Chunk, c0: int, c1: int, k0: int, ws: PanelWorkspace, leaf_kernel: str):
    def fn() -> None:
        block = A[chunk.r0 : chunk.r1, c0:c1]
        sel = _select_pivots(block, leaf_kernel)
        ws.cand_rows[chunk.index] = block[sel].copy()
        ws.cand_gidx[chunk.index] = (chunk.r0 - k0) + sel

    return fn


def _merge_fn(ws: PanelWorkspace, dst: int, srcs: list[int], bk: int, leaf_kernel: str):
    def fn() -> None:
        rows = np.vstack([ws.cand_rows[s] for s in srcs])
        gidx = np.concatenate([ws.cand_gidx[s] for s in srcs])
        if not np.isfinite(rows).all():
            # Corrupted candidates: mark the panel degraded and stop
            # propagating poison up the tree.  The finalize task will
            # fall back to partial pivoting on the panel itself.
            ws.degraded = True
            ws.cand_rows[dst] = rows[: min(len(rows), bk)]
            ws.cand_gidx[dst] = gidx[: min(len(gidx), bk)]
            return
        sel = _select_pivots(rows, leaf_kernel)
        ws.cand_rows[dst] = rows[sel].copy()
        ws.cand_gidx[dst] = gidx[sel]

    return fn


def _candidate_guard(ws: PanelWorkspace, slot: int, K: int, name: str):
    """Health guard for a tournament task: non-finite candidates degrade the panel."""

    def guard() -> ResilienceEvent | None:
        cand = ws.cand_rows.get(slot)
        if cand is not None and not np.isfinite(cand).all():
            ws.degraded = True
            return ResilienceEvent(
                kind="health",
                task=name,
                detail=f"panel {K}: non-finite tournament candidates in slot {slot}",
            )
        return None

    return guard


def _corrupt_candidates(ws: PanelWorkspace, slot: int):
    """Corruption hook for fault injection: poison this slot's candidate rows."""

    def corrupt() -> bool:
        cand = ws.cand_rows.get(slot)
        if cand is None or cand.size == 0:
            return False
        cand.flat[cand.size // 2] = np.nan
        return True

    return corrupt


def _panel_guard(
    A: np.ndarray,
    k0: int,
    r: int,
    c0: int,
    c1: int,
    ws: PanelWorkspace,
    K: int,
    absmax: float | None,
    name: str,
    growth_limit: float = DEFAULT_GROWTH_LIMIT,
):
    """Health guard after finalize: fatal on non-finite factors, warn on growth."""

    def guard() -> ResilienceEvent | None:
        block = A[k0 : k0 + r, c0:c1]
        if not np.isfinite(block).all():
            return ResilienceEvent(
                kind="health",
                task=name,
                detail=f"panel {K}: non-finite values in factored pivot block",
                fatal=True,
            )
        if ws.recomputed:
            return ResilienceEvent(
                kind="recompute",
                task=name,
                detail=f"panel {K}: corrupted tournament replayed from clean panel data",
            )
        if ws.degraded:
            return ResilienceEvent(
                kind="degraded",
                task=name,
                detail=f"panel {K}: tournament corrupted, fell back to partial pivoting",
            )
        if absmax is not None and absmax > 0:
            growth = float(np.abs(block).max()) / absmax
            if growth > growth_limit:
                return ResilienceEvent(
                    kind="health",
                    task=name,
                    detail=f"panel {K}: pivot growth {growth:.3g} exceeds {growth_limit:.3g}",
                    value=growth,
                )
        return None

    return guard


def _recompute_tournament(
    A: np.ndarray,
    k0: int,
    c0: int,
    c1: int,
    chunks: list[Chunk],
    tree: TreeKind,
    arity: int,
    leaf_kernel: str,
) -> np.ndarray | None:
    """Replay a panel's whole tournament serially from the matrix.

    The tournament tasks only *read* the panel (candidates are copies),
    so after a corruption of the candidate buffers the reduction can be
    replayed from the untouched panel data.  The replay runs the exact
    leaf and merge selections of the task graph, so the returned root
    candidate indices — and hence the pivots — are identical to a
    fault-free run.  Returns None when the panel itself is unusable
    (non-finite entries), which sends the finalize task down the next
    rung of the ladder.
    """
    cand_rows: dict[int, np.ndarray] = {}
    cand_gidx: dict[int, np.ndarray] = {}
    for chunk in chunks:
        block = A[chunk.r0 : chunk.r1, c0:c1]
        if not np.isfinite(block).all():
            return None
        sel = _select_pivots(block, leaf_kernel)
        cand_rows[chunk.index] = block[sel].copy()
        cand_gidx[chunk.index] = (chunk.r0 - k0) + sel
    slots = [c.index for c in chunks]
    for level in reduction_schedule(len(slots), tree, arity):
        for dst_pos, src_pos in level:
            dst = slots[dst_pos]
            srcs = [slots[p] for p in src_pos]
            rows = np.vstack([cand_rows[s] for s in srcs])
            gidx = np.concatenate([cand_gidx[s] for s in srcs])
            sel = _select_pivots(rows, leaf_kernel)
            cand_rows[dst] = rows[sel].copy()
            cand_gidx[dst] = gidx[sel]
    return cand_gidx[slots[0]]


def _finalize_fn(
    A: np.ndarray,
    k0: int,
    m: int,
    c0: int,
    c1: int,
    ws: PanelWorkspace,
    root: int,
    chunks: list[Chunk] | None = None,
    tree: TreeKind = TreeKind.BINARY,
    arity: int = 4,
    leaf_kernel: str = "rgetf2",
):
    def fn() -> None:
        gidx = ws.cand_gidx.get(root)
        cand = ws.cand_rows.get(root)
        degraded = (
            ws.degraded
            or gidx is None
            or cand is None
            or not np.isfinite(cand).all()
        )
        if degraded and ws.allow_recompute and chunks is not None:
            # Recovery ladder, rung 1: the tournament tasks never wrote
            # the matrix, so replay the whole reduction from the clean
            # panel.  Success restores fault-free pivots bit for bit.
            replayed = _recompute_tournament(A, k0, c0, c1, chunks, tree, arity, leaf_kernel)
            if replayed is not None:
                gidx = replayed
                degraded = False
                ws.degraded = False
                ws.recomputed = True
        if degraded:
            # Rung 2 — graceful degradation: the tournament's candidates
            # are unusable, so select pivots by classic GEPP partial
            # pivoting on a *copy* of the panel (selection only — the
            # actual panel is then swapped and factored exactly as in
            # the tournament path, leaving the sub-pivot rows for the
            # L tasks).
            ws.degraded = True
            work = A[k0:m, c0:c1].copy()
            piv = getf2(work)
        else:
            piv = perm_from_piv_rows(gidx, m - k0)
        ws.piv = piv
        laswp(A[k0:m, c0:c1], piv)
        r = min(c1 - c0, m - k0)
        getf2_nopiv(A[k0 : k0 + r, c0:c1])

    return fn


def _mirror_degraded(guard, flags: np.ndarray):
    """Wrap a candidate guard so a parent-side degradation verdict is
    also visible to worker processes via the panel's shared flags."""

    def wrapped() -> ResilienceEvent | None:
        ev = guard()
        if ev is not None:
            flags[0] = 1
        return ev

    return wrapped


def _slot_sync(ws: PanelWorkspace, slot: int, rows, gidx, count, flags=None):
    """op_sync hook: mirror a worker-written candidate slot into the
    parent workspace as live shared-memory views (so parent-side guards
    and corruption hooks see — and touch — the worker's data)."""

    def sync() -> None:
        n = int(count[0])
        ws.cand_rows[slot] = rows[:n]
        ws.cand_gidx[slot] = gidx[:n]
        if flags is not None and flags[0]:
            ws.degraded = True

    return sync


def _finalize_sync(ws: PanelWorkspace, piv, flags):
    """op_sync hook: publish the worker-selected pivots and the panel's
    degraded/recomputed verdict into the parent workspace."""

    def sync() -> None:
        ws.piv = piv[1 : 1 + int(piv[0])]
        ws.degraded = bool(flags[0])
        ws.recomputed = bool(flags[1])

    return sync


def add_tslu_tasks(
    graph: TaskGraph,
    tracker: BlockTracker,
    layout: BlockLayout,
    K: int,
    chunks: list[Chunk],
    tree: TreeKind = TreeKind.BINARY,
    *,
    A: np.ndarray | None = None,
    ws: PanelWorkspace | None = None,
    lookahead: int = 1,
    library: str = "repro",
    leaf_kernel: str = "rgetf2",
    arity: int = 4,
    guards: bool = True,
    absmax: float | None = None,
    recompute: bool = True,
    shm=None,
) -> int:
    """Emit the TSLU tasks for panel *K*; returns the finalize task id.

    With ``A=None`` the tasks are symbolic (cost-only).  *chunks* is
    the row partition for this iteration (from
    :meth:`BlockLayout.panel_chunks`, possibly tail-merged).

    With *guards* (numeric runs only) the tournament tasks carry
    ``meta["health"]`` closures that detect corrupted candidate buffers
    and trigger the partial-pivoting fallback, plus ``meta["corrupt"]``
    hooks so a :class:`~repro.resilience.faults.FaultPlan` can target
    the workspace instead of the matrix.  *absmax* (the panel's
    pre-factorization magnitude) enables the pivot-growth monitor on
    the finalize task.  *recompute* lets the finalize task repair a
    corrupted tournament by replaying it from the clean panel data
    (identical pivots) before degrading to partial pivoting.

    With *shm* (a :class:`~repro.runtime.shm.ShmBinding`; numeric runs
    only), every task additionally carries a ``meta["op"]`` descriptor
    dispatchable to a :class:`~repro.runtime.process.ProcessExecutor`
    worker: candidate slots, the degradation flags and the pivot
    sequence live in arena buffers, and ``meta["op_sync"]`` mirrors them
    into the parent :class:`PanelWorkspace` after each completion.
    """
    c0, c1 = layout.col_range(K)
    c1 = min(c1, K * layout.b + layout.panel_width(K))
    bk = c1 - c0
    k0 = K * layout.b
    m = layout.m
    numeric = A is not None
    if numeric and ws is not None:
        ws.allow_recompute = bool(recompute)
    prio_p = task_priority("P", K, lookahead=lookahead, n_cols=layout.N)

    # Shared-memory workspace for descriptor dispatch: one candidate
    # buffer triple (rows, gidx, count) per tournament slot, a flags
    # pair [degraded, recomputed] and a length-prefixed pivot buffer.
    slot_bufs: dict[int, tuple] = {}  # slot -> ((views), (specs))
    flags = flags_spec = piv_buf = piv_spec = None
    if shm is not None and numeric:
        for chunk in chunks:
            rows_v, rows_s = shm.alloc((bk, bk))
            gidx_v, gidx_s = shm.alloc((bk,), np.int64)
            count_v, count_s = shm.alloc((1,), np.int64)
            slot_bufs[chunk.index] = ((rows_v, gidx_v, count_v), (rows_s, gidx_s, count_s))
        flags_view, flags_spec = shm.alloc((2,), np.int64)
        flags = flags_view
        piv_buf, piv_spec = shm.alloc((m - k0 + 1,), np.int64)
        shm.piv_specs[K] = (piv_buf, piv_spec)

    # Workspace footprint keys: candidate buffers live outside the
    # block grid, so the tournament's dataflow through them is tracked
    # with symbolic per-panel keys — ("cand", K, slot) for a slot of
    # PanelWorkspace.cand_rows/cand_gidx, ("piv", K) for ws.piv.  The
    # tracker then derives the tree edges (and the verify passes can
    # prove them sufficient) instead of the builder hand-wiring deps.
    def cand(slot: int) -> tuple:
        return ("cand", K, slot)

    producer: dict[int, int] = {}
    for chunk in chunks:
        cost = Cost(
            leaf_kernel if chunk.rows >= bk else "getf2",
            m=chunk.rows,
            n=bk,
            flops=lu_flops(chunk.rows, bk),
            words=2.0 * chunk.rows * bk,
            library=library,
        )
        fn = _leaf_fn(A, chunk, c0, c1, k0, ws, leaf_kernel) if numeric else None
        name = f"P[{K}]leaf{chunk.index}"
        meta = {}
        if numeric and guards:
            meta["health"] = _candidate_guard(ws, chunk.index, K, name)
            meta["corrupt"] = _corrupt_candidates(ws, chunk.index)
        if slot_bufs:
            (rows_v, gidx_v, count_v), (rows_s, gidx_s, count_s) = slot_bufs[chunk.index]
            meta["op"] = (
                "tslu_leaf",
                {
                    "a": shm.a_spec,
                    "r0": chunk.r0,
                    "r1": chunk.r1,
                    "c0": c0,
                    "c1": c1,
                    "k0": k0,
                    "leaf_kernel": leaf_kernel,
                    "rows": rows_s,
                    "gidx": gidx_s,
                    "count": count_s,
                },
            )
            meta["op_sync"] = _slot_sync(ws, chunk.index, rows_v, gidx_v, count_v)
            if "health" in meta:
                meta["health"] = _mirror_degraded(meta["health"], flags)
        producer[chunk.index] = tracker.add_task(
            graph,
            name,
            TaskKind.P,
            cost,
            fn=fn,
            reads=chunk.blocks(K),
            writes=[cand(chunk.index)],
            priority=prio_p,
            iteration=K,
            idempotent=numeric,
            **meta,
        )

    slots = [c.index for c in chunks]
    root = slots[0]
    cand_rows = {c.index: min(c.rows, bk) for c in chunks}
    for level in reduction_schedule(len(slots), tree, arity):
        for dst_pos, src_pos in level:
            dst = slots[dst_pos]
            srcs = [slots[p] for p in src_pos]
            stacked = sum(cand_rows[s] for s in srcs)
            cost = Cost(
                "gepp_merge",
                m=stacked,
                n=bk,
                flops=lu_panel_flops(stacked, min(stacked, bk)),
                words=2.0 * stacked * bk,
                library=library,
            )
            fn = _merge_fn(ws, dst, srcs, bk, leaf_kernel) if numeric else None
            name = f"P[{K}]merge{dst}<{','.join(map(str, srcs))}"
            meta = {}
            if numeric and guards:
                meta["health"] = _candidate_guard(ws, dst, K, name)
                meta["corrupt"] = _corrupt_candidates(ws, dst)
            if slot_bufs:
                (rows_v, gidx_v, count_v), dst_specs = slot_bufs[dst]
                meta["op"] = (
                    "tslu_merge",
                    {
                        "srcs": [slot_bufs[s][1] for s in srcs],
                        "dst": dst_specs,
                        "bk": bk,
                        "leaf_kernel": leaf_kernel,
                        "flags": flags_spec,
                    },
                )
                meta["op_sync"] = _slot_sync(ws, dst, rows_v, gidx_v, count_v, flags)
                if "health" in meta:
                    meta["health"] = _mirror_degraded(meta["health"], flags)
            # Dependencies are derived from the candidate-slot keys:
            # RAW on each source producer, WAW on the previous writer
            # of the destination slot — identical to the hand-wired
            # edge list this used to pass, but now verifiable.
            producer[dst] = tracker.add_task(
                graph,
                name,
                TaskKind.P,
                cost,
                fn=fn,
                reads=[cand(s) for s in srcs],
                writes=[cand(dst)],
                priority=prio_p,
                iteration=K,
                **meta,
            )
            cand_rows[dst] = min(stacked, bk)

    r = min(bk, m - k0)
    fin_cost = Cost(
        "getf2_nopiv",
        m=r,
        n=bk,
        flops=lu_panel_flops(r, r),
        words=2.0 * bk * bk + 2.0 * bk * bk,  # swaps across the panel + factor traffic
        library=library,
    )
    fn = (
        _finalize_fn(A, k0, m, c0, c1, ws, root, chunks, tree, arity, leaf_kernel)
        if numeric
        else None
    )
    name = f"F[{K}]"
    meta = {}
    if numeric and guards:
        meta["health"] = _panel_guard(A, k0, r, c0, c1, ws, K, absmax, name)
    if slot_bufs:
        meta["op"] = (
            "tslu_finalize",
            {
                "a": shm.a_spec,
                "k0": k0,
                "m": m,
                "c0": c0,
                "c1": c1,
                "root": slot_bufs[root][1],
                "flags": flags_spec,
                "piv": piv_spec,
                "chunks": [(c.index, c.r0, c.r1) for c in chunks],
                "tree": tree.value,
                "arity": arity,
                "leaf_kernel": leaf_kernel,
                "allow_recompute": bool(recompute),
            },
        )
        meta["op_sync"] = _finalize_sync(ws, piv_buf, flags)
    # The finalize swaps + factors the whole active panel column (its
    # declared writes), consumes the tournament winner and publishes
    # the pivot sequence the U tasks and the deferred left swaps read.
    panel_blocks = layout.active_blocks(K, K)
    finalize = tracker.add_task(
        graph,
        name,
        TaskKind.P,
        fin_cost,
        fn=fn,
        reads=[cand(root)] + panel_blocks,
        writes=panel_blocks + [("piv", K)],
        priority=task_priority("F", K, lookahead=lookahead, n_cols=layout.N),
        iteration=K,
        **meta,
    )
    return finalize


def tslu_program(
    A: np.ndarray,
    tr: int = 4,
    tree: TreeKind = TreeKind.BINARY,
    *,
    leaf_kernel: str = "rgetf2",
    shm=None,
) -> tuple[GraphProgram, PanelWorkspace]:
    """Streaming program for one standalone TSLU panel.

    Window 0 is the tournament (leaves + reduction tree + finalize),
    window 1 the ``L`` triangular solves below the pivot block — so the
    solves are not even created until the tournament is underway.
    *A* must already be a float C-ordered tall array (``m >= n``); it
    is factored in place.  Returns ``(program, panel workspace)``.
    """
    m, n = A.shape
    layout = BlockLayout(m, n, b=n)
    chunks = layout.panel_chunks(0, tr)
    ws = PanelWorkspace()
    from repro.kernels.blas import trsm_runn  # local to avoid cycle at import

    def _l_fn(r0: int, r1: int):
        def fn() -> None:
            trsm_runn(A[:n, :], A[r0:r1, :])

        return fn

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        if window == 0:
            add_tslu_tasks(
                graph,
                tracker,
                layout,
                0,
                chunks,
                tree,
                A=A,
                ws=ws,
                leaf_kernel=leaf_kernel,
                shm=shm,
            )
            return
        # L tasks: the rows below the pivot block, one trsm per chunk.
        for chunk in chunks:
            r0 = max(chunk.r0, n)
            if r0 >= chunk.r1:
                continue
            cost = Cost(
                "trsm_runn",
                m=chunk.r1 - r0,
                k=n,
                flops=trsm_right_flops(chunk.r1 - r0, n),
                words=2.0 * (chunk.r1 - r0) * n,
            )
            meta = {}
            if shm is not None:
                meta["op"] = (
                    "calu_l",
                    {"a": shm.a_spec, "k0": 0, "c0": 0, "c1": n, "r0": r0, "r1": chunk.r1},
                )
            tracker.add_task(
                graph,
                f"L[0]{chunk.index}",
                TaskKind.L,
                cost,
                fn=_l_fn(r0, chunk.r1),
                reads=[(0, 0)],
                writes=chunk.blocks(0),
                priority=task_priority("L", 0),
                **meta,
            )

    return GraphProgram(f"tslu{m}x{n}", 2, emit), ws


def tslu(
    A: np.ndarray,
    tr: int = 4,
    tree: TreeKind = TreeKind.BINARY,
    executor=None,
    leaf_kernel: str = "rgetf2",
    overwrite: bool = False,
    check_finite: bool = True,
    store=None,
    memory_budget: int | None = None,
    spill_dir=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Factor one tall-skinny panel with tournament pivoting.

    Returns ``(lu, piv)``: the packed in-place factorization (``L``
    strictly below the diagonal with unit diagonal implicit, ``U`` on
    and above) and the LAPACK-style swap sequence such that
    ``A[perm] = L @ U`` with ``perm = piv_to_perm(piv, m)``.

    This is the standalone panel operation the paper benchmarks against
    ``MKL_dgetf2``: GEPP-quality pivots with ``O(log2 Tr)``
    synchronizations instead of one per column.

    With *store* or *memory_budget* the panel streams through a tile
    store (see :func:`repro.core.outofcore.tslu_ooc`) and the packed
    factors are copied back into RAM to honour this contract — for
    results that should *stay* out of core, call ``tslu_ooc`` directly.

    Copy semantics: ``overwrite=True`` factors *A* in place only on the
    threaded path; the process backend stages the panel into a shared-
    memory arena (one copy in, one copy out) regardless.
    """
    if store is not None or memory_budget is not None:
        if executor is not None:
            raise ValueError(
                "tslu: out-of-core runs (store=/memory_budget=) manage their own executor"
            )
        from repro.core.outofcore import tslu_ooc

        res = tslu_ooc(
            A,
            tr=None if memory_budget is not None else tr,
            memory_budget=memory_budget,
            store="mmap" if store is None else store,
            spill_dir=spill_dir,
            tree=tree,
            leaf_kernel=leaf_kernel,
            check_finite=check_finite,
        )
        try:
            return res.lu(), np.array(res.piv)
        finally:
            res.destroy()
    A = validate_matrix(A, "A", require_finite=check_finite)
    dtype = A.dtype if A.dtype in (np.float32, np.float64) else np.float64
    m, n = A.shape
    if m < n:
        raise ValueError(f"tslu requires a tall panel (m >= n), got {A.shape}")
    from repro.runtime.process import ProcessExecutor, resolve_executor

    if executor is None:
        executor = ThreadedExecutor(min(tr, 4))
    executor, owned = resolve_executor(executor, min(tr, 4))
    use_shm = isinstance(executor, ProcessExecutor)
    arena = shm = None
    if use_shm:
        # Process backend: stage the panel straight onto the shared-
        # memory plane (one copy, converting dtype/layout on the way)
        # so worker processes factor it in place (see repro.runtime.shm).
        from repro.runtime.shm import SharedArena, ShmBinding

        arena = SharedArena()
        shared = arena.alloc(A.shape, dtype, zero=False)
        np.copyto(shared, A)
        A = shared
        shm = ShmBinding(arena, A)
    else:
        A = np.array(A, dtype=dtype, order="C", copy=not overwrite, subok=False)
    try:
        program, ws = tslu_program(A, tr, tree, leaf_kernel=leaf_kernel, shm=shm)
        source = program if supports_streaming(executor) else program.materialize()
        executor.run(source)
        assert ws.piv is not None
        piv = ws.piv
        if use_shm:
            A = np.array(A)
            piv = np.array(piv)
    finally:
        if arena is not None:
            arena.destroy()
        if owned and use_shm:
            executor.close()
    return A, piv
