"""Multithreaded CALU — Algorithm 1 of the paper.

Block LU factorization ``Π A = L U`` with ca-pivoting.  Each iteration
``K`` emits:

* task **P** — the TSLU tournament for panel ``K`` (leaves + reduction
  tree + finalize), see :mod:`repro.core.tslu`;
* task **L** — one ``dtrsm`` per row chunk computing a block of the
  current column of ``L``;
* task **U** — per trailing block column ``J``: apply the panel's row
  swaps, then ``dtrsm`` for the block row of ``U``;
* task **S** — per (row chunk, block column): the ``dgemm`` trailing
  update;
* one final **X** task applying the deferred row swaps to the left
  part of ``L`` (Algorithm 1 line 41, ``dlaswap``).

Dependencies are discovered from block read/write sets; static task
priorities encode the look-ahead-1 schedule (see
:mod:`repro.core.priorities`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.analysis.flops import gemm_flops, trsm_left_flops, trsm_right_flops
from repro.core.layout import BlockLayout, Chunk
from repro.core.priorities import lookahead_depth, task_priority
from repro.core.trees import TreeKind
from repro.core.tslu import PanelWorkspace, add_tslu_tasks
from repro.kernels.blas import gemm, laswp, trsm_llnu, trsm_runn
from repro.kernels.lu import piv_to_perm
from repro.resilience.abft import gemm_abft_guard, gemm_checksums
from repro.resilience.checkpoint import restore_matrix
from repro.resilience.events import ResilienceEvent
from repro.resilience.health import finite_block_guard, validate_matrix
from repro.resilience.recovery import RuntimeFailure
from repro.runtime.graph import BlockTracker, TaskGraph
from repro.runtime.program import GraphProgram, supports_streaming
from repro.runtime.task import Cost, TaskKind
from repro.runtime.threaded import ThreadedExecutor
from repro.runtime.trace import Trace

__all__ = ["CALUFactorization", "build_calu_graph", "calu", "calu_program", "merged_chunks"]


def merged_chunks(layout: BlockLayout, K: int, tr: int) -> list[Chunk]:
    """Panel chunks with a too-short tail merged into its predecessor.

    Guarantees every chunk has at least ``panel_width`` rows (needed by
    the tree merges, which stack full ``b``-row candidate sets), except
    when the whole active region is a single short chunk.
    """
    chunks = layout.panel_chunks(K, tr)
    bk = layout.panel_width(K)
    if len(chunks) > 1 and chunks[-1].rows < bk:
        last, prev = chunks[-1], chunks[-2]
        chunks[-2] = Chunk(index=prev.index, r0=prev.r0, r1=last.r1, b0=prev.b0, b1=last.b1)
        chunks.pop()
    return chunks


def _l_fn(A: np.ndarray, k0: int, c0: int, c1: int, r0: int, r1: int):
    def fn() -> None:
        trsm_runn(A[k0 : k0 + (c1 - c0), c0:c1], A[r0:r1, c0:c1])

    return fn


def _u_fn(A: np.ndarray, m: int, k0: int, bk: int, c0: int, c1: int, j0: int, j1: int, ws: PanelWorkspace):
    def fn() -> None:
        laswp(A[k0:m, j0:j1], ws.piv)
        trsm_llnu(A[k0 : k0 + bk, c0:c1], A[k0 : k0 + bk, j0:j1])

    return fn


def _s_fn(A: np.ndarray, k0: int, bk: int, c0: int, c1: int, r0: int, r1: int, j0: int, j1: int):
    def fn() -> None:
        gemm(A[r0:r1, j0:j1], A[r0:r1, c0:c1], A[k0 : k0 + bk, j0:j1])

    return fn


def _s_fn_abft(
    A: np.ndarray, k0: int, bk: int, c0: int, c1: int, r0: int, r1: int, j0: int, j1: int, cell: list
):
    """S-task closure that also posts Huang-Abraham checksums.

    The expected row/column sums of ``C - L U`` are computed from the
    pre-update operands and left in *cell* for the task's ABFT health
    guard, which runs after any injected corruption and repairs a
    single bad element in place.
    """

    def fn() -> None:
        C = A[r0:r1, j0:j1]
        L = A[r0:r1, c0:c1]
        U = A[k0 : k0 + bk, j0:j1]
        cell[0] = gemm_checksums(C, L, U)
        gemm(C, L, U)

    return fn


def _corrupt_block(A: np.ndarray, r0: int, r1: int, j0: int, j1: int):
    """Corruption hook for an S task: flip one element of its output
    block to a large finite value (a bit-flip-style soft error)."""

    def corrupt() -> bool:
        block = A[r0:r1, j0:j1]
        if block.size == 0:
            return False
        i, j = (r1 - r0) // 2, (j1 - j0) // 2
        block[i, j] = block[i, j] * 3.0 + 1e6
        return True

    return corrupt


def _leftswap_fn(A: np.ndarray, layout: BlockLayout, workspaces: list[PanelWorkspace]):
    def fn() -> None:
        for K, ws in enumerate(workspaces):
            k0 = K * layout.b
            if k0 > 0 and ws.piv is not None:
                laswp(A[k0 : layout.m, :k0], ws.piv)

    return fn


def _ckpt_fn(A: np.ndarray, layout: BlockLayout, ckpt, K: int, workspaces: list[PanelWorkspace]):
    """Snapshot closure for the boundary-*K* checkpoint task.

    Saves the panel columns and U block rows factored since the
    previous boundary (final bytes, modulo the terminal left-swap task
    which always re-runs on resume), the live trailing matrix, and the
    covered panels' pivot sequences and degradation flags.
    """

    def fn() -> None:
        m, n, b = layout.m, layout.n, layout.b
        prevK = ckpt.prev_boundary(K)
        prev_c1 = prevK * b + layout.panel_width(prevK) if prevK >= 0 else 0
        c1 = K * b + layout.panel_width(K)
        extra: dict = {}
        for P in range(max(prevK + 1, 0), K + 1):
            ws = workspaces[P]
            if ws.piv is not None:
                extra[f"piv{P}"] = np.asarray(ws.piv, dtype=np.int64)
            extra[f"flags{P}"] = np.array(
                [int(ws.degraded), int(ws.recomputed)], dtype=np.int64
            )
        ckpt.save_snapshot(
            K,
            cols=A[:, prev_c1:c1],
            urows=A[prev_c1:c1, c1:n],
            trailing=A[c1:m, c1:n],
            extra=extra,
        )

    return fn


def _ckpt_guard(K: int, name: str):
    """Emit a (non-fatal) ``checkpoint`` event once the snapshot is saved."""

    def guard() -> ResilienceEvent:
        return ResilienceEvent(
            "checkpoint", task=name, detail=f"panel boundary {K} snapshot saved"
        )

    return guard


def calu_program(
    layout: BlockLayout,
    tr: int,
    tree: TreeKind = TreeKind.BINARY,
    *,
    A: np.ndarray | None = None,
    lookahead: int | None = None,
    library: str = "repro",
    leaf_kernel: str = "rgetf2",
    arity: int = 4,
    update_width: int | None = None,
    update_library: str | None = None,
    guards: bool = True,
    checkpoint=None,
    abft: bool = False,
    recompute: bool = True,
    shm=None,
) -> tuple[GraphProgram, list[PanelWorkspace]]:
    """Build the CALU task graph as a streaming :class:`GraphProgram`.

    The program has one window per panel iteration ``K`` (TSLU
    tournament, L, U, S and optional ``C[K]`` checkpoint tasks) plus an
    epilogue window holding the deferred left-swap task.  Windows are
    emitted incrementally as predecessors complete — graph construction
    stays off the critical path and the scheduler's live set is bounded
    by the look-ahead window — and ``materialize()`` reproduces the old
    eager graph task-for-task and edge-for-edge (the emission order is
    exactly the old builder's loop order).

    With ``A`` given (an ``m x n`` array factored in place), tasks
    carry numeric closures; with ``A=None`` the graph is symbolic and
    only carries costs (used to simulate paper-scale problems).
    Returns ``(program, per-panel workspaces)``; the workspace list
    fills as panel windows are emitted.

    With *guards* (the default, numeric runs only) the TSLU tasks carry
    corruption detectors that trigger the partial-pivoting fallback,
    the finalize tasks monitor pivot growth, and every trailing-update
    (S) task carries a finiteness guard over the block it wrote — so a
    corrupted run can never return silently wrong factors.

    ``update_width`` implements the paper's Section V extension: a
    trailing-update block size ``B > b`` — trailing column segments are
    grouped into super-segments of up to ``B`` columns, reducing the
    task count and improving BLAS3 granularity at some cost in
    look-ahead depth.  ``update_library`` prices the U/S update tasks
    under a different library personality (the paper's closing
    suggestion: "combining a fast panel factorization as in CALU with a
    highly optimized update of the trailing matrix as in MKL_dgetrf").

    *checkpoint* (a :class:`~repro.resilience.checkpoint.Checkpoint`,
    numeric runs only) adds one ``C[K]`` snapshot task per selected
    panel boundary, reading every block iteration ``K`` wrote so the
    block tracker serializes it before any iteration-``K+1`` writer.
    *abft* replaces the S tasks' finiteness guard with Huang-Abraham
    checksum verification that repairs single-element corruption in
    place.  *recompute* enables the TSLU tournament-replay rung of the
    recovery ladder (see :func:`repro.core.tslu.add_tslu_tasks`).

    *shm* (a :class:`~repro.runtime.shm.ShmBinding` whose matrix view
    **is** *A*; numeric runs only) additionally attaches ``meta["op"]``
    descriptors to the P/L/U/S tasks so a
    :class:`~repro.runtime.process.ProcessExecutor` can dispatch them to
    worker processes; checkpoint, ABFT and left-swap tasks keep only
    their closures and run inline in the parent.
    """
    numeric = A is not None
    m, n, b, N = layout.m, layout.n, layout.b, layout.N
    upd_lib = update_library or library
    if update_width is not None and update_width < b:
        raise ValueError(f"update_width B={update_width} must be >= b={b}")
    if lookahead is None:
        lookahead = lookahead_depth()
    guards = guards and numeric
    absmax = float(np.abs(A).max()) if guards and A.size else None
    workspaces: list[PanelWorkspace] = []
    n_panels = layout.n_panels
    n_windows = n_panels + (1 if n_panels > 1 else 0)

    def emit(window: int, graph: TaskGraph, tracker: BlockTracker) -> None:
        if window >= n_panels:
            _emit_epilogue(graph)
            return
        K = window
        c0, c1 = K * b, K * b + layout.panel_width(K)
        bk = c1 - c0
        k0 = K * b
        chunks = merged_chunks(layout, K, tr)
        ws = PanelWorkspace()
        workspaces.append(ws)

        add_tslu_tasks(
            graph,
            tracker,
            layout,
            K,
            chunks,
            tree,
            A=A,
            ws=ws,
            lookahead=lookahead,
            library=library,
            leaf_kernel=leaf_kernel,
            arity=arity,
            guards=guards,
            absmax=absmax,
            recompute=recompute,
            shm=shm,
        )

        # Task L: blocks of the current column of L (dtrsm).
        for chunk in chunks:
            r0 = max(chunk.r0, k0 + bk)
            if r0 >= chunk.r1:
                continue
            rows = chunk.r1 - r0
            cost = Cost(
                "trsm_runn",
                m=rows,
                k=bk,
                flops=trsm_right_flops(rows, bk),
                words=2.0 * rows * bk + bk * bk,
                library=library,
            )
            blocks = [(i, K) for i in range(r0 // b, chunk.b1)]
            l_meta = {}
            if shm is not None and numeric:
                l_meta["op"] = (
                    "calu_l",
                    {"a": shm.a_spec, "k0": k0, "c0": c0, "c1": c1, "r0": r0, "r1": chunk.r1},
                )
            tracker.add_task(
                graph,
                f"L[{K}]{chunk.index}",
                TaskKind.L,
                cost,
                fn=_l_fn(A, k0, c0, c1, r0, chunk.r1) if numeric else None,
                reads=[(K, K)],
                writes=blocks,
                priority=task_priority("L", K, lookahead=lookahead, n_cols=N),
                iteration=K,
                **l_meta,
            )

        # Tasks U and S per trailing column segment.  Usually a segment
        # is a full block column J > K, but when the panel is narrower
        # than its block column (last panel of a wide matrix,
        # min(m, n) % b != 0) the leftover columns of block column K
        # form a partial leading segment.  With update_width=B > b the
        # segments are grouped into super-segments of up to B columns
        # (paper Section V).
        base_segments: list[tuple[int, int, int]] = []
        kb_end = min((K + 1) * b, n)
        if c1 < kb_end:
            base_segments.append((K, c1, kb_end))
        base_segments.extend((J, *layout.col_range(J)) for J in range(K + 1, N))
        if update_width is None:
            segments = [(J, j0, j1, [J]) for J, j0, j1 in base_segments]
        else:
            segments = []
            for J, j0, j1 in base_segments:
                if segments and j1 - segments[-1][1] <= update_width:
                    Jf, g0, _, cols = segments[-1]
                    segments[-1] = (Jf, g0, j1, cols + [J])
                else:
                    segments.append((J, j0, j1, [J]))
        for J, j0, j1, jcols in segments:
            nc = j1 - j0
            swap_words = 2.0 * bk * nc
            cost_u = Cost(
                "trsm_llnu",
                m=bk,
                n=nc,
                k=bk,
                flops=trsm_left_flops(bk, nc),
                words=2.0 * bk * nc + bk * bk + swap_words,
                library=upd_lib,
            )
            u_writes = [blk for Jc in jcols for blk in layout.active_blocks(K, Jc)]
            u_meta = {}
            if shm is not None and numeric:
                u_meta["op"] = (
                    "calu_u",
                    {
                        "a": shm.a_spec,
                        "m": m,
                        "k0": k0,
                        "bk": bk,
                        "c0": c0,
                        "c1": c1,
                        "j0": j0,
                        "j1": j1,
                        "piv": shm.piv_specs[K][1],
                    },
                )
            u_tid = tracker.add_task(
                graph,
                f"U[{K}]{J}",
                TaskKind.U,
                cost_u,
                fn=_u_fn(A, m, k0, bk, c0, c1, j0, j1, ws) if numeric else None,
                # The row swaps consume the panel's pivot sequence, so
                # ("piv", K) joins the read footprint alongside the
                # factored diagonal block.
                reads=[(K, K), ("piv", K)],
                writes=u_writes,
                priority=task_priority("U", K, J, lookahead=lookahead, n_cols=N),
                iteration=K,
                col=J,
                **u_meta,
            )
            for chunk in chunks:
                r0 = max(chunk.r0, k0 + bk)
                if r0 >= chunk.r1:
                    continue
                rows = chunk.r1 - r0
                cost_s = Cost(
                    "gemm",
                    m=rows,
                    n=nc,
                    k=bk,
                    flops=gemm_flops(rows, nc, bk),
                    words=2.0 * rows * nc + rows * bk + bk * nc,
                    library=upd_lib,
                )
                blocks = [(i, Jc) for Jc in jcols for i in range(r0 // b, chunk.b1)]
                s_name = f"S[{K}]{chunk.index},{J}"
                if guards and abft:
                    cell: list = [None]
                    s_fn = _s_fn_abft(A, k0, bk, c0, c1, r0, chunk.r1, j0, j1, cell)
                    s_meta = {
                        "health": gemm_abft_guard(A, r0, chunk.r1, j0, j1, cell, s_name),
                        "corrupt": _corrupt_block(A, r0, chunk.r1, j0, j1),
                    }
                elif guards:
                    s_fn = _s_fn(A, k0, bk, c0, c1, r0, chunk.r1, j0, j1)
                    s_meta = {"health": finite_block_guard(A, r0, chunk.r1, j0, j1, s_name)}
                else:
                    s_fn = _s_fn(A, k0, bk, c0, c1, r0, chunk.r1, j0, j1) if numeric else None
                    s_meta = {}
                if shm is not None and numeric and not (guards and abft):
                    # ABFT S tasks keep closure-only execution: the
                    # checksum cell lives in the parent process.
                    s_meta["op"] = (
                        "calu_s",
                        {
                            "a": shm.a_spec,
                            "k0": k0,
                            "bk": bk,
                            "c0": c0,
                            "c1": c1,
                            "r0": r0,
                            "r1": chunk.r1,
                            "j0": j0,
                            "j1": j1,
                        },
                    )
                tracker.add_task(
                    graph,
                    s_name,
                    TaskKind.S,
                    cost_s,
                    fn=s_fn,
                    reads=[(i, K) for i in range(r0 // b, chunk.b1)]
                    + [(K, Jc) for Jc in jcols],
                    writes=blocks,
                    extra_deps=[u_tid],
                    priority=task_priority("S", K, J, lookahead=lookahead, n_cols=N),
                    iteration=K,
                    col=J,
                    **s_meta,
                )

        # Task C: the boundary-K checkpoint.  Reading every block the
        # iteration wrote gives it RAW edges from all of iteration K's
        # tasks and WAR edges to iteration K+1's writers, so the
        # snapshot sees exactly the boundary state — consistent even
        # under look-ahead pipelining.
        if numeric and checkpoint is not None and checkpoint.should_snapshot(K):
            prevK = checkpoint.prev_boundary(K)
            prev_c1 = prevK * b + layout.panel_width(prevK) if prevK >= 0 else 0
            ck_words = 2.0 * (
                m * (c1 - prev_c1)
                + (c1 - prev_c1) * max(n - c1, 0)
                + max(m - c1, 0) * max(n - c1, 0)
            )
            ck_name = f"C[{K}]"
            ck_reads = [
                (i, J)
                for J in range(max(prevK + 1, 0), N)
                for i in range(layout.M)
                if J <= K or i > prevK
            ]
            # The snapshot also serializes the covered panels' pivot
            # sequences and degradation flags from the workspaces.
            ck_reads += [("piv", P) for P in range(max(prevK + 1, 0), K + 1)]
            tracker.add_task(
                graph,
                ck_name,
                TaskKind.X,
                Cost("laswp", words=ck_words, library=library),
                fn=_ckpt_fn(A, layout, checkpoint, K, workspaces),
                reads=ck_reads,
                priority=task_priority("X", K, lookahead=lookahead, n_cols=N) + 1.0,
                iteration=K,
                health=_ckpt_guard(K, ck_name),
            )

    def _emit_epilogue(graph: TaskGraph) -> None:
        # Deferred left swaps (Algorithm 1 line 41).  Depends on all
        # sinks, i.e. transitively on the entire factorization.  Window
        # ordering guarantees every panel window is already emitted, so
        # the sink set matches the eager builder's exactly.
        sinks = [t for t in range(len(graph.tasks)) if not graph.succs[t]]
        swap_words = 2.0 * sum(
            K * b * layout.panel_width(K) for K in range(1, layout.n_panels)
        )
        # Declared footprint (for the verify passes): panel K's swaps
        # touch rows [K*b, m) of every column left of the panel, i.e.
        # the strictly-sub-diagonal blocks of columns 0..n_panels-2,
        # driven by the pivot sequences of panels 1..n_panels-1.
        swap_blocks = frozenset(
            (i, J)
            for J in range(layout.n_panels - 1)
            for i in range(J + 1, layout.M)
        )
        swap_reads = swap_blocks | {("piv", K) for K in range(1, layout.n_panels)}
        graph.add(
            "leftswaps",
            TaskKind.X,
            Cost("laswp", words=swap_words, library=library),
            fn=_leftswap_fn(A, layout, workspaces) if numeric else None,
            deps=sinks,
            priority=task_priority("X", layout.n_panels),
            iteration=layout.n_panels - 1,
            reads=swap_reads,
            writes=swap_blocks,
        )

    program = GraphProgram(
        f"calu{layout.m}x{layout.n}b{layout.b}tr{tr}",
        n_windows,
        emit,
        lookahead=lookahead,
    )
    return program, workspaces


def build_calu_graph(
    layout: BlockLayout,
    tr: int,
    tree: TreeKind = TreeKind.BINARY,
    *,
    A: np.ndarray | None = None,
    lookahead: int | None = None,
    library: str = "repro",
    leaf_kernel: str = "rgetf2",
    arity: int = 4,
    update_width: int | None = None,
    update_library: str | None = None,
    guards: bool = True,
    checkpoint=None,
    abft: bool = False,
    recompute: bool = True,
) -> tuple[TaskGraph, list[PanelWorkspace]]:
    """Build the complete (eager) CALU task graph for *layout*.

    Materializes :func:`calu_program` up front — the historical
    interface, still what the verify/DOT/analysis tooling consumes.
    See :func:`calu_program` for the parameters.
    """
    program, workspaces = calu_program(
        layout,
        tr,
        tree,
        A=A,
        lookahead=lookahead,
        library=library,
        leaf_kernel=leaf_kernel,
        arity=arity,
        update_width=update_width,
        update_library=update_library,
        guards=guards,
        checkpoint=checkpoint,
        abft=abft,
        recompute=recompute,
    )
    return program.materialize(), workspaces


@dataclass
class CALUFactorization:
    """Result of :func:`calu`: ``A[perm] = L U``.

    ``lu`` packs ``L`` (strictly below the diagonal, unit diagonal
    implicit) and ``U`` (on and above); ``piv`` is the global
    LAPACK-style swap sequence of length ``min(m, n)``.

    ``trace`` is the executor's schedule (with its resilience event
    log); ``degraded_panels`` lists the panel indices whose tournament
    fell back to partial pivoting after a detected corruption, and
    ``recovered_panels`` the panels whose corrupted tournament was
    instead repaired by replaying it from clean panel data (pivots
    identical to a fault-free run).
    """

    lu: np.ndarray
    piv: np.ndarray
    b: int
    tr: int
    tree: TreeKind
    trace: Trace | None = None
    degraded_panels: tuple[int, ...] = ()
    recovered_panels: tuple[int, ...] = ()

    @property
    def shape(self) -> tuple[int, int]:
        return self.lu.shape

    @property
    def perm(self) -> np.ndarray:
        """Row permutation: ``A[perm] = L @ U``."""
        return piv_to_perm(self.piv, self.lu.shape[0])

    @property
    def L(self) -> np.ndarray:
        m, n = self.lu.shape
        r = min(m, n)
        L = np.tril(self.lu[:, :r], -1)
        np.fill_diagonal(L, 1.0)
        return L

    @property
    def U(self) -> np.ndarray:
        m, n = self.lu.shape
        return np.triu(self.lu[: min(m, n), :])

    def reconstruct(self) -> np.ndarray:
        """Recompute ``A`` from the factors (for verification)."""
        out = self.L @ self.U
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(len(self.perm))
        return out[inv]

    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        """Solve ``A x = rhs`` (or ``A^T x = rhs`` with ``trans=True``).

        Square systems only.  With ``A = P^T L U`` the transposed solve
        is ``U^T w = rhs``, ``L^T y = w``, ``x[perm] = y`` — needed by
        the 1-norm condition estimator.
        """
        m, n = self.lu.shape
        if m != n:
            raise ValueError(f"solve requires a square factorization, got {self.lu.shape}")
        rhs = np.asarray(rhs, dtype=float)
        squeeze = rhs.ndim == 1
        B = rhs.reshape(m, -1)
        if not trans:
            y = B[self.perm]
            y = scipy.linalg.solve_triangular(self.lu, y, lower=True, unit_diagonal=True)
            x = scipy.linalg.solve_triangular(self.lu, y, lower=False)
        else:
            w = scipy.linalg.solve_triangular(self.lu, B, lower=False, trans="T")
            y = scipy.linalg.solve_triangular(self.lu, w, lower=True, unit_diagonal=True, trans="T")
            x = np.empty_like(y)
            x[self.perm] = y
        return x[:, 0] if squeeze else x


def calu(
    A: np.ndarray,
    b: int | None = None,
    tr: int = 4,
    tree: TreeKind = TreeKind.BINARY,
    executor=None,
    lookahead: int | None = None,
    leaf_kernel: str = "rgetf2",
    overwrite: bool = False,
    update_width: int | None = None,
    check_finite: bool = True,
    guards: bool = True,
    checkpoint=None,
    abft: bool = False,
    tournament_recompute: bool = True,
    fuse: int | None = None,
) -> CALUFactorization:
    """Factor ``A`` with multithreaded CALU (Algorithm 1).

    Parameters
    ----------
    A : (m, n) array.
    b : panel width (paper default ``min(100, n)``).
    tr : number of panel tasks ``Tr`` (tournament leaves).
    tree : reduction tree shape.
    executor : a runtime executor; defaults to a
        :class:`~repro.runtime.threaded.ThreadedExecutor` with
        ``min(tr, 4)`` workers.  The string ``"auto"`` asks the
        machine-model autotuner (:mod:`repro.machine.autotune`) to pick
        the backend *and* the fusion granularity for this (shape, b,
        Tr); the decision is recorded as an ``autotune`` event on the
        returned trace.
    lookahead : scheduling look-ahead depth (paper: 1); ``None`` uses
        the process default
        (:func:`repro.core.priorities.lookahead_depth`).  Also bounds
        how many panel windows the streaming program keeps emitted
        ahead of the lowest incomplete one.
    leaf_kernel : sequential kernel at tournament leaves
        (``"rgetf2"``, the paper's choice, or ``"getf2"``).
    overwrite : allow factoring ``A`` in place (threaded path only;
        the process backend stages onto the shared-memory arena — one
        copy in, one copy out — whatever this flag says).
    update_width : optional trailing-update block size ``B >= b``
        (paper Section V extension): coarser, fewer update tasks.
    guards : attach numerical health guards to the task graph (see
        :func:`build_calu_graph`); disabled, a corrupted run may
        raise from deep inside a kernel instead of degrading
        gracefully.
    checkpoint : optional
        :class:`~repro.resilience.checkpoint.Checkpoint` arming the
        checkpoint/restart path: panel-boundary snapshots plus a
        write-ahead task journal.  Call :func:`calu` again with the
        same *checkpoint* (and the same input ``A``) after a crash and
        the run resumes from the newest restorable boundary, skipping
        journaled tasks, with **bitwise-identical** factors.
    abft : verify every trailing (S) update against Huang-Abraham
        checksums, repairing single-element corruption in place
        (recorded as ``abft_correct`` events) instead of aborting.
    tournament_recompute : allow a corrupted TSLU tournament to be
        replayed from clean panel data (identical pivots; recorded in
        ``recovered_panels``) before degrading to partial pivoting.
    fuse : fuse up to this many tasks into one super-task before
        execution (:func:`repro.runtime.fuse.fuse_program`) — one
        scheduler dispatch / worker pipe round-trip per super-task.
        ``None`` or ``1`` disables fusion except under
        ``executor="auto"``, where the autotuner picks it.

    Returns a :class:`CALUFactorization`.
    """
    A = validate_matrix(A, "A", require_finite=check_finite)
    dtype = A.dtype if A.dtype in (np.float32, np.float64) else np.float64
    # check_finite=False means the caller opted into non-finite input
    # ("garbage in"); the finiteness guards would only fight that.
    guards = guards and check_finite
    m, n = A.shape
    if b is None:
        b = min(100, n)
    layout = BlockLayout(m, n, b)
    from repro.runtime.process import ProcessExecutor, resolve_executor

    autotune_decision = None
    if isinstance(executor, str) and executor == "auto":
        from repro.machine.autotune import autotune

        autotune_decision = autotune("lu", m, n, b=b, tr=tr, tree=tree)
        executor = autotune_decision.backend
        if fuse is None:
            fuse = autotune_decision.max_ops
    if executor is None:
        executor = ThreadedExecutor(min(tr, 4))
    executor, owned_executor = resolve_executor(executor, min(tr, 4))
    use_shm = isinstance(executor, ProcessExecutor)
    arena = shm = None
    if use_shm:
        # Process backend: the matrix is staged straight onto the
        # shared-memory tile plane (one copy, converting dtype/layout
        # on the way — no parent-side intermediate even with
        # overwrite=False) so worker processes factor it in place;
        # results are copied back out below (see repro.runtime.shm).
        from repro.runtime.shm import SharedArena, ShmBinding

        arena = SharedArena()
        shared = arena.alloc(A.shape, dtype, zero=False)
        np.copyto(shared, A)
        A = shared
        shm = ShmBinding(arena, A)
    else:
        A = np.array(A, dtype=dtype, order="C", copy=not overwrite, subok=False)
    program, workspaces = calu_program(
        layout,
        tr,
        tree,
        A=A,
        lookahead=lookahead,
        leaf_kernel=leaf_kernel,
        update_width=update_width,
        guards=guards,
        checkpoint=checkpoint,
        abft=abft,
        recompute=tournament_recompute,
        shm=shm,
    )
    if fuse is not None and fuse > 1:
        from repro.runtime.fuse import fuse_program

        # Per-window rewrite: journal resume below still addresses
        # windows by panel iteration, and checkpoint (X) tasks keep
        # their identity inside the fused program.
        program = fuse_program(program, max_ops=fuse)
    # Engine-backed executors consume the streaming program directly,
    # keeping graph construction off the critical path; a caller-made
    # (duck-typed) executor gets the materialized eager graph, which is
    # the historical contract.
    source = program if supports_streaming(executor) else program.materialize()
    journal = None
    if checkpoint is not None:
        import zlib

        signature = {
            "algo": "calu",
            "m": m,
            "n": n,
            "b": int(b),
            "tr": int(tr),
            "tree": tree.value,
            "leaf_kernel": leaf_kernel,
            "update_width": update_width,
            "a_digest": zlib.crc32(A.tobytes()),
        }
        usable = checkpoint.prepare(signature)
        resumed_from, snaps = (
            restore_matrix(A, layout, checkpoint) if usable else (-1, {})
        )
        # The journal from a crashed run holds mid-panel completions
        # whose effects are NOT in the restored matrix (it carries the
        # *boundary* state); reseed it with exactly the tasks the
        # snapshot covers.  The terminal left-swap task is never marked:
        # snapshots are taken before it, so it must always re-run.
        journal = checkpoint.journal()
        journal.reset()
        journal.bind(source)
        if resumed_from >= 0:
            # Window K holds every task of iteration K, so emitting
            # through the resumed boundary makes the whole journaled
            # prefix enumerable (no-op on the eager path).
            program.emit_through(resumed_from)
            for snap in snaps.values():
                for key, val in snap.items():
                    if key.startswith("piv"):
                        workspaces[int(key[3:])].piv = np.asarray(val)
                    elif key.startswith("flags"):
                        ws = workspaces[int(key[5:])]
                        ws.degraded = bool(val[0])
                        ws.recomputed = bool(val[1])
            journal.mark_completed(
                t.name
                for t in program.graph.tasks
                if t.iteration <= resumed_from and t.name != "leftswaps"
            )
    plan = getattr(executor, "fault_plan", None)
    if plan is not None and plan.target is None:
        plan.target = A
    try:
        trace = (
            executor.run(source, journal=journal) if journal is not None else executor.run(source)
        )
        if autotune_decision is not None:
            trace.events.append(autotune_decision.event())
        if guards and not np.isfinite(A).all():
            # Last line of defense: a corruption that landed outside every
            # guarded block (e.g. in an already-finished region) must still
            # surface as a structured failure, never as wrong factors.
            raise RuntimeFailure(
                "CALU produced non-finite factors (undetected corruption)",
                failure_kind="health",
                trace=trace,
            )
        r = min(m, n)
        piv = np.arange(r, dtype=np.int64)
        for K, ws in enumerate(workspaces):
            k0 = K * b
            bk = layout.panel_width(K)
            assert ws.piv is not None
            piv[k0 : k0 + bk] = ws.piv[:bk] + k0
        if checkpoint is not None:
            # Drain the async snapshot writer so a completed run leaves
            # its full chain on disk (and any write error surfaces here
            # rather than being dropped with the daemon thread).
            checkpoint.flush()
        if use_shm:
            A = np.array(A)  # copy the factors off the arena
    finally:
        if arena is not None:
            arena.destroy()
        if owned_executor and use_shm:
            executor.close()
    degraded = tuple(K for K, ws in enumerate(workspaces) if ws.degraded)
    recovered = tuple(K for K, ws in enumerate(workspaces) if ws.recomputed)
    return CALUFactorization(
        lu=A,
        piv=piv,
        b=b,
        tr=tr,
        tree=tree,
        trace=trace,
        degraded_panels=degraded,
        recovered_panels=recovered,
    )
