"""The paper's contribution: multithreaded communication-avoiding LU/QR.

``tslu`` / ``tsqr``
    Tall-and-skinny panel factorizations via reduction trees
    (tournament pivoting for LU; stacked-R QR merges for QR).
``calu`` / ``caqr``
    The full factorizations of Algorithm 1 and Algorithm 2: panel by
    TSLU/TSQR, trailing updates as dynamically scheduled tasks with
    look-ahead priorities.
"""

from repro.core.calu import CALUFactorization, build_calu_graph, calu, calu_program
from repro.core.caqr import CAQRFactorization, build_caqr_graph, caqr, caqr_program
from repro.core.layout import BlockLayout
from repro.core.priorities import lookahead_depth
from repro.core.trees import TreeKind, reduction_schedule
from repro.core.tslu import tslu, tslu_program
from repro.core.tsqr import TSQRFactorization, tsqr, tsqr_program

__all__ = [
    "BlockLayout",
    "CALUFactorization",
    "CAQRFactorization",
    "TSQRFactorization",
    "TreeKind",
    "build_calu_graph",
    "build_caqr_graph",
    "calu",
    "calu_program",
    "caqr",
    "caqr_program",
    "lookahead_depth",
    "reduction_schedule",
    "tslu",
    "tslu_program",
    "tsqr",
    "tsqr_program",
]
