"""The paper's contribution: multithreaded communication-avoiding LU/QR.

``tslu`` / ``tsqr``
    Tall-and-skinny panel factorizations via reduction trees
    (tournament pivoting for LU; stacked-R QR merges for QR).
``calu`` / ``caqr``
    The full factorizations of Algorithm 1 and Algorithm 2: panel by
    TSLU/TSQR, trailing updates as dynamically scheduled tasks with
    look-ahead priorities.
"""

from repro.core.calu import CALUFactorization, build_calu_graph, calu
from repro.core.caqr import CAQRFactorization, build_caqr_graph, caqr
from repro.core.layout import BlockLayout
from repro.core.trees import TreeKind, reduction_schedule
from repro.core.tslu import tslu
from repro.core.tsqr import TSQRFactorization, tsqr

__all__ = [
    "BlockLayout",
    "CALUFactorization",
    "CAQRFactorization",
    "TSQRFactorization",
    "TreeKind",
    "build_calu_graph",
    "build_caqr_graph",
    "calu",
    "caqr",
    "reduction_schedule",
    "tslu",
    "tsqr",
]
