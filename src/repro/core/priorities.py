"""Static task priorities encoding the paper's look-ahead scheduling.

The scheduler pops the highest-priority *ready* task, so priorities
shape the schedule without ever violating dependencies.  The paper's
rule ("after factoring panel K, the update of block column K+1 has the
highest priority and is scheduled next; then the factorization of
panel K+1") is encoded by giving every task an *era* — the panel
iteration it unblocks — and ranking task classes within an era.

``lookahead`` ablation values:

* ``0`` — no look-ahead: tasks are ranked purely by their own
  iteration; updates of all trailing columns are equal.
* ``1`` — the paper's setting: updates of block column ``K+1`` (and
  hence panel ``K+1``) outrank the rest of iteration K's updates.
* ``-1`` (infinite) — updates are ranked by target column, fully
  left-first (deepest pipelining).
"""

from __future__ import annotations

__all__ = ["task_priority", "lookahead_depth"]

# Process-wide default look-ahead depth: both the priority boost window
# and the streaming window the ExecutionEngine keeps emitted ahead of
# the lowest incomplete panel.  The paper's setting is 1.
_DEFAULT_LOOKAHEAD = 1


def lookahead_depth(d: int | None = None) -> int:
    """Read (no argument) or set the default look-ahead depth.

    The value is used by every graph builder whose ``lookahead``
    argument is left as ``None``: it widens the priority boost window
    of :func:`task_priority` and bounds how many panel windows a
    streaming :class:`~repro.runtime.program.GraphProgram` keeps
    emitted past the lowest incomplete one.  ``0`` disables look-ahead,
    ``-1`` means infinite (rank fully left-first; emit the whole graph
    up front).  Setting returns the *previous* value so callers can
    restore it::

        prev = lookahead_depth(2)
        try:
            ...
        finally:
            lookahead_depth(prev)
    """
    global _DEFAULT_LOOKAHEAD
    if d is None:
        return _DEFAULT_LOOKAHEAD
    if isinstance(d, bool) or not isinstance(d, int):
        raise TypeError(f"lookahead depth must be an int, got {type(d).__name__}")
    if d < -1:
        raise ValueError(f"lookahead depth must be >= -1, got {d}")
    prev = _DEFAULT_LOOKAHEAD
    _DEFAULT_LOOKAHEAD = d
    return prev

# Rank of task classes within an era; panel work on the critical path
# always comes first.  Boosted U/S tasks (the look-ahead window) use
# ranks 13/12, between the panel tasks and the ordinary updates.
_RANK = {"P": 15.0, "F": 14.0, "L": 11.0, "U": 10.0, "S": 8.0, "X": 1.0}
_BOOST = {"U": 13.0, "S": 12.0}
_ERA_STRIDE = 32.0


def task_priority(
    kind: str,
    K: int,
    J: int | None = None,
    lookahead: int = 1,
    n_cols: int = 1,
) -> float:
    """Priority for a task of class *kind* at iteration *K* on column *J*.

    Larger is scheduled earlier among ready tasks.  *kind* is one of
    ``P`` (TSLU/TSQR tree node), ``F`` (panel finalize), ``L``, ``U``,
    ``S``, ``X``.  *J* is the target block column for U/S tasks.

    With ``lookahead >= 1``, updates within the look-ahead window
    (``J <= K + lookahead``) stay in era ``K`` with boosted ranks —
    they run right after the panel; the remaining updates are demoted
    to era ``K + 1`` so that panel ``K+1`` (and the next window)
    outranks them, which is the paper's schedule.
    """
    rank = _RANK[kind]
    if kind in ("U", "S") and J is not None:
        if lookahead < 0:
            era = J  # rank strictly by the column the task unblocks
        elif lookahead >= 1 and J <= K + lookahead:
            era = K
            rank = _BOOST[kind]
        elif lookahead >= 1:
            era = K + 1
            rank -= (J - K) / (n_cols + 1.0)
        else:  # lookahead == 0: plain iteration ordering
            era = K
            rank -= (J - K) / (n_cols + 1.0)
    else:
        era = K
    return -era * _ERA_STRIDE + rank
